"""Declarative cluster-dynamics specifications.

A :class:`DynamicsSpec` describes *how* a fleet misbehaves — random node
failures with repair times, planned maintenance drains, spot-capacity
reclamation storms and elastic grow/shrink — without referencing any
concrete cluster.  Binding a spec to a seed yields a
:class:`~repro.dynamics.injector.FaultInjector`, which pre-generates the
full outage schedule for a cluster's node list; the simulator replays
that schedule as first-class events.

Determinism contract
--------------------
The generated schedule is a pure function of ``(spec, seed, node ids)``:
no wall clock, no process state, no hash randomisation (the RNG is seeded
from a SHA-256 of the canonical spec payload).  Two consequences:

* results are bit-identical at any experiment-engine worker count, and
* a spec's :meth:`descriptor` can stand in for the schedule in engine
  cache keys (see ``Scenario.cache_descriptor``) — editing any knob
  invalidates exactly the cached cells it affects.

Specs are frozen dataclasses with only JSON-able fields, so they pickle
into worker processes and canonicalise for cache keying.  Named presets
(used by the chaos scenarios and the CLI ``--dynamics`` flag) live in
:mod:`repro.dynamics.presets` and are looked up with :func:`get_dynamics`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List


@dataclass(frozen=True)
class DynamicsSpec:
    """Parameters of the cluster-dynamics generators (all off by default).

    An all-defaults spec generates *no* events: attaching it to a
    simulation is bit-identical to attaching nothing (property-tested in
    ``tests/test_dynamics_properties.py``).

    Example
    -------
    >>> spec = DynamicsSpec(name="churny", node_mtbf_hours=50.0)
    >>> injector = spec.injector(seed=7)
    >>> schedule = injector.schedule(cluster)   # deterministic in (spec, 7, nodes)
    """

    name: str = "dynamics"

    # --- random node failures (unplanned, rollback-to-checkpoint) -----
    #: mean time between failures per node, hours; 0 disables failures
    node_mtbf_hours: float = 0.0
    #: mean repair time, hours
    repair_hours: float = 2.0
    #: relative +- jitter applied to each repair time
    repair_jitter: float = 0.5

    # --- planned maintenance drains (graceful checkpoint-and-requeue) -
    #: one drain wave every this many hours; 0 disables drains
    drain_period_hours: float = 0.0
    #: fraction of the fleet drained per wave (rotating blocks)
    drain_fraction: float = 0.0
    #: how long each drained node stays out, hours
    drain_duration_hours: float = 4.0
    #: start of the first wave, hours
    drain_start_hours: float = 8.0

    # --- spot capacity reclamation storms (abrupt) --------------------
    #: one reclamation wave every this many hours; 0 disables
    reclaim_period_hours: float = 0.0
    #: fraction of the fleet reclaimed per wave (seeded random sample)
    reclaim_fraction: float = 0.0
    #: outage length of a reclaimed node, hours
    reclaim_outage_hours: float = 1.0
    #: start of the first wave, hours
    reclaim_start_hours: float = 6.0

    # --- elastic fleet (planned grow/shrink) --------------------------
    #: fraction of the fleet offline from t=0 (the growth tranche)
    offline_at_start_fraction: float = 0.0
    #: when the growth tranche comes online, hours; 0 = never
    grow_at_hours: float = 0.0
    #: when a tranche is permanently removed, hours; 0 = no shrink
    shrink_at_hours: float = 0.0
    #: fraction of the fleet removed at ``shrink_at_hours`` (graceful)
    shrink_fraction: float = 0.0

    # --- scope --------------------------------------------------------
    #: events are generated for the first ``horizon_hours`` of simulated
    #: time (repairs may complete past it); size it to cover the trace
    horizon_hours: float = 168.0
    #: extra salt folded into the schedule RNG seed
    seed_salt: int = 0

    def __post_init__(self) -> None:
        for field_name in (
            "node_mtbf_hours", "repair_hours", "repair_jitter",
            "drain_period_hours", "drain_duration_hours", "drain_start_hours",
            "reclaim_period_hours", "reclaim_outage_hours", "reclaim_start_hours",
            "grow_at_hours", "shrink_at_hours", "horizon_hours",
        ):
            if getattr(self, field_name) < 0:
                raise ValueError(f"{field_name} must be >= 0")
        for field_name in (
            "drain_fraction", "reclaim_fraction",
            "offline_at_start_fraction", "shrink_fraction",
        ):
            value = getattr(self, field_name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{field_name} must be in [0, 1], got {value!r}")
        if self.offline_at_start_fraction + self.shrink_fraction > 1.0:
            raise ValueError("growth tranche plus shrink tranche exceed the fleet")

    # ------------------------------------------------------------------
    def is_empty(self) -> bool:
        """Whether this spec can generate any event at all."""
        return (
            self.node_mtbf_hours == 0.0
            and (self.drain_period_hours == 0.0 or self.drain_fraction == 0.0)
            and (self.reclaim_period_hours == 0.0 or self.reclaim_fraction == 0.0)
            and self.offline_at_start_fraction == 0.0
            and (self.shrink_at_hours == 0.0 or self.shrink_fraction == 0.0)
        )

    def descriptor(self) -> Dict[str, object]:
        """Canonical JSON-able payload for cache keys and provenance."""
        return dataclasses.asdict(self)

    def injector(self, seed: int = 0):
        """Bind this spec to a seed (see :class:`~repro.dynamics.FaultInjector`)."""
        from .injector import FaultInjector

        return FaultInjector(self, seed=seed)


# ----------------------------------------------------------------------
# Named-preset registry (chaos scenarios, CLI --dynamics)
# ----------------------------------------------------------------------
_REGISTRY: Dict[str, DynamicsSpec] = {}


def register_dynamics(spec: DynamicsSpec, replace_existing: bool = False) -> DynamicsSpec:
    """Add a dynamics preset to the global registry (name must be unique)."""
    if spec.name in _REGISTRY and not replace_existing:
        raise ValueError(f"dynamics preset {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec
    return spec


def get_dynamics(name: str) -> DynamicsSpec:
    """Look a dynamics preset up by (case/dash-insensitive) name."""
    key = name.lower().replace("-", "_")
    if key not in _REGISTRY:
        raise KeyError(
            f"unknown dynamics preset {name!r}; expected one of {dynamics_names()}"
        )
    return _REGISTRY[key]


def dynamics_names() -> List[str]:
    """Sorted names of all registered dynamics presets."""
    return sorted(_REGISTRY)
