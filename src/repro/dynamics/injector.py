"""Fault injection: turn a :class:`DynamicsSpec` into a concrete schedule.

The injector pre-generates every outage *before* the simulation starts,
from a seeded RNG that depends only on ``(spec, seed, node ids)``.  The
simulator then replays the schedule as ordinary heap events, which is
what keeps dynamics runs bit-identical at any experiment-engine worker
count: nothing about the schedule depends on simulation order, scheduler
choice or process layout.

Per-node outage windows from the four generators (failures, drains,
reclamations, elastic grow/shrink) are merged into disjoint intervals, so
the simulator sees a clean alternation of one *down* and one *up* event
per node and never needs reference counting.  The first window of a
merged run decides the cause and kill semantics.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math
import random
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..cluster.events import DynamicsAction, EventKind
from .spec import DynamicsSpec

#: event kind announcing a node leaving the fleet, by outage cause
_DOWN_KIND: Dict[str, EventKind] = {
    "failure": EventKind.NODE_FAIL,
    "drain": EventKind.NODE_DRAIN,
    "reclaim": EventKind.CAPACITY_CHANGE,
    "elastic": EventKind.CAPACITY_CHANGE,
}

#: event kind announcing a node rejoining, by outage cause
_UP_KIND: Dict[str, EventKind] = {
    "failure": EventKind.NODE_REPAIR,
    "drain": EventKind.NODE_REPAIR,
    "reclaim": EventKind.CAPACITY_CHANGE,
    "elastic": EventKind.CAPACITY_CHANGE,
}

#: causes whose kills let the task checkpoint in place (planned events)
_GRACEFUL_CAUSES = frozenset({"drain", "elastic"})


@dataclass(frozen=True)
class NodeOutage:
    """One offline window of one node (``end`` is ``inf`` when permanent)."""

    node_id: str
    start: float
    end: float
    cause: str

    @property
    def graceful(self) -> bool:
        return self.cause in _GRACEFUL_CAUSES


#: one simulator event: (time, kind, action)
ScheduledEvent = Tuple[float, EventKind, DynamicsAction]


@dataclass(frozen=True)
class DynamicsSchedule:
    """The fully materialised fault schedule for one cluster.

    ``initial_offline`` nodes are deactivated before the first event is
    processed (elastic fleets that grow later); ``events`` is sorted by
    time and ready to push into the simulator's heap.  ``outages`` keeps
    the merged per-node windows for inspection and tests.
    """

    initial_offline: Tuple[str, ...]
    events: Tuple[ScheduledEvent, ...]
    outages: Tuple[NodeOutage, ...]

    def fingerprint(self) -> str:
        """SHA-256 over the canonical schedule (reproducibility checks)."""
        payload = [
            list(self.initial_offline),
            [[t, k.value, dataclasses.asdict(a)] for t, k, a in self.events],
        ]
        text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(text.encode("utf-8")).hexdigest()


class FaultInjector:
    """A :class:`DynamicsSpec` bound to a seed, ready to schedule a cluster.

    Example
    -------
    >>> injector = FaultInjector(DynamicsSpec(node_mtbf_hours=50.0), seed=7)
    >>> schedule = injector.schedule(cluster)
    >>> time, kind, action = schedule.events[0]
    >>> kind
    <EventKind.NODE_FAIL: 4>
    """

    def __init__(self, spec: DynamicsSpec, seed: int = 0):
        self.spec = spec
        self.seed = int(seed)
        self._cache: Dict[Tuple[str, ...], DynamicsSchedule] = {}

    # ------------------------------------------------------------------
    def schedule(self, cluster) -> DynamicsSchedule:
        """The schedule for ``cluster`` (node list in construction order)."""
        return self.build_schedule(tuple(n.node_id for n in cluster.nodes))

    def build_schedule(self, node_ids: Sequence[str]) -> DynamicsSchedule:
        """Build (and memoise) the schedule for an explicit node list."""
        key = tuple(node_ids)
        cached = self._cache.get(key)
        if cached is None:
            cached = self._cache[key] = self._generate(key)
        return cached

    # ------------------------------------------------------------------
    def _rng(self, node_ids: Tuple[str, ...]) -> random.Random:
        """Seeded RNG: a pure function of (spec, seed, node ids).

        Seeding goes through SHA-256 of a canonical JSON payload instead
        of ``hash()`` so schedules are identical across processes (string
        hash randomisation) and Python versions.
        """
        payload = {
            "spec": self.spec.descriptor(),
            "seed": self.seed,
            "nodes": list(node_ids),
        }
        text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        digest = hashlib.sha256(text.encode("utf-8")).digest()
        return random.Random(int.from_bytes(digest[:8], "big"))

    def _generate(self, node_ids: Tuple[str, ...]) -> DynamicsSchedule:
        spec = self.spec
        rng = self._rng(node_ids)
        n = len(node_ids)
        horizon = spec.horizon_hours * 3600.0
        raw: List[NodeOutage] = []

        # Elastic growth tranche: the tail of the fleet starts offline.
        grow_count = int(round(n * spec.offline_at_start_fraction))
        if grow_count:
            join = spec.grow_at_hours * 3600.0 if spec.grow_at_hours > 0 else math.inf
            for node_id in node_ids[n - grow_count:]:
                raw.append(NodeOutage(node_id, 0.0, join, "elastic"))

        # Permanent shrink: a tranche just ahead of the growth tranche.
        if spec.shrink_at_hours > 0 and spec.shrink_fraction > 0:
            shrink_count = int(round(n * spec.shrink_fraction))
            lo = max(0, n - grow_count - shrink_count)
            for node_id in node_ids[lo: n - grow_count]:
                raw.append(NodeOutage(node_id, spec.shrink_at_hours * 3600.0, math.inf, "elastic"))

        # Random failures: per-node Poisson process with jittered repairs.
        if spec.node_mtbf_hours > 0:
            rate = 1.0 / (spec.node_mtbf_hours * 3600.0)
            repair_mean = spec.repair_hours * 3600.0
            for node_id in node_ids:
                t = rng.expovariate(rate)
                while t < horizon:
                    jitter = 1.0 + spec.repair_jitter * rng.uniform(-1.0, 1.0)
                    repair = max(60.0, repair_mean * jitter)
                    raw.append(NodeOutage(node_id, t, t + repair, "failure"))
                    t = t + repair + rng.expovariate(rate)

        # Maintenance drains: rotating contiguous blocks, fixed cadence.
        if spec.drain_period_hours > 0 and spec.drain_fraction > 0:
            block = max(1, int(round(n * spec.drain_fraction)))
            duration = spec.drain_duration_hours * 3600.0
            t = spec.drain_start_hours * 3600.0
            wave = 0
            while t < horizon:
                for j in range(block):
                    node_id = node_ids[(wave * block + j) % n]
                    raw.append(NodeOutage(node_id, t, t + duration, "drain"))
                wave += 1
                t += spec.drain_period_hours * 3600.0

        # Spot reclamation storms: seeded random samples, fixed cadence.
        if spec.reclaim_period_hours > 0 and spec.reclaim_fraction > 0:
            count = max(1, int(round(n * spec.reclaim_fraction)))
            outage = spec.reclaim_outage_hours * 3600.0
            t = spec.reclaim_start_hours * 3600.0
            while t < horizon:
                for index in sorted(rng.sample(range(n), min(count, n))):
                    raw.append(NodeOutage(node_ids[index], t, t + outage, "reclaim"))
                t += spec.reclaim_period_hours * 3600.0

        outages = self._merge(raw)
        return self._materialise(node_ids, outages)

    @staticmethod
    def _merge(raw: List[NodeOutage]) -> List[NodeOutage]:
        """Merge overlapping windows per node into disjoint outages.

        The earliest window of an overlapping run wins the cause (and with
        it the graceful/abrupt kill semantics at the down edge).
        """
        by_node: Dict[str, List[NodeOutage]] = {}
        for outage in raw:
            by_node.setdefault(outage.node_id, []).append(outage)
        merged: List[NodeOutage] = []
        for node_id, windows in by_node.items():
            windows.sort(key=lambda w: (w.start, w.end))
            current = windows[0]
            for window in windows[1:]:
                if window.start <= current.end:
                    if window.end > current.end:
                        current = dataclasses.replace(current, end=window.end)
                else:
                    merged.append(current)
                    current = window
            merged.append(current)
        return merged

    @staticmethod
    def _materialise(
        node_ids: Tuple[str, ...], outages: List[NodeOutage]
    ) -> DynamicsSchedule:
        order = {node_id: i for i, node_id in enumerate(node_ids)}
        initial: List[str] = []
        events: List[ScheduledEvent] = []
        for outage in outages:
            down_action = DynamicsAction(
                node_id=outage.node_id,
                cause=outage.cause,
                graceful=outage.graceful,
                online=False,
            )
            if outage.start <= 0.0:
                initial.append(outage.node_id)
            else:
                events.append((outage.start, _DOWN_KIND[outage.cause], down_action))
            if math.isfinite(outage.end):
                up_action = dataclasses.replace(down_action, online=True)
                events.append((outage.end, _UP_KIND[outage.cause], up_action))
        initial.sort(key=order.__getitem__)
        events.sort(key=lambda e: (e[0], e[1].value, order[e[2].node_id], e[2].online))
        outages_sorted = sorted(outages, key=lambda o: (o.start, order[o.node_id]))
        return DynamicsSchedule(
            initial_offline=tuple(initial),
            events=tuple(events),
            outages=tuple(outages_sorted),
        )
