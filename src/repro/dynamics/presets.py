"""Named dynamics presets backing the chaos scenario catalog.

Each preset is a :class:`~repro.dynamics.DynamicsSpec` registered under a
stable name, usable three ways:

* through the chaos scenarios (``node_churn`` & co. in the workload
  scenario registry pair each preset with a workload),
* attached to *any* scenario — including ``trace:<path>`` replays — via
  the CLI's ``sweep --dynamics <name>`` flag, and
* directly: ``run_simulation(..., dynamics=get_dynamics("node_churn"),
  dynamics_seed=7)``.

Intensities are sized so a small-scale run (32-64 nodes, 16-24 hours)
sees a handful of waves/failures without collapsing: tasks keep
completing, which is what the conservation tests require.
"""

from __future__ import annotations

from .spec import DynamicsSpec, register_dynamics

#: Random node failures: per-node MTBF of 50h (~2% of the fleet failing
#: per hour), repairs around two hours with +-50% jitter.
NODE_CHURN = register_dynamics(
    DynamicsSpec(
        name="node_churn",
        node_mtbf_hours=50.0,
        repair_hours=2.0,
        repair_jitter=0.5,
    )
)

#: Rolling maintenance: every 12h a rotating eighth of the fleet drains
#: gracefully for 3h, first wave at hour 5.
MAINTENANCE_WAVE = register_dynamics(
    DynamicsSpec(
        name="maintenance_wave",
        drain_period_hours=12.0,
        drain_fraction=0.125,
        drain_duration_hours=3.0,
        drain_start_hours=5.0,
    )
)

#: Cloud spot reclamation: every 8h a random quarter of the fleet is
#: yanked for 1.5h, first storm at hour 4.
SPOT_RECLAIM_STORM = register_dynamics(
    DynamicsSpec(
        name="spot_reclaim_storm",
        reclaim_period_hours=8.0,
        reclaim_fraction=0.25,
        reclaim_outage_hours=1.5,
        reclaim_start_hours=4.0,
    )
)

#: Elastic fleet: a quarter of the nodes join at hour 6 and a tenth is
#: gracefully retired for good at hour 18.
ELASTIC_FLEET = register_dynamics(
    DynamicsSpec(
        name="elastic_fleet",
        offline_at_start_fraction=0.25,
        grow_at_hours=6.0,
        shrink_at_hours=18.0,
        shrink_fraction=0.10,
    )
)
