"""Cluster dynamics: failures, drains and elastic capacity as events.

This package makes fleet churn a first-class, deterministic part of the
discrete-event simulation (see ``docs/reliability.md``):

* :class:`DynamicsSpec` — declarative, picklable description of failure
  rates, maintenance cadences, reclamation storms and elastic capacity.
* :class:`FaultInjector` — binds a spec to a seed and pre-generates the
  full outage schedule for a cluster, a pure function of
  ``(spec, seed, node ids)``.
* Named presets (``node_churn``, ``maintenance_wave``,
  ``spot_reclaim_storm``, ``elastic_fleet``) registered for the chaos
  scenarios and the CLI ``--dynamics`` flag.
"""

from .injector import DynamicsSchedule, FaultInjector, NodeOutage
from .spec import DynamicsSpec, dynamics_names, get_dynamics, register_dynamics
from . import presets  # noqa: F401  (registers the built-in presets)
from .presets import ELASTIC_FLEET, MAINTENANCE_WAVE, NODE_CHURN, SPOT_RECLAIM_STORM

__all__ = [
    "DynamicsSchedule",
    "DynamicsSpec",
    "ELASTIC_FLEET",
    "FaultInjector",
    "MAINTENANCE_WAVE",
    "NODE_CHURN",
    "NodeOutage",
    "SPOT_RECLAIM_STORM",
    "dynamics_names",
    "get_dynamics",
    "register_dynamics",
]
