"""GFS: the assembled preemption-aware scheduling framework.

``GFSScheduler`` wires the three modules of the paper together behind the
common :class:`repro.schedulers.base.Scheduler` interface:

* the **GDE** forecasts per-organization HP demand distributions from the
  trace's demand history plus online observations,
* the **SQA** turns those forecasts into a dynamic spot quota with
  eviction-aware feedback, and
* the **PTS** converts quota-admitted tasks into placements, preempting
  spot tasks at minimal cost when HP tasks would otherwise wait.

The ablation variants of Section 4.6 (GFS-e, GFS-d, GFS-s, GFS-p, GFS-sp)
are configuration switches on the same class; ``make_ablation`` builds them
by name.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..cluster import Cluster, SchedulingDecision, Task
from ..schedulers.base import Scheduler
from ..schedulers.placement import PlacementContext
from .gde import (
    GPUDemandEstimator,
    OnlineForecaster,
    OrgLinearOnlineForecaster,
    PreviousWeekPeakForecaster,
    SeasonalQuantileForecaster,
)
from .pts import PTSConfig, PreemptiveTaskScheduler, ScoringConfig
from .sqa import GPUInventoryEstimator, SQAConfig, SpotQuotaAllocator


@dataclass
class GFSConfig:
    """End-to-end configuration of GFS (defaults follow Table 4).

    Groups every knob of the three modules: the SQA guarantee targets
    (``guarantee_rate``/``guarantee_hours``/``queue_threshold``), the PTS
    scoring weights (``beta``/``gamma``/``penalty``), the GDE forecaster
    choice, and the ablation switches used by :func:`make_ablation`.

    Example
    -------
    >>> config = GFSConfig(guarantee_hours=2.0, forecaster="seasonal")
    >>> scheduler = GFSScheduler(config, org_history=trace.org_history)
    """

    #: MILP objective weight alpha (kept for the optimisation reference)
    alpha: float = 0.5
    #: preemption-cost weight beta (Eq. 19)
    beta: float = 0.5
    #: target guarantee rate p (Eq. 9)
    guarantee_rate: float = 0.9
    #: guaranteed duration H in hours (Eq. 9 / Table 6)
    guarantee_hours: float = 1.0
    #: maximum spot queuing-time threshold theta, seconds (Eq. 11)
    queue_threshold: float = 3600.0
    #: eviction-history weight gamma (Eq. 15)
    gamma: float = 0.8
    #: eviction penalty intensity m (Eq. 16)
    penalty: float = 3.0
    #: spot quota update interval, seconds
    quota_update_interval: float = 300.0
    #: which online forecaster the GDE uses:
    #: "seasonal" (default), "prev-week-peak" (GFS-e) or "orglinear"
    forecaster: str = "seasonal"
    #: disable the eta feedback loop (GFS-d keeps eta = 1.0)
    adapt_eta: bool = True
    #: disable Score2/Score3 in non-preemptive scheduling (GFS-s)
    use_colocation: bool = True
    use_eviction_awareness: bool = True
    #: replace cost-aware preemption by random selection (GFS-p)
    random_preemption: bool = False
    seed: int = 0


class GFSScheduler(Scheduler):
    """The full GFS scheduler: GDE forecasting + SQA quota + PTS placement.

    The paper's contribution assembled behind the common
    :class:`~repro.schedulers.base.Scheduler` interface: per-organization
    HP demand forecasts bound a dynamic spot quota with eviction-aware
    feedback, and quota-admitted tasks are placed by the preemption-aware
    task scheduler.  Pass the trace's ``org_history`` so the demand
    estimator has training data.

    Example
    -------
    >>> from repro import Cluster, GFSScheduler, run_simulation
    >>> from repro.workloads import generate_trace
    >>> cluster = Cluster.homogeneous(num_nodes=32)
    >>> trace = generate_trace(cluster_gpus=cluster.total_gpus())
    >>> scheduler = GFSScheduler(org_history=trace.org_history)
    >>> metrics = run_simulation(cluster, scheduler, trace.sorted_tasks())
    """

    name = "GFS"

    def __init__(
        self,
        config: Optional[GFSConfig] = None,
        org_history: Optional[Mapping[str, np.ndarray]] = None,
        org_attributes: Optional[Mapping[str, Mapping[str, str]]] = None,
    ):
        self.config = config or GFSConfig()
        self.org_history = {k: np.asarray(v, dtype=float) for k, v in (org_history or {}).items()}
        self.org_attributes = dict(org_attributes or {})

        self.gde = GPUDemandEstimator(self._build_forecaster())
        self.pts = PreemptiveTaskScheduler(
            PTSConfig(
                beta=self.config.beta,
                scoring=ScoringConfig(gamma=self.config.gamma, penalty=self.config.penalty),
                use_colocation=self.config.use_colocation,
                use_eviction_awareness=self.config.use_eviction_awareness,
                random_preemption=self.config.random_preemption,
                seed=self.config.seed,
            )
        )
        self.sqa: Optional[SpotQuotaAllocator] = None

        # Online bookkeeping for the feedback loop.
        self._start_time: float = 0.0
        self._history_offset: int = max((len(v) for v in self.org_history.values()), default=0)
        self._last_observed_hour: int = -1
        self._last_quota_update: float = -float("inf")
        self._spot_starts: Deque[Tuple[float, Task]] = deque()
        self._spot_evictions: Deque[float] = deque()
        #: exponentially smoothed eviction rate used by the feedback rule;
        #: raw windowed rates are far too noisy at simulation scale.
        self._smoothed_eviction_rate: float = 0.0
        self._eviction_smoothing: float = 0.3

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def _build_forecaster(self) -> OnlineForecaster:
        kind = self.config.forecaster.lower()
        if kind in ("seasonal", "seasonal-quantile"):
            return SeasonalQuantileForecaster()
        if kind in ("prev-week-peak", "previous-week-peak", "naive-peak"):
            return PreviousWeekPeakForecaster()
        if kind in ("orglinear", "org-linear"):
            return OrgLinearOnlineForecaster(attributes=self.org_attributes)
        raise ValueError(f"unknown forecaster kind {self.config.forecaster!r}")

    # ------------------------------------------------------------------
    # Simulator hooks
    # ------------------------------------------------------------------
    def on_simulation_start(self, cluster: Cluster, now: float) -> None:
        self._start_time = now
        history = self.org_history or {"default": np.zeros(1)}
        self.gde.fit(history)
        inventory = GPUInventoryEstimator(self.gde, capacity=cluster.total_gpus())
        self.sqa = SpotQuotaAllocator(
            inventory,
            SQAConfig(
                guarantee_rate=self.config.guarantee_rate,
                guarantee_hours=self.config.guarantee_hours,
                queue_threshold=self.config.queue_threshold,
                update_interval=self.config.quota_update_interval,
            ),
        )
        self._update_quota(cluster, now, pending=[], adapt=False)

    def on_tick(self, cluster: Cluster, now: float, pending: List[Task]) -> None:
        self._observe_demand(cluster, now, pending)
        if now - self._last_quota_update + 1e-9 >= self.config.quota_update_interval:
            self._update_quota(cluster, now, pending, adapt=self.config.adapt_eta)

    def on_task_start(self, task: Task, cluster: Cluster, now: float) -> None:
        if task.is_spot:
            self._spot_starts.append((now, task))

    def on_task_evicted(self, task: Task, cluster: Cluster, now: float) -> None:
        # The feedback loop reacts to guarantee violations: evictions that
        # strike a spot task before it completed its guaranteed duration.
        # Evictions past the guarantee are allowed by the spot SLO and must
        # not shrink the quota (they are still counted by the metrics).
        run_seconds = now - task.run_logs[-1].start if task.run_logs else 0.0
        if run_seconds < self.config.guarantee_hours * 3600.0:
            self._spot_evictions.append(now)

    # ------------------------------------------------------------------
    # Queue ordering and scheduling
    # ------------------------------------------------------------------
    def sort_queue(self, pending: List[Task], now: float) -> List[Task]:
        return self.pts.sort_queue(pending, now)

    def try_schedule(
        self,
        task: Task,
        cluster: Cluster,
        now: float,
        ctx: Optional[PlacementContext] = None,
    ) -> Optional[SchedulingDecision]:
        if task.is_spot and not self._quota_admits(task, cluster):
            return None
        decision = self.pts.schedule(
            task, cluster, now, self._total_gpu_seconds(cluster, now), ctx=ctx
        )
        if decision is not None and task.is_spot:
            task.guaranteed_hours = self.config.guarantee_hours
        return decision

    # ------------------------------------------------------------------
    # Quota plumbing
    # ------------------------------------------------------------------
    def _quota_admits(self, task: Task, cluster: Cluster) -> bool:
        if self.sqa is None:
            return True
        return self.sqa.admits(task.total_gpus, cluster.spot_gpus())

    def current_quota(self) -> float:
        """The spot quota currently in force (GPUs)."""
        return self.sqa.current_quota if self.sqa is not None else float("inf")

    def _hour_index(self, now: float) -> int:
        return self._history_offset + int((now - self._start_time) // 3600.0)

    def _observe_demand(self, cluster: Cluster, now: float, pending: List[Task]) -> None:
        """Record per-organization HP demand once per simulated hour."""
        hour = self._hour_index(now)
        if hour == self._last_observed_hour:
            return
        self._last_observed_hour = hour
        demand: Dict[str, float] = {org: 0.0 for org in self.gde.organizations()}
        for task in cluster.running_tasks.values():
            if task.is_hp:
                demand[task.org] = demand.get(task.org, 0.0) + task.total_gpus
        for task in pending:
            if task.is_hp:
                demand[task.org] = demand.get(task.org, 0.0) + task.total_gpus
        for org, value in demand.items():
            self.gde.observe(org, hour, value)

    def _recent_spot_conditions(self, now: float) -> Tuple[float, float]:
        """Observed eviction rate and max spot queuing time over the past H hours."""
        window = self.config.guarantee_hours * 3600.0
        cutoff = now - window
        while self._spot_starts and self._spot_starts[0][0] < cutoff:
            self._spot_starts.popleft()
        while self._spot_evictions and self._spot_evictions[0] < cutoff:
            self._spot_evictions.popleft()
        runs = len(self._spot_starts)
        evictions = len(self._spot_evictions)
        # Damp the small-sample noise of the feedback signal: a single
        # eviction among a handful of runs should not collapse the quota.
        window_rate = evictions / max(runs, 10) if (runs or evictions) else 0.0
        alpha = self._eviction_smoothing
        self._smoothed_eviction_rate = (
            (1.0 - alpha) * self._smoothed_eviction_rate + alpha * window_rate
        )
        max_queue = 0.0
        for _, task in self._spot_starts:
            max_queue = max(max_queue, task.total_queue_time)
        return self._smoothed_eviction_rate, max_queue

    def _update_quota(self, cluster: Cluster, now: float, pending: List[Task], adapt: bool) -> None:
        if self.sqa is None:
            return
        eviction_rate, max_queue = self._recent_spot_conditions(now)
        for task in pending:
            if task.is_spot:
                max_queue = max(max_queue, now - task.queue_enter_time)
        self.sqa.compute_quota(
            now=now,
            start_hour=self._hour_index(now),
            idle_gpus=cluster.idle_gpus(),
            guaranteed_spot_gpus=cluster.spot_gpus_with_guarantee(
                self.config.guarantee_hours, now
            ),
            eviction_rate=eviction_rate,
            max_queue_time=max_queue,
            adapt=adapt,
        )
        self._last_quota_update = now

    def _total_gpu_seconds(self, cluster: Cluster, now: float) -> float:
        elapsed = max(1.0, now - self._start_time)
        return cluster.total_gpus() * elapsed


#: Mapping of ablation names (Section 4.6) to configuration overrides.
ABLATION_OVERRIDES: Dict[str, Dict[str, object]] = {
    "gfs": {},
    "gfs-e": {"forecaster": "prev-week-peak"},
    "gfs-d": {"adapt_eta": False},
    "gfs-s": {"use_colocation": False, "use_eviction_awareness": False},
    "gfs-p": {"random_preemption": True},
    "gfs-sp": {
        "use_colocation": False,
        "use_eviction_awareness": False,
        "random_preemption": True,
    },
}


def make_ablation(
    name: str,
    config: Optional[GFSConfig] = None,
    org_history: Optional[Mapping[str, np.ndarray]] = None,
    org_attributes: Optional[Mapping[str, Mapping[str, str]]] = None,
    **config_overrides,
) -> GFSScheduler:
    """Build GFS or one of its Section 4.6 ablation variants by name.

    Variant names map to configuration overrides: ``"gfs-e"`` swaps the
    forecaster for last week's peak, ``"gfs-d"`` freezes the eta feedback
    loop, ``"gfs-s"`` disables the co-location/eviction-awareness scores,
    ``"gfs-p"`` randomises preemption victims and ``"gfs-sp"`` combines
    the last two; extra keyword overrides win over the variant's.

    Example
    -------
    >>> scheduler = make_ablation("gfs-sp", org_history=trace.org_history)
    >>> scheduler.name
    'GFS-SP'
    """
    key = name.lower()
    if key not in ABLATION_OVERRIDES:
        raise KeyError(f"unknown GFS variant {name!r}; expected one of {sorted(ABLATION_OVERRIDES)}")
    base = config or GFSConfig()
    overrides = dict(ABLATION_OVERRIDES[key])
    overrides.update(config_overrides)
    merged = GFSConfig(**{**base.__dict__, **overrides})
    scheduler = GFSScheduler(merged, org_history=org_history, org_attributes=org_attributes)
    scheduler.name = name.upper() if key != "gfs" else "GFS"
    return scheduler
