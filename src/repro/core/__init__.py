"""The paper's primary contribution: GDE + SQA + PTS assembled into GFS."""

from . import gde, pts, sqa
from .gfs import ABLATION_OVERRIDES, GFSConfig, GFSScheduler, make_ablation

__all__ = [
    "ABLATION_OVERRIDES",
    "GFSConfig",
    "GFSScheduler",
    "gde",
    "make_ablation",
    "pts",
    "sqa",
]
