"""GPU inventory estimation (Section 3.3.1).

The inventory with guaranteed duration ``H`` at guarantee rate ``p`` is the
cluster capacity left over after reserving the aggregated per-organization
peak upper-bound demand:

    f(p, H) = max(0, C - sum_o max(y_hat_{o|p}[1:H]))

(Eq. 9; the paper's ``max(C, ...)`` formulation together with the stated
"set f to 0 when demand saturates the cluster" convention is equivalent to
clamping at zero, which is what this implementation does.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..gde.estimator import GPUDemandEstimator


@dataclass
class InventoryEstimate:
    """Result of one inventory estimation."""

    capacity: float
    aggregated_peak_demand: float
    guarantee_rate: float
    horizon_hours: float
    per_org_peak: Dict[str, float]

    @property
    def available(self) -> float:
        """GPUs that can be promised to spot tasks for the full horizon."""
        return max(0.0, self.capacity - self.aggregated_peak_demand)


class GPUInventoryEstimator:
    """Temporal-spatial aggregation of demand forecasts into spot inventory."""

    def __init__(self, estimator: GPUDemandEstimator, capacity: float):
        if capacity <= 0:
            raise ValueError("cluster capacity must be positive")
        self.estimator = estimator
        self.capacity = float(capacity)

    def estimate(self, start_hour: int, horizon_hours: float, p: float) -> InventoryEstimate:
        """Estimate ``f(p, H)`` starting at ``start_hour`` for ``horizon_hours``."""
        horizon = max(1, int(round(horizon_hours)))
        per_org = self.estimator.peak_demand(start_hour, horizon, p)
        aggregated = float(sum(per_org.values()))
        return InventoryEstimate(
            capacity=self.capacity,
            aggregated_peak_demand=aggregated,
            guarantee_rate=p,
            horizon_hours=horizon_hours,
            per_org_peak=per_org,
        )

    def available_gpus(self, start_hour: int, horizon_hours: float, p: float) -> float:
        """Shorthand for ``estimate(...).available``."""
        return self.estimate(start_hour, horizon_hours, p).available
