"""Spot Quota Allocator (SQA): inventory estimation and dynamic quota control."""

from .inventory import GPUInventoryEstimator, InventoryEstimate
from .quota import QuotaDecision, SQAConfig, SpotQuotaAllocator

__all__ = [
    "GPUInventoryEstimator",
    "InventoryEstimate",
    "QuotaDecision",
    "SQAConfig",
    "SpotQuotaAllocator",
]
