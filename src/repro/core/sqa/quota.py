"""Spot Quota Allocator (Section 3.3).

The SQA converts the GDE's probabilistic demand forecast into a concrete,
time-varying GPU quota for spot tasks:

    Q_H = min(f(p, H) * eta,  S_0 + S_a)            (Eq. 10)

where ``S_0`` is the number of currently idle GPUs and ``S_a`` the GPUs
held by spot tasks whose guaranteed duration extends at least ``H`` hours.
The safety coefficient ``eta`` is adapted by an eviction-aware feedback
rule (Eq. 11): shrink the quota when the observed eviction rate is too
high, grow it when evictions are rare but spot tasks queue for too long.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from .inventory import GPUInventoryEstimator, InventoryEstimate


@dataclass
class SQAConfig:
    """Tunable parameters of the spot quota allocator (Table 4)."""

    #: target guarantee rate p; the tolerated eviction rate is 1 - p
    guarantee_rate: float = 0.9
    #: guaranteed duration H in hours
    guarantee_hours: float = 1.0
    #: initial safety coefficient eta
    initial_eta: float = 1.0
    #: queuing-time threshold theta (seconds) of the low-eviction rule
    queue_threshold: float = 3600.0
    #: bounds keeping eta in a sane range under feedback; the lower bound
    #: prevents a collapse spiral where evictions shrink the quota so far
    #: that evicted tasks can never be re-admitted
    min_eta: float = 0.5
    max_eta: float = 4.0
    #: quota update interval in seconds
    update_interval: float = 300.0


@dataclass
class QuotaDecision:
    """One quota update, kept for introspection and experiments."""

    time: float
    quota: float
    eta: float
    inventory: InventoryEstimate
    idle_gpus: float
    guaranteed_spot_gpus: float
    observed_eviction_rate: float
    max_queue_time: float


class SpotQuotaAllocator:
    """Dynamic spot quota controller with eviction-aware feedback."""

    def __init__(self, inventory: GPUInventoryEstimator, config: Optional[SQAConfig] = None):
        self.inventory = inventory
        self.config = config or SQAConfig()
        self.eta = self.config.initial_eta
        self.current_quota: float = 0.0
        self.history: List[QuotaDecision] = []

    # ------------------------------------------------------------------
    # Feedback rule (Eq. 11)
    # ------------------------------------------------------------------
    def update_eta(self, eviction_rate: float, max_queue_time: float) -> float:
        """Adapt the safety coefficient from recent cluster conditions."""
        cfg = self.config
        tolerated = 1.0 - cfg.guarantee_rate  # the paper's p is a guarantee rate
        if tolerated <= 0:
            tolerated = 1e-6
        if eviction_rate > 1.5 * tolerated:
            self.eta *= tolerated / max(eviction_rate, 1e-9)
        elif eviction_rate < 0.5 * tolerated and max_queue_time > cfg.queue_threshold:
            self.eta *= 1.5 - eviction_rate / tolerated
        self.eta = min(cfg.max_eta, max(cfg.min_eta, self.eta))
        return self.eta

    # ------------------------------------------------------------------
    # Quota computation (Eq. 10)
    # ------------------------------------------------------------------
    def compute_quota(
        self,
        now: float,
        start_hour: int,
        idle_gpus: float,
        guaranteed_spot_gpus: float,
        eviction_rate: float,
        max_queue_time: float,
        adapt: bool = True,
    ) -> float:
        """Recompute the spot quota ``Q_H`` for the next interval."""
        cfg = self.config
        if adapt:
            self.update_eta(eviction_rate, max_queue_time)
        estimate = self.inventory.estimate(start_hour, cfg.guarantee_hours, cfg.guarantee_rate)
        quota = min(estimate.available * self.eta, idle_gpus + guaranteed_spot_gpus)
        self.current_quota = max(0.0, quota)
        self.history.append(
            QuotaDecision(
                time=now,
                quota=self.current_quota,
                eta=self.eta,
                inventory=estimate,
                idle_gpus=idle_gpus,
                guaranteed_spot_gpus=guaranteed_spot_gpus,
                observed_eviction_rate=eviction_rate,
                max_queue_time=max_queue_time,
            )
        )
        return self.current_quota

    # ------------------------------------------------------------------
    def admits(self, requested_gpus: float, spot_gpus_in_use: float) -> bool:
        """Quota check: would admitting ``requested_gpus`` stay within Q_H?"""
        return spot_gpus_in_use + requested_gpus <= self.current_quota + 1e-9
