"""Node scoring criteria of the non-preemptive scheduling policy (Section 3.4.2).

Three criteria are evaluated lexicographically for every candidate node:

* **Score 1 — GPU packing** (Eq. 13): prefer nodes with few idle GPUs to
  limit fragmentation.
* **Score 2 — homogeneous co-location** (Eq. 14): HP tasks prefer nodes
  already running HP tasks, spot tasks prefer nodes running spot tasks.
* **Score 3 — eviction awareness** (Eqs. 15-16): spot tasks avoid nodes
  with a history of evictions, HP tasks are steered towards them; a
  circuit breaker blacklists nodes whose spot score reaches zero.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ...cluster import Node, Task


@dataclass
class ScoringConfig:
    """Parameters of the scoring model (Table 4)."""

    #: weight between short-term and long-term eviction counts (gamma)
    gamma: float = 0.8
    #: penalty intensity m of Eq. (16)
    penalty: float = 3.0
    #: short / long eviction observation windows, in seconds
    short_window: float = 3600.0
    long_window: float = 24 * 3600.0


def packing_score(node: Node, idle_gpus: float) -> float:
    """Score 1 (Eq. 13): higher for nodes with fewer idle GPUs."""
    if node.total_gpus <= 0:
        return 0.0
    return 1.0 - idle_gpus / node.total_gpus


def colocation_score(node: Node, task: Task) -> float:
    """Score 2 (Eq. 14): same-type GPU share on the node."""
    if node.total_gpus <= 0:
        return 0.0
    same_type = node.hp_gpus if task.is_hp else node.spot_gpus
    return same_type / node.total_gpus


def weighted_eviction_rate(node: Node, now: float, config: ScoringConfig) -> float:
    """Weighted node eviction measure ``e_bar`` of Eq. (15)."""
    short = node.eviction_count_since(now, config.short_window)
    long = node.eviction_count_since(now, config.long_window)
    long_hours = config.long_window / 3600.0
    return config.gamma * short + (1.0 - config.gamma) * long / long_hours


def eviction_awareness_score(node: Node, task: Task, now: float, config: ScoringConfig) -> float:
    """Score 3 (Eq. 16) with asymmetric penalties for HP and spot tasks."""
    e_bar = weighted_eviction_rate(node, now, config)
    raw = 0.01 * config.penalty * e_bar
    if task.is_hp:
        return min(raw, 1.0)
    return max(1.0 - raw, 0.0)


def circuit_breaker_active(node: Node, now: float, config: ScoringConfig) -> bool:
    """Whether the node is blacklisted for spot scheduling (Score 3 == 0)."""
    e_bar = weighted_eviction_rate(node, now, config)
    return 1.0 - 0.01 * config.penalty * e_bar <= 0.0


def score_tuple(
    node: Node,
    idle_gpus: float,
    task: Task,
    now: float,
    config: ScoringConfig,
    use_colocation: bool = True,
    use_eviction_awareness: bool = True,
) -> Tuple[float, float, float]:
    """The <Score1, Score2, Score3> tuple used to rank candidate nodes."""
    s1 = packing_score(node, idle_gpus)
    s2 = colocation_score(node, task) if use_colocation else 0.0
    s3 = eviction_awareness_score(node, task, now, config) if use_eviction_awareness else 0.0
    return (s1, s2, s3)
