"""Preemptive Task Scheduler (PTS): scoring, Algorithms 1-3."""

from .nonpreemptive import non_preemptive_placement
from .preemptive import (
    PreemptionCandidate,
    node_preemption_plan,
    preemption_cost,
    preemptive_placement,
)
from .scheduler import PTSConfig, PreemptiveTaskScheduler
from .scoring import (
    ScoringConfig,
    circuit_breaker_active,
    colocation_score,
    eviction_awareness_score,
    packing_score,
    score_tuple,
    weighted_eviction_rate,
)

__all__ = [
    "PTSConfig",
    "PreemptionCandidate",
    "PreemptiveTaskScheduler",
    "ScoringConfig",
    "circuit_breaker_active",
    "colocation_score",
    "eviction_awareness_score",
    "node_preemption_plan",
    "non_preemptive_placement",
    "packing_score",
    "preemption_cost",
    "preemptive_placement",
    "score_tuple",
    "weighted_eviction_rate",
]
