"""Non-preemptive scheduling (Algorithm 1).

Pods are placed one at a time.  For every pod the candidate set is filtered
by resource feasibility (and, for spot tasks, by the eviction circuit
breaker), then ranked by the lexicographic score tuple
``<Score1, Score2, Score3>``; the top node receives the pod.  If any pod
cannot be placed the whole task fails (gang semantics) and no state is
mutated — the simulator only materialises returned decisions.

With a :class:`~repro.schedulers.placement.PlacementContext` the candidate
set comes from the cluster's capacity index (only nodes that can host at
least one pod right now) instead of a scan over every model-compatible
node; a node that cannot host a pod at pass time can never become feasible
during the task's own greedy loop, so the restriction is exact.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ...cluster import Node, PodPlacement, Task
from ...schedulers.placement import NodeView, PlacementContext
from .scoring import ScoringConfig, circuit_breaker_active, score_tuple


def non_preemptive_placement(
    task: Task,
    nodes: Optional[Sequence[Node]],
    now: float,
    config: ScoringConfig,
    use_colocation: bool = True,
    use_eviction_awareness: bool = True,
    views: Optional[Dict[str, NodeView]] = None,
    ctx: Optional[PlacementContext] = None,
) -> Optional[List[PodPlacement]]:
    """Algorithm 1: place every pod of ``task`` without preempting anyone.

    Pass either ``nodes`` (index-free scan, used by direct callers and
    tests) or ``ctx`` (capacity-indexed candidates and shared views).
    """
    if ctx is not None:
        view_map = ctx.clone_views(ctx.view_fit_candidates(task))
    else:
        candidates = [
            n for n in (nodes or ()) if task.gpu_model is None or n.gpu_model is task.gpu_model
        ]
        if not candidates:
            return None
        if views is None:
            view_map = {n.node_id: NodeView.from_node(n) for n in candidates}
        else:
            view_map = {
                n.node_id: views[n.node_id].clone() for n in candidates if n.node_id in views
            }
    if not view_map:
        return None

    placements: List[PodPlacement] = []
    for _ in range(task.num_pods):
        feasible: List[NodeView] = []
        for view in view_map.values():
            if not view.can_fit_pod(task.gpus_per_pod):
                continue
            if (
                task.is_spot
                and use_eviction_awareness
                and task.gpus_per_pod >= 1.0
                and circuit_breaker_active(view.node, now, config)
            ):
                continue
            feasible.append(view)
        if not feasible:
            return None
        chosen = max(
            feasible,
            key=lambda v: (
                score_tuple(
                    v.node,
                    v.idle_gpus if task.gpus_per_pod >= 1.0 else v.free_capacity,
                    task,
                    now,
                    config,
                    use_colocation=use_colocation,
                    use_eviction_awareness=use_eviction_awareness,
                ),
                v.node.node_id,
            ),
        )
        chosen.assign_pod(task.gpus_per_pod)
        placements.append(
            PodPlacement(node_id=chosen.node.node_id, gpu_indices=(), fraction=task.gpus_per_pod)
        )
    return placements
