"""Preemptive Task Scheduler (Algorithm 3).

The PTS converts quota-level decisions into concrete placements: it first
attempts non-preemptive scheduling (Algorithm 1) for any task and, for HP
tasks only, falls back to preemptive scheduling (Algorithm 2).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional

from ...cluster import Cluster, SchedulingDecision, Task
from ...schedulers.placement import PlacementContext
from .nonpreemptive import non_preemptive_placement
from .preemptive import preemptive_placement
from .scoring import ScoringConfig


@dataclass
class PTSConfig:
    """Parameters of the preemptive task scheduler (Table 4)."""

    #: weighting factor beta of the preemption cost (Eq. 19)
    beta: float = 0.5
    scoring: ScoringConfig = field(default_factory=ScoringConfig)
    #: ablation switches
    use_colocation: bool = True
    use_eviction_awareness: bool = True
    random_preemption: bool = False
    seed: int = 0


class PreemptiveTaskScheduler:
    """Placement engine used by :class:`repro.core.gfs.GFSScheduler`."""

    def __init__(self, config: Optional[PTSConfig] = None):
        self.config = config or PTSConfig()
        self._rng = random.Random(self.config.seed)

    # ------------------------------------------------------------------
    def schedule(
        self,
        task: Task,
        cluster: Cluster,
        now: float,
        total_gpu_seconds: float,
        ctx: Optional[PlacementContext] = None,
    ) -> Optional[SchedulingDecision]:
        """Algorithm 3: non-preemptive first, preemptive fallback for HP tasks."""
        cfg = self.config
        if ctx is None:
            ctx = PlacementContext(cluster)
        # Fast capacity gate: the task's total demand exceeding the free
        # capacity (an O(1) cached aggregate) makes non-preemptive placement
        # impossible — skip the per-node scoring scan entirely.  The margin
        # stays above the card-level fit EPSILON so the gate can only skip
        # genuinely infeasible attempts.
        placements = None
        if task.total_gpus <= cluster.idle_gpus(task.gpu_model) + 1e-6:
            if not ctx.infeasible(task, "pts-np"):
                placements = non_preemptive_placement(
                    task,
                    None,
                    now,
                    cfg.scoring,
                    use_colocation=cfg.use_colocation,
                    use_eviction_awareness=cfg.use_eviction_awareness,
                    ctx=ctx,
                )
                if placements is None:
                    ctx.note_failure(task, "pts-np")
        if placements is not None:
            return SchedulingDecision(placements=placements)
        if not task.is_hp:
            return None
        # The failed-shape memo must not swallow the rng draws of the
        # random-preemption ablation: a skipped search would desynchronise
        # the rng stream from the unmemoised run.
        memo = not cfg.random_preemption
        if memo and ctx.infeasible(task, "pts-preempt", track_spot=True):
            return None
        result = preemptive_placement(
            task,
            None,
            cluster,
            now,
            beta=cfg.beta,
            total_gpu_seconds=total_gpu_seconds,
            random_selection=cfg.random_preemption,
            rng=self._rng,
            ctx=ctx,
        )
        if result is None:
            if memo:
                ctx.note_failure(task, "pts-preempt", track_spot=True)
            return None
        placements, victim_ids = result
        return SchedulingDecision(placements=placements, preempted_task_ids=victim_ids)

    # ------------------------------------------------------------------
    def sort_queue(self, pending: List[Task], now: float) -> List[Task]:
        """Queue ordering: HP first, larger requests first, then FCFS."""
        return sorted(
            pending,
            key=lambda t: (
                not t.is_hp,
                -(t.num_pods * t.gpus_per_pod),
                -t.num_pods,
                t.submit_time,
                t.task_id,
            ),
        )
