"""Preemptive scheduling (Algorithm 2).

When an HP task cannot be placed without displacing anyone, the scheduler
evaluates, per candidate node, the cheapest set of spot tasks whose
eviction frees enough GPUs for one pod, and places pods on the nodes with
the lowest preemption cost (Eq. 19):

    cost(n_k) = (F + |T_k|) / (G + F + |T_k|)
              + beta * sum(waste(T_k)) / (total GPU-seconds)

where ``G``/``F`` are the historical numbers of successful/evicted spot
runs, ``|T_k|`` the number of tasks preempted on the node, and waste is the
un-checkpointed GPU-time lost by each victim (Eq. 17).

With a :class:`~repro.schedulers.placement.PlacementContext` the candidate
set is the union of currently feasible nodes and nodes holding spot
capacity — any other node can never receive a pod, with or without
preemption — enumerated in canonical cluster order so victim choices (and
the GFS-p random draw sequence) match the pre-refactor full scan exactly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Set, Tuple

from ...cluster import Cluster, Node, PodPlacement, Task
from ...schedulers.placement import NodeView, PlacementContext, spot_tasks_on_node


@dataclass
class PreemptionCandidate:
    """A node together with the spot tasks that would be evicted on it."""

    node: Node
    victims: List[Task]
    cost: float


def node_preemption_plan(
    node: Node,
    view: NodeView,
    task: Task,
    cluster: Cluster,
    now: float,
    already_victims: Set[str],
) -> Optional[List[Task]]:
    """Smallest-waste victim set freeing one pod of ``task`` on ``node``.

    The paper sorts candidates by descending waste and removes the most
    wasteful tasks from the preemption set while the pod still fits; this
    is equivalent to greedily adding victims in ascending-waste order until
    the pod fits, which is what this function does.
    """
    if view.can_fit_pod(task.gpus_per_pod):
        return []
    victims: List[Task] = []
    candidates = [
        t
        for t in spot_tasks_on_node(node, cluster)
        if t.task_id not in already_victims and t.task_id not in view.preempted
    ]
    candidates.sort(key=lambda t: t.preemption_waste(now))
    probe = view.clone()
    for candidate in candidates:
        probe.virtually_preempt(candidate)
        victims.append(candidate)
        if probe.can_fit_pod(task.gpus_per_pod):
            return victims
    return None


def preemption_cost(
    victims: Sequence[Task],
    cluster: Cluster,
    now: float,
    beta: float,
    total_gpu_seconds: float,
) -> float:
    """Eq. (19): eviction-rate impact plus usage impact of a victim set."""
    successes = cluster.successful_spot_runs
    failures = cluster.evicted_spot_runs
    k = len(victims)
    eviction_impact = (failures + k) / max(1.0, successes + failures + k)
    waste = sum(t.preemption_waste(now) for t in victims)
    usage_impact = beta * waste / max(1.0, total_gpu_seconds)
    return eviction_impact + usage_impact


def preemptive_placement(
    task: Task,
    nodes: Optional[Sequence[Node]],
    cluster: Cluster,
    now: float,
    beta: float,
    total_gpu_seconds: float,
    random_selection: bool = False,
    rng: Optional[random.Random] = None,
    ctx: Optional[PlacementContext] = None,
) -> Optional[Tuple[List[PodPlacement], List[str]]]:
    """Algorithm 2: place every pod of an HP task, evicting cheap spot tasks.

    Returns ``(placements, victim task ids)`` or ``None`` when even full
    preemption cannot satisfy the task.  With ``random_selection`` the
    cost model is ignored and victims/nodes are picked at random (the
    GFS-p ablation).  Pass either ``nodes`` (index-free scan) or ``ctx``
    (capacity-indexed candidates and shared views).
    """
    if not task.is_hp:
        raise ValueError("preemptive scheduling is reserved for HP tasks")
    if ctx is not None:
        candidates = ctx.preemption_candidates(task)
        views = ctx.clone_views(candidates)
    else:
        candidates = [
            n for n in (nodes or ()) if task.gpu_model is None or n.gpu_model is task.gpu_model
        ]
        views = {n.node_id: NodeView.from_node(n) for n in candidates}
    if not candidates:
        return None
    rng = rng or random.Random(0)
    placements: List[PodPlacement] = []
    all_victims: List[Task] = []
    victim_ids: Set[str] = set()

    for _ in range(task.num_pods):
        plans: List[PreemptionCandidate] = []
        for node in candidates:
            view = views[node.node_id]
            victims = node_preemption_plan(node, view, task, cluster, now, victim_ids)
            if victims is None:
                continue
            cost = preemption_cost(victims, cluster, now, beta, total_gpu_seconds)
            plans.append(PreemptionCandidate(node=node, victims=victims, cost=cost))
        if not plans:
            return None
        if random_selection:
            chosen = rng.choice(plans)
        else:
            chosen = min(plans, key=lambda p: (p.cost, p.node.node_id))
        view = views[chosen.node.node_id]
        for victim in chosen.victims:
            # The victim may span several nodes; free it everywhere so later
            # pods see the reclaimed capacity.
            for pod in victim.placements:
                victim_view = views.get(pod.node_id)
                if victim_view is not None and victim.task_id not in victim_view.preempted:
                    victim_view.virtually_preempt(victim)
            victim_ids.add(victim.task_id)
            all_victims.append(victim)
        view.assign_pod(task.gpus_per_pod)
        placements.append(
            PodPlacement(node_id=chosen.node.node_id, gpu_indices=(), fraction=task.gpus_per_pod)
        )
    return placements, [t.task_id for t in all_victims]
