"""Online demand forecasters used inside the scheduling loop.

The full OrgLinear model (``orglinear.py``) is what the forecasting
experiments evaluate; inside a running scheduler the GDE needs something
that can be queried thousands of times per simulated day and updated with
freshly observed demand.  All online forecasters implement the same small
interface:

``fit(history)``
    history: organization name -> hourly demand array (hour 0 = first hour).
``observe(org, hour_index, value)``
    Append/overwrite one observed demand point.
``predict(org, start_hour, horizon) -> (mu, sigma)``
    Gaussian forecast for ``horizon`` hours starting at ``start_hour``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

HOURS_PER_WEEK = 168


class OnlineForecaster(ABC):
    """Interface of forecasters pluggable into the GPU demand estimator."""

    def __init__(self) -> None:
        self.history: Dict[str, List[float]] = {}

    # ------------------------------------------------------------------
    def fit(self, history: Mapping[str, np.ndarray]) -> "OnlineForecaster":
        self.history = {org: list(map(float, series)) for org, series in history.items()}
        self._refit()
        return self

    def observe(self, org: str, hour_index: int, value: float) -> None:
        """Record the observed demand of ``org`` at ``hour_index``."""
        series = self.history.setdefault(org, [])
        if hour_index < len(series):
            series[hour_index] = float(value)
            return
        last = series[-1] if series else float(value)
        while len(series) < hour_index:
            series.append(last)
        series.append(float(value))

    def organizations(self) -> List[str]:
        return list(self.history)

    # ------------------------------------------------------------------
    def _refit(self) -> None:
        """Hook for forecasters that precompute statistics after ``fit``."""

    @abstractmethod
    def predict(self, org: str, start_hour: int, horizon: int) -> Tuple[np.ndarray, np.ndarray]:
        """Gaussian (mu, sigma) forecast for the next ``horizon`` hours."""


class SeasonalQuantileForecaster(OnlineForecaster):
    """Hour-of-week seasonal profile with empirical dispersion.

    For every organization the forecaster keeps the mean and standard
    deviation of demand per hour-of-week slot, blended with a trailing
    short-term level so that recent shifts are tracked.  This is the
    default GDE predictor inside simulations: probabilistic, adaptive and
    cheap enough to query at every quota update.
    """

    name = "SeasonalQuantile"

    def __init__(self, period: int = HOURS_PER_WEEK, recent_hours: int = 12, blend: float = 0.1):
        super().__init__()
        self.period = period
        self.recent_hours = recent_hours
        self.blend = blend

    def _slot_stats(self, org: str) -> Tuple[np.ndarray, np.ndarray]:
        series = np.asarray(self.history.get(org, []), dtype=float)
        means = np.zeros(self.period)
        stds = np.zeros(self.period)
        if series.size == 0:
            return means, stds
        for slot in range(self.period):
            values = series[slot :: self.period] if slot < series.size else series[-1:]
            if values.size == 0:
                values = series[-1:]
            means[slot] = float(values.mean())
            stds[slot] = float(values.std()) if values.size > 1 else float(series.std())
        return means, stds

    def predict(self, org: str, start_hour: int, horizon: int) -> Tuple[np.ndarray, np.ndarray]:
        series = np.asarray(self.history.get(org, []), dtype=float)
        if series.size == 0:
            return np.zeros(horizon), np.ones(horizon)
        means, stds = self._slot_stats(org)
        recent = series[-self.recent_hours :]
        recent_level = float(recent.mean())
        slots = [(start_hour + h) % self.period for h in range(horizon)]
        seasonal = means[slots]
        mu = (1.0 - self.blend) * seasonal + self.blend * recent_level
        sigma = np.maximum(stds[slots], 1e-3)
        return mu, sigma


class PreviousWeekPeakForecaster(OnlineForecaster):
    """Naive conservative predictor: the previous week's peak, everywhere.

    This reproduces the production heuristic used before GFS and serves as
    the predictor of the GFS-e ablation.  The forecast is a point estimate
    (sigma = 0), so the ICDF upper bound coincides with the peak itself.
    """

    name = "PrevWeekPeak"

    def __init__(self, week_hours: int = HOURS_PER_WEEK):
        super().__init__()
        self.week_hours = week_hours

    def predict(self, org: str, start_hour: int, horizon: int) -> Tuple[np.ndarray, np.ndarray]:
        series = np.asarray(self.history.get(org, []), dtype=float)
        if series.size == 0:
            return np.zeros(horizon), np.zeros(horizon)
        window = series[-self.week_hours :]
        peak = float(window.max())
        return np.full(horizon, peak), np.zeros(horizon)


class OrgLinearOnlineForecaster(OnlineForecaster):
    """OrgLinear wrapped for online use inside the scheduler.

    The model is trained once on the provided history (optionally refitted
    every ``refit_interval`` observed hours) and queried with the trailing
    input window.
    """

    name = "OrgLinearOnline"

    def __init__(self, config=None, attributes: Optional[Mapping[str, Mapping[str, str]]] = None):
        super().__init__()
        from .orglinear import OrgLinear, OrgLinearConfig

        self._config = config or OrgLinearConfig(epochs=30)
        self._model_cls = OrgLinear
        self.model: Optional[OrgLinear] = None
        self.attributes = dict(attributes or {})
        self._dataset = None

    def _refit(self) -> None:
        from .dataset import build_window_dataset

        attrs = {
            org: self.attributes.get(org, {"organization": org})
            for org in self.history
        }
        history = {org: np.asarray(series, dtype=float) for org, series in self.history.items()}
        usable = {
            org: series
            for org, series in history.items()
            if series.size >= self._config.input_length + self._config.horizon
        }
        if not usable:
            self.model = None
            return
        self._dataset = build_window_dataset(
            usable,
            attrs,
            input_length=self._config.input_length,
            horizon=self._config.horizon,
            stride=6,
        )
        self.model = self._model_cls(self._config).fit(self._dataset)

    def predict(self, org: str, start_hour: int, horizon: int) -> Tuple[np.ndarray, np.ndarray]:
        series = np.asarray(self.history.get(org, []), dtype=float)
        if self.model is None or self._dataset is None or series.size < self._config.input_length:
            # Fallback: seasonal statistics when the model cannot run yet.
            fallback = SeasonalQuantileForecaster()
            fallback.history = {org: list(series)}
            return fallback.predict(org, start_hour, horizon)
        from .dataset import ForecastSample, WindowDataset

        window = series[-self._config.input_length :]
        sample = ForecastSample(
            org=org,
            history=window,
            target=np.zeros(self._config.horizon),
            start_hour=start_hour,
            business_index=self._dataset.vocabulary.encode(
                self.attributes.get(org, {"organization": org})
            ),
        )
        query = WindowDataset(
            input_length=self._config.input_length,
            horizon=self._config.horizon,
            samples=[sample],
            vocabulary=self._dataset.vocabulary,
            norm=dict(self._dataset.norm),
        )
        mu, sigma = self.model.predict(query)
        return mu[0][:horizon], sigma[0][:horizon]
