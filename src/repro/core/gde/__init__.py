"""GPU Demand Estimator (GDE): OrgLinear, forecasting baselines and the
online estimator used inside the scheduler."""

from .baselines import (
    AttentionLiteConfig,
    AutoformerLiteModel,
    DLinearConfig,
    DLinearModel,
    DeepARLiteConfig,
    DeepARLiteModel,
    FEDformerLiteModel,
    FORECASTING_BASELINES,
    InformerLiteModel,
    PreviousWeekPeakModel,
    SeasonalNaiveModel,
    TransformerLiteModel,
)
from .dataset import ForecastSample, WindowDataset, build_window_dataset, train_test_split_dataset
from .decomposition import decompose, decompose_batch, moving_average
from .estimator import GPUDemandEstimator, normal_quantile
from .features import BusinessVocabulary, TemporalFeature, temporal_features
from .forecaster import (
    OnlineForecaster,
    OrgLinearOnlineForecaster,
    PreviousWeekPeakForecaster,
    SeasonalQuantileForecaster,
)
from .metrics import ForecastEvaluation, evaluate_forecast, mae, mape, maqe, mse, normal_icdf, rmse
from .orglinear import OrgLinear, OrgLinearConfig
from .training import AdamOptimizer, gaussian_nll, gaussian_nll_grads, softmax, softplus

__all__ = [
    "AdamOptimizer",
    "AttentionLiteConfig",
    "AutoformerLiteModel",
    "BusinessVocabulary",
    "DLinearConfig",
    "DLinearModel",
    "DeepARLiteConfig",
    "DeepARLiteModel",
    "FEDformerLiteModel",
    "FORECASTING_BASELINES",
    "ForecastEvaluation",
    "ForecastSample",
    "GPUDemandEstimator",
    "InformerLiteModel",
    "OnlineForecaster",
    "OrgLinear",
    "OrgLinearConfig",
    "OrgLinearOnlineForecaster",
    "PreviousWeekPeakForecaster",
    "PreviousWeekPeakModel",
    "SeasonalNaiveModel",
    "SeasonalQuantileForecaster",
    "TemporalFeature",
    "TransformerLiteModel",
    "WindowDataset",
    "build_window_dataset",
    "decompose",
    "decompose_batch",
    "evaluate_forecast",
    "gaussian_nll",
    "gaussian_nll_grads",
    "mae",
    "mape",
    "maqe",
    "moving_average",
    "mse",
    "normal_icdf",
    "normal_quantile",
    "rmse",
    "softmax",
    "softplus",
    "temporal_features",
    "train_test_split_dataset",
]
