"""Training utilities shared by the NumPy forecasting models: Adam and
mini-batch iteration."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Tuple

import numpy as np


@dataclass
class AdamOptimizer:
    """A straightforward Adam implementation over a dict of parameters."""

    learning_rate: float = 1e-2
    beta1: float = 0.9
    beta2: float = 0.999
    epsilon: float = 1e-8
    _m: Dict[str, np.ndarray] = field(default_factory=dict)
    _v: Dict[str, np.ndarray] = field(default_factory=dict)
    _step: int = 0

    def update(self, params: Dict[str, np.ndarray], grads: Dict[str, np.ndarray]) -> None:
        """Apply one Adam step in place."""
        self._step += 1
        for key, grad in grads.items():
            if key not in params:
                raise KeyError(f"gradient for unknown parameter {key!r}")
            if key not in self._m:
                self._m[key] = np.zeros_like(params[key])
                self._v[key] = np.zeros_like(params[key])
            self._m[key] = self.beta1 * self._m[key] + (1 - self.beta1) * grad
            self._v[key] = self.beta2 * self._v[key] + (1 - self.beta2) * grad**2
            m_hat = self._m[key] / (1 - self.beta1**self._step)
            v_hat = self._v[key] / (1 - self.beta2**self._step)
            params[key] -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)


def minibatches(
    n: int, batch_size: int, rng: np.random.Generator, shuffle: bool = True
) -> Iterator[np.ndarray]:
    """Yield index arrays covering ``range(n)`` in batches."""
    order = rng.permutation(n) if shuffle else np.arange(n)
    for start in range(0, n, batch_size):
        yield order[start : start + batch_size]


def gaussian_nll(y: np.ndarray, mu: np.ndarray, sigma: np.ndarray) -> float:
    """Mean Gaussian negative log-likelihood (Eq. 8, up to a constant)."""
    sigma = np.maximum(sigma, 1e-6)
    return float(np.mean(0.5 * np.log(2 * np.pi) + np.log(sigma) + 0.5 * ((y - mu) / sigma) ** 2))


def gaussian_nll_grads(
    y: np.ndarray, mu: np.ndarray, sigma: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Gradients of the mean Gaussian NLL w.r.t. ``mu`` and ``sigma``."""
    sigma = np.maximum(sigma, 1e-6)
    count = y.size
    dmu = (mu - y) / sigma**2 / count
    dsigma = (1.0 / sigma - (y - mu) ** 2 / sigma**3) / count
    return dmu, dsigma


def softplus(x: np.ndarray) -> np.ndarray:
    """Numerically stable softplus (Eq. 7's variance stabilisation)."""
    return np.logaddexp(0.0, x)


def softplus_grad(x: np.ndarray) -> np.ndarray:
    """Derivative of softplus: the logistic sigmoid."""
    return 1.0 / (1.0 + np.exp(-np.clip(x, -60, 60)))


def softmax(x: np.ndarray) -> np.ndarray:
    shifted = x - np.max(x)
    exp = np.exp(shifted)
    return exp / exp.sum()
