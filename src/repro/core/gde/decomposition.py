"""Adaptive temporal pattern decomposition (Section 3.2.1).

OrgLinear separates a demand series into a trend component (moving average
with reflection padding, Eq. 1) and a cyclical component (the residual,
Eq. 2).  The same decomposition is reused by the DLinear baseline.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def moving_average(series: np.ndarray, kernel_size: int) -> np.ndarray:
    """Moving average with reflection padding (the K^d_MA kernel of Eq. 1).

    Reflection padding keeps the smoothed series the same length as the
    input and reduces boundary effects at both ends.
    """
    series = np.asarray(series, dtype=float)
    if series.ndim != 1:
        raise ValueError("moving_average expects a 1-D series")
    if kernel_size < 1:
        raise ValueError("kernel_size must be >= 1")
    if kernel_size == 1 or series.size == 0:
        return series.copy()
    kernel_size = min(kernel_size, max(1, series.size))
    left = kernel_size // 2
    right = kernel_size - 1 - left
    padded = np.concatenate(
        [
            series[1 : left + 1][::-1] if left > 0 else series[:0],
            series,
            series[-right - 1 : -1][::-1] if right > 0 else series[:0],
        ]
    )
    # If the series is shorter than the pad we may come up short; fall back
    # to edge padding for the remainder.
    deficit = series.size + kernel_size - 1 - padded.size
    if deficit > 0:
        padded = np.concatenate([np.full(deficit, series[0]), padded])
    window = np.ones(kernel_size) / kernel_size
    smoothed = np.convolve(padded, window, mode="valid")
    return smoothed[: series.size]


def decompose(series: np.ndarray, kernel_size: int = 25) -> Tuple[np.ndarray, np.ndarray]:
    """Split ``series`` into ``(trend, cyclical)`` components (Eqs. 1-2)."""
    trend = moving_average(series, kernel_size)
    cyclical = np.asarray(series, dtype=float) - trend
    return trend, cyclical


def decompose_batch(batch: np.ndarray, kernel_size: int = 25) -> Tuple[np.ndarray, np.ndarray]:
    """Decompose every row of a 2-D batch of series."""
    batch = np.asarray(batch, dtype=float)
    if batch.ndim != 2:
        raise ValueError("decompose_batch expects a 2-D array (samples x length)")
    trends = np.empty_like(batch)
    for i in range(batch.shape[0]):
        trends[i] = moving_average(batch[i], kernel_size)
    return trends, batch - trends
