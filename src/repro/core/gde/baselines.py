"""Forecasting baselines compared against OrgLinear (Figure 10, Table 7).

The paper compares OrgLinear against four Transformer-family models
(Transformer, Informer, Autoformer, FEDformer), DLinear and DeepAR.  No
deep-learning framework is available offline, so the baselines are built
as follows (recorded in DESIGN.md / EXPERIMENTS.md):

* **DLinear** — faithful NumPy reimplementation (trend/cyclical
  decomposition + two linear heads, MSE loss, gradient training).
* **DeepAR-lite** — a probabilistic recurrent model with a fixed random
  (echo-state) recurrent encoder and a Gaussian readout trained by NLL.
* **Transformer/Informer/Autoformer/FEDformer-lite** — single-layer
  attention encoders with fixed random projections and a ridge-regression
  readout; each variant keeps the family's signature mechanism (full
  attention, prob-sparse top-u queries, autocorrelation aggregation,
  Fourier-mode filtering).

All baselines expose the same ``fit`` / ``predict`` interface as OrgLinear
so the experiment harness can sweep over them uniformly.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from .dataset import WindowDataset
from .decomposition import decompose_batch
from .training import AdamOptimizer, minibatches


# ----------------------------------------------------------------------
# Shared helpers
# ----------------------------------------------------------------------
def _normalised_arrays(dataset: WindowDataset) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    arrays = dataset.arrays()
    orgs = arrays["orgs"]
    X = np.stack([dataset.normalise_value(o, x) for o, x in zip(orgs, arrays["X"])])
    Y = np.stack([dataset.normalise_value(o, y) for o, y in zip(orgs, arrays["Y"])])
    return X, Y, orgs


def _denormalise(dataset: WindowDataset, orgs: np.ndarray, mu_n: np.ndarray, sigma_n: np.ndarray):
    mu = np.stack([dataset.denormalise_mean(o, m) for o, m in zip(orgs, mu_n)])
    sigma = np.stack([dataset.denormalise_std(o, s) for o, s in zip(orgs, sigma_n)])
    return mu, np.maximum(sigma, 1e-6)


def _ridge_fit(features: np.ndarray, targets: np.ndarray, l2: float = 1e-2) -> np.ndarray:
    """Closed-form ridge regression returning weights of shape (D+1, H)."""
    ones = np.ones((features.shape[0], 1))
    A = np.concatenate([features, ones], axis=1)
    gram = A.T @ A + l2 * np.eye(A.shape[1])
    return np.linalg.solve(gram, A.T @ targets)


def _ridge_predict(features: np.ndarray, weights: np.ndarray) -> np.ndarray:
    ones = np.ones((features.shape[0], 1))
    return np.concatenate([features, ones], axis=1) @ weights


# ----------------------------------------------------------------------
# Naive predictors (also used by the GFS-e ablation)
# ----------------------------------------------------------------------
class PreviousWeekPeakModel:
    """Predict the previous week's peak demand for every future hour.

    This is the naive conservative estimator the production cluster used
    before GFS and the predictor behind the GFS-e ablation.
    """

    name = "PrevWeekPeak"

    def __init__(self, week_hours: int = 168):
        self.week_hours = week_hours
        self.training_time = 0.0
        self._residual_std = 1.0

    def fit(self, dataset: WindowDataset) -> "PreviousWeekPeakModel":
        start = time.perf_counter()
        X, Y, _ = _normalised_arrays(dataset)
        peaks = X[:, -self.week_hours :].max(axis=1, keepdims=True)
        residual = Y - peaks
        self._residual_std = float(residual.std()) or 1.0
        self.training_time = time.perf_counter() - start
        return self

    def predict(self, dataset: WindowDataset) -> Tuple[np.ndarray, np.ndarray]:
        X, Y, orgs = _normalised_arrays(dataset)
        peaks = X[:, -self.week_hours :].max(axis=1, keepdims=True)
        mu_n = np.repeat(peaks, Y.shape[1], axis=1)
        sigma_n = np.full_like(mu_n, self._residual_std)
        return _denormalise(dataset, orgs, mu_n, sigma_n)


class SeasonalNaiveModel:
    """Repeat the value observed one seasonal period (default: a week) ago."""

    name = "SeasonalNaive"

    def __init__(self, period: int = 168):
        self.period = period
        self.training_time = 0.0
        self._residual_std = 1.0

    def fit(self, dataset: WindowDataset) -> "SeasonalNaiveModel":
        start = time.perf_counter()
        mu_n, Y = self._roll(dataset)
        self._residual_std = float((Y - mu_n).std()) or 1.0
        self.training_time = time.perf_counter() - start
        return self

    def _roll(self, dataset: WindowDataset) -> Tuple[np.ndarray, np.ndarray]:
        X, Y, _ = _normalised_arrays(dataset)
        horizon = Y.shape[1]
        period = min(self.period, X.shape[1])
        base = X[:, -period:]
        reps = int(np.ceil(horizon / period))
        mu_n = np.tile(base, (1, reps))[:, :horizon]
        return mu_n, Y

    def predict(self, dataset: WindowDataset) -> Tuple[np.ndarray, np.ndarray]:
        mu_n, _ = self._roll(dataset)
        _, _, orgs = _normalised_arrays(dataset)
        sigma_n = np.full_like(mu_n, self._residual_std)
        return _denormalise(dataset, orgs, mu_n, sigma_n)


# ----------------------------------------------------------------------
# DLinear
# ----------------------------------------------------------------------
@dataclass
class DLinearConfig:
    decomposition_kernel: int = 25
    learning_rate: float = 5e-3
    epochs: int = 60
    batch_size: int = 64
    seed: int = 0


class DLinearModel:
    """DLinear: decomposition + two linear heads trained with MSE."""

    name = "DLinear"

    def __init__(self, config: Optional[DLinearConfig] = None):
        self.config = config or DLinearConfig()
        self.training_time = 0.0
        self._params: Dict[str, np.ndarray] = {}
        self._residual_std = 1.0
        self._rng = np.random.default_rng(self.config.seed)

    def _forward(self, X: np.ndarray) -> np.ndarray:
        trend, cyclical = decompose_batch(X, self.config.decomposition_kernel)
        p = self._params
        return cyclical @ p["W_c"] + p["b_c"] + trend @ p["W_t"] + p["b_t"]

    def fit(self, dataset: WindowDataset) -> "DLinearModel":
        start = time.perf_counter()
        cfg = self.config
        X, Y, _ = _normalised_arrays(dataset)
        L, H = X.shape[1], Y.shape[1]
        scale = 1.0 / np.sqrt(L)
        self._params = {
            "W_c": self._rng.normal(0, scale, size=(L, H)),
            "b_c": np.zeros(H),
            "W_t": self._rng.normal(0, scale, size=(L, H)),
            "b_t": np.zeros(H),
        }
        optimiser = AdamOptimizer(learning_rate=cfg.learning_rate)
        trend, cyclical = decompose_batch(X, cfg.decomposition_kernel)
        for _ in range(cfg.epochs):
            for idx in minibatches(len(Y), cfg.batch_size, self._rng):
                p = self._params
                pred = cyclical[idx] @ p["W_c"] + p["b_c"] + trend[idx] @ p["W_t"] + p["b_t"]
                diff = (pred - Y[idx]) / Y[idx].size
                grads = {
                    "W_c": cyclical[idx].T @ (2 * diff),
                    "b_c": 2 * diff.sum(axis=0),
                    "W_t": trend[idx].T @ (2 * diff),
                    "b_t": 2 * diff.sum(axis=0),
                }
                optimiser.update(self._params, grads)
        residual = self._forward(X) - Y
        self._residual_std = float(residual.std()) or 1.0
        self.training_time = time.perf_counter() - start
        return self

    def predict(self, dataset: WindowDataset) -> Tuple[np.ndarray, np.ndarray]:
        X, _, orgs = _normalised_arrays(dataset)
        mu_n = self._forward(X)
        sigma_n = np.full_like(mu_n, self._residual_std)
        return _denormalise(dataset, orgs, mu_n, sigma_n)


# ----------------------------------------------------------------------
# DeepAR-lite
# ----------------------------------------------------------------------
@dataclass
class DeepARLiteConfig:
    hidden_size: int = 64
    spectral_radius: float = 0.9
    learning_rate: float = 1e-2
    epochs: int = 80
    batch_size: int = 64
    min_sigma: float = 1e-3
    seed: int = 0


class DeepARLiteModel:
    """Probabilistic recurrent forecaster with an echo-state encoder.

    The recurrent weights are fixed (echo-state network style); only the
    Gaussian readout (mean and log-variance heads) is trained, by gradient
    descent on the Gaussian NLL, mirroring DeepAR's probabilistic output.
    """

    name = "DeepAR"

    def __init__(self, config: Optional[DeepARLiteConfig] = None):
        self.config = config or DeepARLiteConfig()
        self.training_time = 0.0
        self._params: Dict[str, np.ndarray] = {}
        self._rng = np.random.default_rng(self.config.seed)
        self._W_in: Optional[np.ndarray] = None
        self._W_h: Optional[np.ndarray] = None

    def _init_encoder(self) -> None:
        cfg = self.config
        rng = np.random.default_rng(cfg.seed + 1)
        self._W_in = rng.normal(0, 1.0, size=(cfg.hidden_size, 1))
        W = rng.normal(0, 1.0, size=(cfg.hidden_size, cfg.hidden_size))
        eigenvalues = np.linalg.eigvals(W)
        W *= cfg.spectral_radius / max(1e-9, np.max(np.abs(eigenvalues)))
        self._W_h = W

    def _encode(self, X: np.ndarray) -> np.ndarray:
        """Final hidden state of the echo-state encoder for every sample."""
        hidden = np.zeros((X.shape[0], self.config.hidden_size))
        for t in range(X.shape[1]):
            hidden = np.tanh(X[:, t : t + 1] @ self._W_in.T + hidden @ self._W_h.T)
        return hidden

    def fit(self, dataset: WindowDataset) -> "DeepARLiteModel":
        start = time.perf_counter()
        cfg = self.config
        self._init_encoder()
        X, Y, _ = _normalised_arrays(dataset)
        hidden = self._encode(X)
        H = Y.shape[1]
        scale = 1.0 / np.sqrt(cfg.hidden_size)
        self._params = {
            "W_mu": self._rng.normal(0, scale, size=(cfg.hidden_size, H)),
            "b_mu": np.zeros(H),
            "W_sigma": self._rng.normal(0, scale, size=(cfg.hidden_size, H)),
            "b_sigma": np.zeros(H),
        }
        optimiser = AdamOptimizer(learning_rate=cfg.learning_rate)
        for _ in range(cfg.epochs):
            for idx in minibatches(len(Y), cfg.batch_size, self._rng):
                p = self._params
                h = hidden[idx]
                mu = h @ p["W_mu"] + p["b_mu"]
                raw = h @ p["W_sigma"] + p["b_sigma"]
                sigma = np.logaddexp(0.0, raw) + cfg.min_sigma
                count = Y[idx].size
                dmu = (mu - Y[idx]) / sigma**2 / count
                dsigma = (1.0 / sigma - (Y[idx] - mu) ** 2 / sigma**3) / count
                draw = dsigma * (1.0 / (1.0 + np.exp(-np.clip(raw, -60, 60))))
                grads = {
                    "W_mu": h.T @ dmu,
                    "b_mu": dmu.sum(axis=0),
                    "W_sigma": h.T @ draw,
                    "b_sigma": draw.sum(axis=0),
                }
                optimiser.update(self._params, grads)
        self.training_time = time.perf_counter() - start
        return self

    def predict(self, dataset: WindowDataset) -> Tuple[np.ndarray, np.ndarray]:
        X, _, orgs = _normalised_arrays(dataset)
        hidden = self._encode(X)
        p = self._params
        mu_n = hidden @ p["W_mu"] + p["b_mu"]
        sigma_n = np.logaddexp(0.0, hidden @ p["W_sigma"] + p["b_sigma"]) + self.config.min_sigma
        return _denormalise(dataset, orgs, mu_n, sigma_n)


# ----------------------------------------------------------------------
# Transformer-family lite models
# ----------------------------------------------------------------------
@dataclass
class AttentionLiteConfig:
    model_dim: int = 32
    ridge_l2: float = 1e-1
    seed: int = 0


class _AttentionLiteBase:
    """Shared machinery of the Transformer-family lite baselines."""

    name = "AttentionLite"

    def __init__(self, config: Optional[AttentionLiteConfig] = None):
        self.config = config or AttentionLiteConfig()
        self.training_time = 0.0
        self._weights: Optional[np.ndarray] = None
        self._residual_std = 1.0
        self._proj: Dict[str, np.ndarray] = {}

    # -- encoding ------------------------------------------------------
    def _init_projections(self, length: int) -> None:
        rng = np.random.default_rng(self.config.seed + 7)
        d = self.config.model_dim
        self._proj = {
            "value": rng.normal(0, 1.0 / np.sqrt(length), size=(length, d)),
            "query": rng.normal(0, 1.0 / np.sqrt(length), size=(length, d)),
            "key": rng.normal(0, 1.0 / np.sqrt(length), size=(length, d)),
        }

    def _encode(self, X: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    # -- fit / predict ---------------------------------------------------
    def fit(self, dataset: WindowDataset):
        start = time.perf_counter()
        X, Y, _ = _normalised_arrays(dataset)
        self._init_projections(X.shape[1])
        features = self._encode(X)
        self._weights = _ridge_fit(features, Y, self.config.ridge_l2)
        residual = _ridge_predict(features, self._weights) - Y
        self._residual_std = float(residual.std()) or 1.0
        self.training_time = time.perf_counter() - start
        return self

    def predict(self, dataset: WindowDataset) -> Tuple[np.ndarray, np.ndarray]:
        X, _, orgs = _normalised_arrays(dataset)
        features = self._encode(X)
        mu_n = _ridge_predict(features, self._weights)
        sigma_n = np.full_like(mu_n, self._residual_std)
        return _denormalise(dataset, orgs, mu_n, sigma_n)

    # -- shared attention helper ----------------------------------------
    def _positional_tokens(self, X: np.ndarray) -> np.ndarray:
        """Token representation: value plus a sinusoidal position channel."""
        length = X.shape[1]
        positions = np.arange(length) / length
        pos = np.sin(2 * np.pi * positions)
        return np.stack([X, np.broadcast_to(pos, X.shape)], axis=-1)  # (N, L, 2)


class TransformerLiteModel(_AttentionLiteBase):
    """Full softmax self-attention over the history window."""

    name = "Transformer"

    def _encode(self, X: np.ndarray) -> np.ndarray:
        d = self.config.model_dim
        rng = np.random.default_rng(self.config.seed + 11)
        token_proj = rng.normal(0, 0.5, size=(2, d))
        tokens = self._positional_tokens(X) @ token_proj          # (N, L, d)
        q = tokens @ rng.normal(0, 1.0 / np.sqrt(d), size=(d, d))
        k = tokens @ rng.normal(0, 1.0 / np.sqrt(d), size=(d, d))
        v = tokens
        scores = q @ np.transpose(k, (0, 2, 1)) / np.sqrt(d)       # (N, L, L)
        scores -= scores.max(axis=-1, keepdims=True)
        attn = np.exp(scores)
        attn /= attn.sum(axis=-1, keepdims=True)
        mixed = attn @ v                                            # (N, L, d)
        return np.concatenate([mixed.mean(axis=1), mixed[:, -1, :], X[:, -24:]], axis=1)


class InformerLiteModel(_AttentionLiteBase):
    """Prob-sparse attention: only the top-u most informative queries attend."""

    name = "Informer"

    def _encode(self, X: np.ndarray) -> np.ndarray:
        d = self.config.model_dim
        rng = np.random.default_rng(self.config.seed + 13)
        token_proj = rng.normal(0, 0.5, size=(2, d))
        tokens = self._positional_tokens(X) @ token_proj
        q = tokens @ rng.normal(0, 1.0 / np.sqrt(d), size=(d, d))
        k = tokens @ rng.normal(0, 1.0 / np.sqrt(d), size=(d, d))
        scores = q @ np.transpose(k, (0, 2, 1)) / np.sqrt(d)
        length = X.shape[1]
        u = max(4, int(np.ceil(np.log(length))))
        # Sparsity measure: max score minus mean score per query.
        sparsity = scores.max(axis=-1) - scores.mean(axis=-1)       # (N, L)
        top = np.argsort(-sparsity, axis=1)[:, :u]                  # (N, u)
        gathered = np.take_along_axis(scores, top[:, :, None], axis=1)  # (N, u, L)
        gathered -= gathered.max(axis=-1, keepdims=True)
        attn = np.exp(gathered)
        attn /= attn.sum(axis=-1, keepdims=True)
        mixed = attn @ tokens                                        # (N, u, d)
        return np.concatenate([mixed.reshape(X.shape[0], -1), X[:, -24:]], axis=1)


class AutoformerLiteModel(_AttentionLiteBase):
    """Decomposition + autocorrelation-based aggregation of lagged series."""

    name = "Autoformer"

    def __init__(self, config: Optional[AttentionLiteConfig] = None, top_lags: int = 6, kernel: int = 25):
        super().__init__(config)
        self.top_lags = top_lags
        self.kernel = kernel

    def _encode(self, X: np.ndarray) -> np.ndarray:
        trend, cyclical = decompose_batch(X, self.kernel)
        length = X.shape[1]
        spectrum = np.fft.rfft(cyclical, axis=1)
        autocorr = np.fft.irfft(spectrum * np.conj(spectrum), n=length, axis=1)
        lags = np.argsort(-autocorr[:, 1 : length // 2], axis=1)[:, : self.top_lags] + 1
        rolled = []
        for i in range(X.shape[0]):
            stacks = [np.roll(cyclical[i], int(lag))[-24:] for lag in lags[i]]
            rolled.append(np.concatenate(stacks))
        rolled = np.asarray(rolled)
        return np.concatenate([rolled, trend[:, -24:], cyclical[:, -24:]], axis=1)


class FEDformerLiteModel(_AttentionLiteBase):
    """Frequency-enhanced features: a random subset of Fourier modes."""

    name = "FEDformer"

    def __init__(self, config: Optional[AttentionLiteConfig] = None, num_modes: int = 24):
        super().__init__(config)
        self.num_modes = num_modes

    def _encode(self, X: np.ndarray) -> np.ndarray:
        spectrum = np.fft.rfft(X, axis=1)
        rng = np.random.default_rng(self.config.seed + 17)
        available = spectrum.shape[1]
        modes = np.sort(rng.choice(available, size=min(self.num_modes, available), replace=False))
        selected = spectrum[:, modes]
        return np.concatenate([selected.real, selected.imag, X[:, -24:]], axis=1)


#: Models swept by the Figure 10 experiment, keyed by display name.
FORECASTING_BASELINES = {
    "Transformer": TransformerLiteModel,
    "Informer": InformerLiteModel,
    "Autoformer": AutoformerLiteModel,
    "FEDformer": FEDformerLiteModel,
    "DLinear": DLinearModel,
    "DeepAR": DeepARLiteModel,
}
