"""OrgLinear: the paper's probabilistic GPU-demand forecasting model.

OrgLinear (Section 3.2) combines

* adaptive trend/cyclical decomposition of the demand history (Eqs. 1-2),
* temporal-feature embeddings for hour / weekday / holiday (Eq. 3),
* business-feature embeddings combined with a (simplified) attention over
  attribute embeddings (Eq. 4),
* two parallel linear heads for the cyclical and trend components whose sum
  is the predicted mean (Eqs. 5-6), and
* a heteroscedastic variance head with softplus stabilisation (Eq. 7),

trained end to end by maximum likelihood on a Gaussian output (Eq. 8).

The model is implemented directly in NumPy with analytic gradients: every
component is linear in its inputs (given the embedding lookups), so
backpropagation reduces to a handful of matrix products.  The attention
over business attributes is simplified to a learnable softmax weighting of
the attribute embeddings; DESIGN.md records this substitution.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from .dataset import WindowDataset
from .decomposition import decompose_batch
from .training import (
    AdamOptimizer,
    gaussian_nll,
    gaussian_nll_grads,
    minibatches,
    softmax,
    softplus,
    softplus_grad,
)


@dataclass
class OrgLinearConfig:
    """Hyper-parameters of OrgLinear."""

    input_length: int = 168
    horizon: int = 24
    temporal_embedding_dim: int = 4
    business_embedding_dim: int = 6
    decomposition_kernel: int = 25
    learning_rate: float = 5e-3
    epochs: int = 60
    batch_size: int = 64
    min_sigma: float = 1e-3
    seed: int = 0


class OrgLinear:
    """Probabilistic organization-level GPU demand forecaster."""

    name = "OrgLinear"

    def __init__(self, config: Optional[OrgLinearConfig] = None):
        self.config = config or OrgLinearConfig()
        self.params: Dict[str, np.ndarray] = {}
        self.business_fields: List[str] = []
        self.training_time: float = 0.0
        self.loss_history: List[float] = []
        self._rng = np.random.default_rng(self.config.seed)

    # ------------------------------------------------------------------
    # Parameter initialisation
    # ------------------------------------------------------------------
    def _init_params(self, dataset: WindowDataset) -> None:
        cfg = self.config
        rng = self._rng
        d_t, d_b = cfg.temporal_embedding_dim, cfg.business_embedding_dim
        self.business_fields = list(dataset.vocabulary.fields)
        n_fields = len(self.business_fields)
        feature_dim = cfg.input_length + d_b + 3 * d_t

        def linear(shape: Tuple[int, ...]) -> np.ndarray:
            scale = 1.0 / np.sqrt(shape[0])
            return rng.normal(0.0, scale, size=shape)

        self.params = {
            "emb_hour": rng.normal(0, 0.1, size=(24, d_t)),
            "emb_weekday": rng.normal(0, 0.1, size=(7, d_t)),
            "emb_holiday": rng.normal(0, 0.1, size=(2, d_t)),
            "attention_scores": np.zeros(n_fields),
            "W_c": linear((feature_dim, cfg.horizon)),
            "b_c": np.zeros(cfg.horizon),
            "W_t": linear((feature_dim, cfg.horizon)),
            "b_t": np.zeros(cfg.horizon),
            "W_v": linear((feature_dim, cfg.horizon)),
            "b_v": np.zeros(cfg.horizon),
        }
        for i, field_name in enumerate(self.business_fields):
            vocab_size = dataset.vocabulary.size(field_name)
            self.params[f"emb_biz_{i}"] = rng.normal(0, 0.1, size=(vocab_size, d_b))

    # ------------------------------------------------------------------
    # Forward pass
    # ------------------------------------------------------------------
    def _forward(
        self,
        X: np.ndarray,
        temporal: np.ndarray,
        business: np.ndarray,
        cache: bool = False,
    ):
        cfg = self.config
        p = self.params
        trend, cyclical = decompose_batch(X, cfg.decomposition_kernel)

        c_t = np.concatenate(
            [
                p["emb_hour"][temporal[:, 0]],
                p["emb_weekday"][temporal[:, 1]],
                p["emb_holiday"][temporal[:, 2]],
            ],
            axis=1,
        )
        weights = softmax(p["attention_scores"])
        biz_embs = [
            p[f"emb_biz_{i}"][business[:, i]] for i in range(len(self.business_fields))
        ]
        c_o = sum(w * e for w, e in zip(weights, biz_embs))

        z_c = np.concatenate([cyclical, c_o, c_t], axis=1)
        z_t = np.concatenate([trend, c_o, c_t], axis=1)
        z_v = np.concatenate([X, c_o, c_t], axis=1)

        y_c = z_c @ p["W_c"] + p["b_c"]
        y_t = z_t @ p["W_t"] + p["b_t"]
        mu = y_c + y_t
        h = z_v @ p["W_v"] + p["b_v"]
        sigma = softplus(h) + cfg.min_sigma

        if not cache:
            return mu, sigma
        state = {
            "z_c": z_c,
            "z_t": z_t,
            "z_v": z_v,
            "h": h,
            "weights": weights,
            "biz_embs": biz_embs,
            "business": business,
            "temporal": temporal,
        }
        return mu, sigma, state

    # ------------------------------------------------------------------
    # Backward pass
    # ------------------------------------------------------------------
    def _backward(
        self,
        dmu: np.ndarray,
        dsigma: np.ndarray,
        state: Dict[str, np.ndarray],
    ) -> Dict[str, np.ndarray]:
        cfg = self.config
        p = self.params
        d_t, d_b = cfg.temporal_embedding_dim, cfg.business_embedding_dim
        L = cfg.input_length
        dh = dsigma * softplus_grad(state["h"])

        grads: Dict[str, np.ndarray] = {
            "W_c": state["z_c"].T @ dmu,
            "b_c": dmu.sum(axis=0),
            "W_t": state["z_t"].T @ dmu,
            "b_t": dmu.sum(axis=0),
            "W_v": state["z_v"].T @ dh,
            "b_v": dh.sum(axis=0),
        }

        dz_c = dmu @ p["W_c"].T
        dz_t = dmu @ p["W_t"].T
        dz_v = dh @ p["W_v"].T

        # Slices: [series (L) | business (d_b) | temporal (3 * d_t)]
        d_co = dz_c[:, L : L + d_b] + dz_t[:, L : L + d_b] + dz_v[:, L : L + d_b]
        d_ct = dz_c[:, L + d_b :] + dz_t[:, L + d_b :] + dz_v[:, L + d_b :]

        # Temporal embeddings.
        temporal = state["temporal"]
        grads["emb_hour"] = np.zeros_like(p["emb_hour"])
        grads["emb_weekday"] = np.zeros_like(p["emb_weekday"])
        grads["emb_holiday"] = np.zeros_like(p["emb_holiday"])
        np.add.at(grads["emb_hour"], temporal[:, 0], d_ct[:, :d_t])
        np.add.at(grads["emb_weekday"], temporal[:, 1], d_ct[:, d_t : 2 * d_t])
        np.add.at(grads["emb_holiday"], temporal[:, 2], d_ct[:, 2 * d_t :])

        # Business embeddings and attention scores.
        weights = state["weights"]
        business = state["business"]
        score_grad_raw = np.zeros_like(weights)
        for i, field_name in enumerate(self.business_fields):
            emb_grad = np.zeros_like(p[f"emb_biz_{i}"])
            np.add.at(emb_grad, business[:, i], weights[i] * d_co)
            grads[f"emb_biz_{i}"] = emb_grad
            score_grad_raw[i] = float(np.sum(d_co * state["biz_embs"][i]))
        # Softmax Jacobian: dL/ds = w * (a - w . a)
        grads["attention_scores"] = weights * (score_grad_raw - float(weights @ score_grad_raw))
        return grads

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def fit(self, dataset: WindowDataset, verbose: bool = False) -> "OrgLinear":
        """Train the model on a window dataset (normalised per organization)."""
        cfg = self.config
        if dataset.input_length != cfg.input_length or dataset.horizon != cfg.horizon:
            cfg.input_length = dataset.input_length
            cfg.horizon = dataset.horizon
        start = time.perf_counter()
        self._init_params(dataset)
        arrays = dataset.arrays()
        orgs = arrays["orgs"]
        X = np.stack([dataset.normalise_value(o, x) for o, x in zip(orgs, arrays["X"])])
        Y = np.stack([dataset.normalise_value(o, y) for o, y in zip(orgs, arrays["Y"])])
        temporal, business = arrays["temporal"], arrays["business"]

        optimiser = AdamOptimizer(learning_rate=cfg.learning_rate)
        for _ in range(cfg.epochs):
            epoch_loss = 0.0
            batches = 0
            for idx in minibatches(len(dataset), cfg.batch_size, self._rng):
                mu, sigma, state = self._forward(X[idx], temporal[idx], business[idx], cache=True)
                loss = gaussian_nll(Y[idx], mu, sigma)
                dmu, dsigma = gaussian_nll_grads(Y[idx], mu, sigma)
                grads = self._backward(dmu, dsigma, state)
                optimiser.update(self.params, grads)
                epoch_loss += loss
                batches += 1
            self.loss_history.append(epoch_loss / max(1, batches))
            if verbose:
                print(f"epoch {len(self.loss_history):3d}  nll={self.loss_history[-1]:.4f}")
        self.training_time = time.perf_counter() - start
        return self

    def predict(self, dataset: WindowDataset) -> Tuple[np.ndarray, np.ndarray]:
        """Predict (mu, sigma) in original units for every sample of ``dataset``."""
        if not self.params:
            raise RuntimeError("model must be fitted before prediction")
        arrays = dataset.arrays()
        orgs = arrays["orgs"]
        X = np.stack([dataset.normalise_value(o, x) for o, x in zip(orgs, arrays["X"])])
        mu_n, sigma_n = self._forward(X, arrays["temporal"], arrays["business"], cache=False)
        mu = np.stack([dataset.denormalise_mean(o, m) for o, m in zip(orgs, mu_n)])
        sigma = np.stack([dataset.denormalise_std(o, s) for o, s in zip(orgs, sigma_n)])
        return mu, np.maximum(sigma, 1e-6)
