"""Temporal and business contextual features for demand forecasting.

Section 3.2 of the paper encodes the hour of day, weekday and holiday flag
of each timestamp through embedding layers (Eq. 3), and projects business
attributes (cluster, GPU model, ...) through learnable embeddings combined
with attention (Eq. 4).  This module provides the index extraction and the
vocabulary bookkeeping those embeddings need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set

import numpy as np

HOURS_PER_DAY = 24
DAYS_PER_WEEK = 7


@dataclass
class TemporalFeature:
    """Categorical indices for one timestamp: hour, weekday, holiday flag."""

    hour: int
    weekday: int
    holiday: int

    @classmethod
    def from_hour_index(cls, hour_index: int, holidays: Optional[Set[int]] = None) -> "TemporalFeature":
        """Derive features from an absolute hour index (0 = simulation start)."""
        hour = hour_index % HOURS_PER_DAY
        day = hour_index // HOURS_PER_DAY
        weekday = day % DAYS_PER_WEEK
        holiday = 1 if holidays and day in holidays else 0
        return cls(hour=hour, weekday=weekday, holiday=holiday)


def temporal_features(
    hour_indices: Sequence[int], holidays: Optional[Set[int]] = None
) -> np.ndarray:
    """Integer feature matrix of shape ``(len(hour_indices), 3)``."""
    rows = [TemporalFeature.from_hour_index(h, holidays) for h in hour_indices]
    return np.array([[r.hour, r.weekday, r.holiday] for r in rows], dtype=int)


@dataclass
class BusinessVocabulary:
    """Vocabulary of business attribute values, one per attribute field.

    Unknown values met at prediction time map to a reserved index 0.
    """

    fields: List[str] = field(default_factory=lambda: ["organization", "cluster", "gpu_model"])
    vocab: Dict[str, Dict[str, int]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for name in self.fields:
            self.vocab.setdefault(name, {"<unk>": 0})

    def fit(self, attribute_rows: Sequence[Mapping[str, str]]) -> "BusinessVocabulary":
        """Register every attribute value seen in ``attribute_rows``."""
        for row in attribute_rows:
            for name in self.fields:
                value = str(row.get(name, "<unk>"))
                table = self.vocab[name]
                if value not in table:
                    table[value] = len(table)
        return self

    def size(self, field_name: str) -> int:
        return len(self.vocab[field_name])

    def encode(self, attributes: Mapping[str, str]) -> np.ndarray:
        """Integer indices for one organization's attributes."""
        return np.array(
            [self.vocab[name].get(str(attributes.get(name, "<unk>")), 0) for name in self.fields],
            dtype=int,
        )

    def encode_many(self, rows: Sequence[Mapping[str, str]]) -> np.ndarray:
        return np.stack([self.encode(r) for r in rows], axis=0)
