"""GPU Demand Estimator (GDE): the forecasting module of GFS.

The GDE maintains per-organization HP demand history, delegates forecasting
to a pluggable online forecaster and exposes the probabilistic queries the
Spot Quota Allocator consumes: per-organization Gaussian forecasts and the
ICDF upper bounds used by the inventory estimation of Eq. (9).
"""

from __future__ import annotations

import math
from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from .forecaster import OnlineForecaster, SeasonalQuantileForecaster


def normal_quantile(p: float) -> float:
    """Standard-normal quantile via the inverse error function."""
    if not 0.0 < p < 1.0:
        raise ValueError("guarantee rate p must be in (0, 1)")
    from scipy.special import erfinv

    return math.sqrt(2.0) * float(erfinv(2.0 * p - 1.0))


class GPUDemandEstimator:
    """Forecasts per-organization HP GPU demand distributions."""

    def __init__(self, forecaster: Optional[OnlineForecaster] = None):
        self.forecaster = forecaster or SeasonalQuantileForecaster()
        self._fitted = False

    # ------------------------------------------------------------------
    # History management
    # ------------------------------------------------------------------
    def fit(self, history: Mapping[str, np.ndarray]) -> "GPUDemandEstimator":
        """Load historical per-organization hourly demand and fit the forecaster."""
        self.forecaster.fit(history)
        self._fitted = True
        return self

    def observe(self, org: str, hour_index: int, demand: float) -> None:
        """Feed one observed demand point back into the forecaster."""
        self.forecaster.observe(org, hour_index, demand)

    def organizations(self) -> list[str]:
        return self.forecaster.organizations()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def predict(self, org: str, start_hour: int, horizon: int) -> Tuple[np.ndarray, np.ndarray]:
        """Gaussian (mu, sigma) forecast for one organization."""
        if not self._fitted:
            raise RuntimeError("GPUDemandEstimator.fit must be called first")
        return self.forecaster.predict(org, start_hour, horizon)

    def upper_bound(self, org: str, start_hour: int, horizon: int, p: float) -> np.ndarray:
        """ICDF upper-bound sequence ``y_hat_{o|p}[1:H]`` of Section 3.3.1."""
        mu, sigma = self.predict(org, start_hour, horizon)
        z = normal_quantile(p)
        return mu + z * np.maximum(sigma, 0.0)

    def peak_demand(self, start_hour: int, horizon: int, p: float) -> Dict[str, float]:
        """Per-organization peak of the upper-bound sequence over the horizon."""
        return {
            org: float(np.max(self.upper_bound(org, start_hour, horizon, p)))
            for org in self.organizations()
        }

    def aggregate_peak_demand(self, start_hour: int, horizon: int, p: float) -> float:
        """Spatial aggregation: sum of per-organization peak demands."""
        peaks = self.peak_demand(start_hour, horizon, p)
        return float(sum(peaks.values()))
