"""Forecast accuracy metrics used in Figure 10 and Table 7.

Point metrics (MAE, MSE, RMSE, MAPE) are computed on the mean prediction;
p-MAQE (mean absolute quantile error) measures the average absolute error
between the predicted p-quantile and the observed value, normalised by the
mean observed demand so the figures are comparable across organizations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

import numpy as np

#: Standard-normal quantiles used to turn (mu, sigma) into ICDF bounds.
_SQRT2 = math.sqrt(2.0)


def normal_icdf(p: float, mu: np.ndarray, sigma: np.ndarray) -> np.ndarray:
    """Inverse CDF of a Gaussian, vectorised over ``mu`` and ``sigma``."""
    if not 0.0 < p < 1.0:
        raise ValueError("quantile level must be in (0, 1)")
    from scipy.special import erfinv  # local import keeps scipy optional at import time

    z = _SQRT2 * erfinv(2.0 * p - 1.0)
    return mu + z * sigma


def mae(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    return float(np.mean(np.abs(np.asarray(y_true) - np.asarray(y_pred))))


def mse(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    return float(np.mean((np.asarray(y_true) - np.asarray(y_pred)) ** 2))


def rmse(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    return float(math.sqrt(mse(y_true, y_pred)))


def mape(y_true: np.ndarray, y_pred: np.ndarray, eps: float = 1e-6) -> float:
    y_true = np.asarray(y_true, dtype=float)
    y_pred = np.asarray(y_pred, dtype=float)
    denom = np.maximum(np.abs(y_true), eps)
    return float(np.mean(np.abs(y_true - y_pred) / denom))


def maqe(y_true: np.ndarray, quantile_pred: np.ndarray) -> float:
    """Mean absolute quantile error normalised by the mean observed value."""
    y_true = np.asarray(y_true, dtype=float)
    quantile_pred = np.asarray(quantile_pred, dtype=float)
    scale = max(1e-6, float(np.mean(np.abs(y_true))))
    return float(np.mean(np.abs(quantile_pred - y_true)) / scale)


@dataclass
class ForecastEvaluation:
    """Bundle of accuracy metrics for one forecaster."""

    mae: float
    mse: float
    rmse: float
    mape: float
    maqe_90: float
    maqe_95: float
    training_time: float = 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "MAE": self.mae,
            "MSE": self.mse,
            "RMSE": self.rmse,
            "MAPE": self.mape,
            "0.9-MAQE": self.maqe_90,
            "0.95-MAQE": self.maqe_95,
            "training_time_s": self.training_time,
        }


def evaluate_forecast(
    y_true: np.ndarray,
    mu: np.ndarray,
    sigma: np.ndarray,
    training_time: float = 0.0,
) -> ForecastEvaluation:
    """Evaluate mean and quantile accuracy of a probabilistic forecast."""
    sigma = np.maximum(np.asarray(sigma, dtype=float), 1e-6)
    return ForecastEvaluation(
        mae=mae(y_true, mu),
        mse=mse(y_true, mu),
        rmse=rmse(y_true, mu),
        mape=mape(y_true, mu),
        maqe_90=maqe(y_true, normal_icdf(0.9, mu, sigma)),
        maqe_95=maqe(y_true, normal_icdf(0.95, mu, sigma)),
        training_time=training_time,
    )
