"""Sliding-window forecast datasets built from per-organization demand series."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Set, Tuple

import numpy as np

from .features import BusinessVocabulary, temporal_features


@dataclass
class ForecastSample:
    """One training/evaluation sample of the forecasting problem."""

    org: str
    history: np.ndarray          # shape (L,)
    target: np.ndarray           # shape (H,)
    start_hour: int              # absolute hour index of the first target step
    business_index: np.ndarray   # integer indices into the business vocabulary


@dataclass
class WindowDataset:
    """A batched sliding-window dataset over several organizations."""

    input_length: int
    horizon: int
    samples: List[ForecastSample] = field(default_factory=list)
    vocabulary: BusinessVocabulary = field(default_factory=BusinessVocabulary)
    #: per-organization normalisation statistics (mean, std)
    norm: Dict[str, Tuple[float, float]] = field(default_factory=dict)
    #: day indices treated as holidays by the temporal feature extractor
    holidays: Set[int] = field(default_factory=set)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.samples)

    def arrays(self) -> Dict[str, np.ndarray]:
        """Stack every sample into dense arrays for vectorised training."""
        if not self.samples:
            raise ValueError("dataset is empty")
        X = np.stack([s.history for s in self.samples])
        Y = np.stack([s.target for s in self.samples])
        start_hours = np.array([s.start_hour for s in self.samples], dtype=int)
        temporal = temporal_features(start_hours, holidays=self.holidays or None)
        business = np.stack([s.business_index for s in self.samples])
        orgs = np.array([s.org for s in self.samples])
        return {
            "X": X,
            "Y": Y,
            "temporal": temporal,
            "business": business,
            "orgs": orgs,
            "start_hours": start_hours,
        }

    # ------------------------------------------------------------------
    def normalise_value(self, org: str, value: np.ndarray) -> np.ndarray:
        mean, std = self.norm.get(org, (0.0, 1.0))
        return (np.asarray(value, dtype=float) - mean) / std

    def denormalise_mean(self, org: str, value: np.ndarray) -> np.ndarray:
        mean, std = self.norm.get(org, (0.0, 1.0))
        return np.asarray(value, dtype=float) * std + mean

    def denormalise_std(self, org: str, value: np.ndarray) -> np.ndarray:
        _, std = self.norm.get(org, (0.0, 1.0))
        return np.asarray(value, dtype=float) * std


def build_window_dataset(
    history: Mapping[str, np.ndarray],
    attributes: Mapping[str, Mapping[str, str]],
    input_length: int = 168,
    horizon: int = 24,
    stride: int = 6,
    vocabulary: Optional[BusinessVocabulary] = None,
    norm: Optional[Dict[str, Tuple[float, float]]] = None,
    holidays: Optional[Set[int]] = None,
) -> WindowDataset:
    """Build a sliding-window dataset from per-organization hourly series.

    Parameters
    ----------
    history:
        organization name -> hourly GPU demand series.
    attributes:
        organization name -> business attribute mapping (cluster, model...).
    norm:
        Optional pre-computed normalisation statistics (reused for test sets
        so train and test share the same scaling).
    """
    vocabulary = vocabulary or BusinessVocabulary().fit(list(attributes.values()))
    dataset = WindowDataset(
        input_length=input_length,
        horizon=horizon,
        vocabulary=vocabulary,
        holidays=set(holidays or ()),
    )

    for org, series in history.items():
        series = np.asarray(series, dtype=float)
        if norm is not None and org in norm:
            dataset.norm[org] = norm[org]
        else:
            std = float(series.std()) or 1.0
            dataset.norm[org] = (float(series.mean()), std)
        attrs = attributes.get(org, {"organization": org})
        business_index = vocabulary.encode(attrs)
        limit = len(series) - input_length - horizon
        if limit < 0:
            continue
        for start in range(0, limit + 1, stride):
            end = start + input_length
            dataset.samples.append(
                ForecastSample(
                    org=org,
                    history=series[start:end],
                    target=series[end : end + horizon],
                    start_hour=end,
                    business_index=business_index,
                )
            )
    return dataset


def train_test_split_dataset(
    dataset: WindowDataset, test_fraction: float = 0.25
) -> Tuple[WindowDataset, WindowDataset]:
    """Chronological split: the last ``test_fraction`` of windows per org is test."""
    by_org: Dict[str, List[ForecastSample]] = {}
    for sample in dataset.samples:
        by_org.setdefault(sample.org, []).append(sample)
    train = WindowDataset(
        dataset.input_length,
        dataset.horizon,
        vocabulary=dataset.vocabulary,
        norm=dict(dataset.norm),
        holidays=set(dataset.holidays),
    )
    test = WindowDataset(
        dataset.input_length,
        dataset.horizon,
        vocabulary=dataset.vocabulary,
        norm=dict(dataset.norm),
        holidays=set(dataset.holidays),
    )
    for org, samples in by_org.items():
        samples = sorted(samples, key=lambda s: s.start_hour)
        cut = max(1, int(round(len(samples) * (1.0 - test_fraction))))
        train.samples.extend(samples[:cut])
        test.samples.extend(samples[cut:])
    return train, test
