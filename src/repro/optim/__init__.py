"""Optimisation reference: the MILP model of Eq. 12 and a toy exact solver."""

from .milp import (
    Assignment,
    MILPNode,
    MILPTask,
    SchedulingProblem,
    greedy_reference,
    solve_exact,
)

__all__ = [
    "Assignment",
    "MILPNode",
    "MILPTask",
    "SchedulingProblem",
    "greedy_reference",
    "solve_exact",
]
