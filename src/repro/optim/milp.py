"""The scheduling optimisation model of Section 3.4.1 (Eq. 12).

The paper formulates scheduling as a mixed-integer program minimising a
combination of eviction impact and (negated) utilisation subject to node
capacity, gang-scheduling and priority constraints, then solves it with a
heuristic (PTS) because the exact problem is NP-hard.  This module provides

* an explicit model object capturing the objective and constraints, and
* a small exact solver (branch and bound over per-task node assignments)
  usable on toy instances; tests use it to check that the PTS heuristic
  produces feasible assignments and stays within a bounded optimality gap
  on instances the exact solver can handle.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass
class MILPTask:
    """A task in the optimisation model."""

    task_id: str
    num_pods: int
    gpus_per_pod: int
    is_hp: bool
    #: GPU-time wasted if this (spot) task is preempted
    preemption_waste: float = 0.0
    #: whether the task is currently running (preempting it has a cost)
    running_on: Optional[str] = None


@dataclass
class MILPNode:
    """A node in the optimisation model."""

    node_id: str
    free_gpus: int


@dataclass
class Assignment:
    """A complete assignment: task -> list of node ids (one per pod)."""

    pods: Dict[str, List[str]] = field(default_factory=dict)
    preempted: List[str] = field(default_factory=list)
    objective: float = 0.0

    def is_assigned(self, task_id: str) -> bool:
        return task_id in self.pods


@dataclass
class SchedulingProblem:
    """Instance of the Eq. 12 optimisation problem."""

    tasks: List[MILPTask]
    nodes: List[MILPNode]
    alpha: float = 0.5

    # ------------------------------------------------------------------
    def check_feasible(self, assignment: Assignment) -> bool:
        """Verify capacity, gang and priority constraints (12a-12d)."""
        used: Dict[str, int] = {n.node_id: 0 for n in self.nodes}
        capacity = {n.node_id: n.free_gpus for n in self.nodes}
        preempted = set(assignment.preempted)
        for task in self.tasks:
            if task.is_hp and task.task_id in preempted:
                return False  # constraint 12c/12d: only spot tasks are evicted
            if not assignment.is_assigned(task.task_id):
                continue
            pods = assignment.pods[task.task_id]
            if len(pods) != task.num_pods:
                return False  # constraint 12b: gang scheduling
            for node_id in pods:
                if node_id not in capacity:
                    return False
                used[node_id] += task.gpus_per_pod
        # Preempted running spot tasks release their capacity.
        for task in self.tasks:
            if task.running_on and task.task_id not in preempted:
                used[task.running_on] = used.get(task.running_on, 0) + (
                    task.num_pods * task.gpus_per_pod
                )
        return all(used[n] <= capacity[n] for n in used)

    def objective_value(self, assignment: Assignment) -> float:
        """Eq. 12: eviction-rate impact minus alpha * utilisation."""
        preempted = set(assignment.preempted)
        evictions = len(preempted)
        runs = sum(1 for t in self.tasks if not t.is_hp) or 1
        eviction_term = evictions / runs
        scheduled_gpu = sum(
            t.num_pods * t.gpus_per_pod
            for t in self.tasks
            if assignment.is_assigned(t.task_id)
        )
        total_capacity = sum(n.free_gpus for n in self.nodes) or 1
        waste_term = sum(t.preemption_waste for t in self.tasks if t.task_id in preempted)
        utilisation = scheduled_gpu / total_capacity
        return eviction_term + waste_term / max(1.0, total_capacity) - self.alpha * utilisation


def _node_combinations(problem: SchedulingProblem, task: MILPTask) -> List[Tuple[str, ...]]:
    """Every multiset of nodes that could host the task's pods."""
    node_ids = [n.node_id for n in problem.nodes]
    return list(itertools.combinations_with_replacement(node_ids, task.num_pods))


def solve_exact(problem: SchedulingProblem, max_states: int = 200_000) -> Assignment:
    """Brute-force/branch-and-bound solver for toy instances.

    Enumerates assignments task by task (including "leave pending" and, for
    running spot tasks, "preempt"), pruning infeasible partial states.
    Raises ``ValueError`` when the search space exceeds ``max_states``.
    """
    best: Optional[Assignment] = None
    states_visited = 0

    def recurse(index: int, assignment: Assignment) -> None:
        nonlocal best, states_visited
        states_visited += 1
        if states_visited > max_states:
            raise ValueError("instance too large for the exact solver")
        if index == len(problem.tasks):
            if problem.check_feasible(assignment):
                value = problem.objective_value(assignment)
                if best is None or value < best.objective:
                    best = Assignment(
                        pods={k: list(v) for k, v in assignment.pods.items()},
                        preempted=list(assignment.preempted),
                        objective=value,
                    )
            return
        task = problem.tasks[index]
        # Option 1: leave the task unscheduled (HP tasks should be scheduled
        # when possible; feasibility checking handles capacity).
        recurse(index + 1, assignment)
        # Option 2 (spot, running): preempt it.
        if not task.is_hp and task.running_on is not None:
            assignment.preempted.append(task.task_id)
            recurse(index + 1, assignment)
            assignment.preempted.pop()
        # Option 3: assign pods to nodes.
        for combo in _node_combinations(problem, task):
            assignment.pods[task.task_id] = list(combo)
            if problem.check_feasible(assignment):
                recurse(index + 1, assignment)
            del assignment.pods[task.task_id]

    recurse(0, Assignment())
    if best is None:
        best = Assignment()
        best.objective = problem.objective_value(best)
    return best


def greedy_reference(problem: SchedulingProblem) -> Assignment:
    """A first-fit greedy assignment used as a sanity baseline in tests."""
    assignment = Assignment()
    free = {n.node_id: n.free_gpus for n in problem.nodes}
    for task in sorted(problem.tasks, key=lambda t: (not t.is_hp, -t.gpus_per_pod)):
        pods: List[str] = []
        snapshot = dict(free)
        for _ in range(task.num_pods):
            placed = False
            for node_id, capacity in snapshot.items():
                if capacity >= task.gpus_per_pod:
                    snapshot[node_id] -= task.gpus_per_pod
                    pods.append(node_id)
                    placed = True
                    break
            if not placed:
                break
        if len(pods) == task.num_pods:
            assignment.pods[task.task_id] = pods
            free = snapshot
    assignment.objective = problem.objective_value(assignment)
    return assignment
