"""Experiment harness: one runner per table/figure of the paper's evaluation."""

from .ablation import AblationResult, run_table10, run_table8, run_table9
from .comparison import Table5Result, run_table5
from .config import (
    ExperimentScale,
    FULL_SCALE,
    MEDIUM_SCALE,
    SMALL_SCALE,
    scale_by_name,
)
from .deployment import (
    DeploymentResult,
    ModelDeploymentOutcome,
    paper_reference_benefit,
    run_deployment_experiment,
)
from .forecasting import (
    ForecastingExperimentConfig,
    ForecastingResult,
    build_forecasting_datasets,
    run_forecasting_experiment,
)
from .observations import (
    ObservationResults,
    run_eviction_observation,
    run_fleet_observation,
    run_heatmap_observation,
    run_observations,
    run_request_cdf_observation,
    run_runtime_observation,
)
from .runner import (
    ComparisonResults,
    ExperimentResult,
    baseline_factories,
    gfs_factory,
    gfs_variant_factory,
    run_one,
    run_sweep,
)
from .sensitivity import Table6Result, run_table6

__all__ = [
    "AblationResult",
    "ComparisonResults",
    "DeploymentResult",
    "ExperimentResult",
    "ExperimentScale",
    "FULL_SCALE",
    "ForecastingExperimentConfig",
    "ForecastingResult",
    "MEDIUM_SCALE",
    "ModelDeploymentOutcome",
    "ObservationResults",
    "SMALL_SCALE",
    "Table5Result",
    "Table6Result",
    "baseline_factories",
    "build_forecasting_datasets",
    "gfs_factory",
    "gfs_variant_factory",
    "paper_reference_benefit",
    "run_deployment_experiment",
    "run_eviction_observation",
    "run_fleet_observation",
    "run_forecasting_experiment",
    "run_heatmap_observation",
    "run_observations",
    "run_one",
    "run_request_cdf_observation",
    "run_runtime_observation",
    "run_sweep",
    "run_table10",
    "run_table5",
    "run_table6",
    "run_table8",
    "run_table9",
    "scale_by_name",
]
