"""Experiment harness: one runner per table/figure of the paper's evaluation.

Grid-shaped experiments (Tables 5/6/8/9/10 and scenario sweeps) run through
the parallel experiment engine (:mod:`.engine`), which fans the scheduler x
workload x seed matrix out across worker processes and memoises results in
a content-keyed on-disk cache (:mod:`.artifacts`).  See ``docs/experiments.md``.
"""

from .ablation import AblationResult, run_table10, run_table8, run_table9
from .artifacts import (
    ArtifactCache,
    content_key,
    export_grid_csv,
    export_grid_json,
    flatten_metrics,
    metrics_from_payload,
    metrics_to_payload,
)
from .comparison import Table5Result, run_table5
from .config import (
    ExperimentScale,
    FULL_SCALE,
    MEDIUM_SCALE,
    SMALL_SCALE,
    scale_by_name,
)
from .deployment import (
    DeploymentResult,
    ModelDeploymentOutcome,
    paper_reference_benefit,
    run_deployment_experiment,
)
from .engine import (
    EngineStats,
    ExperimentEngine,
    SchedulerSpec,
    SimulationJob,
    WorkloadSpec,
    baseline_specs,
    cache_payload,
    comparison_specs,
    execute_job,
    gfs_spec,
    gfs_variant_spec,
    run_cell,
    run_cell_profiled,
    sweep_jobs,
)
from .forecasting import (
    ForecastingExperimentConfig,
    ForecastingResult,
    build_forecasting_datasets,
    run_forecasting_experiment,
)
from .observations import (
    ObservationResults,
    run_eviction_observation,
    run_fleet_observation,
    run_heatmap_observation,
    run_observations,
    run_request_cdf_observation,
    run_runtime_observation,
)
from .runner import (
    ComparisonResults,
    ExperimentResult,
    baseline_factories,
    gfs_factory,
    gfs_variant_factory,
    run_one,
    run_sweep,
)
from .sensitivity import Table6Result, run_table6

__all__ = [
    "AblationResult",
    "ArtifactCache",
    "ComparisonResults",
    "DeploymentResult",
    "EngineStats",
    "ExperimentEngine",
    "ExperimentResult",
    "ExperimentScale",
    "FULL_SCALE",
    "ForecastingExperimentConfig",
    "ForecastingResult",
    "MEDIUM_SCALE",
    "ModelDeploymentOutcome",
    "ObservationResults",
    "SMALL_SCALE",
    "SchedulerSpec",
    "SimulationJob",
    "Table5Result",
    "Table6Result",
    "WorkloadSpec",
    "baseline_factories",
    "baseline_specs",
    "cache_payload",
    "comparison_specs",
    "content_key",
    "execute_job",
    "run_cell",
    "run_cell_profiled",
    "export_grid_csv",
    "export_grid_json",
    "flatten_metrics",
    "build_forecasting_datasets",
    "gfs_factory",
    "gfs_spec",
    "gfs_variant_factory",
    "gfs_variant_spec",
    "metrics_from_payload",
    "metrics_to_payload",
    "paper_reference_benefit",
    "run_deployment_experiment",
    "run_eviction_observation",
    "run_fleet_observation",
    "run_forecasting_experiment",
    "run_heatmap_observation",
    "run_observations",
    "run_one",
    "run_request_cdf_observation",
    "run_runtime_observation",
    "run_sweep",
    "run_table10",
    "run_table5",
    "run_table6",
    "run_table8",
    "run_table9",
    "scale_by_name",
    "sweep_jobs",
]
