"""``trace`` CLI group: convert, validate and inspect external traces.

Usage::

    python -m repro.experiments.cli trace convert philly.csv philly.json.gz \
        --window 0:24 --arrival-scale 2.0 --top-orgs 6 --fleet-model A100
    python -m repro.experiments.cli trace validate philly.json.gz
    python -m repro.experiments.cli trace stats philly.json.gz

``convert`` streams an external log (Philly CSV, PAI job table, or the
generic CSV/JSONL schema) through the ingest pipeline and writes a
replayable trace; ``validate`` checks a raw or converted trace against
the schema and replay invariants; ``stats`` prints provenance metadata
plus calibration statistics.  Converted traces plug into every grid
experiment through ``trace:<path>`` scenario refs — see ``docs/traces.md``
for the cookbook.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Tuple

from ..cluster import GPUModel
from ..workloads import Trace
from ..workloads.ingest import (
    ADAPTERS,
    ArrivalScale,
    Downsample,
    DurationClamp,
    OrgConsolidate,
    TimeWindow,
    TransformOp,
    detect_format,
    get_adapter,
    ingest_trace,
    known_gpu_model_names,
    rebase_and_sort,
    validate_records,
    validate_trace,
)


def _parse_window(spec: str) -> Tuple[float, Optional[float]]:
    """Parse ``START:END`` hours; an empty END keeps the rest of the trace."""
    try:
        start_text, _, end_text = spec.partition(":")
        start = float(start_text) if start_text else 0.0
        end = float(end_text) if end_text else None
    except ValueError as exc:
        raise SystemExit(f"--window expects START:END hours, got {spec!r}") from exc
    if end is not None and end <= start:
        raise SystemExit(f"--window end must exceed start, got {spec!r}")
    return start, end


def _parse_fleet(spec: str) -> List[GPUModel]:
    models = []
    for name in spec.split(","):
        name = name.strip().upper()
        if not name:
            continue
        try:
            models.append(GPUModel(name))
        except ValueError as exc:
            raise SystemExit(
                f"unknown fleet model {name!r}; expected one of {[m.value for m in GPUModel]}"
            ) from exc
    if not models:
        raise SystemExit("--fleet-model expects at least one GPU model")
    return models


def _parse_model_map(entries: List[str]) -> dict:
    mapping = {}
    for entry in entries:
        source, sep, target = entry.partition("=")
        if not sep or not source:
            raise SystemExit(f"--map expects SRC=DST (DST may be 'none'), got {entry!r}")
        target = target.strip()
        if target.lower() in ("none", ""):
            mapping[source.strip()] = None
            continue
        # A typo'd destination would silently make every mapped task
        # model-agnostic; fail fast instead.
        try:
            GPUModel(target.upper())
        except ValueError as exc:
            raise SystemExit(
                f"--map destination {target!r} is not a fleet GPU model "
                f"(expected one of {[m.value for m in GPUModel]} or 'none')"
            ) from exc
        mapping[source.strip()] = target
    return mapping


def build_transforms(args) -> List[TransformOp]:
    """Assemble the transform pipeline from CLI flags, in canonical order:
    window -> arrival scale -> duration clamp -> org consolidation ->
    downsampling (so e.g. sampling happens on the already-windowed set)."""
    ops: List[TransformOp] = []
    if args.window:
        start, end = _parse_window(args.window)
        ops.append(TimeWindow(start_hours=start, end_hours=end))
    if args.arrival_scale != 1.0:
        ops.append(ArrivalScale(factor=args.arrival_scale))
    if args.min_duration is not None or args.max_duration is not None:
        ops.append(DurationClamp(min_seconds=args.min_duration, max_seconds=args.max_duration))
    if args.top_orgs is not None:
        ops.append(OrgConsolidate(top_k=args.top_orgs, other_name=args.other_name))
    if args.sample < 1.0:
        ops.append(Downsample(fraction=args.sample, seed=args.sample_seed))
    return ops


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------
def cmd_convert(args) -> int:
    src, dst = Path(args.src), Path(args.dst)
    if not (dst.name.lower().endswith(".json") or dst.name.lower().endswith(".json.gz")):
        raise SystemExit(
            f"output path must end in .json or .json.gz (replay routing keys on the "
            f"suffix), got {dst.name!r}"
        )
    trace = ingest_trace(
        src,
        format=args.format,
        transforms=build_transforms(args),
        fleet_models=_parse_fleet(args.fleet_model) if args.fleet_model else None,
        gpu_model_map=_parse_model_map(args.map) if args.map else None,
        history_hours=args.history_hours,
        history_seed=args.history_seed,
        cluster_gpus=args.cluster_gpus,
        validate=not args.no_validate,
    )
    dst.parent.mkdir(parents=True, exist_ok=True)
    trace.save(dst)
    meta = trace.metadata
    stats = trace.statistics()
    print(f"converted {src} ({meta['source_format']}) -> {dst}")
    print(
        f"  tasks: {len(trace)} ({meta['num_hp']} HP, {meta['num_spot']} spot), "
        f"{meta['skipped_rows']} source row(s) skipped"
    )
    print(
        f"  horizon: {meta['duration_hours']:.1f}h, duration p50/p99: "
        f"{stats.duration_p50:.0f}s/{stats.duration_p99:.0f}s"
    )
    print(f"  orgs with demand history: {len(trace.org_history)} ({meta['history_hours']}h each)")
    print(f"  source sha256: {meta['source_sha256'][:16]}…")
    if meta["validation_warnings"]:
        print(f"  {meta['validation_warnings']} validation warning(s); run `trace validate` to list")
    print(f"  replay with: python -m repro.experiments.cli sweep --scenario trace:{dst}")
    return 0


def _is_converted(path: Path) -> bool:
    name = path.name.lower()
    return name.endswith(".json") or name.endswith(".json.gz")


def cmd_validate(args) -> int:
    path = Path(args.path)
    if _is_converted(path):
        report = validate_trace(Trace.load(path))
        kind = "converted trace"
    else:
        adapter = get_adapter(args.format or detect_format(path))
        records = rebase_and_sort(adapter.read_records(path))
        report = validate_records(records, known_gpu_models=known_gpu_model_names())
        kind = f"raw {adapter.format_name} trace"
        if adapter.skipped:
            report.warn(f"{adapter.skipped} source row(s) skipped: {adapter.skip_reasons}")
    print(f"{path} ({kind}): {report.summary()}")
    for message in report.errors:
        print(f"  ERROR: {message}")
    for message in report.warnings:
        print(f"  warning: {message}")
    hidden = report.error_count - len(report.errors)
    if hidden > 0:
        print(f"  ... and {hidden} more error(s)")
    return 0 if report.ok else 1


def cmd_stats(args) -> int:
    from ..workloads.ingest import load_trace_file

    path = Path(args.path)
    trace = load_trace_file(path)
    stats = trace.statistics()
    print(f"{path}: {len(trace)} task(s), horizon {trace.horizon / 3600.0:.1f}h")
    print("  metadata:")
    for key in sorted(trace.metadata):
        print(f"    {key}: {trace.metadata[key]}")
    print("  statistics:")
    for key, value in stats.as_dict().items():
        print(f"    {key}: {value}")
    orgs = sorted({t.org for t in trace.tasks})
    print(f"  organizations ({len(orgs)}): {', '.join(orgs[:10])}" + (" …" if len(orgs) > 10 else ""))
    return 0


# ----------------------------------------------------------------------
def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.experiments.cli trace",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    convert = sub.add_parser("convert", help="ingest an external trace into a replayable file")
    convert.add_argument("src", help="source trace (Philly/PAI CSV, generic CSV/JSONL)")
    convert.add_argument("dst", help="output path (.json or .json.gz)")
    convert.add_argument("--format", choices=sorted(ADAPTERS), default=None,
                         help="source format (default: sniff from suffix/header)")
    convert.add_argument("--window", default=None, metavar="START:END",
                         help="keep submissions inside this hour window, rebased to t=0")
    convert.add_argument("--arrival-scale", type=float, default=1.0, metavar="F",
                         help="arrival-rate multiplier (2.0 = twice the pressure)")
    convert.add_argument("--min-duration", type=float, default=None, metavar="SECONDS")
    convert.add_argument("--max-duration", type=float, default=None, metavar="SECONDS")
    convert.add_argument("--top-orgs", type=int, default=None, metavar="K",
                         help="keep the K largest orgs by GPU-time, fold the rest")
    convert.add_argument("--other-name", default="other",
                         help="org name the folded tail is consolidated under")
    convert.add_argument("--sample", type=float, default=1.0, metavar="FRAC",
                         help="seeded downsampling fraction in (0, 1]")
    convert.add_argument("--sample-seed", type=int, default=0)
    convert.add_argument("--fleet-model", default=None, metavar="MODELS",
                         help="comma-separated fleet GPU models to remap onto (e.g. A100)")
    convert.add_argument("--map", action="append", default=[], metavar="SRC=DST",
                         help="extra GPU model remapping (repeatable; DST 'none' = agnostic)")
    convert.add_argument("--history-hours", type=int, default=14 * 24,
                         help="length of the reconstructed per-org demand history")
    convert.add_argument("--history-seed", type=int, default=0)
    convert.add_argument("--cluster-gpus", type=float, default=None,
                         help="clip the reconstructed fluid demand at this capacity")
    convert.add_argument("--no-validate", action="store_true",
                         help="skip schema validation (still printed by `trace validate`)")
    convert.set_defaults(func=cmd_convert)

    validate = sub.add_parser("validate", help="validate a raw or converted trace")
    validate.add_argument("path")
    validate.add_argument("--format", choices=sorted(ADAPTERS), default=None)
    validate.set_defaults(func=cmd_validate)

    stats = sub.add_parser("stats", help="print metadata and calibration statistics")
    stats.add_argument("path")
    stats.set_defaults(func=cmd_stats)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
