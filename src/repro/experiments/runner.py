"""In-process helpers for running scheduler-vs-workload simulation experiments.

This is the factory-callable path: build a scheduler from an arbitrary
Python callable and run it over a freshly generated trace, all in the
current process.  It remains the friendliest API for notebooks, tests and
custom schedulers that are not expressible as picklable specs.  The paper
table runners and the CLI instead go through
:mod:`repro.experiments.engine`, which represents the same grid cells as
declarative job specs so they can fan out across worker processes and be
memoised in the on-disk artifact cache; ``execute_job`` there produces
metrics identical to :func:`run_one` for equivalent parameters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Mapping, Optional

from ..cluster import SimulationMetrics, run_simulation
from ..core import GFSConfig, GFSScheduler, make_ablation
from ..schedulers import (
    ChronusScheduler,
    FGDScheduler,
    LyraScheduler,
    Scheduler,
    YarnCSScheduler,
)
from ..workloads import Trace
from .config import ExperimentScale

#: Factory signature: receives the trace (for demand history) and returns a scheduler.
SchedulerFactory = Callable[[Trace], Scheduler]


def baseline_factories() -> Dict[str, SchedulerFactory]:
    """The four baseline schedulers of the Table 5 comparison."""
    return {
        "YARN-CS": lambda trace: YarnCSScheduler(),
        "Chronus": lambda trace: ChronusScheduler(),
        "Lyra": lambda trace: LyraScheduler(),
        "FGD": lambda trace: FGDScheduler(),
    }


def gfs_factory(config: Optional[GFSConfig] = None) -> SchedulerFactory:
    """Factory for the full GFS scheduler."""
    return lambda trace: GFSScheduler(config or GFSConfig(), org_history=trace.org_history)


def gfs_variant_factory(variant: str, config: Optional[GFSConfig] = None) -> SchedulerFactory:
    """Factory for a GFS ablation variant (gfs-e, gfs-d, gfs-s, gfs-p, gfs-sp)."""
    return lambda trace: make_ablation(variant, config=config, org_history=trace.org_history)


@dataclass
class ExperimentResult:
    """Metrics of one scheduler under one workload."""

    scheduler: str
    workload: str
    metrics: SimulationMetrics

    def as_row(self) -> Dict[str, float]:
        return {
            "hp_jct_p99": self.metrics.hp.jct_p99,
            "hp_jct": self.metrics.hp.jct_mean,
            "hp_jqt": self.metrics.hp.jqt_mean,
            "spot_jct": self.metrics.spot.jct_mean,
            "spot_jqt": self.metrics.spot.jqt_mean,
            "spot_eviction": self.metrics.spot.eviction_rate,
            "allocation_rate": self.metrics.allocation_rate_mean,
        }


@dataclass
class ComparisonResults:
    """Results of a scheduler sweep for one workload level."""

    workload: str
    results: Dict[str, ExperimentResult] = field(default_factory=dict)

    def rows(self) -> Dict[str, Dict[str, float]]:
        return {name: r.as_row() for name, r in self.results.items()}


def run_one(
    scale: ExperimentScale,
    factory: SchedulerFactory,
    scheduler_name: str,
    workload_name: str = "medium",
    spot_scale: float = 2.0,
    seed_offset: int = 0,
) -> ExperimentResult:
    """Run one scheduler over one freshly generated trace."""
    trace = scale.build_trace(spot_scale=spot_scale, seed_offset=seed_offset)
    cluster = scale.build_cluster()
    scheduler = factory(trace)
    metrics = run_simulation(cluster, scheduler, trace.sorted_tasks(), scale.simulator_config())
    return ExperimentResult(scheduler=scheduler_name, workload=workload_name, metrics=metrics)


def run_sweep(
    scale: ExperimentScale,
    factories: Mapping[str, SchedulerFactory],
    workload_name: str,
    spot_scale: float,
    seed_offset: int = 0,
) -> ComparisonResults:
    """Run every scheduler in ``factories`` over the same workload level."""
    results = ComparisonResults(workload=workload_name)
    for name, factory in factories.items():
        results.results[name] = run_one(
            scale, factory, name, workload_name, spot_scale, seed_offset
        )
    return results
