"""Observation experiments: Table 1 and Figures 2, 3, 4, 5 and 8.

These regenerate the data behind Section 2.2's observations from synthetic
traces and a static-quota first-fit simulation of the production cluster.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from ..analysis.observations import (
    EvictionSeries,
    RequestCDFComparison,
    RuntimeDistribution,
    allocation_heatmap,
    compare_request_cdfs,
    demand_summary,
    heatmap_statistics,
    hourly_eviction_series,
    organization_demand_figure,
    runtime_distribution,
)
from ..analysis.reporting import format_table
from ..cluster import Cluster, run_simulation
from ..schedulers import YarnCSScheduler
from ..workloads import (
    PRODUCTION_FLEET,
    WorkloadConfig,
    SyntheticTraceGenerator,
    generate_legacy_2020_requests,
    generate_modern_2024_requests,
)
from .config import ExperimentScale, MEDIUM_SCALE


@dataclass
class ObservationResults:
    """All observation artefacts bundled together."""

    request_cdf: Optional[RequestCDFComparison] = None
    runtimes: Optional[RuntimeDistribution] = None
    org_demand: Dict[str, np.ndarray] = field(default_factory=dict)
    eviction_weeks: Dict[int, EvictionSeries] = field(default_factory=dict)
    heatmap_rates: Dict[str, float] = field(default_factory=dict)
    fleet_rates: Dict[str, float] = field(default_factory=dict)

    def report(self) -> str:
        parts = []
        if self.fleet_rates:
            parts.append(
                format_table(
                    ["GPU model", "Allocation rate (%)"],
                    [[m, r * 100] for m, r in self.fleet_rates.items()],
                    title="Table 1 (fleet allocation rates, pre-GFS baseline)",
                )
            )
        if self.request_cdf:
            parts.append(
                "Figure 2: partial-card share 2020 = "
                f"{self.request_cdf.legacy_partial_fraction * 100:.1f}%, "
                f"full-card share 2024 = {self.request_cdf.modern_full_card_fraction * 100:.1f}%, "
                f"full-node share 2024 = {self.request_cdf.modern_full_node_fraction * 100:.1f}%"
            )
        if self.runtimes:
            parts.append(
                "Figure 3: runtime p50/p90/p99 = "
                f"{self.runtimes.runtime_p50 / 3600:.1f}h / {self.runtimes.runtime_p90 / 3600:.1f}h / "
                f"{self.runtimes.runtime_p99 / 3600:.1f}h; 8-GPU vs 1-GPU queue ratio = "
                f"{self.runtimes.queue_ratio():.1f}x"
            )
        if self.org_demand:
            summary = demand_summary(self.org_demand)
            parts.append(
                "Figure 4: "
                + ", ".join(
                    f"{org}: min={s['min']:.0f} max={s['max']:.0f}" for org, s in summary.items()
                )
            )
        for week, series in self.eviction_weeks.items():
            parts.append(
                f"Figure 5 week {week}: eviction max={series.max_rate * 100:.1f}% "
                f"median={series.median_rate * 100:.1f}% min={series.min_rate * 100:.1f}%"
            )
        if self.heatmap_rates:
            parts.append(
                "Figure 8: "
                + ", ".join(f"{c}: {r * 100:.1f}%" for c, r in self.heatmap_rates.items())
            )
        return "\n".join(parts)


def run_request_cdf_observation(samples: int = 5000, seed: int = 0) -> RequestCDFComparison:
    """Figure 2: 2020-vs-2024 GPU request CDFs."""
    return compare_request_cdfs(
        generate_legacy_2020_requests(samples, seed),
        generate_modern_2024_requests(samples, seed + 1),
    )


def run_runtime_observation(scale: Optional[ExperimentScale] = None) -> RuntimeDistribution:
    """Figure 3: running and queuing times under the legacy first-fit policy."""
    scale = scale or MEDIUM_SCALE
    trace = scale.build_trace(spot_scale=2.0)
    cluster = scale.build_cluster()
    run_simulation(cluster, YarnCSScheduler(), trace.sorted_tasks(), scale.simulator_config())
    return runtime_distribution(trace.tasks)


def run_eviction_observation(
    scale: Optional[ExperimentScale] = None, weeks: int = 4, spot_scale: float = 2.0
) -> Dict[int, EvictionSeries]:
    """Figure 5: hourly eviction-rate series over several simulated 'weeks'.

    Each week is an independent simulation under the static-quota first-fit
    policy, with a different random seed.
    """
    scale = scale or MEDIUM_SCALE
    series: Dict[int, EvictionSeries] = {}
    for week in range(1, weeks + 1):
        trace = scale.build_trace(spot_scale=spot_scale, seed_offset=week * 101)
        cluster = scale.build_cluster()
        run_simulation(cluster, YarnCSScheduler(), trace.sorted_tasks(), scale.simulator_config())
        series[week] = hourly_eviction_series(trace.tasks, int(scale.duration_hours) + 24)
    return series


def run_heatmap_observation(hours: int = 168, seed: int = 0) -> Dict[str, float]:
    """Figure 8: allocation-rate heatmaps of three A100 clusters."""
    demand = organization_demand_figure(hours=hours, seed=seed)
    # Three clusters of roughly 500 / 2000 / 1100 GPU cards (Figure 8).
    clusters = {"Cluster A": 8, "Cluster B": 31, "Cluster C": 17}
    cluster_demand = {
        "Cluster A": demand["org-A"] * 0.6,
        "Cluster B": (demand["org-B"] + demand["org-C"]) * 1.3,
        "Cluster C": demand["org-D"],
    }
    heatmaps = allocation_heatmap(cluster_demand, clusters, seed=seed)
    return heatmap_statistics(heatmaps)


def run_fleet_observation(
    fleet_scale: float = 0.03, duration_hours: float = 16.0, seed: int = 5
) -> Dict[str, float]:
    """Table 1: allocation rate per GPU model under the pre-GFS policy."""
    rates: Dict[str, float] = {}
    for entry in PRODUCTION_FLEET:
        nodes = max(2, int(round(entry.node_count * fleet_scale)))
        cluster_gpus = nodes * entry.gpus_per_node
        config = WorkloadConfig(
            cluster_gpus=float(cluster_gpus),
            duration_hours=duration_hours,
            spot_scale=1.0,
            seed=seed,
            gpu_model=entry.model,
            hp_target_utilization=entry.allocation_rate * 0.85,
            max_gpus_per_pod=float(entry.gpus_per_node),
        )
        trace = SyntheticTraceGenerator(config).generate()
        cluster = Cluster.homogeneous(nodes, entry.gpus_per_node, entry.model)
        metrics = run_simulation(cluster, YarnCSScheduler(), trace.sorted_tasks())
        rates[entry.model.value] = metrics.allocation_rate_mean
    return rates


def run_observations(scale: Optional[ExperimentScale] = None, quick: bool = True) -> ObservationResults:
    """Run every observation experiment and bundle the results."""
    scale = scale or MEDIUM_SCALE
    results = ObservationResults()
    results.request_cdf = run_request_cdf_observation()
    results.org_demand = organization_demand_figure()
    results.heatmap_rates = run_heatmap_observation()
    results.runtimes = run_runtime_observation(scale)
    results.eviction_weeks = run_eviction_observation(scale, weeks=2 if quick else 4)
    if not quick:
        results.fleet_rates = run_fleet_observation()
    return results


def main() -> None:  # pragma: no cover - CLI convenience
    print(run_observations().report())


if __name__ == "__main__":  # pragma: no cover
    main()
