"""Content-keyed on-disk result cache and artifact export.

The parallel experiment engine keys every simulation job by the SHA-256 of
its canonical *semantic* payload (see ``engine.cache_payload``): the
experiment scale, the scheduler spec, the seed, and the **resolved**
scenario parameterization — its overrides, fleet mix and materialised
organization mix, not just its name — salted with a cache format version.
Display labels and grid keys are excluded, so identical cells of the
scheduler x workload x seed matrix hit the cache across CLI invocations
and across experiments (Table 8's GFS/medium cell is Table 9's), while
editing or re-registering a scenario invalidates its entries.  ``cli all``
and repeated sweeps are therefore incremental: only cells whose
configuration changed are re-simulated.

Cache layout (``root`` defaults to ``.repro-cache/`` under the CWD)::

    <root>/<key[:2]>/<key>.json     one file per simulation result:
                                    {"key", "payload", "metrics", "created"}

``payload`` is the canonical job description (for debugging / auditing),
``metrics`` a full-fidelity serialization of :class:`SimulationMetrics`
(including the allocation-rate series, so a cache hit is indistinguishable
from a fresh run).

The module also exports grid results as JSON/CSV artifacts for plotting.
"""

from __future__ import annotations

import csv
import dataclasses
import enum
import hashlib
import io
import json
import logging
import time
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..cluster import ReliabilityMetrics, SimulationMetrics, TaskClassMetrics
from ..runtime import atomic_write_text

_LOG = logging.getLogger("repro.experiments.artifacts")

#: Bump when simulation semantics change in a way that invalidates results.
#: v2: SimulationMetrics gained the reliability bundle (cluster dynamics).
CACHE_VERSION = 2


# ----------------------------------------------------------------------
# Canonicalisation and keys
# ----------------------------------------------------------------------
def canonical_payload(obj: object) -> object:
    """Recursively convert ``obj`` into canonical JSON-able structures.

    Dataclasses become sorted dicts, enums their values, tuples lists;
    dict keys are stringified and sorted by :func:`json.dumps`.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            f.name: canonical_payload(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
    if isinstance(obj, enum.Enum):
        return canonical_payload(obj.value)
    if isinstance(obj, Mapping):
        return {str(k): canonical_payload(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [canonical_payload(v) for v in obj]
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    raise TypeError(f"cannot canonicalise {type(obj).__name__} for cache keying")


def content_key(payload: object, version: int = CACHE_VERSION) -> str:
    """SHA-256 hex key of a canonical payload (salted with the version)."""
    canonical = {"version": version, "payload": canonical_payload(payload)}
    text = json.dumps(canonical, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# Metrics (de)serialisation — full fidelity, unlike ``as_dict``
# ----------------------------------------------------------------------
def metrics_to_payload(metrics: SimulationMetrics) -> Dict[str, object]:
    """Serialise a metrics bundle losslessly to JSON-able structures."""
    return dataclasses.asdict(metrics)


def metrics_from_payload(payload: Mapping[str, object]) -> SimulationMetrics:
    """Rebuild a :class:`SimulationMetrics` from :func:`metrics_to_payload`."""
    data = dict(payload)
    hp = TaskClassMetrics(**data.pop("hp"))
    spot = TaskClassMetrics(**data.pop("spot"))
    reliability = ReliabilityMetrics(**(data.pop("reliability", None) or {}))
    return SimulationMetrics(hp=hp, spot=spot, reliability=reliability, **data)


# ----------------------------------------------------------------------
# The cache
# ----------------------------------------------------------------------
class ArtifactCache:
    """Content-addressed store of simulation results on the local disk."""

    def __init__(self, root: str | Path = ".repro-cache"):
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        #: corrupt entries moved aside by :meth:`load` this lifetime
        self.quarantined = 0

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def key_for(self, payload: object) -> str:
        """The content key a payload would be stored under."""
        return content_key(payload)

    def load(self, key: str) -> Optional[SimulationMetrics]:
        """Return the cached metrics for ``key``, or ``None`` on a miss.

        A corrupt or stale-format entry counts as a miss, but the file is
        *quarantined* (renamed to ``<name>.json.quarantined``) with a
        warning rather than silently deleted — the evidence survives for
        debugging (a truncated entry usually means a crashed writer or a
        bad disk) and the cell simply re-runs.
        """
        path = self._path(key)
        if not path.exists():
            self.misses += 1
            return None
        try:
            record = json.loads(path.read_text())
            metrics = metrics_from_payload(record["metrics"])
        except (ValueError, KeyError, TypeError) as exc:
            self._quarantine(path, exc)
            self.misses += 1
            return None
        self.hits += 1
        return metrics

    def _quarantine(self, path: Path, exc: Exception) -> None:
        target = path.with_name(path.name + ".quarantined")
        try:
            path.replace(target)
        except OSError:
            # Fall back to deleting: an unreadable entry must not be
            # served again either way.
            path.unlink(missing_ok=True)
            target = None
        self.quarantined += 1
        _LOG.warning(
            "corrupt cache entry %s treated as a miss (%s: %s)%s",
            path.name,
            type(exc).__name__,
            exc,
            f"; moved to {target.name}" if target is not None else "; deleted",
        )

    def store(self, key: str, metrics: SimulationMetrics, payload: object = None) -> Path:
        """Persist one result; returns the file it was written to.

        The write is atomic and durable (unique temp file + fsync +
        rename), so concurrent writers of the same key and crashes
        mid-store can never leave a torn entry behind.
        """
        path = self._path(key)
        record = {
            "key": key,
            "payload": canonical_payload(payload) if payload is not None else None,
            "metrics": metrics_to_payload(metrics),
            "created": time.time(),
        }
        atomic_write_text(path, json.dumps(record))
        return path

    def __contains__(self, key: str) -> bool:
        return self._path(key).exists()

    def __len__(self) -> int:
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))

    def clear(self) -> int:
        """Delete every cached entry; returns how many were removed."""
        removed = 0
        if self.root.exists():
            for path in self.root.glob("*/*.json"):
                path.unlink()
                removed += 1
        return removed


# ----------------------------------------------------------------------
# Grid artifact export
# ----------------------------------------------------------------------
#: Flat metric columns exported per grid cell.
EXPORT_COLUMNS: Tuple[str, ...] = (
    "hp_count",
    "hp_jct_mean",
    "hp_jct_p99",
    "hp_jqt_mean",
    "spot_count",
    "spot_jct_mean",
    "spot_jqt_mean",
    "spot_eviction_rate",
    "allocation_rate_mean",
    "makespan",
    "unfinished_tasks",
    "tasks_killed",
    "hp_tasks_killed",
    "restarts_per_task",
    "lost_gpu_hours",
    "goodput_gpu_hours",
    "paid_gpu_hours",
    "goodput_fraction",
)


def flatten_metrics(metrics: SimulationMetrics) -> Dict[str, float]:
    """One flat row of headline metrics for CSV/JSON export."""
    rel = metrics.reliability
    return {
        "hp_count": metrics.hp.count,
        "hp_jct_mean": metrics.hp.jct_mean,
        "hp_jct_p99": metrics.hp.jct_p99,
        "hp_jqt_mean": metrics.hp.jqt_mean,
        "spot_count": metrics.spot.count,
        "spot_jct_mean": metrics.spot.jct_mean,
        "spot_jqt_mean": metrics.spot.jqt_mean,
        "spot_eviction_rate": metrics.spot.eviction_rate,
        "allocation_rate_mean": metrics.allocation_rate_mean,
        "makespan": metrics.makespan,
        "unfinished_tasks": metrics.unfinished_tasks,
        "tasks_killed": rel.tasks_killed,
        "hp_tasks_killed": rel.hp_tasks_killed,
        "restarts_per_task": rel.restarts_per_task,
        "lost_gpu_hours": rel.lost_gpu_hours,
        "goodput_gpu_hours": rel.goodput_gpu_hours,
        "paid_gpu_hours": rel.paid_gpu_hours,
        "goodput_fraction": rel.goodput_fraction,
    }


def export_grid_json(
    rows: Sequence[Mapping[str, object]], path: str | Path
) -> Path:
    """Write grid rows (job descriptors + flat metrics) as a JSON artifact.

    Atomic (temp + rename): a crash mid-export — or a reader racing the
    writer — sees the previous complete artifact, never a torn one.
    """
    return atomic_write_text(path, json.dumps(list(rows), indent=2, sort_keys=True))


def export_grid_csv(rows: Sequence[Mapping[str, object]], path: str | Path) -> Path:
    """Write grid rows as a CSV artifact (union of all row keys as header).

    Rendered in memory and written atomically, like the JSON export.
    """
    fieldnames: List[str] = []
    for row in rows:
        for key in row:
            if key not in fieldnames:
                fieldnames.append(key)
    buffer = io.StringIO(newline="")
    writer = csv.DictWriter(buffer, fieldnames=fieldnames)
    writer.writeheader()
    for row in rows:
        writer.writerow(dict(row))
    return atomic_write_text(path, buffer.getvalue())
