"""Figure 10 and Table 7: forecasting accuracy of OrgLinear vs baselines."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence


from ..analysis.reporting import format_table
from ..core.gde import (
    FORECASTING_BASELINES,
    ForecastEvaluation,
    OrgLinear,
    OrgLinearConfig,
    build_window_dataset,
    evaluate_forecast,
    train_test_split_dataset,
)
from ..workloads import DEFAULT_HOLIDAYS, default_organizations, generate_org_demand_matrix


@dataclass
class ForecastingExperimentConfig:
    """Configuration of the forecasting comparison."""

    history_weeks: int = 8
    input_length: int = 168
    horizon: int = 24
    stride: int = 6
    test_fraction: float = 0.25
    seed: int = 0
    #: which baselines to run (defaults to all six of Figure 10)
    baselines: Sequence[str] = field(
        default_factory=lambda: list(FORECASTING_BASELINES)
    )
    orglinear_epochs: int = 60


@dataclass
class ForecastingResult:
    """Evaluation metrics per forecasting model."""

    evaluations: Dict[str, ForecastEvaluation] = field(default_factory=dict)

    def report(self) -> str:
        rows = []
        for name, ev in self.evaluations.items():
            d = ev.as_dict()
            rows.append(
                [
                    name,
                    d["MAE"],
                    d["MSE"],
                    d["RMSE"],
                    d["MAPE"],
                    d["0.9-MAQE"],
                    d["0.95-MAQE"],
                    d["training_time_s"],
                ]
            )
        return format_table(
            ["Model", "MAE", "MSE", "RMSE", "MAPE", "0.9-MAQE", "0.95-MAQE", "train(s)"],
            rows,
            title="Figure 10 / Table 7 (GPU demand forecasting accuracy)",
            float_format="{:,.4f}",
        )

    def best_model(self, metric: str = "mae") -> str:
        return min(self.evaluations, key=lambda name: getattr(self.evaluations[name], metric))


def build_forecasting_datasets(config: Optional[ForecastingExperimentConfig] = None):
    """Generate the per-organization demand series and train/test windows."""
    config = config or ForecastingExperimentConfig()
    organizations = default_organizations(config.seed)
    hours = config.history_weeks * 168
    history = generate_org_demand_matrix(organizations, hours, seed=config.seed)
    attributes = {o.name: o.business_attributes() for o in organizations}
    dataset = build_window_dataset(
        history,
        attributes,
        input_length=config.input_length,
        horizon=config.horizon,
        stride=config.stride,
        holidays=set(DEFAULT_HOLIDAYS),
    )
    return train_test_split_dataset(dataset, config.test_fraction)


def run_forecasting_experiment(
    config: Optional[ForecastingExperimentConfig] = None,
) -> ForecastingResult:
    """Regenerate the Figure 10 comparison and the Table 7 quantile metrics."""
    config = config or ForecastingExperimentConfig()
    train, test = build_forecasting_datasets(config)
    y_true = test.arrays()["Y"]
    result = ForecastingResult()

    orglinear = OrgLinear(
        OrgLinearConfig(
            input_length=config.input_length,
            horizon=config.horizon,
            epochs=config.orglinear_epochs,
            seed=config.seed,
        )
    ).fit(train)
    mu, sigma = orglinear.predict(test)
    result.evaluations["OrgLinear"] = evaluate_forecast(y_true, mu, sigma, orglinear.training_time)

    for name in config.baselines:
        model_cls = FORECASTING_BASELINES[name]
        model = model_cls()
        model.fit(train)
        mu, sigma = model.predict(test)
        result.evaluations[name] = evaluate_forecast(y_true, mu, sigma, model.training_time)
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    print(run_forecasting_experiment().report())


if __name__ == "__main__":  # pragma: no cover
    main()
