"""Table 6: sensitivity of spot SLOs to the guarantee hours H."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

from ..analysis.reporting import format_table
from .config import ExperimentScale, MEDIUM_SCALE
from .engine import ExperimentEngine, WorkloadSpec, gfs_spec, sweep_jobs
from .runner import ExperimentResult


@dataclass
class Table6Result:
    """Metrics of GFS under different guarantee-hour settings."""

    per_horizon: Dict[float, ExperimentResult] = field(default_factory=dict)

    def report(self) -> str:
        rows = []
        for hours, result in sorted(self.per_horizon.items()):
            row = result.as_row()
            rows.append(
                [
                    hours,
                    row["hp_jct"],
                    row["hp_jqt"],
                    row["spot_jct"],
                    row["spot_jqt"],
                    row["spot_eviction"] * 100,
                ]
            )
        return format_table(
            ["H", "HP JCT(s)", "HP JQT(s)", "Spot JCT(s)", "Spot JQT(s)", "Spot e(%)"],
            rows,
            title="Table 6 (guarantee hours sensitivity, medium spot workload)",
        )


def run_table6(
    scale: Optional[ExperimentScale] = None,
    guarantee_hours: Sequence[float] = (1.0, 2.0, 4.0),
    spot_scale: float = 2.0,
    engine: Optional[ExperimentEngine] = None,
) -> Table6Result:
    """Regenerate Table 6: sweep the guarantee duration H."""
    scale = scale or MEDIUM_SCALE
    engine = engine or ExperimentEngine()
    specs = [
        gfs_spec(label=f"GFS(H={hours:g})", guarantee_hours=hours)
        for hours in guarantee_hours
    ]
    workload = WorkloadSpec(spot_scale=spot_scale, label="medium")
    metrics = engine.run(sweep_jobs(scale, specs, [workload], prefix="table6"))
    result = Table6Result()
    for hours, spec in zip(guarantee_hours, specs):
        result.per_horizon[hours] = ExperimentResult(
            scheduler=spec.display,
            workload="medium",
            metrics=metrics[f"table6/medium/{spec.display}"],
        )
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    print(run_table6().report())


if __name__ == "__main__":  # pragma: no cover
    main()
