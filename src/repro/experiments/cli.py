"""Command-line entry point for regenerating the paper's experiments.

Usage::

    python -m repro.experiments.cli table5 --scale small
    python -m repro.experiments.cli table6 table8 table9 table10 --workers 4
    python -m repro.experiments.cli fig10 fig9 observations
    python -m repro.experiments.cli all --scale medium --workers 8
    python -m repro.experiments.cli sweep --scenario burst --workers 8
    python -m repro.experiments.cli sweep --scenario trace:philly.json.gz
    python -m repro.experiments.cli sweep --scenario node_churn --workers 4
    python -m repro.experiments.cli sweep --scenario default --dynamics spot_reclaim_storm
    python -m repro.experiments.cli sweep --scenario burst --journal sweep.journal
    python -m repro.experiments.cli sweep --scenario burst --resume sweep.journal
    python -m repro.experiments.cli sweep --scenario burst --progress --telemetry events.jsonl
    python -m repro.experiments.cli sweep --scenario burst --workers 4 --metrics-port 9464
    python -m repro.experiments.cli scenarios
    python -m repro.experiments.cli trace convert philly.csv philly.json.gz
    python -m repro.experiments.cli serve --port 8151
    python -m repro.experiments.cli profile --tier smoke --check-overhead
    python -m repro.experiments.cli trace-viz --scenario node_churn --trace-out trace.json

Each experiment prints the same rows as the corresponding table/figure of
the paper (the README's "Paper tables and figures" section maps each artifact
to its runner and benchmark file).  ``sweep`` runs the scheduler line-up over
any scenario from the workload scenario library; ``scenarios`` lists the
catalog.  ``--workers N`` fans the scheduler x workload grid out across N
worker processes (results are bit-identical at any worker count), and
``--cache-dir`` memoises finished cells on disk so re-runs are incremental.
``--out DIR`` exports reports plus a JSON/CSV grid of every simulated cell.
Execution is fault-tolerant: ``--journal PATH`` records completed cells
in a crash-safe write-ahead journal so ``--resume PATH`` (or simply
re-invoking) skips them after any interruption — Ctrl-C, a crash, even
``kill -9`` — with bit-identical results; ``--job-timeout``/``--retries``
bound each cell and ``--tolerate-failures`` turns exhausted cells into
reported failures instead of a non-zero exit (see
``docs/fault_tolerance.md``).
Sweeps are observable live: ``--progress`` renders a TTY progress bar,
``--telemetry PATH`` appends structured JSON-lines events (job
lifecycle, cache/journal hits, rate/ETA, sweep summary) and
``--metrics-port N`` serves Prometheus aggregates while the run lasts
(see ``docs/observability.md``).
The ``trace`` group (``trace convert``/``validate``/``stats``) ingests
external cluster traces; converted traces replay through any grid
experiment via ``trace:<path>`` scenario refs.  ``--dynamics <preset>``
attaches cluster dynamics (node failures, maintenance drains, elastic
capacity — see ``docs/reliability.md``) to a sweep over any scenario,
including trace replays.  See ``docs/experiments.md`` for the full
cookbook and ``docs/traces.md`` for trace ingestion.  ``serve`` starts
the streaming scheduler service — live simulation sessions over
HTTP/JSON with incremental stepping, snapshot/restore and what-if
placement advice (see ``docs/service.md``).
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional

from ..analysis.reporting import format_scheduler_table
from ..dynamics import dynamics_names, get_dynamics
from ..obs.logging import new_run_id
from ..obs.telemetry import (
    JsonlSink,
    MetricsServer,
    PrometheusSink,
    TelemetryBus,
    TTYProgressSink,
)
from ..workloads import get_scenario, iter_scenarios
from .ablation import run_table10, run_table8, run_table9
from .artifacts import ArtifactCache, export_grid_csv, export_grid_json
from .comparison import run_table5
from .config import ExperimentScale, scale_by_name
from .deployment import paper_reference_benefit, run_deployment_experiment
from ..runtime import JobGuard, SweepError
from .engine import (
    ExperimentEngine,
    SchedulerSpec,
    WorkloadSpec,
    comparison_specs,
    sweep_jobs,
)
from .forecasting import run_forecasting_experiment
from .observations import run_observations
from .runner import ExperimentResult
from .sensitivity import run_table6

#: Engine used by the grid-backed runners of the current ``main`` call.
#: ``None`` means each runner builds its own serial engine.
_ACTIVE_ENGINE: Optional[ExperimentEngine] = None


def _engine() -> Optional[ExperimentEngine]:
    return _ACTIVE_ENGINE


def _run_table5(scale: ExperimentScale) -> str:
    return run_table5(scale, engine=_engine()).report()


def _run_table6(scale: ExperimentScale) -> str:
    return run_table6(scale, engine=_engine()).report()


def _run_table8(scale: ExperimentScale) -> str:
    return run_table8(scale, engine=_engine()).report()


def _run_table9(scale: ExperimentScale) -> str:
    return run_table9(scale, engine=_engine()).report()


def _run_table10(scale: ExperimentScale) -> str:
    return run_table10(scale, engine=_engine()).report()


def _run_fig10(scale: ExperimentScale) -> str:
    return run_forecasting_experiment().report()


def _run_fig9(scale: ExperimentScale) -> str:
    report = run_deployment_experiment().report()
    reference = paper_reference_benefit()
    return report + (
        f"\nPaper-reported operating points priced with the same model: "
        f"${reference.monthly_gain_usd:,.0f}/month"
    )


def _run_observations(scale: ExperimentScale) -> str:
    return run_observations(scale).report()


EXPERIMENTS: Dict[str, Callable[[ExperimentScale], str]] = {
    "table5": _run_table5,
    "table6": _run_table6,
    "table8": _run_table8,
    "table9": _run_table9,
    "table10": _run_table10,
    "fig10": _run_fig10,
    "table7": _run_fig10,
    "fig9": _run_fig9,
    "observations": _run_observations,
}


def _list_scenarios() -> str:
    lines = ["Workload scenario library (cli sweep --scenario <name>):", ""]
    for scenario in iter_scenarios():
        marker = "*" if scenario.dynamics is not None else " "
        lines.append(f" {marker} {scenario.name:20s} {scenario.summary}")
    lines.append("")
    lines.append("  * = chaos scenario with cluster dynamics attached")
    lines.append(
        "Dynamics presets (sweep --dynamics <name>, composable with any "
        f"scenario): {', '.join(dynamics_names())}"
    )
    lines.append("Catalog with every knob each scenario turns: docs/workloads.md")
    lines.append("Dynamics event model and determinism contract: docs/reliability.md")
    return "\n".join(lines)


def _run_scenario_sweep(scale: ExperimentScale, args, engine: ExperimentEngine) -> str:
    """Run the scheduler line-up over one named scenario."""
    scenario = get_scenario(args.scenario)
    dynamics = get_dynamics(args.dynamics) if args.dynamics else scenario.dynamics
    # The sweep line-up adds the standalone PTS family to the paper's
    # Table 5 set (the tables themselves keep the paper's line-up).
    specs = comparison_specs(include_gfs=True) + [SchedulerSpec(kind="pts")]
    if args.schedulers:
        wanted = {name.strip().lower() for name in args.schedulers.split(",")}
        specs = [s for s in specs if s.display.lower() in wanted or s.kind in wanted]
        if not specs:
            raise SystemExit(f"no scheduler matches --schedulers {args.schedulers!r}")
    workloads = [
        WorkloadSpec(
            scenario=scenario.name,
            spot_scale=args.spot_scale,
            seed_offset=seed_offset,
            label=scenario.name,
            dynamics=args.dynamics or "",
        )
        for seed_offset in range(args.seeds)
    ]
    metrics = engine.run(sweep_jobs(scale, specs, workloads, prefix="sweep"))

    sections = [f"Scenario: {scenario.name} — {scenario.summary}"]
    if dynamics is not None:
        sections[0] += f"\nDynamics: {dynamics.name} (see docs/reliability.md)"
    for workload in workloads:
        rows = {}
        failed = []
        for spec in specs:
            suffix = f"+s{workload.seed_offset}" if workload.seed_offset else ""
            key = f"sweep/{workload.display}{suffix}/{spec.display}"
            if key not in metrics:
                # Cell exhausted its retry budget (--tolerate-failures);
                # report it instead of crashing the table.
                failure = engine.failures.get(key)
                failed.append(f"  FAILED {key}: " + (failure.summary() if failure else "no result"))
                continue
            rows[spec.display] = ExperimentResult(
                scheduler=spec.display,
                workload=workload.display,
                metrics=metrics[key],
            ).as_row()
        title = f"Sweep ({scenario.name}, spot x{args.spot_scale:g}"
        if args.seeds > 1:
            title += f", seed offset {workload.seed_offset}"
        section = format_scheduler_table(rows, title=title + ")") if rows else title + ")"
        if failed:
            section += "\n" + "\n".join(failed)
        sections.append(section)
    return "\n\n".join(sections)


def _export_artifacts(out_dir: Path, reports: Dict[str, str], engine: ExperimentEngine) -> None:
    out_dir.mkdir(parents=True, exist_ok=True)
    for name, report in reports.items():
        (out_dir / f"{name}.txt").write_text(report + "\n")
    rows = engine.grid_rows()
    if rows:
        export_grid_json(rows, out_dir / "grid.json")
        export_grid_csv(rows, out_dir / "grid.csv")
    print(f"[artifacts written to {out_dir}: {len(reports)} report(s), {len(rows)} grid row(s)]")


def main(argv: List[str] | None = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] == "trace":
        # The trace ingestion group has its own option surface; hand it
        # off before the experiment parser rejects its flags.
        from .trace_cli import main as trace_main

        return trace_main(argv[1:])
    if argv and argv[0] == "serve":
        # The streaming scheduler service likewise owns its options
        # (--host/--port); see docs/service.md.
        from ..service.cli import main as serve_main

        return serve_main(argv[1:])
    if argv and argv[0] in ("profile", "trace-viz"):
        # Observability commands: self-profiler and Chrome-trace export
        # (see docs/observability.md).
        from ..obs.cli import main as obs_main

        return obs_main(argv)
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        choices=sorted(EXPERIMENTS) + ["all", "sweep", "scenarios"],
        help="experiments to regenerate, 'sweep' for a scenario sweep, "
        "'scenarios' to list the scenario library",
    )
    parser.add_argument("--scale", default="small", help="small, medium or full")
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for grid experiments (1 = serial reference path)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="directory of the on-disk result cache (enables incremental re-runs)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the result cache even if --cache-dir is set",
    )
    parser.add_argument(
        "--out", default=None, help="export reports plus a JSON/CSV grid to this directory"
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="attach the observability recorder to every simulated cell and "
        "add obs_* profile columns to the exported grid (see docs/observability.md)",
    )
    parser.add_argument("--scenario", default="default", help="scenario name for 'sweep'")
    parser.add_argument(
        "--dynamics",
        default=None,
        choices=dynamics_names(),
        help="attach a cluster-dynamics preset to 'sweep'; overrides the "
        "scenario's own dynamics (see docs/reliability.md)",
    )
    parser.add_argument(
        "--spot-scale",
        type=float,
        default=2.0,
        help="spot submission multiplier for 'sweep' (1=low, 2=medium, 4=high)",
    )
    parser.add_argument(
        "--seeds", type=int, default=1, help="number of seed offsets for 'sweep'"
    )
    parser.add_argument(
        "--schedulers",
        default=None,
        help="comma-separated scheduler subset for 'sweep' (e.g. GFS,YARN-CS)",
    )
    parser.add_argument(
        "--nodes", type=int, default=None, help="override the scale's node count"
    )
    parser.add_argument(
        "--hours", type=float, default=None, help="override the scale's duration (hours)"
    )
    parser.add_argument(
        "--journal",
        default=None,
        metavar="PATH",
        help="write-ahead sweep journal: completed cells are durably recorded "
        "and re-invoking with the same journal (or --resume) skips them, "
        "even after a crash or kill -9 (see docs/fault_tolerance.md)",
    )
    parser.add_argument(
        "--resume",
        default=None,
        metavar="PATH",
        help="resume from an existing sweep journal (alias for --journal; "
        "completed cells replay bit-identically, the rest run)",
    )
    parser.add_argument(
        "--job-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-cell deadline; an expired cell's worker pool is killed and "
        "rebuilt, the cell retries (requires --workers >= 2)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=2,
        metavar="N",
        help="re-executions allowed per failing cell before it is reported "
        "as a structured failure (default 2, deterministic backoff)",
    )
    parser.add_argument(
        "--tolerate-failures",
        action="store_true",
        help="finish the grid and exit 0 even if cells exhausted their retry "
        "budget (failed cells are reported and absent from exports); "
        "default is to finish the grid, then exit 1",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="live sweep progress on stderr (ANSI bar on a TTY, plain "
        "throttled lines otherwise) driven by the telemetry bus",
    )
    parser.add_argument(
        "--telemetry",
        default=None,
        metavar="PATH",
        help="append every structured telemetry event (job lifecycle, "
        "cache/journal hits, progress, sweep summary) to PATH as JSON "
        "lines; validate with 'python -m repro.obs.telemetry validate'",
    )
    parser.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        metavar="PORT",
        help="serve live sweep aggregates in Prometheus exposition format "
        "on 127.0.0.1:PORT while the run lasts (0 picks a free port)",
    )
    args = parser.parse_args(argv)

    scale = scale_by_name(args.scale)
    if args.nodes is not None or args.hours is not None:
        from dataclasses import replace

        scale = replace(
            scale,
            name=f"{scale.name}*",
            num_nodes=args.nodes if args.nodes is not None else scale.num_nodes,
            duration_hours=args.hours if args.hours is not None else scale.duration_hours,
        )

    cache = None
    if args.cache_dir and not args.no_cache:
        cache = ArtifactCache(args.cache_dir)
    guard = JobGuard(
        timeout_s=args.job_timeout,
        retries=max(0, args.retries),
        strict=not args.tolerate_failures,
    )
    journal = args.resume or args.journal

    telemetry = None
    metrics_server = None
    if args.progress or args.telemetry or args.metrics_port is not None:
        sinks = []
        if args.progress:
            sinks.append(TTYProgressSink())
        if args.telemetry:
            sinks.append(JsonlSink(args.telemetry))
        if args.metrics_port is not None:
            prom = PrometheusSink()
            sinks.append(prom)
            metrics_server = MetricsServer(prom, port=args.metrics_port)
            metrics_server.start()
            print(f"[metrics: http://127.0.0.1:{metrics_server.port}/metrics]")
        telemetry = TelemetryBus(run_id=new_run_id("sweep"), sinks=sinks)

    engine = ExperimentEngine(
        workers=args.workers,
        cache=cache,
        profile=args.profile,
        guard=guard,
        journal=journal,
        telemetry=telemetry,
    )

    if "all" in args.experiments:
        names = sorted(EXPERIMENTS)
    else:
        names = args.experiments

    global _ACTIVE_ENGINE
    _ACTIVE_ENGINE = engine
    reports: Dict[str, str] = {}
    interrupted = False
    sweep_failures = []
    try:
        for name in names:
            start = time.perf_counter()
            print(f"===== {name} (scale={scale.name}) =====")
            if name == "scenarios":
                report = _list_scenarios()
            elif name == "sweep":
                report = _run_scenario_sweep(scale, args, engine)
            else:
                report = EXPERIMENTS[name](scale)
            reports[name.replace("/", "_")] = report
            print(report)
            print(f"[{name} finished in {time.perf_counter() - start:.1f}s]\n")
    except KeyboardInterrupt:
        # Graceful drain already happened inside the engine: in-flight
        # cells finished and were journaled/cached.  Flush what we have
        # and tell the user how to pick the sweep back up.
        interrupted = True
        print("\n[interrupted: draining finished; flushing partial results]")
    except SweepError as err:
        # The rest of the grid completed (and was journaled/cached)
        # before this was raised; report and exit non-zero.
        sweep_failures = err.failures
    finally:
        _ACTIVE_ENGINE = None
        if telemetry is not None:
            telemetry.close()
        if metrics_server is not None:
            metrics_server.stop()

    if engine.stats.total or engine.stats.failed:
        parts = [
            f"{engine.stats.executed} simulated",
            f"{engine.stats.cache_hits} from cache",
        ]
        if engine.journal is not None:
            parts.append(f"{engine.stats.journal_hits} from journal")
        if engine.stats.failed:
            parts.append(f"{engine.stats.failed} FAILED")
        print(f"[engine: {', '.join(parts)}, workers={engine.workers}]")
    if args.out:
        _export_artifacts(Path(args.out), reports, engine)
    if sweep_failures and not interrupted:
        print(f"\n{len(sweep_failures)} cell(s) exhausted their retry budget:")
        for failure in sweep_failures:
            print(f"  {failure.summary()}")
        print("(tracebacks are recorded in the journal; see docs/fault_tolerance.md)")
        return 1
    if interrupted:
        if engine.journal is not None:
            print(f"[resume with: --resume {engine.journal.path}]")
        return 130
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
