"""Command-line entry point for regenerating the paper's experiments.

Usage::

    python -m repro.experiments.cli table5 --scale small
    python -m repro.experiments.cli table6 table8 table9 table10
    python -m repro.experiments.cli fig10 fig9 observations
    python -m repro.experiments.cli all --scale medium

Each experiment prints the same rows as the corresponding table/figure of
the paper (the README's "Paper tables and figures" section maps each artifact
to its runner and benchmark file).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict, List

from .ablation import run_table10, run_table8, run_table9
from .comparison import run_table5
from .config import ExperimentScale, scale_by_name
from .deployment import paper_reference_benefit, run_deployment_experiment
from .forecasting import run_forecasting_experiment
from .observations import run_observations
from .sensitivity import run_table6


def _run_table5(scale: ExperimentScale) -> str:
    return run_table5(scale).report()


def _run_table6(scale: ExperimentScale) -> str:
    return run_table6(scale).report()


def _run_table8(scale: ExperimentScale) -> str:
    return run_table8(scale).report()


def _run_table9(scale: ExperimentScale) -> str:
    return run_table9(scale).report()


def _run_table10(scale: ExperimentScale) -> str:
    return run_table10(scale).report()


def _run_fig10(scale: ExperimentScale) -> str:
    return run_forecasting_experiment().report()


def _run_fig9(scale: ExperimentScale) -> str:
    report = run_deployment_experiment().report()
    reference = paper_reference_benefit()
    return report + (
        f"\nPaper-reported operating points priced with the same model: "
        f"${reference.monthly_gain_usd:,.0f}/month"
    )


def _run_observations(scale: ExperimentScale) -> str:
    return run_observations(scale).report()


EXPERIMENTS: Dict[str, Callable[[ExperimentScale], str]] = {
    "table5": _run_table5,
    "table6": _run_table6,
    "table8": _run_table8,
    "table9": _run_table9,
    "table10": _run_table10,
    "fig10": _run_fig10,
    "table7": _run_fig10,
    "fig9": _run_fig9,
    "observations": _run_observations,
}


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument(
        "experiments",
        nargs="+",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="which experiments to regenerate",
    )
    parser.add_argument("--scale", default="small", help="small, medium or full")
    args = parser.parse_args(argv)

    scale = scale_by_name(args.scale)
    names = sorted(EXPERIMENTS) if "all" in args.experiments else args.experiments
    for name in names:
        start = time.perf_counter()
        print(f"===== {name} (scale={scale.name}) =====")
        print(EXPERIMENTS[name](scale))
        print(f"[{name} finished in {time.perf_counter() - start:.1f}s]\n")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
