"""Table 5: scheduling comparison against four baselines over three spot workloads."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..analysis.reporting import format_scheduler_table, improvement_row
from ..workloads import SpotWorkloadLevel, all_levels, spot_scale
from .config import ExperimentScale, MEDIUM_SCALE
from .runner import ComparisonResults, baseline_factories, gfs_factory, run_sweep


@dataclass
class Table5Result:
    """All rows of Table 5: one comparison per spot workload level."""

    per_workload: Dict[str, ComparisonResults] = field(default_factory=dict)

    def report(self) -> str:
        sections = []
        for level, results in self.per_workload.items():
            rows = results.rows()
            sections.append(
                format_scheduler_table(rows, title=f"Table 5 ({level} spot workload)")
            )
            improvements = improvement_row(rows)
            if improvements:
                formatted = ", ".join(
                    f"{metric}: {value * 100:+.1f}%" for metric, value in improvements.items()
                )
                sections.append(f"GFS vs best baseline -> {formatted}")
            sections.append("")
        return "\n".join(sections)


def run_table5(
    scale: Optional[ExperimentScale] = None,
    levels: Optional[list[SpotWorkloadLevel]] = None,
    include_gfs: bool = True,
) -> Table5Result:
    """Regenerate Table 5 at the given scale."""
    scale = scale or MEDIUM_SCALE
    levels = levels or all_levels()
    factories = baseline_factories()
    if include_gfs:
        factories["GFS"] = gfs_factory()
    result = Table5Result()
    for level in levels:
        result.per_workload[level.value] = run_sweep(
            scale, factories, workload_name=level.value, spot_scale=spot_scale(level)
        )
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    print(run_table5().report())


if __name__ == "__main__":  # pragma: no cover
    main()
