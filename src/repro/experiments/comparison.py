"""Table 5: scheduling comparison against four baselines over three spot workloads."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..analysis.reporting import format_scheduler_table, improvement_row
from ..workloads import SpotWorkloadLevel, all_levels, spot_scale
from .config import ExperimentScale, MEDIUM_SCALE
from .engine import ExperimentEngine, WorkloadSpec, comparison_specs, sweep_jobs
from .runner import ComparisonResults, ExperimentResult


@dataclass
class Table5Result:
    """All rows of Table 5: one comparison per spot workload level."""

    per_workload: Dict[str, ComparisonResults] = field(default_factory=dict)

    def report(self) -> str:
        sections = []
        for level, results in self.per_workload.items():
            rows = results.rows()
            sections.append(
                format_scheduler_table(rows, title=f"Table 5 ({level} spot workload)")
            )
            improvements = improvement_row(rows)
            if improvements:
                formatted = ", ".join(
                    f"{metric}: {value * 100:+.1f}%" for metric, value in improvements.items()
                )
                sections.append(f"GFS vs best baseline -> {formatted}")
            sections.append("")
        return "\n".join(sections)


def run_table5(
    scale: Optional[ExperimentScale] = None,
    levels: Optional[list[SpotWorkloadLevel]] = None,
    include_gfs: bool = True,
    engine: Optional[ExperimentEngine] = None,
) -> Table5Result:
    """Regenerate Table 5 at the given scale.

    The scheduler x workload grid runs through the experiment engine, so
    passing an ``engine`` with ``workers > 1`` parallelises the 12-15
    simulations across processes (and caches them, if configured).
    """
    scale = scale or MEDIUM_SCALE
    levels = levels or all_levels()
    engine = engine or ExperimentEngine()
    specs = comparison_specs(include_gfs=include_gfs)
    workloads = [
        WorkloadSpec(spot_scale=spot_scale(level), label=level.value) for level in levels
    ]
    metrics = engine.run(sweep_jobs(scale, specs, workloads, prefix="table5"))
    result = Table5Result()
    for level in levels:
        results = ComparisonResults(workload=level.value)
        for spec in specs:
            key = f"table5/{level.value}/{spec.display}"
            results.results[spec.display] = ExperimentResult(
                scheduler=spec.display, workload=level.value, metrics=metrics[key]
            )
        result.per_workload[level.value] = results
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    print(run_table5().report())


if __name__ == "__main__":  # pragma: no cover
    main()
