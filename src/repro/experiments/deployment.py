"""Figure 9: production deployment before/after comparison and monthly benefit.

The paper reports per-GPU-model spot eviction rates and allocation rates
before (Jan 2024) and after (Oct 2024) deploying GFS, plus a ~$459,715
monthly benefit.  We reproduce the experiment by simulating each GPU model
partition of the Table 1 fleet twice — once under the pre-GFS policy
(first-fit with a static spot quota, approximated by YARN-CS) and once
under GFS — and by pricing the allocation/eviction changes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..analysis.economics import DeploymentBenefit, estimate_deployment_benefit
from ..analysis.reporting import format_table
from ..cluster import Cluster, GPUModel, run_simulation
from ..core import GFSScheduler
from ..schedulers import YarnCSScheduler
from ..workloads import WorkloadConfig, SyntheticTraceGenerator, scaled_fleet


@dataclass
class ModelDeploymentOutcome:
    """Pre/post metrics for one GPU model partition."""

    model: GPUModel
    eviction_before: float
    eviction_after: float
    allocation_before: float
    allocation_after: float


@dataclass
class DeploymentResult:
    """The full Figure 9 result plus the economic estimate."""

    per_model: Dict[GPUModel, ModelDeploymentOutcome] = field(default_factory=dict)
    benefit: Optional[DeploymentBenefit] = None

    def report(self) -> str:
        rows = []
        for model, outcome in self.per_model.items():
            rows.append(
                [
                    model.value,
                    outcome.eviction_before * 100,
                    outcome.eviction_after * 100,
                    outcome.allocation_before * 100,
                    outcome.allocation_after * 100,
                ]
            )
        table = format_table(
            ["GPU", "evict pre(%)", "evict post(%)", "alloc pre(%)", "alloc post(%)"],
            rows,
            title="Figure 9 (deployment before/after, simulated)",
        )
        if self.benefit is not None:
            table += (
                f"\nEstimated monthly benefit (paper fleet pricing): "
                f"${self.benefit.monthly_gain_usd:,.0f}"
            )
        return table


def run_deployment_experiment(
    fleet_scale: float = 0.04,
    duration_hours: float = 24.0,
    spot_scale: float = 2.0,
    seed: int = 11,
) -> DeploymentResult:
    """Simulate the pre/post-GFS operating points for every GPU model."""
    result = DeploymentResult()
    for entry in scaled_fleet(fleet_scale):
        cluster_gpus = entry.node_count * entry.gpus_per_node
        outcomes = {}
        for label, make_sched in (
            ("before", lambda trace: YarnCSScheduler()),
            ("after", lambda trace: GFSScheduler(org_history=trace.org_history)),
        ):
            config = WorkloadConfig(
                cluster_gpus=float(cluster_gpus),
                duration_hours=duration_hours,
                spot_scale=spot_scale,
                seed=seed,
                gpu_model=entry.model,
                max_gpus_per_pod=float(entry.gpus_per_node),
            )
            trace = SyntheticTraceGenerator(config).generate()
            cluster = Cluster.homogeneous(
                entry.node_count, entry.gpus_per_node, entry.model, cluster_label=label
            )
            metrics = run_simulation(cluster, make_sched(trace), trace.sorted_tasks())
            outcomes[label] = metrics
        result.per_model[entry.model] = ModelDeploymentOutcome(
            model=entry.model,
            eviction_before=outcomes["before"].spot.eviction_rate,
            eviction_after=outcomes["after"].spot.eviction_rate,
            allocation_before=outcomes["before"].allocation_rate_mean,
            allocation_after=outcomes["after"].allocation_rate_mean,
        )
    result.benefit = estimate_deployment_benefit(
        allocation_before={m: o.allocation_before for m, o in result.per_model.items()},
        allocation_after={m: o.allocation_after for m, o in result.per_model.items()},
        eviction_before={m: o.eviction_before for m, o in result.per_model.items()},
        eviction_after={m: o.eviction_after for m, o in result.per_model.items()},
    )
    return result


def paper_reference_benefit() -> DeploymentBenefit:
    """The benefit computed from the paper's own Figure 9 numbers."""
    return estimate_deployment_benefit()


def main() -> None:  # pragma: no cover - CLI convenience
    print(run_deployment_experiment().report())
    print(f"Paper-reported operating points -> ${paper_reference_benefit().monthly_gain_usd:,.0f}/month")


if __name__ == "__main__":  # pragma: no cover
    main()
