"""Tables 8-10: ablation studies of the three GFS modules.

* Table 8 — GDE ablation: GFS vs GFS-e (previous-week-peak predictor).
* Table 9 — SQA ablation: GFS vs GFS-d (fixed eta = 1, no feedback).
* Table 10 — PTS ablation: GFS vs GFS-s / GFS-p / GFS-sp.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

from ..analysis.reporting import format_table
from .config import ExperimentScale, MEDIUM_SCALE
from .engine import ExperimentEngine, WorkloadSpec, gfs_spec, gfs_variant_spec, sweep_jobs
from .runner import ExperimentResult


@dataclass
class AblationResult:
    """Metrics of GFS and a set of degraded variants."""

    title: str
    per_variant: Dict[str, ExperimentResult] = field(default_factory=dict)

    def report(self) -> str:
        rows = []
        for name, result in self.per_variant.items():
            row = result.as_row()
            rows.append(
                [
                    name,
                    row["hp_jct"],
                    row["hp_jqt"],
                    row["spot_jct"],
                    row["spot_jqt"],
                    row["spot_eviction"] * 100,
                ]
            )
        return format_table(
            ["Variant", "HP JCT(s)", "HP JQT(s)", "Spot JCT(s)", "Spot JQT(s)", "Spot e(%)"],
            rows,
            title=self.title,
        )


def _run_variants(
    scale: ExperimentScale,
    variants: Sequence[str],
    title: str,
    spot_scale: float,
    engine: Optional[ExperimentEngine] = None,
    prefix: str = "ablation",
) -> AblationResult:
    engine = engine or ExperimentEngine()
    specs = [
        gfs_spec() if variant.lower() == "gfs" else gfs_variant_spec(variant)
        for variant in variants
    ]
    workload = WorkloadSpec(spot_scale=spot_scale, label="medium")
    metrics = engine.run(sweep_jobs(scale, specs, [workload], prefix=prefix))
    result = AblationResult(title=title)
    for spec in specs:
        result.per_variant[spec.display] = ExperimentResult(
            scheduler=spec.display,
            workload="medium",
            metrics=metrics[f"{prefix}/medium/{spec.display}"],
        )
    return result


def run_table8(
    scale: Optional[ExperimentScale] = None,
    spot_scale: float = 2.0,
    engine: Optional[ExperimentEngine] = None,
) -> AblationResult:
    """GDE ablation (Table 8): GFS-e replaces the forecaster by last week's peak."""
    return _run_variants(
        scale or MEDIUM_SCALE, ["gfs-e", "gfs"], "Table 8 (GDE ablation)", spot_scale,
        engine=engine, prefix="table8",
    )


def run_table9(
    scale: Optional[ExperimentScale] = None,
    spot_scale: float = 2.0,
    engine: Optional[ExperimentEngine] = None,
) -> AblationResult:
    """SQA ablation (Table 9): GFS-d disables the eta feedback loop."""
    return _run_variants(
        scale or MEDIUM_SCALE, ["gfs-d", "gfs"], "Table 9 (SQA ablation)", spot_scale,
        engine=engine, prefix="table9",
    )


def run_table10(
    scale: Optional[ExperimentScale] = None,
    spot_scale: float = 2.0,
    engine: Optional[ExperimentEngine] = None,
) -> AblationResult:
    """PTS ablation (Table 10): degraded scoring and/or random preemption."""
    return _run_variants(
        scale or MEDIUM_SCALE,
        ["gfs-sp", "gfs-s", "gfs-p", "gfs"],
        "Table 10 (PTS ablation)",
        spot_scale,
        engine=engine,
        prefix="table10",
    )


def main() -> None:  # pragma: no cover - CLI convenience
    for runner in (run_table8, run_table9, run_table10):
        print(runner().report())
        print()


if __name__ == "__main__":  # pragma: no cover
    main()
