"""Shared experiment configuration.

Experiments run a scaled replica of the paper's simulated cluster (287
A100 nodes, 2,296 GPUs).  Two preset scales are provided: ``SMALL`` keeps
the full test/benchmark suite fast on a laptop; ``FULL`` mirrors the
paper's cluster size.  All experiment runners accept a scale object, so
results can be regenerated at any size.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..cluster import Cluster, GPUModel, SimulatorConfig
from ..workloads import Trace, WorkloadConfig, SyntheticTraceGenerator


@dataclass
class ExperimentScale:
    """Size of the simulated cluster and workload for an experiment run."""

    name: str = "small"
    num_nodes: int = 48
    gpus_per_node: int = 8
    duration_hours: float = 24.0
    seed: int = 7
    gpu_model: GPUModel = GPUModel.A100
    workload_overrides: Dict[str, object] = field(default_factory=dict)

    @property
    def total_gpus(self) -> float:
        return float(self.num_nodes * self.gpus_per_node)

    def build_cluster(self) -> Cluster:
        return Cluster.homogeneous(self.num_nodes, self.gpus_per_node, self.gpu_model)

    def build_trace(self, spot_scale: float = 1.0, seed_offset: int = 0) -> Trace:
        config = WorkloadConfig(
            cluster_gpus=self.total_gpus,
            duration_hours=self.duration_hours,
            spot_scale=spot_scale,
            seed=self.seed + seed_offset,
            gpu_model=self.gpu_model,
            **self.workload_overrides,
        )
        return SyntheticTraceGenerator(config).generate()

    def simulator_config(self) -> SimulatorConfig:
        return SimulatorConfig()


#: Fast preset used by the test-suite and benchmark defaults.
SMALL_SCALE = ExperimentScale(name="small", num_nodes=32, duration_hours=16.0)

#: Default experiment preset (a half-sized replica of the paper's cluster).
MEDIUM_SCALE = ExperimentScale(name="medium", num_nodes=64, duration_hours=24.0)

#: Full replica of the paper's 287-node simulation cluster.
FULL_SCALE = ExperimentScale(name="full", num_nodes=287, duration_hours=72.0)


def scale_by_name(name: str) -> ExperimentScale:
    presets = {"small": SMALL_SCALE, "medium": MEDIUM_SCALE, "full": FULL_SCALE}
    key = name.lower()
    if key not in presets:
        raise KeyError(f"unknown scale {name!r}; expected one of {sorted(presets)}")
    return presets[key]
