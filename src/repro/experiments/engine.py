"""Parallel experiment engine: fan a simulation grid out across processes.

The engine turns the scheduler x workload x seed matrix behind every paper
table into *declarative, picklable job specs* and executes them either
serially or on a :class:`concurrent.futures.ProcessPoolExecutor`.  Because
each job re-creates its trace, cluster and scheduler from the spec inside
the worker process — with an explicit RNG seed and a reset task-id counter
— results are bit-identical at any worker count (guarded by
``tests/test_engine.py::test_worker_count_parity``).

Results are memoised in a content-keyed :class:`~.artifacts.ArtifactCache`
(SHA-256 of the canonical job payload), so re-runs and ``cli all`` are
incremental: only cells whose configuration changed are re-simulated.

Typical use::

    engine = ExperimentEngine(workers=8, cache=ArtifactCache(".repro-cache"))
    jobs = sweep_jobs(scale, comparison_specs(), [WorkloadSpec(spot_scale=2.0)])
    metrics = engine.run(jobs)          # {job.key: SimulationMetrics}
"""

from __future__ import annotations

import dataclasses
import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..cluster import SimulationMetrics, reset_task_counter, run_simulation
from ..core import GFSConfig, GFSScheduler, make_ablation
from ..dynamics import DynamicsSpec, get_dynamics
from ..obs import Recorder
from ..schedulers import (
    ChronusScheduler,
    FGDScheduler,
    LyraScheduler,
    PTSScheduler,
    YarnCSScheduler,
)
from ..workloads import Scenario, get_scenario
from .artifacts import ArtifactCache, flatten_metrics
from .config import ExperimentScale

#: Hashable key/value pairs standing in for a dict in frozen specs.
OverridePairs = Tuple[Tuple[str, object], ...]


def as_pairs(overrides: Optional[Mapping[str, object]]) -> OverridePairs:
    """Convert an override mapping into sorted hashable pairs."""
    if not overrides:
        return ()
    return tuple(sorted(overrides.items()))


# ----------------------------------------------------------------------
# Declarative job specs (must stay picklable: no lambdas, no closures)
# ----------------------------------------------------------------------
_BASELINE_CLASSES = {
    "yarn-cs": YarnCSScheduler,
    "chronus": ChronusScheduler,
    "lyra": LyraScheduler,
    "fgd": FGDScheduler,
    "pts": PTSScheduler,
}

_DISPLAY_NAMES = {
    "yarn-cs": "YARN-CS",
    "chronus": "Chronus",
    "lyra": "Lyra",
    "fgd": "FGD",
    "pts": "PTS",
    "gfs": "GFS",
}


@dataclass(frozen=True)
class SchedulerSpec:
    """Which scheduler to build inside the worker.

    ``kind`` is a baseline name (``yarn-cs``/``chronus``/``lyra``/``fgd``),
    ``gfs``, or a GFS ablation variant (``gfs-e``/``gfs-d``/``gfs-s``/
    ``gfs-p``/``gfs-sp``).  ``gfs_config`` holds :class:`GFSConfig` keyword
    overrides as sorted pairs (e.g. ``(("guarantee_hours", 4.0),)``).
    """

    kind: str
    label: str = ""
    gfs_config: OverridePairs = ()

    @property
    def display(self) -> str:
        if self.label:
            return self.label
        key = self.kind.lower()
        return _DISPLAY_NAMES.get(key, key.upper())


@dataclass(frozen=True)
class WorkloadSpec:
    """Which workload to generate inside the worker.

    ``scenario`` names a registered :class:`~repro.workloads.Scenario`;
    ``overrides`` are extra :class:`WorkloadConfig` field overrides (sorted
    pairs) applied on top of the scenario's own.  ``dynamics`` optionally
    names a registered :class:`~repro.dynamics.DynamicsSpec` preset to
    attach cluster dynamics to this cell — it *overrides* any dynamics the
    scenario itself carries, so chaos presets compose with every scenario
    including ``trace:<path>`` replays.
    """

    scenario: str = "default"
    spot_scale: float = 1.0
    seed_offset: int = 0
    label: str = ""
    overrides: OverridePairs = ()
    dynamics: str = ""

    @property
    def display(self) -> str:
        return self.label or self.scenario


@dataclass(frozen=True)
class SimulationJob:
    """One cell of the experiment grid: scale x scheduler x workload.

    ``scenario`` is the resolved :class:`Scenario` object; leave it
    ``None`` and the engine fills it in from the registry before
    dispatch, so custom scenarios registered in the parent process reach
    workers on any multiprocessing start method (fork *and* spawn).
    """

    key: str
    scale: ExperimentScale
    scheduler: SchedulerSpec
    workload: WorkloadSpec
    scenario: Optional[Scenario] = None

    def resolved_scenario(self) -> Scenario:
        return self.scenario if self.scenario is not None else get_scenario(
            self.workload.scenario
        )

    def resolved_dynamics(self) -> Optional[DynamicsSpec]:
        """The dynamics spec this cell runs under (workload overrides scenario)."""
        if self.workload.dynamics:
            return get_dynamics(self.workload.dynamics)
        return self.resolved_scenario().dynamics

    def describe(self) -> Dict[str, object]:
        """Flat descriptor used in exports and cache payload auditing."""
        dynamics = self.resolved_dynamics()
        return {
            "key": self.key,
            "scale": self.scale.name,
            "scenario": self.workload.scenario,
            "workload": self.workload.display,
            "scheduler": self.scheduler.display,
            "spot_scale": self.workload.spot_scale,
            "seed": self.scale.seed + self.workload.seed_offset,
            "dynamics": dynamics.name if dynamics is not None else "",
        }


def build_scheduler(spec: SchedulerSpec, trace) -> object:
    """Materialise a scheduler from its spec (runs inside the worker)."""
    kind = spec.kind.lower()
    if kind in _BASELINE_CLASSES:
        return _BASELINE_CLASSES[kind]()
    config = GFSConfig(**dict(spec.gfs_config)) if spec.gfs_config else None
    if kind == "gfs":
        return GFSScheduler(config or GFSConfig(), org_history=trace.org_history)
    if kind.startswith("gfs-"):
        return make_ablation(kind, config=config, org_history=trace.org_history)
    raise KeyError(
        f"unknown scheduler kind {spec.kind!r}; expected one of "
        f"{sorted(_BASELINE_CLASSES) + ['gfs', 'gfs-<variant>']}"
    )


def cache_payload(job: SimulationJob) -> Dict[str, object]:
    """The *semantic* payload a job's cache key is derived from.

    Deliberately excludes the grid key and display labels (so e.g. the
    GFS/medium cell of Table 8 and Table 9 share one cache entry) and
    deliberately *includes* the resolved scenario's ``cache_descriptor``
    — for synthetic scenarios the overrides, fleet mix and the
    organization mix materialised for this job's seed; for ``trace:``
    scenarios the SHA-256 of the trace file — so editing a scenario *or*
    a trace file invalidates its cached results instead of serving stale
    metrics.
    """
    scale = job.scale
    scenario = job.resolved_scenario()
    seed = scale.seed + job.workload.seed_offset
    descriptor = scenario.cache_descriptor(seed)
    dynamics = job.resolved_dynamics()
    return {
        "scale": {
            "num_nodes": scale.num_nodes,
            "gpus_per_node": scale.gpus_per_node,
            "duration_hours": scale.duration_hours,
            "seed": scale.seed,
            "gpu_model": scale.gpu_model,
            "workload_overrides": scale.workload_overrides,
        },
        "scheduler": {"kind": job.scheduler.kind.lower(), "gfs_config": job.scheduler.gfs_config},
        "workload": {
            "scenario": descriptor,
            "spot_scale": job.workload.spot_scale,
            "seed_offset": job.workload.seed_offset,
            "overrides": job.workload.overrides,
            # The *resolved* dynamics (a workload-level preset overrides the
            # scenario's own), so attaching/editing chaos invalidates
            # exactly the affected cells.
            "dynamics": dynamics.descriptor() if dynamics is not None else None,
        },
    }


def execute_job(job: SimulationJob, recorder: Optional[Recorder] = None) -> SimulationMetrics:
    """Run one grid cell; top-level so it pickles into worker processes.

    Deterministic given the job spec alone: the trace RNG is seeded from
    the spec and the global task-id counter is reset, so a cell computes
    the same metrics whether it runs serially, in a pool, or from cache.
    An optional ``recorder`` attaches observability instrumentation; the
    metrics are bit-identical either way (the obs parity suite guards
    this), so profiled and unprofiled cells share one cache entry.
    """
    reset_task_counter()
    scale = job.scale
    scenario = job.resolved_scenario()
    trace = scenario.build_trace(
        cluster_gpus=scale.total_gpus,
        duration_hours=scale.duration_hours,
        spot_scale=job.workload.spot_scale,
        seed=scale.seed + job.workload.seed_offset,
        gpu_model=scale.gpu_model,
        extra_overrides=dict(job.workload.overrides),
        base_overrides=scale.workload_overrides,
    )
    cluster = scenario.build_cluster(scale.num_nodes, scale.gpus_per_node, scale.gpu_model)
    scheduler = build_scheduler(job.scheduler, trace)
    return run_simulation(
        cluster,
        scheduler,
        trace.sorted_tasks(),
        scale.simulator_config(),
        dynamics=job.resolved_dynamics(),
        dynamics_seed=scale.seed + job.workload.seed_offset,
        recorder=recorder,
    )


def job_profile_summary(recorder: Recorder, wall_s: float) -> Dict[str, object]:
    """Flatten one cell's recorder into ``obs_*`` grid columns.

    Counter-derived columns (events, passes, examined, …) are
    deterministic; the ``*_wall_s`` columns are wall-clock phase totals
    feeding the profiler and vary run to run.
    """
    events = sum(
        value for (name, _), value in recorder.counters.items() if name == "sim.events"
    )
    dispatch_wall = sum(
        hist.total
        for name, hist in recorder.histograms.items()
        if name.startswith("sim.dispatch_s.")
    )
    pass_hist = recorder.histograms.get("sim.pass_wall_s")
    accrual_hist = recorder.histograms.get("sim.metric_accrual_s")
    return {
        "obs_wall_s": round(wall_s, 6),
        "obs_events": int(events),
        "obs_passes": int(recorder.counter_value("sim.passes")),
        "obs_examined": int(recorder.counter_value("sim.pass.examined")),
        "obs_scheduled": int(recorder.counter_value("sim.pass.scheduled")),
        "obs_memo_hits": int(recorder.counter_value("sim.pass.memo_hits")),
        "obs_index_rejects": int(recorder.counter_value("sim.pass.index_rejects")),
        "obs_searches": int(recorder.counter_value("sim.pass.searches")),
        "obs_pass_wall_s": round(pass_hist.total, 6) if pass_hist else 0.0,
        "obs_dispatch_wall_s": round(dispatch_wall, 6),
        "obs_accrual_wall_s": round(accrual_hist.total, 6) if accrual_hist else 0.0,
    }


def execute_job_profiled(job: SimulationJob) -> Tuple[SimulationMetrics, Dict[str, object]]:
    """``execute_job`` with a recorder attached; returns ``(metrics, obs_* row)``."""
    import time as _time

    recorder = Recorder()
    start = _time.perf_counter()
    metrics = execute_job(job, recorder=recorder)
    return metrics, job_profile_summary(recorder, _time.perf_counter() - start)


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------
@dataclass
class EngineStats:
    """Bookkeeping of one engine lifetime."""

    executed: int = 0
    cache_hits: int = 0

    @property
    def total(self) -> int:
        return self.executed + self.cache_hits


def default_worker_count() -> int:
    """Worker default: every core, capped so laptops stay responsive."""
    return min(8, os.cpu_count() or 1)


class ExperimentEngine:
    """Runs simulation grids, fanning out across processes and caching.

    ``workers=1`` (the default) executes in-process — the reference serial
    path.  ``workers=N`` uses a process pool; results are identical by
    construction because each job is self-seeding.  With a ``cache``,
    finished cells are persisted and looked up by content key before any
    simulation is launched.

    ``profile=True`` attaches an observability recorder to every
    *simulated* cell and keeps a compact per-job summary in
    :attr:`profiles`; :meth:`grid_rows` merges those ``obs_*`` columns
    into the export.  Metrics stay bit-identical (parity-suite
    guarantee), so profiling neither splits nor invalidates the cache —
    cells served from cache simply carry no ``obs_*`` columns.
    """

    def __init__(
        self,
        workers: int = 1,
        cache: Optional[ArtifactCache] = None,
        use_cache: bool = True,
        profile: bool = False,
    ):
        self.workers = max(1, int(workers))
        self.cache = cache
        self.use_cache = use_cache and cache is not None
        self.profile = profile
        self.stats = EngineStats()
        #: every (job, metrics) pair this engine has produced, in run order
        self.history: List[Tuple[SimulationJob, SimulationMetrics]] = []
        #: job key -> ``obs_*`` profile summary (profiled cells only)
        self.profiles: Dict[str, Dict[str, object]] = {}

    # ------------------------------------------------------------------
    def run(self, jobs: Sequence[SimulationJob]) -> Dict[str, SimulationMetrics]:
        """Execute a grid; returns ``{job.key: metrics}`` in job order."""
        jobs = list(jobs)
        keys = [job.key for job in jobs]
        if len(set(keys)) != len(keys):
            dupes = sorted({k for k in keys if keys.count(k) > 1})
            raise ValueError(f"duplicate job keys in grid: {dupes}")
        # Resolve scenario names against the registry here, in the parent:
        # the resolved object rides inside the (picklable) job, so custom
        # scenarios survive spawn-based worker processes, and unknown
        # names fail fast before anything is simulated.
        jobs = [
            job if job.scenario is not None
            else dataclasses.replace(job, scenario=get_scenario(job.workload.scenario))
            for job in jobs
        ]

        results: Dict[str, SimulationMetrics] = {}
        pending: List[Tuple[SimulationJob, Optional[str]]] = []
        for job in jobs:
            cache_key = None
            if self.use_cache:
                cache_key = self.cache.key_for(cache_payload(job))
                cached = self.cache.load(cache_key)
                if cached is not None:
                    results[job.key] = cached
                    self.stats.cache_hits += 1
                    continue
            pending.append((job, cache_key))

        if pending:
            if self.workers > 1 and len(pending) > 1:
                computed = self._run_pool([job for job, _ in pending])
            elif self.profile:
                computed = {}
                for job, _ in pending:
                    metrics, summary = execute_job_profiled(job)
                    computed[job.key] = metrics
                    self.profiles[job.key] = summary
            else:
                computed = {job.key: execute_job(job) for job, _ in pending}
            for job, cache_key in pending:
                metrics = computed[job.key]
                results[job.key] = metrics
                self.stats.executed += 1
                if self.use_cache and cache_key is not None:
                    self.cache.store(cache_key, metrics, payload=cache_payload(job))

        ordered = {job.key: results[job.key] for job in jobs}
        self.history.extend((job, ordered[job.key]) for job in jobs)
        return ordered

    def _run_pool(self, jobs: Sequence[SimulationJob]) -> Dict[str, SimulationMetrics]:
        max_workers = min(self.workers, len(jobs))
        computed: Dict[str, SimulationMetrics] = {}
        worker = execute_job_profiled if self.profile else execute_job
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            futures = {pool.submit(worker, job): job for job in jobs}
            for future in as_completed(futures):
                key = futures[future].key
                if self.profile:
                    computed[key], self.profiles[key] = future.result()
                else:
                    computed[key] = future.result()
        return computed

    # ------------------------------------------------------------------
    def grid_rows(self) -> List[Dict[str, object]]:
        """Flat descriptor + headline-metric rows for everything run.

        Profiled cells additionally carry their ``obs_*`` columns (event
        counts, pass statistics, wall-clock phase totals).
        """
        return [
            {
                **job.describe(),
                **flatten_metrics(metrics),
                **self.profiles.get(job.key, {}),
            }
            for job, metrics in self.history
        ]


# ----------------------------------------------------------------------
# Spec and grid builders
# ----------------------------------------------------------------------
def baseline_specs() -> List[SchedulerSpec]:
    """The four baseline schedulers of the Table 5 comparison."""
    return [
        SchedulerSpec(kind="yarn-cs"),
        SchedulerSpec(kind="chronus"),
        SchedulerSpec(kind="lyra"),
        SchedulerSpec(kind="fgd"),
    ]


def gfs_spec(label: str = "", **config_overrides) -> SchedulerSpec:
    """The full GFS scheduler, optionally with :class:`GFSConfig` overrides."""
    return SchedulerSpec(kind="gfs", label=label, gfs_config=as_pairs(config_overrides))


def gfs_variant_spec(variant: str, **config_overrides) -> SchedulerSpec:
    """A GFS ablation variant (``gfs-e``/``gfs-d``/``gfs-s``/``gfs-p``/``gfs-sp``)."""
    return SchedulerSpec(kind=variant.lower(), gfs_config=as_pairs(config_overrides))


def comparison_specs(include_gfs: bool = True) -> List[SchedulerSpec]:
    """Baselines plus (by default) GFS — the Table 5 line-up."""
    specs = baseline_specs()
    if include_gfs:
        specs.append(gfs_spec())
    return specs


def sweep_jobs(
    scale: ExperimentScale,
    scheduler_specs: Sequence[SchedulerSpec],
    workload_specs: Sequence[WorkloadSpec],
    prefix: str = "sweep",
) -> List[SimulationJob]:
    """The full cross product of schedulers and workloads as a job list."""
    jobs: List[SimulationJob] = []
    for workload in workload_specs:
        for spec in scheduler_specs:
            suffix = f"+s{workload.seed_offset}" if workload.seed_offset else ""
            key = f"{prefix}/{workload.display}{suffix}/{spec.display}"
            jobs.append(
                SimulationJob(key=key, scale=scale, scheduler=spec, workload=workload)
            )
    return jobs
