"""Parallel experiment engine: fan a simulation grid out across processes.

The engine turns the scheduler x workload x seed matrix behind every paper
table into *declarative, picklable job specs* and executes them either
serially or on a :class:`concurrent.futures.ProcessPoolExecutor`.  Because
each job re-creates its trace, cluster and scheduler from the spec inside
the worker process — with an explicit RNG seed and a reset task-id counter
— results are bit-identical at any worker count (guarded by
``tests/test_engine.py::test_worker_count_parity``).

Results are memoised in a content-keyed :class:`~.artifacts.ArtifactCache`
(SHA-256 of the canonical job payload), so re-runs and ``cli all`` are
incremental: only cells whose configuration changed are re-simulated.

Execution is fault-tolerant (see ``docs/fault_tolerance.md``): jobs run
under a :class:`~repro.runtime.JobGuard` (timeout, bounded retries with
deterministic backoff), worker-process deaths re-spawn the pool and
re-queue in-flight cells instead of aborting the sweep, exhausted cells
collapse into structured :class:`~repro.runtime.JobFailure` results in
``engine.failures``, and an optional write-ahead
:class:`~repro.runtime.SweepJournal` makes sweeps resumable across
crashes and ``kill -9`` (``cli sweep --resume``).  SIGINT/SIGTERM drain
gracefully: in-flight cells finish and are journaled before the
interrupt surfaces.

Typical use::

    engine = ExperimentEngine(workers=8, cache=ArtifactCache(".repro-cache"))
    jobs = sweep_jobs(scale, comparison_specs(), [WorkloadSpec(spot_scale=2.0)])
    metrics = engine.run(jobs)          # {job.key: SimulationMetrics}
"""

from __future__ import annotations

import dataclasses
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..cluster import SimulationMetrics, reset_task_counter, run_simulation
from ..core import GFSConfig, GFSScheduler, make_ablation
from ..dynamics import DynamicsSpec, get_dynamics
from ..obs import Recorder
from ..obs.logging import get_logger
from ..obs.telemetry import NULL_TELEMETRY
from ..runtime import (
    ChaosPlan,
    ChaosWorker,
    GracefulShutdown,
    JobFailure,
    JobGuard,
    ResilientExecutor,
    SweepError,
    SweepJournal,
)
from ..schedulers import (
    ChronusScheduler,
    FGDScheduler,
    LyraScheduler,
    PTSScheduler,
    YarnCSScheduler,
)
from ..workloads import Scenario, get_scenario
from .artifacts import (
    ArtifactCache,
    content_key,
    flatten_metrics,
    metrics_from_payload,
    metrics_to_payload,
)
from .config import ExperimentScale

_LOG = get_logger("repro.experiments")

#: Hashable key/value pairs standing in for a dict in frozen specs.
OverridePairs = Tuple[Tuple[str, object], ...]


def as_pairs(overrides: Optional[Mapping[str, object]]) -> OverridePairs:
    """Convert an override mapping into sorted hashable pairs."""
    if not overrides:
        return ()
    return tuple(sorted(overrides.items()))


# ----------------------------------------------------------------------
# Declarative job specs (must stay picklable: no lambdas, no closures)
# ----------------------------------------------------------------------
_BASELINE_CLASSES = {
    "yarn-cs": YarnCSScheduler,
    "chronus": ChronusScheduler,
    "lyra": LyraScheduler,
    "fgd": FGDScheduler,
    "pts": PTSScheduler,
}

_DISPLAY_NAMES = {
    "yarn-cs": "YARN-CS",
    "chronus": "Chronus",
    "lyra": "Lyra",
    "fgd": "FGD",
    "pts": "PTS",
    "gfs": "GFS",
}


@dataclass(frozen=True)
class SchedulerSpec:
    """Which scheduler to build inside the worker.

    ``kind`` is a baseline name (``yarn-cs``/``chronus``/``lyra``/``fgd``),
    ``gfs``, or a GFS ablation variant (``gfs-e``/``gfs-d``/``gfs-s``/
    ``gfs-p``/``gfs-sp``).  ``gfs_config`` holds :class:`GFSConfig` keyword
    overrides as sorted pairs (e.g. ``(("guarantee_hours", 4.0),)``).
    """

    kind: str
    label: str = ""
    gfs_config: OverridePairs = ()

    @property
    def display(self) -> str:
        if self.label:
            return self.label
        key = self.kind.lower()
        return _DISPLAY_NAMES.get(key, key.upper())


@dataclass(frozen=True)
class WorkloadSpec:
    """Which workload to generate inside the worker.

    ``scenario`` names a registered :class:`~repro.workloads.Scenario`;
    ``overrides`` are extra :class:`WorkloadConfig` field overrides (sorted
    pairs) applied on top of the scenario's own.  ``dynamics`` optionally
    names a registered :class:`~repro.dynamics.DynamicsSpec` preset to
    attach cluster dynamics to this cell — it *overrides* any dynamics the
    scenario itself carries, so chaos presets compose with every scenario
    including ``trace:<path>`` replays.
    """

    scenario: str = "default"
    spot_scale: float = 1.0
    seed_offset: int = 0
    label: str = ""
    overrides: OverridePairs = ()
    dynamics: str = ""

    @property
    def display(self) -> str:
        return self.label or self.scenario


@dataclass(frozen=True)
class SimulationJob:
    """One cell of the experiment grid: scale x scheduler x workload.

    ``scenario`` is the resolved :class:`Scenario` object; leave it
    ``None`` and the engine fills it in from the registry before
    dispatch, so custom scenarios registered in the parent process reach
    workers on any multiprocessing start method (fork *and* spawn).
    """

    key: str
    scale: ExperimentScale
    scheduler: SchedulerSpec
    workload: WorkloadSpec
    scenario: Optional[Scenario] = None

    def resolved_scenario(self) -> Scenario:
        return self.scenario if self.scenario is not None else get_scenario(
            self.workload.scenario
        )

    def resolved_dynamics(self) -> Optional[DynamicsSpec]:
        """The dynamics spec this cell runs under (workload overrides scenario)."""
        if self.workload.dynamics:
            return get_dynamics(self.workload.dynamics)
        return self.resolved_scenario().dynamics

    def describe(self) -> Dict[str, object]:
        """Flat descriptor used in exports and cache payload auditing."""
        dynamics = self.resolved_dynamics()
        return {
            "key": self.key,
            "scale": self.scale.name,
            "scenario": self.workload.scenario,
            "workload": self.workload.display,
            "scheduler": self.scheduler.display,
            "spot_scale": self.workload.spot_scale,
            "seed": self.scale.seed + self.workload.seed_offset,
            "dynamics": dynamics.name if dynamics is not None else "",
        }


def build_scheduler(spec: SchedulerSpec, trace) -> object:
    """Materialise a scheduler from its spec (runs inside the worker)."""
    kind = spec.kind.lower()
    if kind in _BASELINE_CLASSES:
        return _BASELINE_CLASSES[kind]()
    config = GFSConfig(**dict(spec.gfs_config)) if spec.gfs_config else None
    if kind == "gfs":
        return GFSScheduler(config or GFSConfig(), org_history=trace.org_history)
    if kind.startswith("gfs-"):
        return make_ablation(kind, config=config, org_history=trace.org_history)
    raise KeyError(
        f"unknown scheduler kind {spec.kind!r}; expected one of "
        f"{sorted(_BASELINE_CLASSES) + ['gfs', 'gfs-<variant>']}"
    )


def cache_payload(job: SimulationJob) -> Dict[str, object]:
    """The *semantic* payload a job's cache key is derived from.

    Deliberately excludes the grid key and display labels (so e.g. the
    GFS/medium cell of Table 8 and Table 9 share one cache entry) and
    deliberately *includes* the resolved scenario's ``cache_descriptor``
    — for synthetic scenarios the overrides, fleet mix and the
    organization mix materialised for this job's seed; for ``trace:``
    scenarios the SHA-256 of the trace file — so editing a scenario *or*
    a trace file invalidates its cached results instead of serving stale
    metrics.
    """
    scale = job.scale
    scenario = job.resolved_scenario()
    seed = scale.seed + job.workload.seed_offset
    descriptor = scenario.cache_descriptor(seed)
    dynamics = job.resolved_dynamics()
    return {
        "scale": {
            "num_nodes": scale.num_nodes,
            "gpus_per_node": scale.gpus_per_node,
            "duration_hours": scale.duration_hours,
            "seed": scale.seed,
            "gpu_model": scale.gpu_model,
            "workload_overrides": scale.workload_overrides,
        },
        "scheduler": {"kind": job.scheduler.kind.lower(), "gfs_config": job.scheduler.gfs_config},
        "workload": {
            "scenario": descriptor,
            "spot_scale": job.workload.spot_scale,
            "seed_offset": job.workload.seed_offset,
            "overrides": job.workload.overrides,
            # The *resolved* dynamics (a workload-level preset overrides the
            # scenario's own), so attaching/editing chaos invalidates
            # exactly the affected cells.
            "dynamics": dynamics.descriptor() if dynamics is not None else None,
        },
    }


def execute_job(job: SimulationJob, recorder: Optional[Recorder] = None) -> SimulationMetrics:
    """Run one grid cell; top-level so it pickles into worker processes.

    Deterministic given the job spec alone: the trace RNG is seeded from
    the spec and the global task-id counter is reset, so a cell computes
    the same metrics whether it runs serially, in a pool, or from cache.
    An optional ``recorder`` attaches observability instrumentation; the
    metrics are bit-identical either way (the obs parity suite guards
    this), so profiled and unprofiled cells share one cache entry.
    """
    reset_task_counter()
    scale = job.scale
    scenario = job.resolved_scenario()
    trace = scenario.build_trace(
        cluster_gpus=scale.total_gpus,
        duration_hours=scale.duration_hours,
        spot_scale=job.workload.spot_scale,
        seed=scale.seed + job.workload.seed_offset,
        gpu_model=scale.gpu_model,
        extra_overrides=dict(job.workload.overrides),
        base_overrides=scale.workload_overrides,
    )
    cluster = scenario.build_cluster(scale.num_nodes, scale.gpus_per_node, scale.gpu_model)
    scheduler = build_scheduler(job.scheduler, trace)
    return run_simulation(
        cluster,
        scheduler,
        trace.sorted_tasks(),
        scale.simulator_config(),
        dynamics=job.resolved_dynamics(),
        dynamics_seed=scale.seed + job.workload.seed_offset,
        recorder=recorder,
    )


def job_profile_summary(recorder: Recorder, wall_s: float) -> Dict[str, object]:
    """Flatten one cell's recorder into ``obs_*`` grid columns.

    Counter-derived columns (events, passes, examined, …) are
    deterministic; the ``*_wall_s`` columns are wall-clock phase totals
    feeding the profiler and vary run to run.
    """
    events = sum(
        value for (name, _), value in recorder.counters.items() if name == "sim.events"
    )
    dispatch_wall = sum(
        hist.total
        for name, hist in recorder.histograms.items()
        if name.startswith("sim.dispatch_s.")
    )
    pass_hist = recorder.histograms.get("sim.pass_wall_s")
    accrual_hist = recorder.histograms.get("sim.metric_accrual_s")
    return {
        "obs_wall_s": round(wall_s, 6),
        "obs_events": int(events),
        "obs_passes": int(recorder.counter_value("sim.passes")),
        "obs_examined": int(recorder.counter_value("sim.pass.examined")),
        "obs_scheduled": int(recorder.counter_value("sim.pass.scheduled")),
        "obs_memo_hits": int(recorder.counter_value("sim.pass.memo_hits")),
        "obs_index_rejects": int(recorder.counter_value("sim.pass.index_rejects")),
        "obs_searches": int(recorder.counter_value("sim.pass.searches")),
        "obs_pass_wall_s": round(pass_hist.total, 6) if pass_hist else 0.0,
        "obs_dispatch_wall_s": round(dispatch_wall, 6),
        "obs_accrual_wall_s": round(accrual_hist.total, 6) if accrual_hist else 0.0,
    }


def execute_job_profiled(job: SimulationJob) -> Tuple[SimulationMetrics, Dict[str, object]]:
    """``execute_job`` with a recorder attached; returns ``(metrics, obs_* row)``."""
    import time as _time

    recorder = Recorder()
    start = _time.perf_counter()
    metrics = execute_job(job, recorder=recorder)
    return metrics, job_profile_summary(recorder, _time.perf_counter() - start)


def run_cell(job: SimulationJob, attempt: int = 1) -> SimulationMetrics:
    """Executor-protocol adapter for :func:`execute_job`.

    The resilient executor calls workers as ``worker(item, attempt)``;
    a simulation cell is attempt-independent (fully deterministic from
    the spec), so the attempt number is ignored — it exists for the
    chaos harness, which keys fault injection on it.
    """
    return execute_job(job)


def run_cell_profiled(
    job: SimulationJob, attempt: int = 1
) -> Tuple[SimulationMetrics, Dict[str, object]]:
    """Executor-protocol adapter for :func:`execute_job_profiled`."""
    return execute_job_profiled(job)


def _job_key(job: SimulationJob) -> str:
    return job.key


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------
@dataclass
class EngineStats:
    """Bookkeeping of one engine lifetime."""

    executed: int = 0
    cache_hits: int = 0
    #: cells restored from a sweep journal instead of being re-simulated
    journal_hits: int = 0
    #: cells whose retry budget was exhausted (see ``engine.failures``)
    failed: int = 0

    @property
    def total(self) -> int:
        return self.executed + self.cache_hits + self.journal_hits


def default_worker_count() -> int:
    """Worker default: every core, capped so laptops stay responsive."""
    return min(8, os.cpu_count() or 1)


class ExperimentEngine:
    """Runs simulation grids, fanning out across processes and caching.

    ``workers=1`` (the default) executes in-process — the reference serial
    path.  ``workers=N`` uses a process pool; results are identical by
    construction because each job is self-seeding.  With a ``cache``,
    finished cells are persisted and looked up by content key before any
    simulation is launched.

    ``profile=True`` attaches an observability recorder to every
    *simulated* cell and keeps a compact per-job summary in
    :attr:`profiles`; :meth:`grid_rows` merges those ``obs_*`` columns
    into the export.  Metrics stay bit-identical (parity-suite
    guarantee), so profiling neither splits nor invalidates the cache —
    cells served from cache simply carry no ``obs_*`` columns.

    Fault tolerance: a ``guard`` bounds each cell (timeout, retries with
    deterministic backoff); cells that exhaust the budget become
    :class:`~repro.runtime.JobFailure` entries in :attr:`failures`
    rather than aborting the sweep, and — when ``guard.strict`` (the
    default) — a :class:`~repro.runtime.SweepError` summarising them is
    raised *after* every other cell has run and been persisted.  A
    ``journal`` (path or :class:`~repro.runtime.SweepJournal`) makes the
    sweep resumable: completed cells replay from the journal on the next
    run, crashes included.  ``chaos`` wraps workers in the self-chaos
    harness (tests/benchmarks only).  ``progress`` is an optional
    ``callback(job, outcome)`` fired as each cell completes or fails.
    ``telemetry`` is an optional :class:`~repro.obs.TelemetryBus`; the
    engine emits structured sweep-plane events on it (``sweep_start``,
    ``cache_hit``/``journal_hit``, per-cell ``progress`` with rate and
    ETA, ``sweep_end``) and forwards it to the executor for job-level
    events — see ``docs/observability.md`` for the event schema.
    """

    def __init__(
        self,
        workers: int = 1,
        cache: Optional[ArtifactCache] = None,
        use_cache: bool = True,
        profile: bool = False,
        guard: Optional[JobGuard] = None,
        journal: Union[SweepJournal, str, Path, None] = None,
        chaos: Optional[ChaosPlan] = None,
        progress: Optional[Callable[[SimulationJob, object], None]] = None,
        telemetry: Optional[object] = None,
    ):
        self.workers = max(1, int(workers))
        self.cache = cache
        self.use_cache = use_cache and cache is not None
        self.profile = profile
        self.guard = guard or JobGuard()
        self.journal = (
            journal if isinstance(journal, SweepJournal) or journal is None
            else SweepJournal(journal)
        )
        self.chaos = chaos
        self.progress = progress
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.stats = EngineStats()
        self._tele_progress: Dict[str, object] = {
            "total": 0, "done": 0, "failed": 0, "completed": 0, "start": 0.0,
        }
        #: every (job, metrics) pair this engine has produced, in run order
        self.history: List[Tuple[SimulationJob, SimulationMetrics]] = []
        #: job key -> ``obs_*`` profile summary (profiled cells only)
        self.profiles: Dict[str, Dict[str, object]] = {}
        #: job key -> structured failure for cells that exhausted retries
        self.failures: Dict[str, JobFailure] = {}
        #: supervision counters from the last run (rebuilds/retries/timeouts)
        self.last_supervision: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def run(self, jobs: Sequence[SimulationJob]) -> Dict[str, SimulationMetrics]:
        """Execute a grid; returns ``{job.key: metrics}`` in job order.

        Failed cells (retry budget exhausted) are absent from the result;
        with ``guard.strict`` a :class:`SweepError` is raised after all
        other cells completed and were journaled/cached, so nothing
        already computed is lost.  On SIGINT/SIGTERM the engine drains
        in-flight cells, journals them and re-raises
        ``KeyboardInterrupt``; completed work is in :attr:`history`.
        """
        jobs = list(jobs)
        keys = [job.key for job in jobs]
        if len(set(keys)) != len(keys):
            dupes = sorted({k for k in keys if keys.count(k) > 1})
            raise ValueError(f"duplicate job keys in grid: {dupes}")
        # Resolve scenario names against the registry here, in the parent:
        # the resolved object rides inside the (picklable) job, so custom
        # scenarios survive spawn-based worker processes, and unknown
        # names fail fast before anything is simulated.
        jobs = [
            job if job.scenario is not None
            else dataclasses.replace(job, scenario=get_scenario(job.workload.scenario))
            for job in jobs
        ]

        run_started = time.monotonic()
        self.telemetry.emit("sweep_start", cells=len(jobs), workers=self.workers)

        # Replay the journal before anything runs: cells a previous
        # (possibly killed) invocation completed are restored from their
        # journaled payloads, keyed by content hash so they survive grid
        # renames exactly like cache entries do.
        replayed: Dict[str, Dict[str, object]] = {}
        if self.journal is not None:
            replayed = self.journal.replay().completed

        want_keys = self.use_cache or self.journal is not None
        results: Dict[str, SimulationMetrics] = {}
        pending: List[Tuple[SimulationJob, Optional[str]]] = []
        run_cache_hits = run_journal_hits = 0
        for job in jobs:
            cache_key = content_key(cache_payload(job)) if want_keys else None
            if cache_key is not None and cache_key in replayed:
                results[job.key] = metrics_from_payload(replayed[cache_key])
                self.stats.journal_hits += 1
                run_journal_hits += 1
                self.telemetry.emit("journal_hit", job=job.key)
                continue
            if self.use_cache:
                cached = self.cache.load(cache_key)
                if cached is not None:
                    results[job.key] = cached
                    self.stats.cache_hits += 1
                    run_cache_hits += 1
                    self.telemetry.emit("cache_hit", job=job.key)
                    if self.journal is not None:
                        # Mirror cache hits into the journal so a resume
                        # of this sweep is self-contained even if the
                        # cache directory vanishes.
                        self.journal.record_done(
                            job.key, cache_key, metrics_to_payload(cached)
                        )
                    continue
            pending.append((job, cache_key))

        interrupted = False
        run_failures: Dict[str, JobFailure] = {}
        # Progress accounting for the telemetry ``progress`` events:
        # cells resolved by replay/cache count as already done; rate and
        # ETA are computed from cells completed *this* run only.
        self._tele_progress = {
            "total": len(jobs),
            "done": len(jobs) - len(pending),
            "failed": 0,
            "completed": 0,
            "start": time.monotonic(),
        }
        if pending:
            if self.journal is not None:
                self.journal.begin_sweep(
                    len(pending),
                    meta={"workers": self.workers, "profile": self.profile},
                )
            key_to_cache = {job.key: cache_key for job, cache_key in pending}
            worker: Callable = run_cell_profiled if self.profile else run_cell
            if self.chaos is not None:
                worker = ChaosWorker(self.chaos, worker)
            # A lone pending cell normally runs in-process (no pool
            # startup cost), but timeouts and chaos need a separate
            # worker process to kill.
            eff_workers = self.workers
            if (
                len(pending) == 1
                and self.chaos is None
                and self.guard.timeout_s is None
            ):
                eff_workers = 1
            executor = ResilientExecutor(
                worker,
                workers=eff_workers,
                guard=self.guard,
                key_of=_job_key,
                telemetry=self.telemetry,
            )
            try:
                with GracefulShutdown() as stop:
                    for job, outcome in executor.run(
                        [job for job, _ in pending], should_stop=stop.triggered
                    ):
                        self._absorb(job, outcome, key_to_cache[job.key],
                                     results, run_failures)
                    interrupted = stop.requested
            except KeyboardInterrupt:
                interrupted = True
            finally:
                self.last_supervision = {
                    "pool_rebuilds": executor.pool_rebuilds,
                    "retries": executor.retries,
                    "timeouts": executor.timeouts,
                }
                if self.journal is not None:
                    self.journal.close()
        elif self.journal is not None:
            # Nothing ran (all replayed/cached) but cache-hit mirroring
            # may have opened the handle.
            self.journal.close()

        ordered = {job.key: results[job.key] for job in jobs if job.key in results}
        self.history.extend(
            (job, ordered[job.key]) for job in jobs if job.key in ordered
        )
        self.telemetry.emit(
            "sweep_end",
            done=len(ordered),
            total=len(jobs),
            failed=len(run_failures),
            executed=self._tele_progress["completed"] - self._tele_progress["failed"],
            cache_hits=run_cache_hits,
            journal_hits=run_journal_hits,
            wall_s=round(time.monotonic() - run_started, 6),
        )
        _LOG.info(
            "sweep_end",
            done=len(ordered),
            total=len(jobs),
            failed=len(run_failures),
            cache_hits=run_cache_hits,
            journal_hits=run_journal_hits,
            wall_s=round(time.monotonic() - run_started, 3),
        )
        if interrupted:
            # Everything drained is journaled/cached and now in
            # :attr:`history`; surface the interrupt so callers (the
            # CLI) can flush a partial grid and exit 130.
            raise KeyboardInterrupt
        if run_failures and self.guard.strict:
            raise SweepError(list(run_failures.values()))
        return ordered

    def _absorb(
        self,
        job: SimulationJob,
        outcome: object,
        cache_key: Optional[str],
        results: Dict[str, SimulationMetrics],
        run_failures: Dict[str, JobFailure],
    ) -> None:
        """Fold one executor outcome into results, journal and cache."""
        if isinstance(outcome, JobFailure):
            self.failures[job.key] = outcome
            run_failures[job.key] = outcome
            self.stats.failed += 1
            if self.journal is not None:
                self.journal.record_failed(job.key, cache_key, outcome.as_payload())
        else:
            if self.profile:
                metrics, summary = outcome
                self.profiles[job.key] = summary
            else:
                metrics = outcome
            results[job.key] = metrics
            self.stats.executed += 1
            if self.journal is not None:
                self.journal.record_done(
                    job.key, cache_key, metrics_to_payload(metrics)
                )
            if self.use_cache and cache_key is not None:
                self.cache.store(cache_key, metrics, payload=cache_payload(job))
        state = self._tele_progress
        state["done"] += 1
        state["completed"] += 1
        if isinstance(outcome, JobFailure):
            state["failed"] += 1
        if self.telemetry.enabled:
            elapsed = time.monotonic() - state["start"]
            rate = state["completed"] / elapsed if elapsed > 0 else 0.0
            remaining = state["total"] - state["done"]
            eta_s = round(remaining / rate, 3) if rate > 0 else None
            self.telemetry.emit(
                "progress",
                done=state["done"],
                total=state["total"],
                failed=state["failed"],
                rate_per_s=round(rate, 6),
                eta_s=eta_s,
            )
        if self.progress is not None:
            self.progress(job, outcome)

    # ------------------------------------------------------------------
    def grid_rows(self) -> List[Dict[str, object]]:
        """Flat descriptor + headline-metric rows for everything run.

        Profiled cells additionally carry their ``obs_*`` columns (event
        counts, pass statistics, wall-clock phase totals).
        """
        return [
            {
                **job.describe(),
                **flatten_metrics(metrics),
                **self.profiles.get(job.key, {}),
            }
            for job, metrics in self.history
        ]


# ----------------------------------------------------------------------
# Spec and grid builders
# ----------------------------------------------------------------------
def baseline_specs() -> List[SchedulerSpec]:
    """The four baseline schedulers of the Table 5 comparison."""
    return [
        SchedulerSpec(kind="yarn-cs"),
        SchedulerSpec(kind="chronus"),
        SchedulerSpec(kind="lyra"),
        SchedulerSpec(kind="fgd"),
    ]


def gfs_spec(label: str = "", **config_overrides) -> SchedulerSpec:
    """The full GFS scheduler, optionally with :class:`GFSConfig` overrides."""
    return SchedulerSpec(kind="gfs", label=label, gfs_config=as_pairs(config_overrides))


def gfs_variant_spec(variant: str, **config_overrides) -> SchedulerSpec:
    """A GFS ablation variant (``gfs-e``/``gfs-d``/``gfs-s``/``gfs-p``/``gfs-sp``)."""
    return SchedulerSpec(kind=variant.lower(), gfs_config=as_pairs(config_overrides))


def comparison_specs(include_gfs: bool = True) -> List[SchedulerSpec]:
    """Baselines plus (by default) GFS — the Table 5 line-up."""
    specs = baseline_specs()
    if include_gfs:
        specs.append(gfs_spec())
    return specs


def sweep_jobs(
    scale: ExperimentScale,
    scheduler_specs: Sequence[SchedulerSpec],
    workload_specs: Sequence[WorkloadSpec],
    prefix: str = "sweep",
) -> List[SimulationJob]:
    """The full cross product of schedulers and workloads as a job list."""
    jobs: List[SimulationJob] = []
    for workload in workload_specs:
        for spec in scheduler_specs:
            suffix = f"+s{workload.seed_offset}" if workload.seed_offset else ""
            key = f"{prefix}/{workload.display}{suffix}/{spec.display}"
            jobs.append(
                SimulationJob(key=key, scale=scale, scheduler=spec, workload=workload)
            )
    return jobs
