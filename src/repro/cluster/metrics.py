"""Metric collection: JCT, JQT, eviction rate and allocation-rate series.

Definitions follow Section 4.2 of the paper:

* **JCT** — finish time minus submission time, averaged over a task set.
* **JQT** — cumulative time spent in the waiting queue (all segments for
  preempted spot tasks).
* **Eviction rate** ``e`` — number of evictions divided by number of runs
  of spot tasks (HP tasks are never evicted, so their rate is 0).

Reliability metrics (``docs/reliability.md``) extend the bundle for runs
with cluster dynamics attached:

* **Goodput GPU-hours** — GPU-hours of work that landed in completed
  tasks, vs **paid GPU-hours**, the time-integral of the *online* fleet
  capacity over the run.  Their ratio is the goodput fraction.
* **Restarts per task** — extra execution attempts beyond the first
  (scheduler evictions and dynamics kills combined).
* **Lost GPU-hours** — progress destroyed by rollbacks to the last
  checkpoint when a node vanished under a running task.
* **HP kills** — HP tasks interrupted by dynamics; the scheduler never
  preempts HP tasks, so under churn every HP interruption is an SLO
  violation charged to the infrastructure.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from .task import Task, TaskType


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile (q in [0, 100]) without numpy."""
    if not values:
        return float("nan")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return ordered[low]
    weight = rank - low
    return ordered[low] * (1.0 - weight) + ordered[high] * weight


def mean(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else float("nan")


@dataclass
class TaskClassMetrics:
    """Aggregated metrics for one task class (HP or spot)."""

    count: int = 0
    jct_mean: float = float("nan")
    jct_p99: float = float("nan")
    jqt_mean: float = float("nan")
    jqt_p99: float = float("nan")
    eviction_rate: float = 0.0
    total_evictions: int = 0
    total_runs: int = 0

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "jct_mean": self.jct_mean,
            "jct_p99": self.jct_p99,
            "jqt_mean": self.jqt_mean,
            "jqt_p99": self.jqt_p99,
            "eviction_rate": self.eviction_rate,
        }


@dataclass
class DynamicsCounts:
    """Raw event counters the simulator accumulates for a dynamics run."""

    node_failures: int = 0
    node_repairs: int = 0
    node_drains: int = 0
    capacity_changes: int = 0


@dataclass
class ReliabilityMetrics:
    """Churn/efficiency metrics for runs under cluster dynamics.

    All fields are well defined (and mostly zero) for static runs too, so
    a run with an empty :class:`~repro.dynamics.DynamicsSpec` is
    bit-identical to one with no dynamics attached.
    """

    node_failures: int = 0
    node_repairs: int = 0
    node_drains: int = 0
    capacity_changes: int = 0
    #: runs interrupted because their node failed/drained/was reclaimed
    tasks_killed: int = 0
    #: HP-task interruptions — SLO violations under churn
    hp_tasks_killed: int = 0
    #: mean extra execution attempts beyond the first, over all tasks
    restarts_per_task: float = 0.0
    #: checkpoint-rollback losses caused by dynamics kills
    lost_gpu_hours: float = 0.0
    #: GPU-hours of work embodied in completed tasks
    goodput_gpu_hours: float = 0.0
    #: time-integral of online fleet capacity over the run
    paid_gpu_hours: float = 0.0

    @property
    def goodput_fraction(self) -> float:
        """Goodput over paid GPU-hours (NaN when nothing was paid for)."""
        if self.paid_gpu_hours <= 0:
            return float("nan")
        return self.goodput_gpu_hours / self.paid_gpu_hours

    def as_dict(self) -> Dict[str, float]:
        return {
            "node_failures": self.node_failures,
            "node_repairs": self.node_repairs,
            "node_drains": self.node_drains,
            "capacity_changes": self.capacity_changes,
            "tasks_killed": self.tasks_killed,
            "hp_tasks_killed": self.hp_tasks_killed,
            "restarts_per_task": self.restarts_per_task,
            "lost_gpu_hours": self.lost_gpu_hours,
            "goodput_gpu_hours": self.goodput_gpu_hours,
            "paid_gpu_hours": self.paid_gpu_hours,
            "goodput_fraction": self.goodput_fraction,
        }


@dataclass
class SimulationMetrics:
    """Full result bundle returned by a simulation run.

    Carries per-class JCT/JQT statistics for HP and spot tasks
    (:class:`TaskClassMetrics`), the sampled allocation-rate series with
    its timestamps, the trace makespan and the number of tasks still
    unfinished when the run stopped (non-zero only with ``max_time``).

    Example
    -------
    >>> metrics = run_simulation(cluster, scheduler, tasks)
    >>> metrics.spot.eviction_rate <= 1.0
    True
    >>> print(metrics.summary())          # human-readable report
    """

    hp: TaskClassMetrics = field(default_factory=TaskClassMetrics)
    spot: TaskClassMetrics = field(default_factory=TaskClassMetrics)
    allocation_rate_mean: float = float("nan")
    allocation_rate_series: List[float] = field(default_factory=list)
    allocation_sample_times: List[float] = field(default_factory=list)
    makespan: float = 0.0
    unfinished_tasks: int = 0
    reliability: ReliabilityMetrics = field(default_factory=ReliabilityMetrics)

    def as_dict(self) -> Dict[str, object]:
        return {
            "hp": self.hp.as_dict(),
            "spot": self.spot.as_dict(),
            "allocation_rate_mean": self.allocation_rate_mean,
            "makespan": self.makespan,
            "unfinished_tasks": self.unfinished_tasks,
            "reliability": self.reliability.as_dict(),
        }

    def summary(self) -> str:
        """A compact, human-readable summary string."""
        text = (
            f"HP:   JCT={self.hp.jct_mean:,.1f}s  JCT-p99={self.hp.jct_p99:,.1f}s  "
            f"JQT={self.hp.jqt_mean:,.1f}s\n"
            f"SPOT: JCT={self.spot.jct_mean:,.1f}s  JQT={self.spot.jqt_mean:,.1f}s  "
            f"eviction={self.spot.eviction_rate * 100:.2f}%\n"
            f"allocation rate={self.allocation_rate_mean * 100:.2f}%  "
            f"makespan={self.makespan:,.0f}s  unfinished={self.unfinished_tasks}"
        )
        rel = self.reliability
        if rel.tasks_killed or rel.node_failures or rel.node_drains or rel.capacity_changes:
            text += (
                f"\nCHURN: failures={rel.node_failures} drains={rel.node_drains} "
                f"capacity-events={rel.capacity_changes} kills={rel.tasks_killed} "
                f"(HP {rel.hp_tasks_killed})  lost={rel.lost_gpu_hours:,.1f} GPUh  "
                f"goodput={rel.goodput_fraction * 100:.1f}% of paid"
            )
        return text


def compute_class_metrics(tasks: Iterable[Task]) -> TaskClassMetrics:
    """Aggregate metrics over completed tasks of one class."""
    tasks = list(tasks)
    finished = [t for t in tasks if t.finish_time is not None]
    jcts = [t.jct for t in finished if t.jct is not None]
    jqts = [t.jqt for t in finished]
    total_runs = sum(t.run_count for t in tasks)
    total_evictions = sum(t.eviction_count for t in tasks)
    eviction_rate = total_evictions / total_runs if total_runs else 0.0
    return TaskClassMetrics(
        count=len(finished),
        jct_mean=mean(jcts),
        jct_p99=percentile(jcts, 99),
        jqt_mean=mean(jqts),
        jqt_p99=percentile(jqts, 99),
        eviction_rate=eviction_rate,
        total_evictions=total_evictions,
        total_runs=total_runs,
    )


def compute_reliability(
    tasks: Sequence[Task],
    counts: Optional[DynamicsCounts] = None,
    paid_gpu_hours: float = 0.0,
) -> ReliabilityMetrics:
    """Aggregate reliability metrics from task state plus event counters.

    Task-derived figures (goodput, restarts, lost work, kill counts) come
    straight from the tasks; event counters and the paid-capacity integral
    are accumulated by the simulator and passed in (both default to zero
    for direct metric computations outside a simulation run).
    """
    tasks = list(tasks)
    counts = counts or DynamicsCounts()
    goodput_seconds = sum(
        t.duration * t.total_gpus for t in tasks if t.finish_time is not None
    )
    restarts = sum(t.restart_count for t in tasks)
    return ReliabilityMetrics(
        node_failures=counts.node_failures,
        node_repairs=counts.node_repairs,
        node_drains=counts.node_drains,
        capacity_changes=counts.capacity_changes,
        tasks_killed=sum(t.dynamics_kill_count for t in tasks),
        hp_tasks_killed=sum(
            t.dynamics_kill_count for t in tasks if t.task_type is TaskType.HP
        ),
        restarts_per_task=restarts / len(tasks) if tasks else 0.0,
        lost_gpu_hours=sum(t.lost_gpu_seconds for t in tasks) / 3600.0,
        goodput_gpu_hours=goodput_seconds / 3600.0,
        paid_gpu_hours=paid_gpu_hours,
    )


def compute_metrics(
    tasks: Sequence[Task],
    allocation_series: Optional[Sequence[float]] = None,
    allocation_times: Optional[Sequence[float]] = None,
    makespan: float = 0.0,
    dynamics_counts: Optional[DynamicsCounts] = None,
    paid_gpu_hours: float = 0.0,
) -> SimulationMetrics:
    """Build a :class:`SimulationMetrics` bundle from finished simulation state."""
    hp_tasks = [t for t in tasks if t.task_type is TaskType.HP]
    spot_tasks = [t for t in tasks if t.task_type is TaskType.SPOT]
    allocation_series = list(allocation_series or [])
    metrics = SimulationMetrics(
        hp=compute_class_metrics(hp_tasks),
        spot=compute_class_metrics(spot_tasks),
        allocation_rate_mean=mean(allocation_series) if allocation_series else float("nan"),
        allocation_rate_series=allocation_series,
        allocation_sample_times=list(allocation_times or []),
        makespan=makespan,
        unfinished_tasks=sum(1 for t in tasks if t.finish_time is None),
        reliability=compute_reliability(tasks, dynamics_counts, paid_gpu_hours),
    )
    return metrics


def improvement(baseline: float, value: float) -> float:
    """Relative improvement of ``value`` over ``baseline`` (positive = better/lower)."""
    if baseline == 0:
        return 0.0
    return (baseline - value) / baseline
