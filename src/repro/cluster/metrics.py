"""Metric collection: JCT, JQT, eviction rate and allocation-rate series.

Definitions follow Section 4.2 of the paper:

* **JCT** — finish time minus submission time, averaged over a task set.
* **JQT** — cumulative time spent in the waiting queue (all segments for
  preempted spot tasks).
* **Eviction rate** ``e`` — number of evictions divided by number of runs
  of spot tasks (HP tasks are never evicted, so their rate is 0).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from .task import Task, TaskType


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile (q in [0, 100]) without numpy."""
    if not values:
        return float("nan")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return ordered[low]
    weight = rank - low
    return ordered[low] * (1.0 - weight) + ordered[high] * weight


def mean(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else float("nan")


@dataclass
class TaskClassMetrics:
    """Aggregated metrics for one task class (HP or spot)."""

    count: int = 0
    jct_mean: float = float("nan")
    jct_p99: float = float("nan")
    jqt_mean: float = float("nan")
    jqt_p99: float = float("nan")
    eviction_rate: float = 0.0
    total_evictions: int = 0
    total_runs: int = 0

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "jct_mean": self.jct_mean,
            "jct_p99": self.jct_p99,
            "jqt_mean": self.jqt_mean,
            "jqt_p99": self.jqt_p99,
            "eviction_rate": self.eviction_rate,
        }


@dataclass
class SimulationMetrics:
    """Full result bundle returned by a simulation run.

    Carries per-class JCT/JQT statistics for HP and spot tasks
    (:class:`TaskClassMetrics`), the sampled allocation-rate series with
    its timestamps, the trace makespan and the number of tasks still
    unfinished when the run stopped (non-zero only with ``max_time``).

    Example
    -------
    >>> metrics = run_simulation(cluster, scheduler, tasks)
    >>> metrics.spot.eviction_rate <= 1.0
    True
    >>> print(metrics.summary())          # human-readable report
    """

    hp: TaskClassMetrics = field(default_factory=TaskClassMetrics)
    spot: TaskClassMetrics = field(default_factory=TaskClassMetrics)
    allocation_rate_mean: float = float("nan")
    allocation_rate_series: List[float] = field(default_factory=list)
    allocation_sample_times: List[float] = field(default_factory=list)
    makespan: float = 0.0
    unfinished_tasks: int = 0

    def as_dict(self) -> Dict[str, object]:
        return {
            "hp": self.hp.as_dict(),
            "spot": self.spot.as_dict(),
            "allocation_rate_mean": self.allocation_rate_mean,
            "makespan": self.makespan,
            "unfinished_tasks": self.unfinished_tasks,
        }

    def summary(self) -> str:
        """A compact, human-readable summary string."""
        return (
            f"HP:   JCT={self.hp.jct_mean:,.1f}s  JCT-p99={self.hp.jct_p99:,.1f}s  "
            f"JQT={self.hp.jqt_mean:,.1f}s\n"
            f"SPOT: JCT={self.spot.jct_mean:,.1f}s  JQT={self.spot.jqt_mean:,.1f}s  "
            f"eviction={self.spot.eviction_rate * 100:.2f}%\n"
            f"allocation rate={self.allocation_rate_mean * 100:.2f}%  "
            f"makespan={self.makespan:,.0f}s  unfinished={self.unfinished_tasks}"
        )


def compute_class_metrics(tasks: Iterable[Task]) -> TaskClassMetrics:
    """Aggregate metrics over completed tasks of one class."""
    tasks = list(tasks)
    finished = [t for t in tasks if t.finish_time is not None]
    jcts = [t.jct for t in finished if t.jct is not None]
    jqts = [t.jqt for t in finished]
    total_runs = sum(t.run_count for t in tasks)
    total_evictions = sum(t.eviction_count for t in tasks)
    eviction_rate = total_evictions / total_runs if total_runs else 0.0
    return TaskClassMetrics(
        count=len(finished),
        jct_mean=mean(jcts),
        jct_p99=percentile(jcts, 99),
        jqt_mean=mean(jqts),
        jqt_p99=percentile(jqts, 99),
        eviction_rate=eviction_rate,
        total_evictions=total_evictions,
        total_runs=total_runs,
    )


def compute_metrics(
    tasks: Sequence[Task],
    allocation_series: Optional[Sequence[float]] = None,
    allocation_times: Optional[Sequence[float]] = None,
    makespan: float = 0.0,
) -> SimulationMetrics:
    """Build a :class:`SimulationMetrics` bundle from finished simulation state."""
    hp_tasks = [t for t in tasks if t.task_type is TaskType.HP]
    spot_tasks = [t for t in tasks if t.task_type is TaskType.SPOT]
    allocation_series = list(allocation_series or [])
    metrics = SimulationMetrics(
        hp=compute_class_metrics(hp_tasks),
        spot=compute_class_metrics(spot_tasks),
        allocation_rate_mean=mean(allocation_series) if allocation_series else float("nan"),
        allocation_rate_series=allocation_series,
        allocation_sample_times=list(allocation_times or []),
        makespan=makespan,
        unfinished_tasks=sum(1 for t in tasks if t.finish_time is None),
    )
    return metrics


def improvement(baseline: float, value: float) -> float:
    """Relative improvement of ``value`` over ``baseline`` (positive = better/lower)."""
    if baseline == 0:
        return 0.0
    return (baseline - value) / baseline
