"""Node model: a machine with a fixed set of GPU cards.

Nodes track per-card allocations, the split of allocated GPUs between HP
and spot tasks (used by the co-location score), and an eviction history
(used by the eviction-awareness score and the circuit breaker).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Tuple

from .gpu import EPSILON, GPUDevice, GPUModel
from .task import Task, TaskType


@dataclass
class Node:
    """A single worker node with ``num_gpus`` cards of one GPU model."""

    node_id: str
    gpu_model: GPUModel
    num_gpus: int = 8
    cluster_label: str = "default"

    #: whether the node is part of the schedulable fleet right now; cluster
    #: dynamics (failures, drains, elastic capacity) toggle this through
    #: ``Cluster.deactivate_node``/``activate_node`` — never flip it directly
    #: on a cluster-owned node or the cached aggregates will drift
    available: bool = True
    gpus: List[GPUDevice] = field(default_factory=list)
    #: task_id -> list of (gpu index, fraction) shares held on this node
    task_shares: Dict[str, List[Tuple[int, float]]] = field(default_factory=dict)
    #: task_id -> TaskType, for fast HP/spot accounting
    task_types: Dict[str, TaskType] = field(default_factory=dict)
    #: timestamps of spot evictions that happened on this node
    eviction_history: Deque[float] = field(default_factory=deque)
    #: incrementally maintained GPU capacity held per task type
    _type_gpus: Dict[TaskType, float] = field(default_factory=dict)
    #: cached capacity figures, refreshed after every allocate/release
    _idle_cache: int = 0
    _free_cache: float = 0.0
    _max_card_free_cache: float = 1.0
    #: owning cluster's aggregate-maintenance hook; called with
    #: ``(node, free_delta, hp_delta, spot_delta)`` after every mutation so
    #: cluster-level caches stay consistent even when a node is mutated
    #: directly (tests and placement helpers do this)
    _capacity_listener: Optional[Callable[["Node", float, float, float], None]] = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.num_gpus < 1:
            raise ValueError("a node must have at least one GPU")
        if not self.gpus:
            self.gpus = [GPUDevice(index=i, model=self.gpu_model) for i in range(self.num_gpus)]
        self._type_gpus = {TaskType.HP: 0.0, TaskType.SPOT: 0.0}
        self._refresh_capacity()

    def _refresh_capacity(self) -> None:
        """Recompute cached idle/free figures (called after every mutation)."""
        idle = 0
        free = 0.0
        max_card = 0.0
        for g in self.gpus:
            if g.is_idle:
                idle += 1
            fraction = g.free_fraction
            free += fraction
            if fraction > max_card:
                max_card = fraction
        self._idle_cache = idle
        self._free_cache = free
        self._max_card_free_cache = max_card

    def register_capacity_listener(
        self, listener: Optional[Callable[["Node", float, float, float], None]]
    ) -> None:
        """Install the owning cluster's aggregate-maintenance callback.

        A node belongs to at most one cluster: silently replacing the
        listener would freeze the first cluster's cached aggregates, so
        claiming an already-owned node raises.  Pass ``None`` to detach
        the node from its cluster first.

        Raises
        ------
        ValueError
            If a different listener is already registered.
        """
        # Equality (not identity) so re-registering the same cluster's bound
        # method is idempotent — each attribute access creates a fresh bound
        # method object, but equal ones share __self__ and __func__.
        if (
            listener is not None
            and self._capacity_listener is not None
            and self._capacity_listener != listener
        ):
            raise ValueError(
                f"node {self.node_id} already belongs to a cluster; detach it "
                "(register_capacity_listener(None)) before adding it to another"
            )
        self._capacity_listener = listener

    def _notify(self, free_before: float, hp_before: float, spot_before: float) -> None:
        if self._capacity_listener is not None:
            self._capacity_listener(
                self,
                self._free_cache - free_before,
                self.hp_gpus - hp_before,
                self.spot_gpus - spot_before,
            )

    # ------------------------------------------------------------------
    # Capacity queries
    # ------------------------------------------------------------------
    @property
    def total_gpus(self) -> int:
        return self.num_gpus

    @property
    def idle_gpus(self) -> int:
        """Number of completely idle cards."""
        return self._idle_cache

    @property
    def free_capacity(self) -> float:
        """Total free GPU capacity including fractional remainders."""
        return self._free_cache

    @property
    def max_card_free(self) -> float:
        """Largest free fraction on any single card (fractional-pod fit)."""
        return self._max_card_free_cache

    @property
    def allocated_gpus(self) -> float:
        """Total allocated GPU capacity (fractional)."""
        return self.num_gpus - self._free_cache

    @property
    def allocation_rate(self) -> float:
        """Fraction of the node's GPU capacity currently allocated."""
        return self.allocated_gpus / self.num_gpus if self.num_gpus else 0.0

    def allocated_gpus_by_type(self, task_type: TaskType) -> float:
        """GPU capacity held on this node by tasks of ``task_type``."""
        return max(0.0, self._type_gpus.get(task_type, 0.0))

    @property
    def hp_gpus(self) -> float:
        return self.allocated_gpus_by_type(TaskType.HP)

    @property
    def spot_gpus(self) -> float:
        return self.allocated_gpus_by_type(TaskType.SPOT)

    def running_task_ids(self, task_type: Optional[TaskType] = None) -> List[str]:
        """Ids of tasks holding GPUs on this node, optionally filtered by type."""
        if task_type is None:
            return list(self.task_shares)
        return [tid for tid in self.task_shares if self.task_types.get(tid) is task_type]

    # ------------------------------------------------------------------
    # Fit / allocate / release
    # ------------------------------------------------------------------
    def can_fit_pod(self, gpus_per_pod: float) -> bool:
        """Whether one pod of ``gpus_per_pod`` GPUs fits on this node right now."""
        if gpus_per_pod < 1.0 - EPSILON:
            return any(g.can_fit(gpus_per_pod) for g in self.gpus)
        return self.idle_gpus >= int(round(gpus_per_pod))

    def max_pods(self, gpus_per_pod: float) -> int:
        """Maximum number of pods of the given size that fit simultaneously."""
        if gpus_per_pod < 1.0 - EPSILON:
            return sum(int(g.free_fraction / gpus_per_pod + EPSILON) for g in self.gpus)
        whole = int(round(gpus_per_pod))
        return self.idle_gpus // whole if whole else 0

    def allocate_pod(self, task: Task, gpus_per_pod: Optional[float] = None) -> Tuple[int, ...]:
        """Allocate one pod of ``task`` to this node and return the card indices used.

        Raises
        ------
        ValueError
            If the pod does not fit.
        """
        if not self.available:
            raise ValueError(f"node {self.node_id} is offline (failed/drained)")
        g = task.gpus_per_pod if gpus_per_pod is None else gpus_per_pod
        free_before, hp_before, spot_before = self._free_cache, self.hp_gpus, self.spot_gpus
        if g < 1.0 - EPSILON:
            # Fractional request: pick the busiest card that still fits
            # (best-fit within the node limits fragmentation).
            candidates = [dev for dev in self.gpus if dev.can_fit(g)]
            if not candidates:
                raise ValueError(f"node {self.node_id} cannot fit fractional pod of {g}")
            device = min(candidates, key=lambda d: d.free_fraction)
            device.allocate(task.task_id, g)
            used = ((device.index, g),)
        else:
            whole = int(round(g))
            idle = [dev for dev in self.gpus if dev.is_idle]
            if len(idle) < whole:
                raise ValueError(
                    f"node {self.node_id} has {len(idle)} idle GPUs, pod needs {whole}"
                )
            chosen = idle[:whole]
            for dev in chosen:
                dev.allocate(task.task_id, 1.0)
            used = tuple((dev.index, 1.0) for dev in chosen)

        shares = self.task_shares.setdefault(task.task_id, [])
        shares.extend(used)
        self.task_types[task.task_id] = task.task_type
        self._type_gpus[task.task_type] = self._type_gpus.get(task.task_type, 0.0) + sum(
            fraction for _, fraction in used
        )
        self._refresh_capacity()
        self._notify(free_before, hp_before, spot_before)
        return tuple(index for index, _ in used)

    def release_task(self, task_id: str) -> float:
        """Release every GPU share held by ``task_id`` on this node."""
        free_before, hp_before, spot_before = self._free_cache, self.hp_gpus, self.spot_gpus
        freed = 0.0
        for device in self.gpus:
            freed += device.release(task_id)
        self.task_shares.pop(task_id, None)
        task_type = self.task_types.pop(task_id, None)
        if task_type is not None:
            self._type_gpus[task_type] = max(0.0, self._type_gpus.get(task_type, 0.0) - freed)
        self._refresh_capacity()
        self._notify(free_before, hp_before, spot_before)
        return freed

    # ------------------------------------------------------------------
    # Eviction history (Score 3 / circuit breaker)
    # ------------------------------------------------------------------
    def record_eviction(self, timestamp: float) -> None:
        """Record that a spot task was evicted from this node at ``timestamp``."""
        self.eviction_history.append(timestamp)

    def eviction_count_since(self, now: float, window: float) -> int:
        """Number of recorded evictions in the trailing ``window`` seconds."""
        cutoff = now - window
        # Old entries are dropped lazily to keep the deque bounded, but never
        # entries that are still inside the requested window.
        retention = now - max(window, 90 * 86400.0)
        while self.eviction_history and self.eviction_history[0] < retention:
            self.eviction_history.popleft()
        return sum(1 for t in self.eviction_history if t >= cutoff)

    def snapshot(self) -> Dict[str, float]:
        """A dictionary snapshot used by reporting and tests."""
        return {
            "node_id": self.node_id,
            "model": self.gpu_model.value,
            "available": self.available,
            "total_gpus": self.num_gpus,
            "idle_gpus": self.idle_gpus,
            "allocated": self.allocated_gpus,
            "hp_gpus": self.hp_gpus,
            "spot_gpus": self.spot_gpus,
            "allocation_rate": self.allocation_rate,
        }


def make_nodes(
    count: int,
    gpu_model: GPUModel,
    gpus_per_node: int = 8,
    cluster_label: str = "default",
    prefix: Optional[str] = None,
) -> List[Node]:
    """Create ``count`` homogeneous nodes of the given model."""
    prefix = prefix or f"{gpu_model.value.lower()}-{cluster_label}"
    return [
        Node(
            node_id=f"{prefix}-{i:04d}",
            gpu_model=gpu_model,
            num_gpus=gpus_per_node,
            cluster_label=cluster_label,
        )
        for i in range(count)
    ]
