"""GPU-cluster simulation substrate.

This package provides the discrete-event cluster simulator that every
scheduler in the reproduction runs against: GPU/node/cluster state, the
task model with checkpoints and run logs, the event loop, metric
collection and a simple pricing model.
"""

from .capacity_index import CapacityIndex, CapacityIndexError
from .cluster import AggregateConsistencyError, Cluster, ClusterStats
from .events import (
    DYNAMICS_EVENT_KINDS,
    DynamicsAction,
    Event,
    EventKind,
    SchedulingDecision,
)
from .gpu import GPUDevice, GPUModel, HOURLY_PRICE_USD
from .metrics import (
    DynamicsCounts,
    ReliabilityMetrics,
    SimulationMetrics,
    TaskClassMetrics,
    compute_class_metrics,
    compute_metrics,
    compute_reliability,
    improvement,
    percentile,
)
from .node import Node, make_nodes
from .pending import PendingQueue
from .pricing import FleetPricing, monthly_allocation_revenue, monthly_benefit
from .simulator import ClusterSimulator, SimulationError, SimulatorConfig, run_simulation
from .task import (
    PodPlacement,
    RunLog,
    Task,
    TaskState,
    TaskType,
    generate_checkpoints,
    make_task,
    reset_task_counter,
    total_gpu_demand,
)

__all__ = [
    "AggregateConsistencyError",
    "CapacityIndex",
    "CapacityIndexError",
    "Cluster",
    "ClusterStats",
    "ClusterSimulator",
    "DYNAMICS_EVENT_KINDS",
    "DynamicsAction",
    "DynamicsCounts",
    "Event",
    "EventKind",
    "FleetPricing",
    "GPUDevice",
    "GPUModel",
    "HOURLY_PRICE_USD",
    "Node",
    "PendingQueue",
    "PodPlacement",
    "ReliabilityMetrics",
    "RunLog",
    "SchedulingDecision",
    "SimulationError",
    "SimulationMetrics",
    "SimulatorConfig",
    "Task",
    "TaskClassMetrics",
    "TaskState",
    "TaskType",
    "compute_class_metrics",
    "compute_metrics",
    "compute_reliability",
    "generate_checkpoints",
    "improvement",
    "make_nodes",
    "make_task",
    "monthly_allocation_revenue",
    "monthly_benefit",
    "percentile",
    "reset_task_counter",
    "run_simulation",
    "total_gpu_demand",
]
