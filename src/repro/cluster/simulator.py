"""Discrete-event GPU cluster simulator.

The simulator drives a scheduler (GFS or any baseline) over a task trace.
It owns the event loop, queue/metrics accounting, preemption mechanics and
checkpoint-aware restarts; schedulers only make placement decisions.

Scheduler interface (duck-typed, see :class:`repro.schedulers.base.Scheduler`):

* ``sort_queue(pending, now)`` — ordering of the waiting queue.
* ``try_schedule(task, cluster, now)`` — returns a
  :class:`~repro.cluster.events.SchedulingDecision` or ``None``.
* ``on_task_submit / on_task_start / on_task_finish / on_task_evicted`` —
  optional notification hooks.
* ``on_tick(cluster, now, pending)`` — periodic hook (spot-quota updates).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from .cluster import Cluster
from .events import Event, EventKind, SchedulingDecision
from .metrics import SimulationMetrics, compute_metrics
from .task import RunLog, Task, TaskState


@dataclass
class SimulatorConfig:
    """Tunable knobs of the simulation engine."""

    #: grace period granted to evicted spot tasks before the preemptor starts
    preemption_grace_period: float = 30.0
    #: restart overhead paid by an evicted spot task when it runs again
    #: (environment re-setup and checkpoint reload)
    restart_overhead: float = 300.0
    #: periodic tick used for quota updates and allocation-rate sampling
    tick_interval: float = 300.0
    #: hard cap on simulated time (None = run until the trace drains)
    max_time: Optional[float] = None
    #: sample the allocation rate at every tick
    sample_allocation: bool = True


class SimulationError(RuntimeError):
    """Raised when the simulator reaches an inconsistent state."""


class ClusterSimulator:
    """Event-driven simulator binding a scheduler to a cluster and a trace."""

    def __init__(
        self,
        cluster: Cluster,
        scheduler,
        config: Optional[SimulatorConfig] = None,
    ):
        self.cluster = cluster
        self.scheduler = scheduler
        self.config = config or SimulatorConfig()
        self.now: float = 0.0
        self._events: List[Event] = []
        self._seq = itertools.count()
        self.pending: List[Task] = []
        self.all_tasks: List[Task] = []
        #: run epoch per task; finish events from stale epochs are ignored
        self._epochs: Dict[str, int] = {}
        self.allocation_samples: List[float] = []
        self.allocation_sample_times: List[float] = []
        self._finished_count = 0

    # ------------------------------------------------------------------
    # Event plumbing
    # ------------------------------------------------------------------
    def _push(self, time: float, kind: EventKind, task: Optional[Task] = None, epoch: int = 0) -> None:
        heapq.heappush(self._events, Event(time=time, kind=kind, seq=next(self._seq), task=task, epoch=epoch))

    def submit(self, task: Task) -> None:
        """Register a task arrival event at its submission time."""
        self.all_tasks.append(task)
        self._epochs[task.task_id] = 0
        self._push(task.submit_time, EventKind.TASK_ARRIVAL, task)

    def submit_all(self, tasks: Sequence[Task]) -> None:
        for task in tasks:
            self.submit(task)

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self) -> SimulationMetrics:
        """Run the simulation until the trace drains (or ``max_time`` hits)."""
        if not self._events:
            raise SimulationError("no tasks submitted")
        first_time = min(e.time for e in self._events)
        self.now = first_time
        if hasattr(self.scheduler, "on_simulation_start"):
            self.scheduler.on_simulation_start(self.cluster, self.now)
        if self.config.tick_interval > 0:
            self._push(first_time + self.config.tick_interval, EventKind.QUOTA_TICK)

        while self._events:
            event = heapq.heappop(self._events)
            if self.config.max_time is not None and event.time > self.config.max_time:
                break
            self.now = event.time
            if event.kind is EventKind.TASK_ARRIVAL:
                self._handle_arrival(event.task)
            elif event.kind is EventKind.TASK_FINISH:
                self._handle_finish(event.task, event.epoch)
            elif event.kind is EventKind.QUOTA_TICK:
                self._handle_tick()
            # SAMPLE events are folded into ticks.

        return self.collect_metrics()

    # ------------------------------------------------------------------
    # Event handlers
    # ------------------------------------------------------------------
    def _handle_arrival(self, task: Task) -> None:
        task.state = TaskState.PENDING
        task.queue_enter_time = self.now
        self.pending.append(task)
        if hasattr(self.scheduler, "on_task_submit"):
            self.scheduler.on_task_submit(task, self.cluster, self.now)
        # Arrivals only trigger a scheduling attempt for the new task; the
        # full queue is re-examined on completions and periodic ticks.  This
        # keeps the event loop close to linear in the number of events.
        self._schedule_pending(only=task)

    def _handle_finish(self, task: Task, epoch: int) -> None:
        if task is None or self._epochs.get(task.task_id) != epoch:
            return  # stale finish event from a run that was preempted
        if task.state is not TaskState.RUNNING:
            return
        runtime = self.now - task.run_logs[-1].start
        task.run_logs[-1].end = self.now
        task.run_logs[-1].checkpoint_index = len(task.checkpoints) - 1
        task.completed_work = task.duration
        task.state = TaskState.COMPLETED
        task.finish_time = self.now
        self.cluster.record_execution(task, runtime)
        self.cluster.remove_task(task)
        if task.is_spot:
            self.cluster.record_spot_outcome(evicted=False)
        self._finished_count += 1
        if hasattr(self.scheduler, "on_task_finish"):
            self.scheduler.on_task_finish(task, self.cluster, self.now)
        self._schedule_pending()

    def _handle_tick(self) -> None:
        if self.config.sample_allocation:
            self.allocation_samples.append(self.cluster.allocation_rate())
            self.allocation_sample_times.append(self.now)
        if hasattr(self.scheduler, "on_tick"):
            self.scheduler.on_tick(self.cluster, self.now, list(self.pending))
        pending_before = len(self.pending)
        self._schedule_pending()
        # Keep ticking while there is still work anywhere in the system, but
        # stop once the only remaining work is pending tasks that can never
        # be scheduled (nothing running, no future arrivals/finishes, and the
        # tick made no progress) — otherwise the loop would tick forever.
        has_other_events = any(e.kind is not EventKind.QUOTA_TICK for e in self._events)
        stuck = (
            bool(self.pending)
            and not self.cluster.running_tasks
            and not has_other_events
            and len(self.pending) == pending_before
        )
        if (self.pending or self.cluster.running_tasks or has_other_events) and not stuck:
            self._push(self.now + self.config.tick_interval, EventKind.QUOTA_TICK)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def _schedule_pending(self, only: Optional[Task] = None) -> None:
        """Offer pending tasks to the scheduler in its preferred order.

        When ``only`` is given, just that task is offered (used on arrivals).
        """
        if not self.pending:
            return
        if only is not None:
            ordered = [only] if only in self.pending else []
        else:
            ordered = self.scheduler.sort_queue(list(self.pending), self.now)
        scheduled: List[Task] = []
        blocked_spot = False
        blocked_hp = False
        blocks = getattr(self.scheduler, "blocks_on_failure", None)
        for task in ordered:
            if task not in self.pending:
                continue
            if (blocked_spot and task.is_spot) or (blocked_hp and task.is_hp):
                continue
            decision = self.scheduler.try_schedule(task, self.cluster, self.now)
            if decision is None:
                if blocks is not None and blocks(task):
                    # FCFS semantics: the head of this class blocks the rest.
                    if task.is_spot:
                        blocked_spot = True
                    else:
                        blocked_hp = True
                continue
            self._apply_decision(task, decision)
            scheduled.append(task)
        for task in scheduled:
            if task in self.pending:
                self.pending.remove(task)

    def _apply_decision(self, task: Task, decision: SchedulingDecision) -> None:
        delay = max(0.0, decision.start_delay)
        if decision.preempted_task_ids:
            delay += self.config.preemption_grace_period
            for victim_id in decision.preempted_task_ids:
                victim = self.cluster.running_tasks.get(victim_id)
                if victim is None:
                    raise SimulationError(f"preemption target {victim_id} is not running")
                if victim.is_hp:
                    raise SimulationError("HP tasks must never be preempted")
                self._evict(victim)
        self._start_task(task, decision.placements, start_delay=delay)

    def _start_task(self, task: Task, placements, start_delay: float = 0.0) -> None:
        start = self.now + start_delay
        self.cluster.place_task(task, placements)
        task.total_queue_time += max(0.0, self.now - task.queue_enter_time)
        overhead = self.config.restart_overhead if task.eviction_count > 0 else 0.0
        task.run_logs.append(RunLog(start=start))
        task.state = TaskState.RUNNING
        if task.first_start_time is None:
            task.first_start_time = start
        self._epochs[task.task_id] = self._epochs.get(task.task_id, 0) + 1
        finish_time = start + task.remaining_work + overhead
        self._push(finish_time, EventKind.TASK_FINISH, task, epoch=self._epochs[task.task_id])
        if hasattr(self.scheduler, "on_task_start"):
            self.scheduler.on_task_start(task, self.cluster, self.now)

    def _evict(self, task: Task) -> None:
        """Evict a running spot task: roll back to its last checkpoint and re-queue."""
        run = task.run_logs[-1]
        elapsed = max(0.0, self.now - run.start)
        progress = task.completed_work + elapsed
        ckpt_idx = task.highest_checkpoint_before(progress)
        saved = task.checkpoints[ckpt_idx] if ckpt_idx >= 0 else 0.0
        task.completed_work = min(task.duration, max(task.completed_work, saved))
        run.end = self.now
        run.evicted = True
        run.checkpoint_index = ckpt_idx
        task.eviction_count += 1
        self.cluster.record_execution(task, elapsed)
        for pod in task.placements:
            self.cluster.node(pod.node_id).record_eviction(self.now)
        self.cluster.remove_task(task)
        self.cluster.record_spot_outcome(evicted=True)
        task.state = TaskState.PENDING
        task.queue_enter_time = self.now
        self.pending.append(task)
        if hasattr(self.scheduler, "on_task_evicted"):
            self.scheduler.on_task_evicted(task, self.cluster, self.now)

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def collect_metrics(self) -> SimulationMetrics:
        return compute_metrics(
            self.all_tasks,
            allocation_series=self.allocation_samples,
            allocation_times=self.allocation_sample_times,
            makespan=self.now - (min(t.submit_time for t in self.all_tasks) if self.all_tasks else 0.0),
        )


def run_simulation(
    cluster: Cluster,
    scheduler,
    tasks: Sequence[Task],
    config: Optional[SimulatorConfig] = None,
) -> SimulationMetrics:
    """Convenience wrapper: build a simulator, submit tasks and run to completion."""
    simulator = ClusterSimulator(cluster, scheduler, config)
    simulator.submit_all(tasks)
    return simulator.run()
