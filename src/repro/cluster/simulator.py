"""Discrete-event GPU cluster simulator.

The simulator drives a scheduler (GFS or any baseline) over a task trace.
It owns the event loop, queue/metrics accounting, preemption mechanics and
checkpoint-aware restarts; schedulers only make placement decisions.

Scheduler interface (duck-typed, see :class:`repro.schedulers.base.Scheduler`):

* ``sort_queue(pending, now)`` — ordering of the waiting queue.
* ``try_schedule(task, cluster, now, ctx=None)`` — returns a
  :class:`~repro.cluster.events.SchedulingDecision` or ``None``; ``ctx``
  is the simulator's shared per-pass
  :class:`~repro.schedulers.placement.PlacementContext` and is only passed
  to schedulers whose signature declares it (duck-typed compatibility).
* ``blocks_on_failure(task)`` — optional FCFS semantics: a failed head
  blocks the rest of its class for this pass.
* ``on_task_submit / on_task_start / on_task_finish / on_task_evicted`` —
  optional notification hooks.
* ``on_tick(cluster, now, pending)`` — periodic hook (spot-quota updates).
* ``on_simulation_start(cluster, now)`` — optional setup hook.
* ``on_node_down / on_node_up / on_task_killed`` — optional cluster-
  dynamics hooks (node failures, maintenance drains, elastic capacity).

Cluster dynamics
----------------
A :class:`~repro.dynamics.FaultInjector` (or the
:class:`~repro.dynamics.DynamicsSpec` it wraps) can be attached via the
``dynamics`` argument.  Its pre-generated schedule of node outages is
pushed into the event heap up front, so a run is a pure function of
``(tasks, seed, cluster spec, dynamics spec)`` regardless of worker
count.  When a node goes offline, every task running on it is killed
through the normal release paths — rolled back to its last checkpoint
(failures, reclamations) or checkpointed in place (planned drains) — and
requeued; the node is excluded from all placement candidates until its
repair event restores it.  Reliability accounting (kills, lost work, the
paid-capacity integral) lands in ``SimulationMetrics.reliability``.

Hot-path design
---------------
The waiting queue is a :class:`~repro.cluster.pending.PendingQueue` — a
dict-backed ordered set with O(1) membership and removal — so one pass of
``_schedule_pending`` over ``P`` waiting tasks costs ``O(P log P)`` for
the scheduler's sort instead of the ``O(P^2)`` list scans the naive
implementation paid.  The event loop additionally maintains a counter of
non-tick events so the tick handler's liveness check is O(1) instead of
scanning the whole event heap every tick.  Placement search runs through
a per-pass :class:`~repro.schedulers.placement.PlacementContext`: node
views are built once per pass and refreshed only for mutated nodes,
candidates come from the cluster's capacity index, and task shapes that
already failed against unchanged capacity are skipped without a search
(see ``docs/performance.md``).
"""

from __future__ import annotations

import copy
import heapq
import inspect
import itertools
import pickle
from dataclasses import dataclass
from time import perf_counter
from typing import Dict, List, Optional, Sequence

from ..obs.recorder import NULL_RECORDER, EventLoopCounters, PassRecord, TickSample
from .cluster import Cluster
from .events import DYNAMICS_EVENT_KINDS, DynamicsAction, Event, EventKind, SchedulingDecision
from .metrics import DynamicsCounts, SimulationMetrics, compute_metrics
from .pending import PendingQueue
from .task import RunLog, Task, TaskState


@dataclass
class SimulatorConfig:
    """Tunable knobs of the simulation engine.

    Controls preemption mechanics (grace period, restart overhead), the
    periodic quota/sampling tick and the optional hard time cap.  The
    defaults mirror the paper's deployment parameters (Table 4).

    Example
    -------
    >>> config = SimulatorConfig(tick_interval=300.0, max_time=86_400.0)
    >>> metrics = run_simulation(cluster, scheduler, tasks, config)
    """

    #: grace period granted to evicted spot tasks before the preemptor starts
    preemption_grace_period: float = 30.0
    #: restart overhead paid by an evicted spot task when it runs again
    #: (environment re-setup and checkpoint reload)
    restart_overhead: float = 300.0
    #: periodic tick used for quota updates and allocation-rate sampling
    tick_interval: float = 300.0
    #: hard cap on simulated time (None = run until the trace drains)
    max_time: Optional[float] = None
    #: sample the allocation rate at every tick
    sample_allocation: bool = True


class SimulationError(RuntimeError):
    """Raised when the simulator reaches an inconsistent state."""


class ClusterSimulator:
    """Event-driven simulator binding a scheduler to a cluster and a trace.

    Tasks are registered with :meth:`submit` / :meth:`submit_all` and the
    whole trace is replayed by :meth:`run`, which returns a
    :class:`~repro.cluster.metrics.SimulationMetrics`.  The simulator owns
    the event heap, the indexed pending queue, preemption/restart
    mechanics and allocation-rate sampling; the scheduler only decides
    placements.  Use :func:`run_simulation` unless you need to inspect
    simulator state mid-run.

    Example
    -------
    >>> sim = ClusterSimulator(cluster, scheduler, SimulatorConfig())
    >>> sim.submit_all(trace.sorted_tasks())
    >>> metrics = sim.run()
    >>> metrics.unfinished_tasks
    0

    Incremental stepping (streaming service mode)
    ---------------------------------------------
    :meth:`run` is sugar over a stepping API that the scheduler service
    (:mod:`repro.service`) drives directly:

    * :meth:`start` lazily initialises the run (dynamics injection, the
      scheduler's ``on_simulation_start``, the first quota tick);
    * :meth:`advance` processes events up to a simulated-time bound —
      ``advance(t1); advance(t2); …`` is **bit-identical** to a single
      uninterrupted run for any sequence of bounds (guarded by
      ``tests/test_stepping_determinism.py``), because event processing
      order is a pure function of the heap, never of chunk boundaries;
    * :meth:`submit` keeps working *mid-flight*: late submissions are
      clamped to the current simulated time and arrivals tie-break on
      task id, so a streamed submission lands exactly where a batch
      replay of the merged trace would put it;
    * :meth:`inject` schedules cluster-dynamics actions mid-flight;
    * :meth:`snapshot` / :meth:`restore` round-trip the **complete**
      simulator state (event heap, pending queue, cluster + capacity
      index, scheduler including its RNGs, run logs, accounting) through
      bytes, and :meth:`fork` produces an independent deep copy for
      speculative what-if runs that leave the live state untouched.
    """

    def __init__(
        self,
        cluster: Cluster,
        scheduler,
        config: Optional[SimulatorConfig] = None,
        dynamics=None,
        recorder=None,
    ):
        self.cluster = cluster
        self.scheduler = scheduler
        self.config = config or SimulatorConfig()
        #: optional cluster-dynamics injector; anything exposing
        #: ``schedule(cluster) -> DynamicsSchedule`` works (duck-typed so
        #: the cluster package never imports :mod:`repro.dynamics`)
        self.dynamics = dynamics
        #: instrumentation sink (:mod:`repro.obs`); the shared no-op
        #: :data:`~repro.obs.NULL_RECORDER` by default, so every hook
        #: point below costs one ``.enabled`` attribute check.  A real
        #: :class:`~repro.obs.Recorder` never perturbs the run: the
        #: parity suite asserts bit-identical metrics either way.
        self.obs = recorder if recorder is not None else NULL_RECORDER
        self.now: float = 0.0
        self._events: List[Event] = []
        self._seq = itertools.count()
        #: indexed waiting queue (insertion-ordered, O(1) membership/removal)
        self.pending: PendingQueue = PendingQueue()
        self.all_tasks: List[Task] = []
        #: run epoch per task; finish events from stale epochs are ignored
        self._epochs: Dict[str, int] = {}
        #: per-kind counters of heaped events (arrivals+finishes / dynamics
        #: / ticks) so liveness decisions never scan the heap; the single
        #: source of truth behind the ``_task_events`` shim properties
        self._event_counts = EventLoopCounters()
        #: dynamics bookkeeping: event counters and the paid-capacity integral
        self.dynamics_counts = DynamicsCounts()
        self._paid_gpu_seconds: float = 0.0
        self._capacity_accrued_until: Optional[float] = None
        self.allocation_samples: List[float] = []
        self.allocation_sample_times: List[float] = []
        self._finished_count = 0
        #: lazily flipped by :meth:`start`; guards one-time run setup
        self._started = False
        #: a ``max_time`` cap was reached; the run is over for good
        self._time_capped = False
        #: shared per-pass placement state (indexed candidates, cached node
        #: views, failed-shape memo) handed to every ``try_schedule`` call
        from ..schedulers.placement import PlacementContext

        self.placement_ctx = PlacementContext(cluster)
        self._scheduler_takes_ctx = self._accepts_ctx(scheduler)

    @staticmethod
    def _accepts_ctx(scheduler) -> bool:
        """Whether ``scheduler.try_schedule`` takes the per-pass context.

        The scheduler interface is duck-typed, so third-party schedulers
        written against the pre-context three-argument signature must keep
        working; they simply forgo the shared-context fast path.
        """
        try:
            signature = inspect.signature(scheduler.try_schedule)
        except (TypeError, ValueError):  # builtins / exotic callables
            return False
        return "ctx" in signature.parameters

    # ------------------------------------------------------------------
    # Event plumbing
    # ------------------------------------------------------------------
    def _count_event(self, kind: EventKind, delta: int) -> None:
        """Thin shim over :class:`~repro.obs.EventLoopCounters`.

        Kept under its pre-obs name so subclasses and tests that called
        it keep working; the counters themselves now live on
        ``self._event_counts`` (see the ``_task_events`` properties).
        """
        self._event_counts.count(
            kind is EventKind.QUOTA_TICK, kind in DYNAMICS_EVENT_KINDS, delta
        )

    @property
    def _task_events(self) -> int:
        """Read-only shim: heaped arrival/finish events (pre-obs name)."""
        return self._event_counts.task_events

    @property
    def _dynamics_events(self) -> int:
        """Read-only shim: heaped dynamics events (pre-obs name)."""
        return self._event_counts.dynamics_events

    @property
    def _tick_events(self) -> int:
        """Read-only shim: heaped quota-tick events (pre-obs name)."""
        return self._event_counts.tick_events

    def __getstate__(self) -> Dict[str, object]:
        """Pickle without the attached recorder.

        Instrumentation is host-local observation, not simulation state:
        snapshots stay deterministic (a live recorder holds wall-clock
        histograms) and forks start unobserved — a what-if fork must not
        pollute the live session's metrics.  Callers that want an
        instrumented restore reattach a recorder explicitly (the service
        session does).
        """
        state = dict(self.__dict__)
        state["obs"] = NULL_RECORDER
        return state

    def __setstate__(self, state: Dict[str, object]) -> None:
        """Restore from pickle, migrating pre-obs snapshots.

        Snapshots taken before the observability layer carry plain
        ``_task_events`` / ``_dynamics_events`` / ``_tick_events`` ints
        (now shadowed by shim properties) and no ``obs`` attribute; fold
        the ints into an :class:`~repro.obs.EventLoopCounters` and attach
        the null recorder so old snapshots keep round-tripping.
        """
        if "_event_counts" not in state:
            state["_event_counts"] = EventLoopCounters(
                task_events=int(state.pop("_task_events", 0)),
                dynamics_events=int(state.pop("_dynamics_events", 0)),
                tick_events=int(state.pop("_tick_events", 0)),
            )
        state.setdefault("obs", NULL_RECORDER)
        self.__dict__.update(state)

    def _push(
        self,
        time: float,
        kind: EventKind,
        task: Optional[Task] = None,
        epoch: int = 0,
        payload: Optional[DynamicsAction] = None,
        tiebreak: str = "",
    ) -> None:
        self._count_event(kind, +1)
        heapq.heappush(
            self._events,
            Event(
                time=time,
                kind=kind,
                tiebreak=tiebreak,
                seq=next(self._seq),
                task=task,
                epoch=epoch,
                payload=payload,
            ),
        )

    def _pop(self) -> Event:
        event = heapq.heappop(self._events)
        self._count_event(event.kind, -1)
        return event

    def submit(self, task: Task) -> None:
        """Register a task arrival event at its submission time.

        Works both before :meth:`start` (batch mode) and mid-flight
        (streaming service mode).  Mid-flight submissions timestamped in
        the simulated past are clamped to the current simulated time —
        the clock never runs backwards — and arrivals tie-break on task
        id (see :class:`~repro.cluster.events.Event`), so a submission
        timestamped equal to an already-heaped event is processed in
        exactly the order a batch replay of the merged trace would use.
        """
        self.all_tasks.append(task)
        self._epochs[task.task_id] = 0
        arrival_time = task.submit_time
        if self._started and arrival_time < self.now:
            arrival_time = self.now
        self._push(arrival_time, EventKind.TASK_ARRIVAL, task, tiebreak=task.task_id)

    def submit_all(self, tasks: Sequence[Task]) -> None:
        for task in tasks:
            self.submit(task)

    def inject(
        self,
        action: DynamicsAction,
        time: Optional[float] = None,
        kind: EventKind = EventKind.CAPACITY_CHANGE,
    ) -> None:
        """Schedule a cluster-dynamics action mid-flight.

        The pre-generated fault schedules of :mod:`repro.dynamics` cover
        batch runs; a live scheduler service additionally needs to feed
        *observed* infrastructure events (a node really failed, capacity
        was really added) into a running simulation.  ``time`` defaults
        to the current simulated time and is clamped to it when it lies
        in the simulated past; ``kind`` must be a dynamics event kind.
        """
        if kind not in DYNAMICS_EVENT_KINDS:
            raise ValueError(f"inject() only accepts dynamics event kinds, got {kind!r}")
        event_time = self.now if time is None else float(time)
        if self._started and event_time < self.now:
            event_time = self.now
        self._push(event_time, kind, payload=action)

    # ------------------------------------------------------------------
    # Main loop: start / advance / run
    # ------------------------------------------------------------------
    @property
    def started(self) -> bool:
        """Whether :meth:`start` has run (directly or via advance/run)."""
        return self._started

    @property
    def done(self) -> bool:
        """Whether no processable work remains right now.

        True once the heap has drained, a ``max_time`` cap was hit, or
        only trailing dynamics events remain with no task work anywhere
        (the same abandonment rule the batch loop applies).  In streaming
        mode a later :meth:`submit` can make a drained simulator live
        again — ``done`` is a statement about *current* state, not a
        terminal latch (except after ``max_time``).
        """
        if not self._started:
            return False
        if self._time_capped:
            return True
        if not self._events:
            return True
        head = self._events[0]
        if self.config.max_time is not None and head.time > self.config.max_time:
            return True
        return (
            head.kind in DYNAMICS_EVENT_KINDS
            and self._task_events == 0
            and not self.pending
            and not self.cluster.running_tasks
        )

    def start(self) -> None:
        """One-time run setup; idempotent, called lazily by :meth:`advance`.

        Materialises the dynamics schedule, moves the clock to the first
        event (the heap root — no O(n) scan), opens the paid-capacity
        integral, fires the scheduler's ``on_simulation_start`` hook and
        arms the periodic quota tick.  A simulator started with an empty
        heap (a streaming session awaiting its first submission) starts
        at time zero.
        """
        if self._started:
            return
        self._started = True
        self._inject_dynamics()
        first_time = self._events[0].time if self._events else self.now
        self.now = first_time
        self._capacity_accrued_until = first_time
        if hasattr(self.scheduler, "on_simulation_start"):
            self.scheduler.on_simulation_start(self.cluster, self.now)
        if self.config.tick_interval > 0:
            self._push(first_time + self.config.tick_interval, EventKind.QUOTA_TICK)

    def advance(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Process events up to simulated time ``until`` (inclusive).

        Returns the number of events processed.  ``until=None`` drains
        the heap (batch semantics); ``max_events`` optionally bounds the
        work per call so a service can interleave long advances with
        other requests.  Chunking is invisible to the simulation: for
        any boundary sequence the events processed, and therefore every
        metric, are bit-identical to one uninterrupted run, because the
        loop never consults ``until`` for anything except *when to
        pause* — it peeks at the heap root and stops before popping.
        """
        if not self._started:
            self.start()
        processed = 0
        rec = self.obs
        while self._events:
            head = self._events[0]
            if until is not None and head.time > until:
                break
            if self.config.max_time is not None and head.time > self.config.max_time:
                self._time_capped = True
                break
            # A fault schedule can stretch far past the trace: once no task
            # work remains anywhere (no waiting or running tasks and no
            # future arrivals/finishes), trailing dynamics events cannot
            # affect any result and are abandoned unprocessed.
            if (
                head.kind in DYNAMICS_EVENT_KINDS
                and self._event_counts.task_events == 0
                and not self.pending
                and not self.cluster.running_tasks
            ):
                break
            if max_events is not None and processed >= max_events:
                break
            event = self._pop()
            self.now = event.time
            dispatch_start = perf_counter() if rec.enabled else 0.0
            if event.kind is EventKind.TASK_ARRIVAL:
                self._handle_arrival(event.task)
            elif event.kind is EventKind.TASK_FINISH:
                self._handle_finish(event.task, event.epoch)
            elif event.kind is EventKind.QUOTA_TICK:
                self._handle_tick()
            elif event.kind in DYNAMICS_EVENT_KINDS:
                self._handle_dynamics(event)
            # SAMPLE events are folded into ticks.
            if rec.enabled:
                rec.record_dispatch(event.kind.name, perf_counter() - dispatch_start)
            processed += 1
        return processed

    def run(self) -> SimulationMetrics:
        """Run the simulation until the trace drains (or ``max_time`` hits)."""
        if not self._started and not self._events:
            raise SimulationError("no tasks submitted")
        self.advance()
        return self.finalize()

    def finalize(self) -> SimulationMetrics:
        """Close the capacity integral and collect metrics.

        Safe to call mid-run for live queries: the paid-capacity integral
        is accumulated incrementally, so folding it forward early never
        changes the final value (capacity only changes at dynamics
        events, which fold it themselves).
        """
        self._accrue_capacity()
        if self.obs.enabled:
            with self.obs.span("sim.metric_accrual_s"):
                return self.collect_metrics()
        return self.collect_metrics()

    # ------------------------------------------------------------------
    # Snapshot / fork (streaming service mode)
    # ------------------------------------------------------------------
    def fork(self) -> "ClusterSimulator":
        """An independent deep copy sharing no mutable state with ``self``.

        The copy carries the complete simulator graph — cluster, capacity
        index, event heap, pending queue, tasks, scheduler (including any
        RNG state) — with object identity preserved *within* the copy, so
        it can be advanced, submitted to and finished without perturbing
        the live simulator by a single bit.  This is what serves
        speculative what-if queries in :mod:`repro.service`.
        """
        return copy.deepcopy(self)

    def snapshot(self) -> bytes:
        """Serialise the complete simulator state to bytes.

        The snapshot captures everything :meth:`fork` copies, in pickled
        form, so ``ClusterSimulator.restore(sim.snapshot())`` continues
        bit-identically to the simulator it was taken from — including
        mid-outage dynamics state and same-timestamp event ties (guarded
        by ``tests/test_snapshot_fork.py``).  Registry schedulers are all
        picklable; a custom scheduler must be too for snapshots to work.
        The service layer wraps these bytes in a versioned, checksummed
        envelope (:mod:`repro.service.snapshot`) for transport.
        """
        return pickle.dumps(self, protocol=pickle.HIGHEST_PROTOCOL)

    @classmethod
    def restore(cls, data: bytes) -> "ClusterSimulator":
        """Rebuild a simulator from :meth:`snapshot` bytes."""
        sim = pickle.loads(data)
        if not isinstance(sim, cls):
            raise SimulationError(
                f"snapshot does not contain a {cls.__name__} (got {type(sim).__name__})"
            )
        return sim

    # ------------------------------------------------------------------
    # Event handlers
    # ------------------------------------------------------------------
    def _handle_arrival(self, task: Task) -> None:
        task.state = TaskState.PENDING
        task.queue_enter_time = self.now
        self.pending.append(task)
        if hasattr(self.scheduler, "on_task_submit"):
            self.scheduler.on_task_submit(task, self.cluster, self.now)
        # Arrivals only trigger a scheduling attempt for the new task; the
        # full queue is re-examined on completions and periodic ticks.  This
        # keeps the event loop close to linear in the number of events.
        self._schedule_pending(only=task, trigger="arrival")
        # In batch replays the tick chain is always alive while arrivals
        # remain, so this is a no-op; in streaming mode a submission into a
        # drained session must revive the periodic tick itself.
        self._ensure_tick()

    def _handle_finish(self, task: Task, epoch: int) -> None:
        if task is None or self._epochs.get(task.task_id) != epoch:
            return  # stale finish event from a run that was preempted
        if task.state is not TaskState.RUNNING:
            return
        runtime = self.now - task.run_logs[-1].start
        task.run_logs[-1].end = self.now
        task.run_logs[-1].checkpoint_index = len(task.checkpoints) - 1
        task.completed_work = task.duration
        task.state = TaskState.COMPLETED
        task.finish_time = self.now
        self.cluster.record_execution(task, runtime)
        self.cluster.remove_task(task)
        if task.is_spot:
            self.cluster.record_spot_outcome(evicted=False)
        self._finished_count += 1
        if hasattr(self.scheduler, "on_task_finish"):
            self.scheduler.on_task_finish(task, self.cluster, self.now)
        self._schedule_pending(trigger="finish")

    def _handle_tick(self) -> None:
        rec = self.obs
        if self.config.sample_allocation:
            if rec.enabled:
                with rec.span("sim.metric_accrual_s"):
                    self.allocation_samples.append(self.cluster.allocation_rate())
                    self.allocation_sample_times.append(self.now)
            else:
                self.allocation_samples.append(self.cluster.allocation_rate())
                self.allocation_sample_times.append(self.now)
        if hasattr(self.scheduler, "on_tick"):
            self.scheduler.on_tick(self.cluster, self.now, self.pending.snapshot())
        pending_before = len(self.pending)
        self._schedule_pending(trigger="tick")
        if rec.enabled:
            rec.sample_tick(
                TickSample(
                    sim_time=self.now,
                    pending_depth=len(self.pending),
                    running_tasks=len(self.cluster.running_tasks),
                    allocation_rate=self.cluster.allocation_rate(),
                )
            )
        # Keep ticking while there is still work anywhere in the system, but
        # stop once the only remaining work is pending tasks that can never
        # be scheduled (nothing running, no future arrivals/finishes, and the
        # tick made no progress) — otherwise the loop would tick forever.
        # Future dynamics events do not keep ticks alive on their own: a
        # repair that unblocks stuck pending work revives the tick itself.
        has_task_events = self._task_events > 0
        stuck = (
            bool(self.pending)
            and not self.cluster.running_tasks
            and not has_task_events
            and len(self.pending) == pending_before
        )
        if (self.pending or self.cluster.running_tasks or has_task_events) and not stuck:
            self._push(self.now + self.config.tick_interval, EventKind.QUOTA_TICK)

    # ------------------------------------------------------------------
    # Cluster dynamics
    # ------------------------------------------------------------------
    def _inject_dynamics(self) -> None:
        """Materialise the fault schedule into the event heap (run start).

        Nodes offline from the very beginning (elastic fleets that grow
        later) are deactivated before ``on_simulation_start`` so the
        scheduler's first view of the cluster already reflects them.
        """
        if self.dynamics is None:
            return
        schedule = self.dynamics.schedule(self.cluster)
        for node_id in schedule.initial_offline:
            node = self.cluster.node(node_id)
            if node.available:
                self.cluster.deactivate_node(node_id)
        for time, kind, action in schedule.events:
            self._push(time, kind, payload=action)

    def _handle_dynamics(self, event: Event) -> None:
        """Apply one scheduled dynamics action (node leaving or rejoining)."""
        action = event.payload
        node = self.cluster.node(action.node_id)
        if event.kind is EventKind.CAPACITY_CHANGE:
            self.dynamics_counts.capacity_changes += 1
        if action.online:
            if node.available:
                return  # defensive: duplicate activation in a schedule
            if event.kind is EventKind.NODE_REPAIR:
                self.dynamics_counts.node_repairs += 1
            self._accrue_capacity()
            self.cluster.activate_node(node.node_id)
            if hasattr(self.scheduler, "on_node_up"):
                self.scheduler.on_node_up(node, self.cluster, self.now)
            # Restored capacity may unblock waiting tasks immediately.
            self._schedule_pending(trigger="dynamics")
        else:
            if not node.available:
                return  # defensive: overlapping outages collapse to one
            if event.kind is EventKind.NODE_FAIL:
                self.dynamics_counts.node_failures += 1
            elif event.kind is EventKind.NODE_DRAIN:
                self.dynamics_counts.node_drains += 1
            self._kill_tasks_on_node(node, graceful=action.graceful)
            self._accrue_capacity()
            self.cluster.deactivate_node(node.node_id)
            if hasattr(self.scheduler, "on_node_down"):
                self.scheduler.on_node_down(node, self.cluster, self.now)
            # Displaced tasks may fit on the surviving fleet right away.
            self._schedule_pending(trigger="dynamics")
        self._ensure_tick()

    def _kill_tasks_on_node(self, node, graceful: bool) -> None:
        """Kill (and requeue) every task holding GPUs on ``node``."""
        # Snapshot: _kill_task mutates node.task_shares via release_task.
        for task_id in list(node.task_shares):
            task = self.cluster.running_tasks.get(task_id)
            if task is None:
                raise SimulationError(
                    f"node {node.node_id} holds shares of unknown task {task_id}"
                )
            self._kill_task(task, graceful=graceful)

    def _kill_task(self, task: Task, graceful: bool) -> None:
        """End a running task because a node under it vanished, and requeue it.

        Deliberately parallel to — not shared with — :meth:`_evict`: kills
        may hit HP tasks, never touch the spot success/eviction counters or
        the node eviction history (those model scheduler behaviour, not
        infrastructure faults), support the ``graceful`` drain semantics
        (checkpoint in place, no work lost) alongside the abrupt rollback
        to the last checkpoint milestone, and exclude restart overhead
        from banked progress; ``_evict`` keeps the paper's exact eviction
        arithmetic, which the recorded benchmark references pin
        bit-for-bit.
        """
        run = task.run_logs[-1]
        # A task placed with a start delay can die before its run begins,
        # and the first `run.overhead` seconds of wall time are setup /
        # checkpoint reload, not task progress.
        elapsed = max(0.0, self.now - run.start)
        worked = max(0.0, elapsed - run.overhead)
        progress = min(task.duration, task.completed_work + worked)
        if graceful:
            saved = progress
        else:
            ckpt_idx = task.highest_checkpoint_before(progress)
            saved = task.checkpoints[ckpt_idx] if ckpt_idx >= 0 else 0.0
        new_completed = min(task.duration, max(task.completed_work, saved))
        lost = max(0.0, progress - new_completed)
        run.end = self.now
        run.killed = True
        run.checkpoint_index = task.highest_checkpoint_before(new_completed)
        task.completed_work = new_completed
        task.dynamics_kill_count += 1
        task.lost_gpu_seconds += lost * task.total_gpus
        self.cluster.record_execution(task, elapsed)
        self.cluster.remove_task(task)
        task.state = TaskState.PENDING
        task.queue_enter_time = self.now
        self.pending.append(task)
        if hasattr(self.scheduler, "on_task_killed"):
            self.scheduler.on_task_killed(task, self.cluster, self.now)

    def _ensure_tick(self) -> None:
        """Revive the periodic tick if work exists but no tick is scheduled.

        The tick chain dies when the system looks permanently stuck; a
        dynamics event that changes capacity (or requeues tasks) can make
        the system live again and must restart it.
        """
        if (
            self.config.tick_interval > 0
            and self._tick_events == 0
            and (self.pending or self.cluster.running_tasks or self._task_events > 0)
        ):
            self._push(self.now + self.config.tick_interval, EventKind.QUOTA_TICK)

    def _accrue_capacity(self) -> None:
        """Fold the online-capacity integral forward to the current time.

        Called before every fleet-size change and once at run end, so
        ``paid_gpu_hours`` integrates the capacity that was actually
        online over each interval.
        """
        if self._capacity_accrued_until is None:
            return
        span = self.now - self._capacity_accrued_until
        if span > 0:
            self._paid_gpu_seconds += self.cluster.total_gpus() * span
            self._capacity_accrued_until = self.now

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def _schedule_pending(self, only: Optional[Task] = None, trigger: str = "direct") -> None:
        """Offer pending tasks to the scheduler in its preferred order.

        When ``only`` is given, just that task is offered (used on arrivals).
        All queue membership checks and removals are O(1) against the
        indexed :class:`~repro.cluster.pending.PendingQueue`.  ``trigger``
        names the event that prompted the pass (arrival / finish / tick /
        dynamics) and only feeds the observability pass record.
        """
        if not self.pending:
            return
        rec = self.obs
        pass_start = perf_counter() if rec.enabled else 0.0
        self.placement_ctx.begin_pass()
        if only is not None:
            ordered = [only] if only in self.pending else []
        else:
            ordered = self.scheduler.sort_queue(self.pending.snapshot(), self.now)
        scheduled: List[Task] = []
        examined = 0
        blocked_spot = False
        blocked_hp = False
        blocks = getattr(self.scheduler, "blocks_on_failure", None)
        for task in ordered:
            if task not in self.pending:
                continue
            if (blocked_spot and task.is_spot) or (blocked_hp and task.is_hp):
                continue
            examined += 1
            if self._scheduler_takes_ctx:
                decision = self.scheduler.try_schedule(
                    task, self.cluster, self.now, ctx=self.placement_ctx
                )
            else:
                decision = self.scheduler.try_schedule(task, self.cluster, self.now)
            if decision is None:
                if blocks is not None and blocks(task):
                    # FCFS semantics: the head of this class blocks the rest.
                    if task.is_spot:
                        blocked_spot = True
                    else:
                        blocked_hp = True
                continue
            self._apply_decision(task, decision)
            scheduled.append(task)
        for task in scheduled:
            # A task scheduled this pass may already have been evicted again
            # (as a preemption victim of a later task in the same pass) and
            # re-queued; it is PENDING again and must stay in the queue.
            if task.state is not TaskState.PENDING:
                self.pending.discard(task)
        if rec.enabled:
            ctx = self.placement_ctx
            rec.record_pass(
                PassRecord(
                    sim_time=self.now,
                    trigger=trigger,
                    examined=examined,
                    scheduled=len(scheduled),
                    memo_hits=ctx.pass_memo_hits,
                    index_rejects=ctx.pass_index_rejects,
                    searches=ctx.pass_searches,
                    pending_depth=len(self.pending),
                ),
                perf_counter() - pass_start,
            )

    def _apply_decision(self, task: Task, decision: SchedulingDecision) -> None:
        delay = max(0.0, decision.start_delay)
        if decision.preempted_task_ids:
            delay += self.config.preemption_grace_period
            for victim_id in decision.preempted_task_ids:
                victim = self.cluster.running_tasks.get(victim_id)
                if victim is None:
                    raise SimulationError(f"preemption target {victim_id} is not running")
                if victim.is_hp:
                    raise SimulationError("HP tasks must never be preempted")
                self._evict(victim)
        self._start_task(task, decision.placements, start_delay=delay)

    def _start_task(self, task: Task, placements, start_delay: float = 0.0) -> None:
        start = self.now + start_delay
        self.cluster.place_task(task, placements)
        task.total_queue_time += max(0.0, self.now - task.queue_enter_time)
        restarted = task.eviction_count > 0 or task.dynamics_kill_count > 0
        overhead = self.config.restart_overhead if restarted else 0.0
        task.run_logs.append(RunLog(start=start, overhead=overhead))
        task.state = TaskState.RUNNING
        if task.first_start_time is None:
            task.first_start_time = start
        self._epochs[task.task_id] = self._epochs.get(task.task_id, 0) + 1
        finish_time = start + task.remaining_work + overhead
        self._push(finish_time, EventKind.TASK_FINISH, task, epoch=self._epochs[task.task_id])
        if hasattr(self.scheduler, "on_task_start"):
            self.scheduler.on_task_start(task, self.cluster, self.now)

    def _evict(self, task: Task) -> None:
        """Evict a running spot task: roll back to its last checkpoint and re-queue.

        The evicted task re-enters the pending queue at the tail, behind
        every task already waiting (schedulers re-sort the queue on every
        pass, so FCFS schedulers still see its original submit time).
        """
        run = task.run_logs[-1]
        elapsed = max(0.0, self.now - run.start)
        progress = task.completed_work + elapsed
        ckpt_idx = task.highest_checkpoint_before(progress)
        saved = task.checkpoints[ckpt_idx] if ckpt_idx >= 0 else 0.0
        task.completed_work = min(task.duration, max(task.completed_work, saved))
        run.end = self.now
        run.evicted = True
        run.checkpoint_index = ckpt_idx
        task.eviction_count += 1
        self.cluster.record_execution(task, elapsed)
        for pod in task.placements:
            self.cluster.node(pod.node_id).record_eviction(self.now)
        self.cluster.remove_task(task)
        self.cluster.record_spot_outcome(evicted=True)
        task.state = TaskState.PENDING
        task.queue_enter_time = self.now
        self.pending.append(task)
        if hasattr(self.scheduler, "on_task_evicted"):
            self.scheduler.on_task_evicted(task, self.cluster, self.now)

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def collect_metrics(self) -> SimulationMetrics:
        return compute_metrics(
            self.all_tasks,
            allocation_series=self.allocation_samples,
            allocation_times=self.allocation_sample_times,
            makespan=self.now - (min(t.submit_time for t in self.all_tasks) if self.all_tasks else 0.0),
            dynamics_counts=self.dynamics_counts,
            paid_gpu_hours=self._paid_gpu_seconds / 3600.0,
        )


def run_simulation(
    cluster: Cluster,
    scheduler,
    tasks: Sequence[Task],
    config: Optional[SimulatorConfig] = None,
    dynamics=None,
    dynamics_seed: int = 0,
    recorder=None,
) -> SimulationMetrics:
    """Build a simulator, submit ``tasks`` and run the trace to completion.

    This is the one-call entry point used by the examples and every
    experiment runner: it wires ``cluster`` and ``scheduler`` into a fresh
    :class:`ClusterSimulator` and returns the resulting
    :class:`~repro.cluster.metrics.SimulationMetrics`.

    Example
    -------
    >>> from repro import Cluster, GFSScheduler, run_simulation
    >>> from repro.workloads import generate_trace
    >>> cluster = Cluster.homogeneous(num_nodes=32)
    >>> trace = generate_trace(cluster_gpus=cluster.total_gpus(), duration_hours=16.0)
    >>> metrics = run_simulation(cluster, GFSScheduler(org_history=trace.org_history),
    ...                          trace.sorted_tasks())
    >>> print(metrics.summary())

    ``dynamics`` optionally attaches cluster dynamics: pass a
    :class:`~repro.dynamics.FaultInjector`, or a
    :class:`~repro.dynamics.DynamicsSpec` plus ``dynamics_seed`` and the
    injector is built here (the schedule is then a pure function of the
    spec, the seed and the cluster's node list).

    ``recorder`` optionally attaches a :class:`repro.obs.Recorder`; the
    default is the shared no-op :data:`repro.obs.NULL_RECORDER`, and
    attaching a live recorder never changes the returned metrics (the
    parity suite in ``tests/test_obs_parity.py`` pins this).
    """
    if dynamics is not None and not hasattr(dynamics, "schedule"):
        # A bare DynamicsSpec: bind it to the seed.  Imported lazily so the
        # cluster package stays free of a dynamics dependency.
        from ..dynamics import FaultInjector

        dynamics = FaultInjector(dynamics, seed=dynamics_seed)
    simulator = ClusterSimulator(cluster, scheduler, config, dynamics=dynamics, recorder=recorder)
    simulator.submit_all(tasks)
    return simulator.run()
