"""Per-GPU-model candidate indexes over node capacity.

The placement search used to rescan every model-compatible node per task
per pass.  :class:`CapacityIndex` replaces those scans with incrementally
maintained per-model structures, updated through the same capacity-listener
mechanism that keeps the cluster's O(1) aggregates consistent:

* **Idle-GPU buckets** — nodes bucketed by their count of completely idle
  cards, so candidates for a whole-GPU pod of size ``k`` are exactly the
  nodes in buckets ``k..max``, plus a ``max_idle`` watermark that rejects
  oversized pods in O(1) and an integer idle aggregate that gates gang
  requests (``num_pods * k`` idle cards are necessary) without a scan.
* **Free / fractional-card / spot node sets** — nodes with any free
  capacity, nodes with a partially free card, and nodes hosting spot
  tasks, each a superset filter for the corresponding candidate queries.

Two membership semantics are exposed because the schedulers use two
feasibility notions for fractional pods:

* :meth:`node_fit_candidates` mirrors ``Node.can_fit_pod`` — a fractional
  pod needs a **single card** with enough free fraction.
* :meth:`view_fit_candidates` mirrors ``NodeView.can_fit_pod`` — a
  fractional pod needs enough **aggregate** free capacity on the node.

Every query returns nodes in canonical cluster construction order, which
is what the pre-refactor linear scans produced; scheduler tie-breaks that
rely on stable sort order therefore see identical orderings.

The index also publishes monotonic *sequence numbers* that the per-pass
placement memo uses to decide whether a previously failed task shape
could have become feasible: ``free_increase_seq`` advances whenever any
node's free capacity grows (a finish or eviction), ``spot_increase_seq``
whenever spot-held capacity grows (new preemption victims appeared), and
``node_mutation`` stamps each node's last change so cached node views can
be refreshed lazily instead of rebuilt per task.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from .gpu import EPSILON, GPUModel
from .node import Node


class _ModelIndex:
    """Bucketed capacity structures for the nodes of one GPU model."""

    __slots__ = ("idle_buckets", "max_idle", "total_idle", "free", "frac", "spot")

    def __init__(self, max_gpus: int):
        #: idle-card count -> {node_id: Node}
        self.idle_buckets: List[Dict[str, Node]] = [dict() for _ in range(max_gpus + 1)]
        self.max_idle: int = 0
        #: sum of completely idle cards across the model's nodes
        self.total_idle: int = 0
        #: nodes with free_capacity > 0
        self.free: Dict[str, Node] = {}
        #: nodes with a partially free card (max_card_free > 0)
        self.frac: Dict[str, Node] = {}
        #: nodes with spot-held GPUs (spot_gpus > 0)
        self.spot: Dict[str, Node] = {}

    def _grow(self, idle: int) -> None:
        while len(self.idle_buckets) <= idle:
            self.idle_buckets.append(dict())

    def insert(self, node: Node) -> None:
        idle = node.idle_gpus
        self._grow(idle)
        self.idle_buckets[idle][node.node_id] = node
        self.total_idle += idle
        if idle > self.max_idle:
            self.max_idle = idle
        if node.free_capacity > 0.0:
            self.free[node.node_id] = node
        if node.max_card_free > 0.0:
            self.frac[node.node_id] = node
        if node.spot_gpus > 0.0:
            self.spot[node.node_id] = node

    def move(self, node: Node, old_idle: int) -> None:
        """Re-bucket ``node`` after a mutation (``old_idle`` = previous bucket)."""
        new_idle = node.idle_gpus
        if new_idle != old_idle:
            del self.idle_buckets[old_idle][node.node_id]
            self._grow(new_idle)
            self.idle_buckets[new_idle][node.node_id] = node
            self.total_idle += new_idle - old_idle
            if new_idle > self.max_idle:
                self.max_idle = new_idle
            elif old_idle == self.max_idle and not self.idle_buckets[old_idle]:
                level = old_idle
                while level > 0 and not self.idle_buckets[level]:
                    level -= 1
                self.max_idle = level
        self._sync_set(self.free, node, node.free_capacity > 0.0)
        self._sync_set(self.frac, node, node.max_card_free > 0.0)
        self._sync_set(self.spot, node, node.spot_gpus > 0.0)

    @staticmethod
    def _sync_set(members: Dict[str, Node], node: Node, belongs: bool) -> None:
        if belongs:
            if node.node_id not in members:
                members[node.node_id] = node
        else:
            members.pop(node.node_id, None)


class CapacityIndexError(RuntimeError):
    """Raised in debug mode when the index drifts from a full node scan."""


class CapacityIndex:
    """Candidate-selection index over a fixed set of nodes.

    Owned by :class:`~repro.cluster.cluster.Cluster`, which forwards every
    capacity-listener notification to :meth:`on_node_change`.  All queries
    take an optional ``model``; ``None`` unions every model, preserving
    global construction order.
    """

    def __init__(self, nodes: Iterable[Node]):
        self._order: Dict[str, int] = {}
        self._models: Dict[GPUModel, _ModelIndex] = {}
        #: node_id -> idle-card count at last sync (bucket the node is in)
        self._known_idle: Dict[str, int] = {}
        #: node_id -> stamp of the node's last observed mutation
        self._node_mut: Dict[str, int] = {}
        self._mutations: int = 0
        self.free_increase_seq: int = 0
        self.spot_increase_seq: int = 0
        for node in nodes:
            self._order[node.node_id] = len(self._order)
            index = self._models.get(node.gpu_model)
            if index is None:
                index = self._models[node.gpu_model] = _ModelIndex(node.num_gpus)
            index.insert(node)
            self._known_idle[node.node_id] = node.idle_gpus
            self._node_mut[node.node_id] = 0

    # ------------------------------------------------------------------
    # Maintenance (driven by the cluster's capacity listener)
    # ------------------------------------------------------------------
    def on_node_change(self, node: Node, free_delta: float, spot_delta: float) -> None:
        """Fold one node mutation into the index (amortised O(1))."""
        self._mutations += 1
        self._node_mut[node.node_id] = self._mutations
        if free_delta > 0.0:
            self.free_increase_seq += 1
        if spot_delta > 0.0:
            self.spot_increase_seq += 1
        old_idle = self._known_idle[node.node_id]
        self._models[node.gpu_model].move(node, old_idle)
        self._known_idle[node.node_id] = node.idle_gpus

    def node_mutation(self, node_id: str) -> int:
        """Stamp of the node's last capacity mutation (0 = never mutated)."""
        return self._node_mut.get(node_id, 0)

    def summary(self) -> Dict[str, Dict[str, float]]:
        """Per-model occupancy figures straight from the index (O(models)).

        Used by the scheduler service's live occupancy endpoint: for each
        GPU model the count of indexed (online) nodes, the completely idle
        cards (``total_idle``), the largest single-node idle block
        (``max_idle`` — the biggest whole-GPU pod placeable right now),
        and how many nodes have any free / spot-held capacity.  All
        figures are incrementally maintained; nothing is scanned.
        """
        summary: Dict[str, Dict[str, float]] = {}
        for model, ix in self._models.items():
            nodes_online = sum(len(bucket) for bucket in ix.idle_buckets)
            summary[model.value] = {
                "nodes_online": nodes_online,
                "total_idle_gpus": ix.total_idle,
                "max_idle_block": ix.max_idle,
                "nodes_with_free_capacity": len(ix.free),
                "nodes_with_spot_tasks": len(ix.spot),
            }
        return summary

    # ------------------------------------------------------------------
    # Fleet membership (driven by cluster dynamics)
    # ------------------------------------------------------------------
    def remove_node(self, node: Node) -> None:
        """Take ``node`` out of every candidate structure (node went offline).

        The node keeps its canonical construction-order slot so a later
        :meth:`add_node` restores identical enumeration order.  The node's
        mutation stamp is bumped so cached views are refreshed on rejoin.
        """
        node_id = node.node_id
        if node_id not in self._known_idle:
            raise KeyError(f"node {node_id} is not indexed (already offline?)")
        self._mutations += 1
        self._node_mut[node_id] = self._mutations
        ix = self._models[node.gpu_model]
        idle = self._known_idle.pop(node_id)
        del ix.idle_buckets[idle][node_id]
        ix.total_idle -= idle
        if idle == ix.max_idle and not ix.idle_buckets[idle]:
            level = idle
            while level > 0 and not ix.idle_buckets[level]:
                level -= 1
            ix.max_idle = level
        ix.free.pop(node_id, None)
        ix.frac.pop(node_id, None)
        ix.spot.pop(node_id, None)

    def add_node(self, node: Node) -> None:
        """Re-index ``node`` after it rejoins the fleet (repair/activation).

        Free capacity grows, so the free-increase sequence number advances
        and previously memoised failed shapes are retried.
        """
        node_id = node.node_id
        if node_id not in self._order:
            raise KeyError(f"node {node_id} was never part of this cluster")
        if node_id in self._known_idle:
            raise KeyError(f"node {node_id} is already indexed")
        self._mutations += 1
        self._node_mut[node_id] = self._mutations
        if node.free_capacity > 0.0:
            self.free_increase_seq += 1
        if node.spot_gpus > 0.0:
            self.spot_increase_seq += 1
        self._models[node.gpu_model].insert(node)
        self._known_idle[node_id] = node.idle_gpus

    # ------------------------------------------------------------------
    # O(1) feasibility gates
    # ------------------------------------------------------------------
    def _indexes_for(self, model: Optional[GPUModel]) -> List[_ModelIndex]:
        if model is None:
            return list(self._models.values())
        index = self._models.get(model)
        return [index] if index is not None else []

    def max_idle_gpus(self, model: Optional[GPUModel] = None) -> int:
        """Largest count of idle cards on any single node of ``model``."""
        return max((ix.max_idle for ix in self._indexes_for(model)), default=0)

    def total_idle_gpus(self, model: Optional[GPUModel] = None) -> int:
        """Total completely idle cards across nodes of ``model``."""
        return sum(ix.total_idle for ix in self._indexes_for(model))

    def can_host_pod(self, model: Optional[GPUModel], gpus_per_pod: float) -> bool:
        """Whether any node could host one pod right now (O(1) for whole pods)."""
        if gpus_per_pod < 1.0 - EPSILON:
            return any(ix.frac for ix in self._indexes_for(model))
        return self.max_idle_gpus(model) >= int(round(gpus_per_pod))

    # ------------------------------------------------------------------
    # Candidate enumeration (canonical construction order)
    # ------------------------------------------------------------------
    def _ordered(self, nodes: List[Node]) -> List[Node]:
        nodes.sort(key=lambda n: self._order[n.node_id])
        return nodes

    def _whole_pod_candidates(self, model: Optional[GPUModel], whole: int) -> List[Node]:
        found: List[Node] = []
        for ix in self._indexes_for(model):
            if ix.max_idle < whole:
                continue
            for bucket in ix.idle_buckets[whole:]:
                found.extend(bucket.values())
        return self._ordered(found)

    def node_fit_candidates(
        self, model: Optional[GPUModel], gpus_per_pod: float
    ) -> List[Node]:
        """Nodes where one pod fits now, per ``Node.can_fit_pod`` semantics.

        Fractional pods require a single card with enough free fraction;
        whole-GPU pods require enough completely idle cards.
        """
        if gpus_per_pod < 1.0 - EPSILON:
            found = [
                n
                for ix in self._indexes_for(model)
                for n in ix.frac.values()
                if n.max_card_free + EPSILON >= gpus_per_pod
            ]
            return self._ordered(found)
        return self._whole_pod_candidates(model, int(round(gpus_per_pod)))

    def view_fit_candidates(
        self, model: Optional[GPUModel], gpus_per_pod: float
    ) -> List[Node]:
        """Nodes where one pod fits now, per ``NodeView.can_fit_pod`` semantics.

        Fractional pods only need aggregate free capacity on the node.
        """
        if gpus_per_pod < 1.0 - EPSILON:
            found = [
                n
                for ix in self._indexes_for(model)
                for n in ix.free.values()
                if n.free_capacity + EPSILON >= gpus_per_pod
            ]
            return self._ordered(found)
        return self._whole_pod_candidates(model, int(round(gpus_per_pod)))

    def spot_nodes(self, model: Optional[GPUModel] = None) -> List[Node]:
        """Nodes currently holding spot-task GPUs (preemption candidates)."""
        found = [n for ix in self._indexes_for(model) for n in ix.spot.values()]
        return self._ordered(found)

    def preemption_candidates(
        self, model: Optional[GPUModel], gpus_per_pod: float
    ) -> List[Node]:
        """Nodes that could host a pod now or after evicting spot tasks.

        The union of the view-feasible set and the spot set: a node with
        neither free view capacity nor spot tasks can never receive a pod,
        with or without preemption.
        """
        fit = self.view_fit_candidates(model, gpus_per_pod)
        seen = {n.node_id for n in fit}
        extra = [
            n
            for ix in self._indexes_for(model)
            for n in ix.spot.values()
            if n.node_id not in seen
        ]
        if not extra:
            return fit
        return self._ordered(fit + extra)

    # ------------------------------------------------------------------
    # Debug validation
    # ------------------------------------------------------------------
    def validate(self, nodes: Iterable[Node]) -> None:
        """Verify every index structure against a full node scan.

        Called from ``Cluster.validate_aggregates`` in debug mode
        (``REPRO_VALIDATE_AGGREGATES=1``); raises
        :class:`CapacityIndexError` on any drift.
        """
        per_model: Dict[GPUModel, List[Node]] = {}
        for node in nodes:
            per_model.setdefault(node.gpu_model, []).append(node)
        # Offline nodes are passed filtered out, so a model may legitimately
        # have zero online members; its (empty) index is still checked below.
        if not set(per_model) <= set(self._models):
            raise CapacityIndexError(
                f"indexed models {sorted(m.value for m in self._models)} miss "
                f"some of {sorted(m.value for m in per_model)}"
            )
        for model, ix in self._models.items():
            members = per_model.get(model, [])
            for node in members:
                idle = node.idle_gpus
                if node.node_id not in ix.idle_buckets[idle]:
                    raise CapacityIndexError(
                        f"node {node.node_id} (idle={idle}) missing from its idle bucket"
                    )
                for belongs, name, index_set in (
                    (node.free_capacity > 0.0, "free", ix.free),
                    (node.max_card_free > 0.0, "frac", ix.frac),
                    (node.spot_gpus > 0.0, "spot", ix.spot),
                ):
                    if belongs != (node.node_id in index_set):
                        raise CapacityIndexError(
                            f"node {node.node_id} {name}-set membership is "
                            f"{node.node_id in index_set}, expected {belongs}"
                        )
            bucketed = sum(len(b) for b in ix.idle_buckets)
            if bucketed != len(members):
                raise CapacityIndexError(
                    f"{model.value}: {bucketed} nodes bucketed, {len(members)} exist"
                )
            want_total = sum(n.idle_gpus for n in members)
            if ix.total_idle != want_total:
                raise CapacityIndexError(
                    f"{model.value}: cached total_idle {ix.total_idle} != {want_total}"
                )
            want_max = max((n.idle_gpus for n in members), default=0)
            if ix.max_idle != want_max:
                raise CapacityIndexError(
                    f"{model.value}: cached max_idle {ix.max_idle} != {want_max}"
                )

    # ------------------------------------------------------------------
    def brute_force_candidates(
        self,
        nodes: Iterable[Node],
        model: Optional[GPUModel],
        gpus_per_pod: float,
        semantics: str = "node",
    ) -> List[Node]:
        """Reference implementation for tests: linear-scan candidate set.

        ``semantics`` selects ``"node"`` (``Node.can_fit_pod``) or
        ``"view"`` (aggregate free capacity) feasibility.
        """
        found = []
        for node in nodes:
            if model is not None and node.gpu_model is not model:
                continue
            if semantics == "node":
                if node.can_fit_pod(gpus_per_pod):
                    found.append(node)
            else:
                if gpus_per_pod < 1.0 - EPSILON:
                    if node.free_capacity + EPSILON >= gpus_per_pod:
                        found.append(node)
                elif node.idle_gpus >= int(round(gpus_per_pod)):
                    found.append(node)
        return found
