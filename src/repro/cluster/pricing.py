"""Cloud pricing model used to translate allocation gains into revenue.

The paper quotes a monthly benefit of roughly $459,715 for a >10,000 GPU
production fleet after deploying GFS (Section 4.3).  The benefit comes from
two directions: more GPU-hours sold because the allocation rate rises, and
fewer unpaid spot GPU-hours because tasks evicted before their guaranteed
duration cannot be charged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping

from .gpu import GPUModel, HOURLY_PRICE_USD, SPOT_DISCOUNT

HOURS_PER_MONTH = 30 * 24


@dataclass
class FleetPricing:
    """Pricing configuration per GPU model."""

    hourly_price: Mapping[GPUModel, float] = None
    spot_discount: float = SPOT_DISCOUNT

    def __post_init__(self) -> None:
        if self.hourly_price is None:
            self.hourly_price = dict(HOURLY_PRICE_USD)

    def on_demand_price(self, model: GPUModel) -> float:
        return self.hourly_price[model]

    def spot_price(self, model: GPUModel) -> float:
        return self.hourly_price[model] * (1.0 - self.spot_discount)


def monthly_allocation_revenue(
    gpu_counts: Mapping[GPUModel, int],
    allocation_rates: Mapping[GPUModel, float],
    spot_share: float = 0.3,
    pricing: FleetPricing | None = None,
) -> float:
    """Monthly revenue of a fleet at given per-model allocation rates.

    ``spot_share`` is the fraction of allocated GPU-hours sold at the spot
    price instead of the on-demand price.
    """
    pricing = pricing or FleetPricing()
    total = 0.0
    for model, count in gpu_counts.items():
        rate = allocation_rates.get(model, 0.0)
        blended = (
            (1.0 - spot_share) * pricing.on_demand_price(model)
            + spot_share * pricing.spot_price(model)
        )
        total += count * rate * blended * HOURS_PER_MONTH
    return total


def monthly_benefit(
    gpu_counts: Mapping[GPUModel, int],
    allocation_before: Mapping[GPUModel, float],
    allocation_after: Mapping[GPUModel, float],
    eviction_before: Mapping[GPUModel, float] | None = None,
    eviction_after: Mapping[GPUModel, float] | None = None,
    spot_share: float = 0.3,
    unpaid_spot_fraction: float = 0.5,
    pricing: FleetPricing | None = None,
) -> Dict[str, float]:
    """Estimate the monthly benefit of moving from one operating point to another.

    Parameters
    ----------
    unpaid_spot_fraction:
        Fraction of an evicted spot task's GPU-hours that cannot be billed
        (evicted before the guaranteed duration, no checkpoint saved).

    Returns
    -------
    dict with ``allocation_gain``, ``eviction_gain`` and ``total`` (USD/month).
    """
    pricing = pricing or FleetPricing()
    revenue_before = monthly_allocation_revenue(gpu_counts, allocation_before, spot_share, pricing)
    revenue_after = monthly_allocation_revenue(gpu_counts, allocation_after, spot_share, pricing)
    allocation_gain = revenue_after - revenue_before

    eviction_gain = 0.0
    if eviction_before and eviction_after:
        for model, count in gpu_counts.items():
            spot_hours = count * spot_share * HOURS_PER_MONTH
            price = pricing.spot_price(model)
            lost_before = spot_hours * eviction_before.get(model, 0.0) * unpaid_spot_fraction
            lost_after = spot_hours * eviction_after.get(model, 0.0) * unpaid_spot_fraction
            eviction_gain += (lost_before - lost_after) * price

    return {
        "allocation_gain": allocation_gain,
        "eviction_gain": eviction_gain,
        "total": allocation_gain + eviction_gain,
    }
