"""Cluster state: a collection of nodes plus global accounting.

The cluster exposes the queries schedulers need (idle GPUs, spot usage,
per-model views) and the mutation primitives the simulator uses to place,
finish and evict tasks.

Aggregate queries are O(1)
--------------------------
``total_gpus``/``idle_gpus``/``allocated_gpus``/``spot_gpus``/``hp_gpus``
/``allocation_rate``/``stats`` answer from **incrementally maintained
per-GPU-model aggregates** instead of re-scanning every node.  The
aggregates are kept consistent by a capacity listener each node invokes
after every ``allocate_pod``/``release_task`` mutation — including
mutations performed directly on a node object, bypassing
:meth:`Cluster.place_task`.

Invariants (checked in debug mode, see ``validate_aggregates``):

* ``_agg[m].free  == sum(n.free_capacity for n in nodes of model m)``
* ``_agg[m].hp    == sum(n.hp_gpus for n in nodes of model m)``
* ``_agg[m].spot  == sum(n.spot_gpus for n in nodes of model m)``
* ``_running_spot`` holds exactly the spot tasks in ``running_tasks``,
  in the same insertion order.

Set the environment variable ``REPRO_VALIDATE_AGGREGATES=1`` (or pass
``validate_aggregates=True``) to re-verify the cached aggregates against
a full scan on every query — slow, but invaluable when writing a new
scheduler or mutation path.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .capacity_index import CapacityIndex
from .gpu import GPUModel
from .node import Node
from .task import PodPlacement, Task, TaskType


@dataclass
class ClusterStats:
    """Aggregate counters the SQA feedback loop and reports consume."""

    total_gpus: float = 0.0
    idle_gpus: float = 0.0
    hp_gpus: float = 0.0
    spot_gpus: float = 0.0
    running_hp_tasks: int = 0
    running_spot_tasks: int = 0
    successful_spot_runs: int = 0
    evicted_spot_runs: int = 0

    @property
    def allocation_rate(self) -> float:
        if self.total_gpus <= 0:
            return 0.0
        return (self.total_gpus - self.idle_gpus) / self.total_gpus


@dataclass
class _ModelAggregate:
    """Incrementally maintained capacity figures for one GPU model."""

    total: float = 0.0
    free: float = 0.0
    hp: float = 0.0
    spot: float = 0.0

    @property
    def allocated(self) -> float:
        return self.total - self.free


class AggregateConsistencyError(RuntimeError):
    """Raised in debug mode when cached aggregates drift from a full scan."""


class Cluster:
    """A set of nodes, optionally spanning several GPU models.

    Exposes the aggregate queries schedulers rely on (``idle_gpus``,
    ``allocation_rate``, ``stats``, ``spot_gpus_with_guarantee``, …) as
    O(1) lookups against incrementally maintained per-model caches, plus
    the mutation primitives the simulator drives (``place_task``,
    ``remove_task``).  A node belongs to at most one cluster:
    construction registers a capacity listener on every node so the
    aggregates stay consistent with per-node allocations, even ones made
    directly on a :class:`~repro.cluster.node.Node`.

    Example
    -------
    >>> from repro import Cluster, GPUModel
    >>> cluster = Cluster.homogeneous(num_nodes=32, gpus_per_node=8,
    ...                               gpu_model=GPUModel.A100)
    >>> cluster.total_gpus(), cluster.idle_gpus()
    (256.0, 256.0)
    """

    #: absolute tolerance used by the debug consistency check
    _VALIDATE_ATOL = 1e-6

    def __init__(self, nodes: Iterable[Node], validate_aggregates: Optional[bool] = None):
        self.nodes: List[Node] = list(nodes)
        if not self.nodes:
            raise ValueError("a cluster needs at least one node")
        self._node_index: Dict[str, Node] = {n.node_id: n for n in self.nodes}
        if len(self._node_index) != len(self.nodes):
            raise ValueError("duplicate node ids in cluster")
        #: running task id -> Task
        self.running_tasks: Dict[str, Task] = {}
        #: running *spot* task id -> Task (same insertion order as above)
        self._running_spot: Dict[str, Task] = {}
        #: number of running tasks per (task.gpu_model, task type); the
        #: model key may be None for model-agnostic tasks
        self._running_counts: Dict[Tuple[Optional[GPUModel], TaskType], int] = {}
        #: historical counters for the preemption-cost denominator (Eq. 18/19)
        self.successful_spot_runs: int = 0
        self.evicted_spot_runs: int = 0
        #: cumulative GPU-seconds of execution, per node, for the usage term
        self.node_gpu_seconds: Dict[str, float] = {n.node_id: 0.0 for n in self.nodes}

        if validate_aggregates is None:
            validate_aggregates = os.environ.get(
                "REPRO_VALIDATE_AGGREGATES", ""
            ).strip().lower() not in ("", "0", "false", "no", "off")
        self._validate = bool(validate_aggregates)

        # Static per-model node lists plus incrementally updated aggregates.
        self._nodes_by_model: Dict[GPUModel, List[Node]] = {}
        self._agg: Dict[GPUModel, _ModelAggregate] = {}
        #: capacity-indexed candidate selection (built before listeners fire)
        self.capacity_index = CapacityIndex(self.nodes)
        registered: List[Node] = []
        try:
            for node in self.nodes:
                node.register_capacity_listener(self._on_node_capacity_change)
                registered.append(node)
                self._nodes_by_model.setdefault(node.gpu_model, []).append(node)
                agg = self._agg.setdefault(node.gpu_model, _ModelAggregate())
                agg.total += node.total_gpus
                agg.free += node.free_capacity
                agg.hp += node.hp_gpus
                agg.spot += node.spot_gpus
        except Exception:
            # Unwind so a failed construction (e.g. one node already owned
            # by another cluster) does not leave nodes claimed by this
            # half-built, unreachable cluster.
            for node in registered:
                node.register_capacity_listener(None)
            raise

    # ------------------------------------------------------------------
    # Aggregate maintenance
    # ------------------------------------------------------------------
    def _on_node_capacity_change(
        self, node: Node, free_delta: float, hp_delta: float, spot_delta: float
    ) -> None:
        """Fold a node mutation into the per-model aggregates (O(1))."""
        agg = self._agg[node.gpu_model]
        agg.free += free_delta
        agg.hp += hp_delta
        agg.spot += spot_delta
        self.capacity_index.on_node_change(node, free_delta, spot_delta)

    def validate_aggregates(self) -> None:
        """Verify every cached aggregate against a full node/task scan.

        Raises :class:`AggregateConsistencyError` on any drift beyond
        ``1e-6``.  Called automatically on every query when the cluster
        was built with ``validate_aggregates=True`` (or the
        ``REPRO_VALIDATE_AGGREGATES`` environment variable is set).
        """
        for model, agg in self._agg.items():
            # Offline nodes (dynamics: failed/drained/reclaimed) contribute
            # nothing to the schedulable aggregates.
            nodes = [n for n in self._nodes_by_model[model] if n.available]
            expected = {
                "total": float(sum(n.total_gpus for n in nodes)),
                "free": float(sum(n.free_capacity for n in nodes)),
                "hp": float(sum(n.hp_gpus for n in nodes)),
                "spot": float(sum(n.spot_gpus for n in nodes)),
            }
            cached = {"total": agg.total, "free": agg.free, "hp": agg.hp, "spot": agg.spot}
            for key, want in expected.items():
                if abs(cached[key] - want) > self._VALIDATE_ATOL:
                    raise AggregateConsistencyError(
                        f"cached {key} aggregate for {model.value} is {cached[key]!r}, "
                        f"full scan says {want!r}"
                    )
        spot_ids = [tid for tid, t in self.running_tasks.items() if t.is_spot]
        if spot_ids != list(self._running_spot):
            raise AggregateConsistencyError(
                "running-spot index diverged from running_tasks: "
                f"{spot_ids} != {list(self._running_spot)}"
            )
        counts: Dict[Tuple[Optional[GPUModel], TaskType], int] = {}
        for task in self.running_tasks.values():
            key = (task.gpu_model, task.task_type)
            counts[key] = counts.get(key, 0) + 1
        if counts != {k: v for k, v in self._running_counts.items() if v}:
            raise AggregateConsistencyError(
                f"running-task counters diverged: {self._running_counts} != {counts}"
            )
        self.capacity_index.validate(n for n in self.nodes if n.available)

    def _check(self) -> None:
        if self._validate:
            self.validate_aggregates()

    def _models_for(self, model: Optional[GPUModel]) -> List[GPUModel]:
        if model is None:
            return list(self._agg)
        return [model] if model in self._agg else []

    # ------------------------------------------------------------------
    # Lookup helpers
    # ------------------------------------------------------------------
    def node(self, node_id: str) -> Node:
        return self._node_index[node_id]

    def nodes_for_model(self, model: Optional[GPUModel]) -> List[Node]:
        """Nodes compatible with ``model`` (all nodes when model is None)."""
        if model is None:
            return list(self.nodes)
        return list(self._nodes_by_model.get(model, ()))

    @property
    def gpu_models(self) -> List[GPUModel]:
        return list(self._nodes_by_model)

    # ------------------------------------------------------------------
    # Capacity accounting (O(1) from cached aggregates)
    # ------------------------------------------------------------------
    # Unchecked internals so compound queries (stats, allocation_rate)
    # validate once per public call, not once per sub-query.
    def _total(self, model: Optional[GPUModel]) -> float:
        return float(sum(self._agg[m].total for m in self._models_for(model)))

    def _idle(self, model: Optional[GPUModel]) -> float:
        return float(sum(self._agg[m].free for m in self._models_for(model)))

    def _allocated(self, model: Optional[GPUModel]) -> float:
        return float(sum(self._agg[m].allocated for m in self._models_for(model)))

    def _spot(self, model: Optional[GPUModel]) -> float:
        return float(sum(self._agg[m].spot for m in self._models_for(model)))

    def _hp(self, model: Optional[GPUModel]) -> float:
        return float(sum(self._agg[m].hp for m in self._models_for(model)))

    def total_gpus(self, model: Optional[GPUModel] = None) -> float:
        self._check()
        return self._total(model)

    def idle_gpus(self, model: Optional[GPUModel] = None) -> float:
        self._check()
        return self._idle(model)

    def allocated_gpus(self, model: Optional[GPUModel] = None) -> float:
        self._check()
        return self._allocated(model)

    def spot_gpus(self, model: Optional[GPUModel] = None) -> float:
        self._check()
        return self._spot(model)

    def hp_gpus(self, model: Optional[GPUModel] = None) -> float:
        self._check()
        return self._hp(model)

    def allocation_rate(self, model: Optional[GPUModel] = None) -> float:
        self._check()
        total = self._total(model)
        if total <= 0:
            return 0.0
        return self._allocated(model) / total

    def _running_count(self, model: Optional[GPUModel], task_type: TaskType) -> int:
        if model is None:
            return sum(
                count for (m, t), count in self._running_counts.items() if t is task_type
            )
        # Tasks with no model constraint count toward every model's view.
        return self._running_counts.get((model, task_type), 0) + self._running_counts.get(
            (None, task_type), 0
        )

    def stats(self, model: Optional[GPUModel] = None) -> ClusterStats:
        """A snapshot of aggregate cluster statistics (O(1))."""
        self._check()
        return ClusterStats(
            total_gpus=self._total(model),
            idle_gpus=self._idle(model),
            hp_gpus=self._hp(model),
            spot_gpus=self._spot(model),
            running_hp_tasks=self._running_count(model, TaskType.HP),
            running_spot_tasks=self._running_count(model, TaskType.SPOT),
            successful_spot_runs=self.successful_spot_runs,
            evicted_spot_runs=self.evicted_spot_runs,
        )

    def running_spot_tasks(self, model: Optional[GPUModel] = None) -> List[Task]:
        """Running spot tasks, in placement order (O(#running spot tasks))."""
        self._check()
        return [
            t
            for t in self._running_spot.values()
            if model is None or t.gpu_model is None or t.gpu_model is model
        ]

    def org_usage(self, task_type: Optional[TaskType] = None) -> Dict[str, float]:
        """GPUs currently held by running tasks, per organization.

        ``task_type`` optionally restricts the tally to one class (HP or
        spot).  This is the live-occupancy view the scheduler service
        exposes per org; it scans only the running-task index, never the
        nodes.
        """
        self._check()
        usage: Dict[str, float] = {}
        for task in self.running_tasks.values():
            if task_type is not None and task.task_type is not task_type:
                continue
            usage[task.org] = usage.get(task.org, 0.0) + task.total_gpus
        return usage

    def spot_gpus_with_guarantee(self, hours: float, now: float) -> float:
        """GPUs held by spot tasks allocated with a guarantee of >= ``hours``.

        This is ``S_a`` in Eq. (10): spot capacity already committed at the
        requested guarantee level.  Together with the idle capacity ``S_0``
        it bounds the quota by what is physically available right now.
        Only the running *spot* index is scanned, never HP tasks or nodes.
        """
        self._check()
        total = 0.0
        for task in self._running_spot.values():
            if task.guaranteed_hours + 1e-9 >= hours:
                total += task.total_gpus
        return total

    # ------------------------------------------------------------------
    # Placement mutations (driven by the simulator)
    # ------------------------------------------------------------------
    def place_task(self, task: Task, placements: Sequence[PodPlacement]) -> None:
        """Materialise a placement decision: allocate GPUs on every node."""
        if task.task_id in self.running_tasks:
            raise ValueError(f"task {task.task_id} is already placed")
        applied: List[str] = []
        try:
            for pod in placements:
                node = self.node(pod.node_id)
                node.allocate_pod(task)
                applied.append(pod.node_id)
        except Exception:
            # Roll back partial placement so the cluster stays consistent
            # (release_task notifies the aggregate listener too).
            for node_id in applied:
                self.node(node_id).release_task(task.task_id)
            raise
        task.placements = list(placements)
        self.running_tasks[task.task_id] = task
        if task.is_spot:
            self._running_spot[task.task_id] = task
        key = (task.gpu_model, task.task_type)
        self._running_counts[key] = self._running_counts.get(key, 0) + 1
        self._check()

    def remove_task(self, task: Task) -> None:
        """Release every GPU the task holds (used on finish and eviction)."""
        for pod in task.placements:
            self.node(pod.node_id).release_task(task.task_id)
        # A task may have pods on the same node; release_task is idempotent.
        removed = self.running_tasks.pop(task.task_id, None)
        if removed is not None:
            self._running_spot.pop(task.task_id, None)
            # place_task always set this key; a KeyError here means the
            # bookkeeping drifted and should surface, not be masked.
            key = (removed.gpu_model, removed.task_type)
            self._running_counts[key] -= 1
        task.placements = []
        self._check()

    def record_execution(self, task: Task, runtime: float) -> None:
        """Accumulate GPU-seconds of execution on the nodes the task used."""
        if runtime <= 0:
            return
        per_pod = task.gpus_per_pod * runtime
        for pod in task.placements:
            self.node_gpu_seconds[pod.node_id] = (
                self.node_gpu_seconds.get(pod.node_id, 0.0) + per_pod
            )

    def record_spot_outcome(self, evicted: bool) -> None:
        """Update the historical spot success/eviction counters (G and F)."""
        if evicted:
            self.evicted_spot_runs += 1
        else:
            self.successful_spot_runs += 1

    # ------------------------------------------------------------------
    # Fleet membership (cluster dynamics: failures, drains, elasticity)
    # ------------------------------------------------------------------
    def active_nodes(self) -> List[Node]:
        """Nodes currently part of the schedulable fleet."""
        return [n for n in self.nodes if n.available]

    def deactivate_node(self, node_id: str) -> Node:
        """Take a node offline: drop its capacity from every aggregate/index.

        The node must be empty — the simulator kills or requeues its
        running tasks through the normal release paths *before* the node
        leaves the fleet, so the capacity listener keeps the aggregates
        consistent throughout.  Offline nodes are excluded from all
        candidate enumeration (``capacity_index``) and reject direct
        allocations, so no placement can target them until reactivated.

        Raises
        ------
        ValueError
            If the node is already offline or still hosts tasks.
        """
        node = self.node(node_id)
        if not node.available:
            raise ValueError(f"node {node_id} is already offline")
        if node.task_shares:
            raise ValueError(
                f"cannot deactivate node {node_id}: it still hosts tasks "
                f"{sorted(node.task_shares)} (kill or requeue them first)"
            )
        node.available = False
        agg = self._agg[node.gpu_model]
        agg.total -= node.total_gpus
        agg.free -= node.free_capacity
        self.capacity_index.remove_node(node)
        self._check()
        return node

    def activate_node(self, node_id: str) -> Node:
        """Bring a node back online: restore its capacity and re-index it.

        Raises
        ------
        ValueError
            If the node is already online.
        """
        node = self.node(node_id)
        if node.available:
            raise ValueError(f"node {node_id} is already online")
        node.available = True
        agg = self._agg[node.gpu_model]
        agg.total += node.total_gpus
        agg.free += node.free_capacity
        self.capacity_index.add_node(node)
        self._check()
        return node

    # ------------------------------------------------------------------
    # Convenience constructors
    # ------------------------------------------------------------------
    @classmethod
    def homogeneous(
        cls,
        num_nodes: int,
        gpus_per_node: int = 8,
        gpu_model: GPUModel = GPUModel.A100,
        cluster_label: str = "sim",
    ) -> "Cluster":
        """A homogeneous cluster, e.g. the 287-node A100 cluster of Section 4.1."""
        from .node import make_nodes

        return cls(make_nodes(num_nodes, gpu_model, gpus_per_node, cluster_label))

    def describe(self) -> str:
        parts = []
        for model in self.gpu_models:
            nodes = self.nodes_for_model(model)
            parts.append(f"{model.value}: {len(nodes)} nodes x {nodes[0].num_gpus} GPUs")
        return ", ".join(parts)
