"""Cluster state: a collection of nodes plus global accounting.

The cluster exposes the queries schedulers need (idle GPUs, spot usage,
per-model views) and the mutation primitives the simulator uses to place,
finish and evict tasks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from .gpu import GPUModel
from .node import Node
from .task import PodPlacement, Task, TaskState, TaskType


@dataclass
class ClusterStats:
    """Aggregate counters the SQA feedback loop and reports consume."""

    total_gpus: float = 0.0
    idle_gpus: float = 0.0
    hp_gpus: float = 0.0
    spot_gpus: float = 0.0
    running_hp_tasks: int = 0
    running_spot_tasks: int = 0
    successful_spot_runs: int = 0
    evicted_spot_runs: int = 0

    @property
    def allocation_rate(self) -> float:
        if self.total_gpus <= 0:
            return 0.0
        return (self.total_gpus - self.idle_gpus) / self.total_gpus


class Cluster:
    """A set of nodes, optionally spanning several GPU models."""

    def __init__(self, nodes: Iterable[Node]):
        self.nodes: List[Node] = list(nodes)
        if not self.nodes:
            raise ValueError("a cluster needs at least one node")
        self._node_index: Dict[str, Node] = {n.node_id: n for n in self.nodes}
        if len(self._node_index) != len(self.nodes):
            raise ValueError("duplicate node ids in cluster")
        #: running task id -> Task
        self.running_tasks: Dict[str, Task] = {}
        #: historical counters for the preemption-cost denominator (Eq. 18/19)
        self.successful_spot_runs: int = 0
        self.evicted_spot_runs: int = 0
        #: cumulative GPU-seconds of execution, per node, for the usage term
        self.node_gpu_seconds: Dict[str, float] = {n.node_id: 0.0 for n in self.nodes}

    # ------------------------------------------------------------------
    # Lookup helpers
    # ------------------------------------------------------------------
    def node(self, node_id: str) -> Node:
        return self._node_index[node_id]

    def nodes_for_model(self, model: Optional[GPUModel]) -> List[Node]:
        """Nodes compatible with ``model`` (all nodes when model is None)."""
        if model is None:
            return list(self.nodes)
        return [n for n in self.nodes if n.gpu_model is model]

    @property
    def gpu_models(self) -> List[GPUModel]:
        seen: List[GPUModel] = []
        for node in self.nodes:
            if node.gpu_model not in seen:
                seen.append(node.gpu_model)
        return seen

    # ------------------------------------------------------------------
    # Capacity accounting
    # ------------------------------------------------------------------
    def total_gpus(self, model: Optional[GPUModel] = None) -> float:
        return float(sum(n.total_gpus for n in self.nodes_for_model(model)))

    def idle_gpus(self, model: Optional[GPUModel] = None) -> float:
        return float(sum(n.free_capacity for n in self.nodes_for_model(model)))

    def allocated_gpus(self, model: Optional[GPUModel] = None) -> float:
        return float(sum(n.allocated_gpus for n in self.nodes_for_model(model)))

    def spot_gpus(self, model: Optional[GPUModel] = None) -> float:
        return float(sum(n.spot_gpus for n in self.nodes_for_model(model)))

    def hp_gpus(self, model: Optional[GPUModel] = None) -> float:
        return float(sum(n.hp_gpus for n in self.nodes_for_model(model)))

    def allocation_rate(self, model: Optional[GPUModel] = None) -> float:
        total = self.total_gpus(model)
        if total <= 0:
            return 0.0
        return self.allocated_gpus(model) / total

    def stats(self, model: Optional[GPUModel] = None) -> ClusterStats:
        """A snapshot of aggregate cluster statistics."""
        running = [
            t
            for t in self.running_tasks.values()
            if model is None or t.gpu_model is None or t.gpu_model is model
        ]
        return ClusterStats(
            total_gpus=self.total_gpus(model),
            idle_gpus=self.idle_gpus(model),
            hp_gpus=self.hp_gpus(model),
            spot_gpus=self.spot_gpus(model),
            running_hp_tasks=sum(1 for t in running if t.is_hp),
            running_spot_tasks=sum(1 for t in running if t.is_spot),
            successful_spot_runs=self.successful_spot_runs,
            evicted_spot_runs=self.evicted_spot_runs,
        )

    def running_spot_tasks(self, model: Optional[GPUModel] = None) -> List[Task]:
        return [
            t
            for t in self.running_tasks.values()
            if t.is_spot and (model is None or t.gpu_model is None or t.gpu_model is model)
        ]

    def spot_gpus_with_guarantee(self, hours: float, now: float) -> float:
        """GPUs held by spot tasks allocated with a guarantee of >= ``hours``.

        This is ``S_a`` in Eq. (10): spot capacity already committed at the
        requested guarantee level.  Together with the idle capacity ``S_0``
        it bounds the quota by what is physically available right now.
        """
        total = 0.0
        for task in self.running_spot_tasks():
            if task.guaranteed_hours + 1e-9 >= hours:
                total += task.total_gpus
        return total

    # ------------------------------------------------------------------
    # Placement mutations (driven by the simulator)
    # ------------------------------------------------------------------
    def place_task(self, task: Task, placements: Sequence[PodPlacement]) -> None:
        """Materialise a placement decision: allocate GPUs on every node."""
        if task.task_id in self.running_tasks:
            raise ValueError(f"task {task.task_id} is already placed")
        applied: List[str] = []
        try:
            for pod in placements:
                node = self.node(pod.node_id)
                node.allocate_pod(task)
                applied.append(pod.node_id)
        except Exception:
            # Roll back partial placement so the cluster stays consistent.
            for node_id in applied:
                self.node(node_id).release_task(task.task_id)
            raise
        task.placements = list(placements)
        self.running_tasks[task.task_id] = task

    def remove_task(self, task: Task) -> None:
        """Release every GPU the task holds (used on finish and eviction)."""
        for pod in task.placements:
            self.node(pod.node_id).release_task(task.task_id)
        # A task may have pods on the same node; release_task is idempotent.
        self.running_tasks.pop(task.task_id, None)
        task.placements = []

    def record_execution(self, task: Task, runtime: float) -> None:
        """Accumulate GPU-seconds of execution on the nodes the task used."""
        if runtime <= 0:
            return
        per_pod = task.gpus_per_pod * runtime
        for pod in task.placements:
            self.node_gpu_seconds[pod.node_id] = (
                self.node_gpu_seconds.get(pod.node_id, 0.0) + per_pod
            )

    def record_spot_outcome(self, evicted: bool) -> None:
        """Update the historical spot success/eviction counters (G and F)."""
        if evicted:
            self.evicted_spot_runs += 1
        else:
            self.successful_spot_runs += 1

    # ------------------------------------------------------------------
    # Convenience constructors
    # ------------------------------------------------------------------
    @classmethod
    def homogeneous(
        cls,
        num_nodes: int,
        gpus_per_node: int = 8,
        gpu_model: GPUModel = GPUModel.A100,
        cluster_label: str = "sim",
    ) -> "Cluster":
        """A homogeneous cluster, e.g. the 287-node A100 cluster of Section 4.1."""
        from .node import make_nodes

        return cls(make_nodes(num_nodes, gpu_model, gpus_per_node, cluster_label))

    def describe(self) -> str:
        parts = []
        for model in self.gpu_models:
            nodes = self.nodes_for_model(model)
            parts.append(f"{model.value}: {len(nodes)} nodes x {nodes[0].num_gpus} GPUs")
        return ", ".join(parts)
