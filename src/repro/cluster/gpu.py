"""GPU device models and per-device allocation state.

The paper's production fleet (Table 1) mixes four GPU models (A10, A100,
A800, H800).  Tasks may request whole cards or card fractions (< 1 GPU),
so every device tracks a fractional allocation map keyed by task id.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict

# Tolerance used when comparing fractional GPU allocations.
EPSILON = 1e-9


class GPUModel(str, Enum):
    """GPU models present in the production cluster of Table 1.

    Members (``A10``, ``A100``, ``A800``, ``H800``) compare as strings,
    so they serialise cleanly into reports and can key per-model fleet
    partitions.

    Example
    -------
    >>> GPUModel.A100.value
    'A100'
    >>> GPUModel("H800") is GPUModel.H800
    True
    """

    A10 = "A10"
    A100 = "A100"
    A800 = "A800"
    H800 = "H800"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Approximate on-demand hourly price (USD) per GPU, used by the economics
#: module to translate allocation-rate gains into monthly benefit (Fig. 9).
HOURLY_PRICE_USD: Dict[GPUModel, float] = {
    GPUModel.A10: 0.9,
    GPUModel.A100: 3.1,
    GPUModel.A800: 2.8,
    GPUModel.H800: 4.2,
}

#: Spot discount relative to on-demand pricing (the paper quotes 60-90%).
SPOT_DISCOUNT = 0.7


@dataclass
class GPUDevice:
    """A single GPU card on a node.

    Attributes
    ----------
    index:
        Card index within its node (0-based).
    model:
        The hardware model of the card.
    allocations:
        Mapping of task id to the fraction of this card the task holds.
        The sum of fractions never exceeds 1.
    """

    index: int
    model: GPUModel
    allocations: Dict[str, float] = field(default_factory=dict)
    _used: float = 0.0

    @property
    def used_fraction(self) -> float:
        """Total allocated fraction of this card."""
        return self._used

    @property
    def free_fraction(self) -> float:
        """Remaining free fraction of this card."""
        return max(0.0, 1.0 - self.used_fraction)

    @property
    def is_idle(self) -> bool:
        """True when no task holds any share of this card."""
        return not self.allocations

    def can_fit(self, fraction: float) -> bool:
        """Whether ``fraction`` of this card can still be allocated."""
        if fraction >= 1.0 - EPSILON:
            return self.is_idle
        return self.free_fraction + EPSILON >= fraction

    def allocate(self, task_id: str, fraction: float) -> None:
        """Assign ``fraction`` of this card to ``task_id``.

        Raises
        ------
        ValueError
            If the requested fraction does not fit on the card.
        """
        if not self.can_fit(fraction):
            raise ValueError(
                f"GPU {self.index} cannot fit {fraction:.2f} "
                f"(free={self.free_fraction:.2f})"
            )
        self.allocations[task_id] = self.allocations.get(task_id, 0.0) + fraction
        self._used += fraction

    def release(self, task_id: str) -> float:
        """Release every share held by ``task_id`` and return the freed fraction."""
        freed = self.allocations.pop(task_id, 0.0)
        self._used = max(0.0, self._used - freed)
        if not self.allocations:
            self._used = 0.0
        return freed
