"""Indexed pending queue used by the simulator's scheduling hot path.

The simulator historically kept waiting tasks in a plain ``list``, which
made the inner scheduling loop quadratic: every ``task in pending`` check
and every ``pending.remove(task)`` scanned the whole queue.  At fleet
scale (tens of thousands of queued tasks) those scans dominated the run
time of every experiment.

:class:`PendingQueue` is a dict-backed ordered set keyed by ``task_id``:

* **O(1)** membership tests, additions and removals;
* **insertion order is preserved** (CPython dicts iterate in insertion
  order), so scheduler-defined queue semantics — FCFS tie-breaking,
  "evicted tasks re-enter at the tail" — are identical to the old list;
* re-adding a task after removal places it at the tail, exactly like
  ``list.append`` after ``list.remove``.

The queue intentionally mirrors the small slice of the ``list`` API the
simulator used (``append``, ``remove``, ``in``, ``len``, iteration), so
schedulers that receive ``list(pending)`` snapshots are unaffected.
"""

from __future__ import annotations

from typing import Dict, Iterator, List

from .task import Task


class PendingQueue:
    """An insertion-ordered set of :class:`Task` with O(1) membership.

    Tasks are keyed by their unique ``task_id`` and each appears at most
    once.  Appending a task that is already queued moves it to the tail
    (the simulator relies on this when a task is scheduled and evicted
    again within one scheduling pass, before the pass-end dequeue).

    Example
    -------
    Given two :class:`Task` objects ``a`` and ``b``::

        q = PendingQueue()
        q.append(a); q.append(b)
        a in q                                # True, O(1)
        q.discard(a)                          # True, O(1)
        [t.task_id for t in q] == [b.task_id] # insertion order preserved
    """

    __slots__ = ("_tasks",)

    def __init__(self) -> None:
        self._tasks: Dict[str, Task] = {}

    # ------------------------------------------------------------------
    # list-compatible surface used by the simulator
    # ------------------------------------------------------------------
    def append(self, task: Task) -> None:
        """Add ``task`` at the tail of the queue.

        If the task is already queued it is **moved to the tail**, exactly
        like ``list.append`` followed by removing the earlier occurrence —
        this matters when a task is scheduled and evicted again within one
        scheduling pass, where it is still queued when it is re-appended.

        Raises
        ------
        ValueError
            If a different task object with the same id is already queued
            (a sign of task-id collisions in the trace).
        """
        existing = self._tasks.get(task.task_id)
        if existing is not None:
            if existing is not task:
                raise ValueError(
                    f"pending queue already holds a task with id {task.task_id!r}"
                )
            del self._tasks[task.task_id]
        self._tasks[task.task_id] = task

    def remove(self, task: Task) -> None:
        """Remove ``task``; raises ``KeyError`` if it is not queued."""
        del self._tasks[task.task_id]

    def discard(self, task: Task) -> bool:
        """Remove ``task`` if present; return whether it was queued."""
        return self._tasks.pop(task.task_id, None) is not None

    def __contains__(self, task: Task) -> bool:
        return getattr(task, "task_id", None) in self._tasks

    def __len__(self) -> int:
        return len(self._tasks)

    def __bool__(self) -> bool:
        return bool(self._tasks)

    def __iter__(self) -> Iterator[Task]:
        return iter(self._tasks.values())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<PendingQueue n={len(self._tasks)}>"

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def org_demand(self, hp_only: bool = False) -> Dict[str, float]:
        """Queued GPU demand per organization (one O(n) pass).

        The scheduler service reports this next to running occupancy so
        clients can see where queued demand is concentrating; ``hp_only``
        restricts the tally to HP tasks (the quota-headroom view).
        """
        demand: Dict[str, float] = {}
        for task in self._tasks.values():
            if hp_only and not task.is_hp:
                continue
            demand[task.org] = demand.get(task.org, 0.0) + task.total_gpus
        return demand

    def snapshot(self) -> List[Task]:
        """The queued tasks in insertion order, as a new list.

        This is what ``sort_queue`` and the ``on_tick`` hook receive; the
        returned list is decoupled from the queue so schedulers may sort
        or mutate it freely.
        """
        return list(self._tasks.values())

    def clear(self) -> None:
        self._tasks.clear()
