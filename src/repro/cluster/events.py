"""Event types exchanged between the simulator and schedulers."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import List, Optional

from .task import PodPlacement, Task


class EventKind(int, Enum):
    """Discrete-event kinds, ordered by processing priority at equal times."""

    TASK_FINISH = 0      # releases resources first so arrivals can reuse them
    TASK_ARRIVAL = 1
    QUOTA_TICK = 2
    SAMPLE = 3


@dataclass(order=True)
class Event:
    """A scheduled simulator event (heap entry)."""

    time: float
    kind: EventKind
    seq: int
    task: Optional[Task] = field(default=None, compare=False)
    epoch: int = field(default=0, compare=False)


@dataclass
class SchedulingDecision:
    """Outcome of a successful scheduling attempt for one task.

    Attributes
    ----------
    placements:
        One :class:`PodPlacement` per pod of the task.
    preempted_task_ids:
        Spot tasks that must be evicted before the placement is applied.
    start_delay:
        Extra seconds between the decision and actual task start (used by
        lease-based schedulers to model lease-boundary alignment).
    """

    placements: List[PodPlacement]
    preempted_task_ids: List[str] = field(default_factory=list)
    start_delay: float = 0.0

    @property
    def requires_preemption(self) -> bool:
        return bool(self.preempted_task_ids)
