"""Event types exchanged between the simulator, schedulers and dynamics."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import FrozenSet, List, Optional

from .task import PodPlacement, Task


class EventKind(int, Enum):
    """Discrete-event kinds, ordered by processing priority at equal times.

    The first four kinds are the original task-driven loop; the dynamics
    kinds (``NODE_FAIL``/``NODE_REPAIR``/``NODE_DRAIN``/``CAPACITY_CHANGE``)
    carry cluster-dynamics actions from a pre-generated fault schedule (see
    :mod:`repro.dynamics`).  Dynamics kinds deliberately sort *after* the
    task kinds at equal timestamps: a task finishing or arriving at the
    exact instant a node vanishes is processed against the pre-outage
    cluster, which is what makes the schedule-then-fail edge case (a task
    placed and killed at the same timestamp) well defined.
    """

    TASK_FINISH = 0      # releases resources first so arrivals can reuse them
    TASK_ARRIVAL = 1
    QUOTA_TICK = 2
    SAMPLE = 3
    NODE_FAIL = 4        # unplanned node loss: rollback to last checkpoint
    NODE_REPAIR = 5      # failed/drained node rejoins the fleet
    NODE_DRAIN = 6       # planned maintenance: checkpoint-and-requeue
    CAPACITY_CHANGE = 7  # elastic fleet / spot reclamation add or remove


#: Event kinds injected by the cluster-dynamics subsystem.
DYNAMICS_EVENT_KINDS: FrozenSet[EventKind] = frozenset(
    {
        EventKind.NODE_FAIL,
        EventKind.NODE_REPAIR,
        EventKind.NODE_DRAIN,
        EventKind.CAPACITY_CHANGE,
    }
)


@dataclass(frozen=True)
class DynamicsAction:
    """Payload of a dynamics event: one node going offline or online.

    ``cause`` records which generator produced the outage (``"failure"``,
    ``"drain"``, ``"reclaim"`` or ``"elastic"``); ``graceful`` selects the
    kill semantics for tasks running on the node (checkpoint-and-requeue
    for planned events vs rollback-to-last-checkpoint for abrupt ones);
    ``online`` marks the second half of an outage window (the node
    rejoining the fleet).
    """

    node_id: str
    cause: str = "failure"
    graceful: bool = False
    online: bool = False


@dataclass(order=True)
class Event:
    """A scheduled simulator event (heap entry).

    Heap order is ``(time, kind, tiebreak, seq)``.  ``tiebreak`` is the
    task id for ``TASK_ARRIVAL`` events and empty for every other kind:
    simultaneous arrivals are processed in task-id order — the same
    tie-break :meth:`~repro.workloads.trace.Trace.sorted_tasks` applies —
    so a task submitted *mid-flight* (streaming service mode) lands in
    exactly the position a batch replay of the merged trace would give
    it, instead of wherever its push sequence number happens to fall.
    For batch submissions in ``sorted_tasks()`` order the push sequence
    already increases with the task id, so the ordering is unchanged.
    """

    time: float
    kind: EventKind
    tiebreak: str = ""
    seq: int = 0
    task: Optional[Task] = field(default=None, compare=False)
    epoch: int = field(default=0, compare=False)
    #: dynamics payload (:class:`DynamicsAction`) for dynamics kinds
    payload: Optional[DynamicsAction] = field(default=None, compare=False)


@dataclass
class SchedulingDecision:
    """Outcome of a successful scheduling attempt for one task.

    Attributes
    ----------
    placements:
        One :class:`PodPlacement` per pod of the task.
    preempted_task_ids:
        Spot tasks that must be evicted before the placement is applied.
    start_delay:
        Extra seconds between the decision and actual task start (used by
        lease-based schedulers to model lease-boundary alignment).
    """

    placements: List[PodPlacement]
    preempted_task_ids: List[str] = field(default_factory=list)
    start_delay: float = 0.0

    @property
    def requires_preemption(self) -> bool:
        return bool(self.preempted_task_ids)
