"""Task, pod and checkpoint abstractions.

A task :math:`\\tau_i = <w_i, g_i, \\zeta_i, \\psi_i, \\iota_i>` requests
``num_pods`` pods of ``gpus_per_pod`` GPUs each, carries a priority class
(HP, i.e. non-preemptible, or SPOT), a set of checkpoint milestones and a
list of run logs recording every execution attempt (Section 3.4.1).
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from enum import Enum
from typing import List, Optional, Sequence, Tuple

from .gpu import GPUModel

_task_counter = itertools.count()


class TaskType(int, Enum):
    """Priority class of a task (``\\zeta_i`` in the paper).

    ``HP`` tasks hold their GPUs until completion and are never
    preempted; ``SPOT`` tasks run on surplus capacity and may be evicted
    (rolling back to their last checkpoint) when HP demand grows.

    Example
    -------
    >>> TaskType.HP > TaskType.SPOT   # priority-ordered integer enum
    True
    """

    SPOT = 0
    HP = 1


class TaskState(str, Enum):
    """Lifecycle state of a task inside the simulator."""

    PENDING = "pending"
    RUNNING = "running"
    COMPLETED = "completed"
    EVICTED = "evicted"          # evicted, waiting to be re-queued
    CANCELLED = "cancelled"


@dataclass
class RunLog:
    """One execution attempt ``<t_s, t_e, f>`` of a task.

    ``checkpoint_index`` is the highest checkpoint milestone reached during
    the attempt (``f_{i,k}`` in the paper); ``-1`` means none.
    """

    start: float
    end: Optional[float] = None
    checkpoint_index: int = -1
    evicted: bool = False
    #: run ended because the hosting node failed/drained/was reclaimed
    killed: bool = False
    #: restart overhead paid at the start of this run (setup/checkpoint
    #: reload); wall time that produced no task progress
    overhead: float = 0.0


@dataclass
class PodPlacement:
    """Placement of one pod: a node and the GPU shares it occupies."""

    node_id: str
    gpu_indices: Tuple[int, ...]
    fraction: float = 1.0


def generate_checkpoints(duration: float, interval: float) -> List[float]:
    """Checkpoint milestones ``\\psi_i`` for a task of ``duration`` seconds.

    Milestones are cumulative progress points; the final milestone always
    coincides with task completion so a finished task has saved all work.
    """
    if interval <= 0 or duration <= 0:
        return [max(duration, 0.0)]
    count = max(1, int(math.floor(duration / interval)))
    points = [interval * (i + 1) for i in range(count)]
    if points[-1] < duration:
        points.append(duration)
    else:
        points[-1] = duration
    return points


@dataclass(eq=False)
class Task:
    """A schedulable unit of work submitted to the cluster.

    Tasks use identity-based equality/hashing: two distinct submissions are
    different tasks even if every field matches.

    Parameters mirror the paper's task tuple: ``num_pods`` (w), ``gpus_per_pod``
    (g), ``task_type`` (zeta), ``checkpoints`` (psi). ``run_logs`` (iota) is
    populated by the simulator as the task executes.

    Example
    -------
    >>> task = make_task(task_type=TaskType.SPOT, num_pods=2, gpus_per_pod=4.0,
    ...                  duration=3600.0, submit_time=0.0)
    >>> task.total_gpus
    8.0
    """

    task_id: str
    task_type: TaskType
    num_pods: int
    gpus_per_pod: float
    duration: float
    submit_time: float
    org: str = "default"
    gpu_model: Optional[GPUModel] = None
    gang: bool = False
    checkpoint_interval: float = 1800.0
    guaranteed_hours: float = 1.0
    checkpoints: List[float] = field(default_factory=list)

    # --- mutable simulation state -------------------------------------
    state: TaskState = TaskState.PENDING
    run_logs: List[RunLog] = field(default_factory=list)
    placements: List[PodPlacement] = field(default_factory=list)
    completed_work: float = 0.0          # work preserved by checkpoints
    eviction_count: int = 0
    #: runs ended by cluster dynamics (node failure/drain/reclaim); unlike
    #: ``eviction_count`` this can be non-zero for HP tasks
    dynamics_kill_count: int = 0
    #: GPU-seconds of progress lost to rollbacks caused by dynamics kills
    lost_gpu_seconds: float = 0.0
    queue_enter_time: float = 0.0        # start of the current queuing segment
    total_queue_time: float = 0.0
    first_start_time: Optional[float] = None
    finish_time: Optional[float] = None

    def __post_init__(self) -> None:
        if self.num_pods < 1:
            raise ValueError("num_pods must be >= 1")
        if self.gpus_per_pod <= 0:
            raise ValueError("gpus_per_pod must be > 0")
        if self.duration <= 0:
            raise ValueError("duration must be > 0")
        if not self.checkpoints:
            self.checkpoints = generate_checkpoints(
                self.duration, self.checkpoint_interval
            )
        self.queue_enter_time = self.submit_time

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def total_gpus(self) -> float:
        """Total number of GPUs requested across all pods."""
        return self.num_pods * self.gpus_per_pod

    @property
    def is_hp(self) -> bool:
        """Whether the task is high priority (non-preemptible)."""
        return self.task_type is TaskType.HP

    @property
    def is_spot(self) -> bool:
        """Whether the task is a preemptible spot task."""
        return self.task_type is TaskType.SPOT

    @property
    def remaining_work(self) -> float:
        """Seconds of work left given checkpointed progress."""
        return max(0.0, self.duration - self.completed_work)

    @property
    def run_count(self) -> int:
        """Number of execution attempts so far."""
        return len(self.run_logs)

    @property
    def restart_count(self) -> int:
        """Extra execution attempts beyond the first (evictions + kills)."""
        return max(0, len(self.run_logs) - 1)

    @property
    def is_running(self) -> bool:
        return self.state is TaskState.RUNNING

    @property
    def is_finished(self) -> bool:
        return self.state is TaskState.COMPLETED

    # ------------------------------------------------------------------
    # Checkpoint accounting
    # ------------------------------------------------------------------
    def last_checkpoint_progress(self) -> float:
        """Progress (seconds of work) preserved by the last reached checkpoint."""
        return self.completed_work

    def highest_checkpoint_before(self, progress: float) -> int:
        """Index of the highest checkpoint milestone <= ``progress`` (-1 if none)."""
        idx = -1
        for i, point in enumerate(self.checkpoints):
            if point <= progress + 1e-9:
                idx = i
            else:
                break
        return idx

    def time_since_checkpoint(self, now: float) -> float:
        """Elapsed un-checkpointed runtime at ``now`` (Eq. 17's ``t - t_check``)."""
        if not self.is_running or not self.run_logs:
            return 0.0
        start = self.run_logs[-1].start
        elapsed = max(0.0, now - start)
        progress = self.completed_work + elapsed
        ckpt_idx = self.highest_checkpoint_before(progress)
        saved = self.checkpoints[ckpt_idx] if ckpt_idx >= 0 else 0.0
        saved = max(saved, self.completed_work)
        return max(0.0, progress - saved)

    def preemption_waste(self, now: float) -> float:
        """Resource waste ``\\vartheta`` of Eq. 17: GPUs x un-checkpointed time."""
        return self.total_gpus * self.time_since_checkpoint(now)

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    @property
    def jct(self) -> Optional[float]:
        """Job completion time (finish - submit), None until completion."""
        if self.finish_time is None:
            return None
        return self.finish_time - self.submit_time

    @property
    def jqt(self) -> float:
        """Cumulative job queuing time across all pending segments."""
        return self.total_queue_time

    def describe(self) -> str:
        """One-line human-readable description, useful in logs and examples."""
        kind = "HP" if self.is_hp else "SPOT"
        return (
            f"{self.task_id}[{kind}] pods={self.num_pods} gpus/pod={self.gpus_per_pod} "
            f"dur={self.duration:.0f}s org={self.org} state={self.state.value}"
        )


def make_task(
    task_type: TaskType,
    num_pods: int,
    gpus_per_pod: float,
    duration: float,
    submit_time: float,
    org: str = "default",
    gpu_model: Optional[GPUModel] = None,
    gang: bool = False,
    checkpoint_interval: float = 1800.0,
    task_id: Optional[str] = None,
) -> Task:
    """Convenience factory that auto-generates task ids."""
    if task_id is None:
        prefix = "hp" if task_type is TaskType.HP else "spot"
        task_id = f"{prefix}-{next(_task_counter):07d}"
    return Task(
        task_id=task_id,
        task_type=task_type,
        num_pods=num_pods,
        gpus_per_pod=gpus_per_pod,
        duration=duration,
        submit_time=submit_time,
        org=org,
        gpu_model=gpu_model,
        gang=gang,
        checkpoint_interval=checkpoint_interval,
    )


def reset_task_counter() -> None:
    """Reset the global task id counter (used by tests for determinism)."""
    global _task_counter
    _task_counter = itertools.count()


def total_gpu_demand(tasks: Sequence[Task]) -> float:
    """Sum of GPU requests over a collection of tasks."""
    return sum(t.total_gpus for t in tasks)
