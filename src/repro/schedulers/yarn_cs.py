"""YARN-CS baseline: FCFS ordering, best-fit placement, naive preemption.

Modelled after the YARN capacity scheduler as used in the paper's
comparison: tasks are served first-come-first-served, placed with a
best-fit heuristic, HP tasks may preempt spot tasks, and there is no
predictive spot quota (spot tasks are admitted whenever idle GPUs exist).
"""

from __future__ import annotations

from typing import List, Optional

from ..cluster import Cluster, Node, SchedulingDecision, Task
from .base import Scheduler
from .placement import (
    NodeView,
    PlacementContext,
    find_placement,
    gpus_held_on_node,
    spot_tasks_on_node,
    virtually_preempt_task,
)


def best_fit_score(node: Node, view: NodeView, task: Task) -> float:
    """Best fit: prefer the node with the least free capacity that still fits."""
    return -view.free_capacity


class YarnCSScheduler(Scheduler):
    """Classic FCFS + best-fit scheduler with unrestricted preemption.

    The paper's YARN capacity-scheduler baseline: tasks are served in
    submission order (a stuck spot task blocks the spot tasks behind it),
    placed best-fit, and HP tasks may evict any spot task — there is no
    predictive quota, so spot eviction rates climb with HP load.

    Example
    -------
    >>> from repro import Cluster, YarnCSScheduler, run_simulation
    >>> metrics = run_simulation(Cluster.homogeneous(4), YarnCSScheduler(), tasks)
    """

    name = "YARN-CS"

    def blocks_on_failure(self, task: Task) -> bool:
        # Plain FCFS: a spot task stuck at the head of the queue blocks the
        # spot tasks submitted after it (HP tasks preempt, so they rarely wait).
        return task.is_spot

    def try_schedule(
        self,
        task: Task,
        cluster: Cluster,
        now: float,
        ctx: Optional[PlacementContext] = None,
    ) -> Optional[SchedulingDecision]:
        if ctx is None:
            ctx = PlacementContext(cluster)
        placements = ctx.find_placement(task, score=best_fit_score, pool="yarn-np")
        if placements is not None:
            return SchedulingDecision(placements=placements)
        if task.is_hp:
            return self._preemptive_schedule(task, cluster, now, ctx)
        return None

    # ------------------------------------------------------------------
    def _preemptive_schedule(
        self, task: Task, cluster: Cluster, now: float, ctx: PlacementContext
    ) -> Optional[SchedulingDecision]:
        """Naive preemption: evict the most recently started spot tasks first."""
        if ctx.infeasible(task, "yarn-preempt", track_spot=True):
            return None
        # Only nodes that fit now or hold reclaimable spot capacity can ever
        # receive a pod; restricting the search set this way is exact.
        candidates = ctx.preemption_candidates(task)
        views = ctx.clone_views(candidates)
        victims: List[str] = []
        # Preempt node by node (densest spot usage first) until the task fits.
        spot_nodes = sorted(ctx.spot_nodes(task), key=lambda n: -n.spot_gpus)
        for node in spot_nodes:
            spot_candidates = sorted(
                spot_tasks_on_node(node, cluster),
                key=lambda t: -(t.run_logs[-1].start if t.run_logs else 0.0),
            )
            for victim in spot_candidates:
                if victim.task_id in victims:
                    continue
                virtually_preempt_task(views, victim)
                victims.append(victim.task_id)
                placements = find_placement(task, candidates, score=best_fit_score, views=views)
                if placements is not None:
                    # Only evict victims whose node actually hosts the task.
                    used_nodes = {p.node_id for p in placements}
                    needed = [
                        vid
                        for vid in victims
                        if any(
                            gpus_held_on_node(cluster.running_tasks[vid], cluster.node(nid)) > 0
                            for nid in used_nodes
                        )
                    ]
                    return SchedulingDecision(placements=placements, preempted_task_ids=needed or victims)
        ctx.note_failure(task, "yarn-preempt", track_spot=True)
        return None
