"""Shared placement utilities used by every scheduler.

Placement works on *virtual* node views so that a multi-pod (gang) decision
can be evaluated atomically without mutating real cluster state; the
simulator materialises the decision afterwards.

Capacity-indexed search
-----------------------
The hot path is :class:`PlacementContext`, owned by the simulator's
``_schedule_pending`` pass and handed to every ``try_schedule`` call.  It
replaces the pre-refactor per-task work — rebuild a ``NodeView`` for every
model-compatible node, linearly rescan them all — with three mechanisms:

* **Indexed candidates.**  Queries go through the cluster's
  :class:`~repro.cluster.capacity_index.CapacityIndex`, so a search only
  ever touches nodes that can actually host a pod (or donate spot
  capacity, for preemptive searches), and an oversized request is rejected
  in O(1) by the per-model watermarks before any node is looked at.
* **Shared per-pass views.**  Base node views are built lazily, cached on
  the context and refreshed only for nodes the cluster mutated since the
  cached copy (placements applied earlier in the same pass, evictions).
  Searches clone the few candidate views they need; the bases are never
  mutated.
* **Failed-shape memo.**  When a search fails, the task's *shape*
  ``(pool, task_type, gpu_model, gpus_per_pod, num_pods)`` is recorded
  together with the index's capacity sequence numbers.  A later task of
  the same shape in the same pass is rejected without a search unless
  free capacity grew in between (or, for preemptive searches, spot-held
  capacity grew — new victims can make a previously impossible
  preemption plan viable).  The memo is cleared at every pass start.

The free functions (:func:`find_placement`, :func:`filter_nodes`, …) keep
their pre-refactor signatures and behaviour for direct callers and tests;
schedulers route through the context.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..cluster import Cluster, Node, PodPlacement, Task
from ..cluster.gpu import EPSILON

#: A node-scoring function: higher scores are preferred.
NodeScore = Callable[[Node, "NodeView", Task], float]


@dataclass
class NodeView:
    """A lightweight virtual view of a node during one scheduling decision.

    Tracks idle whole cards and free fractional capacity after tentative pod
    assignments and virtual preemptions, without touching the real node.
    """

    node: Node
    idle_gpus: int = 0
    free_capacity: float = 0.0
    #: GPUs freed by virtually preempting spot tasks on this node
    reclaimed_gpus: float = 0.0
    #: ids of spot tasks virtually preempted on this node
    preempted: Set[str] = field(default_factory=set)
    assigned_pods: int = 0

    @classmethod
    def from_node(cls, node: Node) -> "NodeView":
        return cls(node=node, idle_gpus=node.idle_gpus, free_capacity=node.free_capacity)

    # ------------------------------------------------------------------
    def can_fit_pod(self, gpus_per_pod: float) -> bool:
        if gpus_per_pod < 1.0 - EPSILON:
            return self.free_capacity + EPSILON >= gpus_per_pod
        return self.idle_gpus >= int(round(gpus_per_pod))

    def assign_pod(self, gpus_per_pod: float) -> None:
        if not self.can_fit_pod(gpus_per_pod):
            raise ValueError("pod does not fit in node view")
        if gpus_per_pod < 1.0 - EPSILON:
            self.free_capacity -= gpus_per_pod
        else:
            whole = int(round(gpus_per_pod))
            self.idle_gpus -= whole
            self.free_capacity -= whole
        self.assigned_pods += 1

    def clone(self) -> "NodeView":
        """An independent copy used for trial placements."""
        return NodeView(
            node=self.node,
            idle_gpus=self.idle_gpus,
            free_capacity=self.free_capacity,
            reclaimed_gpus=self.reclaimed_gpus,
            preempted=set(self.preempted),
            assigned_pods=self.assigned_pods,
        )

    def virtually_preempt(self, task: Task) -> None:
        """Free the GPUs a running spot task holds on this node (virtual)."""
        gpus_here = sum(
            fraction for _, fraction in self.node.task_shares.get(task.task_id, [])
        )
        whole = int(round(gpus_here)) if gpus_here >= 1.0 - EPSILON else 0
        self.idle_gpus += whole
        self.free_capacity += gpus_here
        self.reclaimed_gpus += gpus_here
        self.preempted.add(task.task_id)


def build_views(nodes: Iterable[Node]) -> List[NodeView]:
    return [NodeView.from_node(n) for n in nodes]


def filter_nodes(task: Task, nodes: Iterable[Node]) -> List[Node]:
    """Online nodes compatible with the task's GPU-model requirement.

    Offline nodes (failed/drained/reclaimed by cluster dynamics) are never
    placement candidates; the capacity index excludes them on the indexed
    path, and this filter does the same for direct linear searches.
    """
    return [
        n
        for n in nodes
        if n.available and (task.gpu_model is None or n.gpu_model is task.gpu_model)
    ]


# ----------------------------------------------------------------------
# Greedy core shared by the free function and the context
# ----------------------------------------------------------------------
def _cheap_infeasibility(task: Task, view_map: Dict[str, NodeView]) -> bool:
    """O(candidates) necessary-condition gates run before the greedy loop.

    Free-capacity gate for every request; for whole-GPU pods additionally
    gate on idle cards: ``sum(idle_i // k)`` is exactly the number of pods
    the candidate set can host simultaneously, so rejecting on it can
    never exclude a placement the greedy loop would have found.
    """
    if sum(v.free_capacity for v in view_map.values()) + EPSILON < task.total_gpus:
        return True
    if task.gpus_per_pod >= 1.0 - EPSILON:
        whole = int(round(task.gpus_per_pod))
        if whole > 0 and sum(v.idle_gpus // whole for v in view_map.values()) < task.num_pods:
            return True
    return False


def _greedy_fill(
    task: Task,
    view_map: Dict[str, NodeView],
    score: Optional[NodeScore],
) -> Optional[List[PodPlacement]]:
    """Place every pod greedily onto the best feasible view (gang semantics).

    Mutates the views in ``view_map``; callers pass clones.
    """
    placements: List[PodPlacement] = []
    for _ in range(task.num_pods):
        feasible = [
            v for v in view_map.values() if v.can_fit_pod(task.gpus_per_pod)
        ]
        if not feasible:
            return None
        if score is None:
            chosen = min(feasible, key=lambda v: (v.free_capacity, v.node.node_id))
        else:
            chosen = max(
                feasible,
                key=lambda v: (score(v.node, v, task), v.node.node_id),
            )
        chosen.assign_pod(task.gpus_per_pod)
        placements.append(
            PodPlacement(node_id=chosen.node.node_id, gpu_indices=(), fraction=task.gpus_per_pod)
        )
    return placements


def find_placement(
    task: Task,
    nodes: Sequence[Node],
    score: Optional[NodeScore] = None,
    views: Optional[Dict[str, NodeView]] = None,
) -> Optional[List[PodPlacement]]:
    """Greedy pod-by-pod placement of ``task`` onto ``nodes``.

    Pods are placed one at a time onto the feasible node with the highest
    score (ties broken by node id for determinism).  All pods must be
    placed, otherwise ``None`` is returned (gang semantics).

    This is the index-free entry point: it linearly filters ``nodes``.
    Schedulers running inside a simulation use
    :meth:`PlacementContext.find_placement`, which enumerates candidates
    through the cluster's capacity index instead.
    """
    candidates = filter_nodes(task, nodes)
    if not candidates:
        return None
    if views is None:
        view_map: Dict[str, NodeView] = {
            n.node_id: NodeView.from_node(n)
            for n in candidates
            if n.can_fit_pod(task.gpus_per_pod)
        }
    else:
        # Trial placements must never mutate the caller's views; only nodes
        # that could host at least one pod are worth cloning.
        view_map = {
            n.node_id: views[n.node_id].clone()
            for n in candidates
            if n.node_id in views and views[n.node_id].can_fit_pod(task.gpus_per_pod)
        }
    if not view_map:
        return None
    if _cheap_infeasibility(task, view_map):
        return None
    return _greedy_fill(task, view_map, score)


# ----------------------------------------------------------------------
# Per-pass placement context
# ----------------------------------------------------------------------
class PlacementContext:
    """Shared placement state for one scheduling pass.

    Owned by the simulator (one instance per simulation, reset with
    :meth:`begin_pass` at every pass) and passed to ``try_schedule``.
    Schedulers call :meth:`find_placement` for index-accelerated greedy
    searches, the candidate helpers for custom searches, and the
    :meth:`infeasible` / :meth:`note_failure` pair to memoise failed
    shapes.  A context built ad hoc over a cluster (``ctx`` defaulted to
    ``None`` in ``try_schedule``) behaves identically, just without
    cross-task reuse.
    """

    def __init__(self, cluster: Cluster):
        self.cluster = cluster
        self.index = cluster.capacity_index
        self._views: Dict[str, NodeView] = {}
        self._view_mut: Dict[str, int] = {}
        #: failed shape -> (free_increase_seq, spot_increase_seq or None)
        self._failed: Dict[Tuple, Tuple[int, Optional[int]]] = {}
        # Per-pass observability tallies (reset by begin_pass, read by the
        # simulator's pass record).  Plain int increments — cheap enough to
        # stay unconditional even with the NullRecorder attached.
        self.pass_memo_hits = 0
        self.pass_index_rejects = 0
        self.pass_searches = 0

    # ------------------------------------------------------------------
    # Pass lifecycle
    # ------------------------------------------------------------------
    def begin_pass(self) -> None:
        """Start a new scheduling pass: forget the failed-shape memo.

        Cached base views are kept; they self-refresh against the index's
        per-node mutation stamps.
        """
        self._failed.clear()
        self.pass_memo_hits = 0
        self.pass_index_rejects = 0
        self.pass_searches = 0

    # ------------------------------------------------------------------
    # Shared views
    # ------------------------------------------------------------------
    def base_view(self, node: Node) -> NodeView:
        """The cached, never-mutated view of ``node`` (refreshed lazily)."""
        node_id = node.node_id
        stamp = self.index.node_mutation(node_id)
        view = self._views.get(node_id)
        if view is None or self._view_mut.get(node_id) != stamp:
            view = NodeView.from_node(node)
            self._views[node_id] = view
            self._view_mut[node_id] = stamp
        return view

    def clone_views(self, nodes: Iterable[Node]) -> Dict[str, NodeView]:
        """Task-local clones of the base views for ``nodes``."""
        return {n.node_id: self.base_view(n).clone() for n in nodes}

    # ------------------------------------------------------------------
    # Candidate enumeration (canonical order, index-backed)
    # ------------------------------------------------------------------
    def fit_candidates(self, task: Task) -> List[Node]:
        """Nodes that can host one pod now (``Node.can_fit_pod`` semantics)."""
        return self.index.node_fit_candidates(task.gpu_model, task.gpus_per_pod)

    def view_fit_candidates(self, task: Task) -> List[Node]:
        """Nodes that can host one pod now (``NodeView`` aggregate semantics)."""
        return self.index.view_fit_candidates(task.gpu_model, task.gpus_per_pod)

    def spot_nodes(self, task: Task) -> List[Node]:
        """Nodes holding spot GPUs the task's model could reclaim."""
        return self.index.spot_nodes(task.gpu_model)

    def preemption_candidates(self, task: Task) -> List[Node]:
        """Nodes that could host a pod now or after spot evictions."""
        return self.index.preemption_candidates(task.gpu_model, task.gpus_per_pod)

    # ------------------------------------------------------------------
    # Failed-shape memo
    # ------------------------------------------------------------------
    def _shape_key(self, task: Task, pool: str) -> Tuple:
        return (pool, task.task_type, task.gpu_model, task.gpus_per_pod, task.num_pods)

    def infeasible(self, task: Task, pool: str, track_spot: bool = False) -> bool:
        """Whether this shape already failed this pass against unchanged capacity.

        ``track_spot`` marks preemptive searches, which must additionally
        be retried when spot-held capacity grew (freshly placed spot tasks
        are new preemption victims).
        """
        key = self._shape_key(task, pool)
        entry = self._failed.get(key)
        if entry is None:
            return False
        free_seq, spot_seq = entry
        if free_seq != self.index.free_increase_seq:
            del self._failed[key]
            return False
        if track_spot and spot_seq != self.index.spot_increase_seq:
            del self._failed[key]
            return False
        self.pass_memo_hits += 1
        return True

    def note_failure(self, task: Task, pool: str, track_spot: bool = False) -> None:
        """Record a failed search for this shape (see :meth:`infeasible`)."""
        self._failed[self._shape_key(task, pool)] = (
            self.index.free_increase_seq,
            self.index.spot_increase_seq if track_spot else None,
        )

    # ------------------------------------------------------------------
    # Index-accelerated greedy search
    # ------------------------------------------------------------------
    def find_placement(
        self,
        task: Task,
        score: Optional[NodeScore] = None,
        pool: str = "default",
        candidates: Optional[Sequence[Node]] = None,
        memo: bool = True,
    ) -> Optional[List[PodPlacement]]:
        """Indexed equivalent of :func:`find_placement` over the whole cluster.

        ``candidates`` restricts the search to a subset of the indexed fit
        set (e.g. Lyra's loaned nodes); distinct call sites of one
        scheduler must use distinct ``pool`` tags so the failed-shape memo
        never conflates searches with different node pools or scores.
        """
        if memo and self.infeasible(task, pool):
            return None
        if candidates is None:
            candidates = self.fit_candidates(task)
        placements: Optional[List[PodPlacement]] = None
        if candidates:
            view_map = self.clone_views(candidates)
            if not _cheap_infeasibility(task, view_map):
                self.pass_searches += 1
                placements = _greedy_fill(task, view_map, score)
            else:
                self.pass_index_rejects += 1
        else:
            self.pass_index_rejects += 1
        if placements is None and memo:
            self.note_failure(task, pool)
        return placements


def virtually_preempt_task(views: Dict[str, NodeView], task: Task) -> None:
    """Virtually evict ``task`` from every node it occupies (whole-task semantics)."""
    seen_nodes = set()
    for pod in task.placements:
        if pod.node_id in seen_nodes:
            continue
        seen_nodes.add(pod.node_id)
        view = views.get(pod.node_id)
        if view is not None and task.task_id not in view.preempted:
            view.virtually_preempt(task)


def spot_tasks_on_node(node: Node, cluster) -> List[Task]:
    """Running spot tasks that hold GPUs on ``node``."""
    tasks = []
    for task_id in node.running_task_ids():
        task = cluster.running_tasks.get(task_id)
        if task is not None and task.is_spot:
            tasks.append(task)
    return tasks


def gpus_held_on_node(task: Task, node: Node) -> float:
    """How many GPUs ``task`` holds on ``node``."""
    return sum(fraction for _, fraction in node.task_shares.get(task.task_id, []))
