"""Shared placement utilities used by every scheduler.

Placement works on *virtual* node views so that a multi-pod (gang) decision
can be evaluated atomically without mutating real cluster state; the
simulator materialises the decision afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set

from ..cluster import Node, PodPlacement, Task
from ..cluster.gpu import EPSILON

#: A node-scoring function: higher scores are preferred.
NodeScore = Callable[[Node, "NodeView", Task], float]


@dataclass
class NodeView:
    """A lightweight virtual view of a node during one scheduling decision.

    Tracks idle whole cards and free fractional capacity after tentative pod
    assignments and virtual preemptions, without touching the real node.
    """

    node: Node
    idle_gpus: int = 0
    free_capacity: float = 0.0
    #: GPUs freed by virtually preempting spot tasks on this node
    reclaimed_gpus: float = 0.0
    #: ids of spot tasks virtually preempted on this node
    preempted: Set[str] = field(default_factory=set)
    assigned_pods: int = 0

    @classmethod
    def from_node(cls, node: Node) -> "NodeView":
        return cls(node=node, idle_gpus=node.idle_gpus, free_capacity=node.free_capacity)

    # ------------------------------------------------------------------
    def can_fit_pod(self, gpus_per_pod: float) -> bool:
        if gpus_per_pod < 1.0 - EPSILON:
            return self.free_capacity + EPSILON >= gpus_per_pod
        return self.idle_gpus >= int(round(gpus_per_pod))

    def assign_pod(self, gpus_per_pod: float) -> None:
        if not self.can_fit_pod(gpus_per_pod):
            raise ValueError("pod does not fit in node view")
        if gpus_per_pod < 1.0 - EPSILON:
            self.free_capacity -= gpus_per_pod
        else:
            whole = int(round(gpus_per_pod))
            self.idle_gpus -= whole
            self.free_capacity -= whole
        self.assigned_pods += 1

    def clone(self) -> "NodeView":
        """An independent copy used for trial placements."""
        return NodeView(
            node=self.node,
            idle_gpus=self.idle_gpus,
            free_capacity=self.free_capacity,
            reclaimed_gpus=self.reclaimed_gpus,
            preempted=set(self.preempted),
            assigned_pods=self.assigned_pods,
        )

    def virtually_preempt(self, task: Task) -> None:
        """Free the GPUs a running spot task holds on this node (virtual)."""
        gpus_here = sum(
            fraction for _, fraction in self.node.task_shares.get(task.task_id, [])
        )
        whole = int(round(gpus_here)) if gpus_here >= 1.0 - EPSILON else 0
        self.idle_gpus += whole
        self.free_capacity += gpus_here
        self.reclaimed_gpus += gpus_here
        self.preempted.add(task.task_id)


def build_views(nodes: Iterable[Node]) -> List[NodeView]:
    return [NodeView.from_node(n) for n in nodes]


def filter_nodes(task: Task, nodes: Iterable[Node]) -> List[Node]:
    """Nodes compatible with the task's GPU-model requirement."""
    return [
        n
        for n in nodes
        if task.gpu_model is None or n.gpu_model is task.gpu_model
    ]


def find_placement(
    task: Task,
    nodes: Sequence[Node],
    score: Optional[NodeScore] = None,
    views: Optional[Dict[str, NodeView]] = None,
) -> Optional[List[PodPlacement]]:
    """Greedy pod-by-pod placement of ``task`` onto ``nodes``.

    Pods are placed one at a time onto the feasible node with the highest
    score (ties broken by node id for determinism).  All pods must be
    placed, otherwise ``None`` is returned (gang semantics).
    """
    candidates = filter_nodes(task, nodes)
    if not candidates:
        return None
    if views is None:
        view_map: Dict[str, NodeView] = {
            n.node_id: NodeView.from_node(n)
            for n in candidates
            if n.can_fit_pod(task.gpus_per_pod)
        }
    else:
        # Trial placements must never mutate the caller's views; only nodes
        # that could host at least one pod are worth cloning.
        view_map = {
            n.node_id: views[n.node_id].clone()
            for n in candidates
            if n.node_id in views and views[n.node_id].can_fit_pod(task.gpus_per_pod)
        }
    if not view_map:
        return None
    # Cheap infeasibility check before the greedy loop.
    if sum(v.free_capacity for v in view_map.values()) + EPSILON < task.total_gpus:
        return None
    placements: List[PodPlacement] = []
    for _ in range(task.num_pods):
        feasible = [
            v for v in view_map.values() if v.can_fit_pod(task.gpus_per_pod)
        ]
        if not feasible:
            return None
        if score is None:
            chosen = min(feasible, key=lambda v: (v.free_capacity, v.node.node_id))
        else:
            chosen = max(
                feasible,
                key=lambda v: (score(v.node, v, task), v.node.node_id),
            )
        chosen.assign_pod(task.gpus_per_pod)
        placements.append(
            PodPlacement(node_id=chosen.node.node_id, gpu_indices=(), fraction=task.gpus_per_pod)
        )
    return placements


def virtually_preempt_task(views: Dict[str, NodeView], task: Task) -> None:
    """Virtually evict ``task`` from every node it occupies (whole-task semantics)."""
    seen_nodes = set()
    for pod in task.placements:
        if pod.node_id in seen_nodes:
            continue
        seen_nodes.add(pod.node_id)
        view = views.get(pod.node_id)
        if view is not None and task.task_id not in view.preempted:
            view.virtually_preempt(task)


def spot_tasks_on_node(node: Node, cluster) -> List[Task]:
    """Running spot tasks that hold GPUs on ``node``."""
    tasks = []
    for task_id in node.running_task_ids():
        task = cluster.running_tasks.get(task_id)
        if task is not None and task.is_spot:
            tasks.append(task)
    return tasks


def gpus_held_on_node(task: Task, node: Node) -> float:
    """How many GPUs ``task`` holds on ``node``."""
    return sum(fraction for _, fraction in node.task_shares.get(task.task_id, []))
