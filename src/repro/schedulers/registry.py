"""Scheduler registry: build any scheduler (baselines or GFS) by name."""

from __future__ import annotations

from typing import Callable, Dict, List

from .base import Scheduler
from .chronus import ChronusScheduler
from .fgd import FGDScheduler
from .lyra import LyraScheduler
from .pts_only import PTSScheduler
from .yarn_cs import YarnCSScheduler

SchedulerFactory = Callable[..., Scheduler]

_REGISTRY: Dict[str, SchedulerFactory] = {}


def register(name: str, factory: SchedulerFactory) -> None:
    """Register a scheduler factory under a case-insensitive name."""
    _REGISTRY[name.lower()] = factory


def available_schedulers() -> List[str]:
    """Names of every registered scheduler."""
    _ensure_gfs_registered()
    return sorted(_REGISTRY)


def create_scheduler(name: str, **kwargs) -> Scheduler:
    """Instantiate a scheduler by its registered (case-insensitive) name.

    Accepts the four baselines (``"yarn-cs"``, ``"chronus"``, ``"lyra"``,
    ``"fgd"``), the standalone placement engine (``"pts"``), ``"gfs"``
    and the ablation variants (``"gfs-e"``,
    ``"gfs-d"``, ``"gfs-s"``, ``"gfs-p"``, ``"gfs-sp"``); keyword
    arguments are forwarded to the scheduler constructor.  Raises
    ``KeyError`` listing the registered names when ``name`` is unknown.

    Example
    -------
    >>> from repro import create_scheduler
    >>> scheduler = create_scheduler("gfs", org_history=trace.org_history)
    >>> scheduler.name
    'GFS'
    """
    _ensure_gfs_registered()
    key = name.lower()
    if key not in _REGISTRY:
        raise KeyError(f"unknown scheduler {name!r}; available: {available_schedulers()}")
    return _REGISTRY[key](**kwargs)


def _ensure_gfs_registered() -> None:
    """Lazily register GFS variants to avoid a circular import at load time."""
    if "gfs" in _REGISTRY:
        return
    from ..core.gfs import GFSScheduler, make_ablation

    register("gfs", GFSScheduler)
    for variant in ("gfs-e", "gfs-d", "gfs-s", "gfs-p", "gfs-sp"):
        register(variant, lambda v=variant, **kw: make_ablation(v, **kw))


register("yarn-cs", YarnCSScheduler)
register("yarn_cs", YarnCSScheduler)
register("chronus", ChronusScheduler)
register("lyra", LyraScheduler)
register("fgd", FGDScheduler)
register("pts", PTSScheduler)
