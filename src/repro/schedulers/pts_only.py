"""Standalone PTS: the paper's placement engine without GDE/SQA admission.

:class:`~repro.core.pts.PreemptiveTaskScheduler` is normally driven by
:class:`~repro.core.gfs.GFSScheduler`, which gates spot tasks through the
forecast-driven quota first.  ``PTSScheduler`` exposes the same placement
engine as its own scheduler family — every spot task is admitted and only
placement (non-preemptive scoring plus the preemptive fallback for HP
tasks) decides.  This isolates placement behaviour from admission control,
which is exactly what the reliability evaluation wants: under node churn
the quota loop reacts to capacity loss, and PTS-without-quota shows how
much of the resilience comes from placement alone.
"""

from __future__ import annotations

from typing import List, Optional

from ..cluster import Cluster, SchedulingDecision, Task
from .base import Scheduler
from .placement import PlacementContext


class PTSScheduler(Scheduler):
    """The preemption-aware task scheduler with admission wide open.

    Example
    -------
    >>> from repro.schedulers import PTSScheduler
    >>> metrics = run_simulation(cluster, PTSScheduler(), trace.sorted_tasks())
    """

    name = "PTS"

    def __init__(self, beta: float = 0.5, seed: int = 0):
        # Imported here: repro.core imports repro.schedulers at load time,
        # so the module-level import would be circular.
        from ..core.pts import PTSConfig, PreemptiveTaskScheduler

        self.pts = PreemptiveTaskScheduler(PTSConfig(beta=beta, seed=seed))
        self._start_time: float = 0.0

    # ------------------------------------------------------------------
    def on_simulation_start(self, cluster: Cluster, now: float) -> None:
        self._start_time = now

    def sort_queue(self, pending: List[Task], now: float) -> List[Task]:
        return self.pts.sort_queue(pending, now)

    def try_schedule(
        self,
        task: Task,
        cluster: Cluster,
        now: float,
        ctx: Optional[PlacementContext] = None,
    ) -> Optional[SchedulingDecision]:
        elapsed = max(1.0, now - self._start_time)
        total_gpu_seconds = cluster.total_gpus() * elapsed
        return self.pts.schedule(task, cluster, now, total_gpu_seconds, ctx=ctx)
