"""Baseline schedulers and the scheduler interface."""

from .base import Scheduler
from .chronus import ChronusScheduler
from .fgd import FGDScheduler, fgd_score, fragmentation_after
from .lyra import LyraScheduler
from .placement import (
    NodeView,
    PlacementContext,
    build_views,
    filter_nodes,
    find_placement,
    gpus_held_on_node,
    spot_tasks_on_node,
)
from .pts_only import PTSScheduler
from .registry import available_schedulers, create_scheduler, register
from .yarn_cs import YarnCSScheduler, best_fit_score

__all__ = [
    "ChronusScheduler",
    "FGDScheduler",
    "LyraScheduler",
    "NodeView",
    "PTSScheduler",
    "PlacementContext",
    "Scheduler",
    "YarnCSScheduler",
    "available_schedulers",
    "best_fit_score",
    "build_views",
    "create_scheduler",
    "fgd_score",
    "filter_nodes",
    "find_placement",
    "fragmentation_after",
    "gpus_held_on_node",
    "register",
    "spot_tasks_on_node",
]
