"""Lyra baseline: elastic node loaning between HP and spot pools.

Lyra (EuroSys '23) leases idle inference nodes to training tasks and uses a
heuristic to minimise preemption cost.  Mapped onto this paper's task
model: HP tasks play the role of inference tasks and spot tasks the role of
training tasks.  Spot tasks may only run on *loaned* nodes (nodes currently
hosting no HP task); when HP demand grows, whole loaned nodes are reclaimed
(all spot tasks on them are preempted), choosing the reclaim set that
minimises the number of preempted tasks.

The node-granularity loan keeps the eviction rate low but throttles how
much capacity spot tasks can use, which is what produces Lyra's long spot
queuing times in the paper's comparison.
"""

from __future__ import annotations

from typing import Optional

from ..cluster import Cluster, Node, SchedulingDecision, Task
from .base import Scheduler
from .placement import (
    NodeView,
    PlacementContext,
    find_placement,
    spot_tasks_on_node,
    virtually_preempt_task,
)
from .yarn_cs import best_fit_score


def _hp_affinity_score(node: Node, view: NodeView, t: Task) -> float:
    """Prefer nodes that host no spot task so reclaims stay rare."""
    return (0.0 if node.spot_gpus > 0 else 1000.0) - view.free_capacity


class LyraScheduler(Scheduler):
    """Node-loaning scheduler with preemption-cost-aware reclaims.

    ``capacity_reserve`` is the fraction of total cluster capacity Lyra
    keeps free of spot tasks as a buffer for HP growth; the conservative
    loaning policy is what keeps Lyra's eviction rate low at the price of
    long spot queuing times.

    Example
    -------
    >>> from repro import Cluster, LyraScheduler, run_simulation
    >>> scheduler = LyraScheduler(capacity_reserve=0.15)
    >>> metrics = run_simulation(Cluster.homogeneous(4), scheduler, tasks)
    """

    name = "Lyra"

    def __init__(self, capacity_reserve: float = 0.15):
        self.capacity_reserve = capacity_reserve

    def try_schedule(
        self,
        task: Task,
        cluster: Cluster,
        now: float,
        ctx: Optional[PlacementContext] = None,
    ) -> Optional[SchedulingDecision]:
        if ctx is None:
            ctx = PlacementContext(cluster)
        if task.is_spot:
            return self._schedule_spot(task, cluster, ctx)
        return self._schedule_hp(task, cluster, now, ctx)

    # ------------------------------------------------------------------
    def _schedule_spot(
        self, task: Task, cluster: Cluster, ctx: PlacementContext
    ) -> Optional[SchedulingDecision]:
        # The reserve check runs against the cluster's O(1) cached
        # aggregates before any per-node work, so a throttled spot queue
        # costs O(1) per waiting task instead of a full node scan.
        reserve = self.capacity_reserve * cluster.total_gpus(task.gpu_model)
        if cluster.idle_gpus(task.gpu_model) - task.total_gpus < reserve:
            return None  # keep a buffer of idle capacity for HP growth
        loaned = [n for n in ctx.fit_candidates(task) if n.hp_gpus == 0]
        placements = ctx.find_placement(
            task, score=best_fit_score, pool="lyra-loaned", candidates=loaned
        )
        if placements is None:
            return None
        return SchedulingDecision(placements=placements)

    def _schedule_hp(
        self, task: Task, cluster: Cluster, now: float, ctx: PlacementContext
    ) -> Optional[SchedulingDecision]:
        placements = ctx.find_placement(task, score=_hp_affinity_score, pool="lyra-hp")
        if placements is not None:
            return SchedulingDecision(placements=placements)

        # Reclaim loaned nodes: order candidate nodes by how few spot tasks
        # would be displaced, then virtually reclaim until the task fits.
        if ctx.infeasible(task, "lyra-reclaim", track_spot=True):
            return None
        candidates = ctx.preemption_candidates(task)
        views = ctx.clone_views(candidates)
        victims = []
        reclaim_order = sorted(
            ctx.spot_nodes(task),
            key=lambda n: (len(spot_tasks_on_node(n, cluster)), -n.spot_gpus),
        )
        for node in reclaim_order:
            for spot in spot_tasks_on_node(node, cluster):
                if spot.task_id in victims:
                    continue
                virtually_preempt_task(views, spot)
                victims.append(spot.task_id)
            placements = find_placement(task, candidates, score=_hp_affinity_score, views=views)
            if placements is not None:
                used_nodes = {p.node_id for p in placements}
                needed = []
                for vid in victims:
                    victim = cluster.running_tasks[vid]
                    if any(p.node_id in used_nodes for p in victim.placements):
                        needed.append(vid)
                return SchedulingDecision(placements=placements, preempted_task_ids=needed or victims)
        ctx.note_failure(task, "lyra-reclaim", track_spot=True)
        return None
