"""FGD baseline: fragmentation-gradient-descent placement.

FGD (USENIX ATC '23) scores candidate nodes by how much expected
fragmentation a placement would add and picks the minimum.  Following the
paper's adaptation, the fragmentation measure is applied at node
granularity.  FGD has no notion of spot quota, workload-type co-location
or eviction awareness; when an HP task cannot be placed it preempts spot
tasks purely to minimise post-preemption fragmentation, which is why it
shows the highest eviction rates in the comparison.
"""

from __future__ import annotations

from typing import List, Optional

from ..cluster import Cluster, Node, SchedulingDecision, Task
from .base import Scheduler
from .placement import (
    NodeView,
    PlacementContext,
    find_placement,
    spot_tasks_on_node,
    virtually_preempt_task,
)


def fragmentation_after(view: NodeView, gpus_per_pod: float) -> float:
    """Fragmentation measure of a node after hypothetically placing one pod.

    Whole idle GPUs left over that are too few to host another pod of the
    same size count as fragmented capacity; fractional remainders always
    count.  Lower is better.
    """
    if gpus_per_pod < 1.0:
        remaining = view.free_capacity - gpus_per_pod
    else:
        remaining = view.idle_gpus - int(round(gpus_per_pod))
    if remaining < 0:
        return float("inf")
    whole_pods_left = int(remaining // max(gpus_per_pod, 1e-9))
    fragment = remaining - whole_pods_left * gpus_per_pod
    return fragment


def fgd_score(node: Node, view: NodeView, task: Task) -> float:
    """Higher is better: negate the post-placement fragmentation."""
    return -fragmentation_after(view, task.gpus_per_pod)


class FGDScheduler(Scheduler):
    """Fragmentation-gradient-descent baseline (FGD, USENIX ATC '23).

    Places every pod on the node whose post-placement fragmentation is
    lowest.  FGD has no spot quota, co-location or eviction awareness:
    when an HP task does not fit, it preempts spot tasks purely to
    minimise fragmentation, producing the highest eviction rates in the
    paper's comparison (Table 5).

    Example
    -------
    >>> from repro import Cluster, FGDScheduler, run_simulation
    >>> metrics = run_simulation(Cluster.homogeneous(4), FGDScheduler(), tasks)
    """

    name = "FGD"

    def blocks_on_failure(self, task: Task) -> bool:
        # FGD is a placement policy on top of an FCFS queue: spot tasks do
        # not backfill past a stuck spot task.
        return task.is_spot

    def try_schedule(
        self,
        task: Task,
        cluster: Cluster,
        now: float,
        ctx: Optional[PlacementContext] = None,
    ) -> Optional[SchedulingDecision]:
        if ctx is None:
            ctx = PlacementContext(cluster)
        placements = ctx.find_placement(task, score=fgd_score, pool="fgd-np")
        if placements is not None:
            return SchedulingDecision(placements=placements)
        if task.is_hp:
            return self._preempt_for_fragmentation(task, cluster, now, ctx)
        return None

    # ------------------------------------------------------------------
    def _preempt_for_fragmentation(
        self, task: Task, cluster: Cluster, now: float, ctx: PlacementContext
    ) -> Optional[SchedulingDecision]:
        """Preempt spot tasks node-by-node, ranked by post-preemption tightness."""
        if ctx.infeasible(task, "fgd-preempt", track_spot=True):
            return None
        candidates = ctx.preemption_candidates(task)
        views = ctx.clone_views(candidates)

        def node_rank(node: Node) -> float:
            # Prefer nodes whose spot capacity plus idle capacity most tightly
            # matches the per-pod request (fragmentation-style tie breaking).
            reclaimable = node.spot_gpus + node.free_capacity
            overshoot = reclaimable - task.gpus_per_pod
            return overshoot if overshoot >= 0 else float("inf")

        victims: List[str] = []
        for node in sorted(ctx.spot_nodes(task), key=node_rank):
            for spot in spot_tasks_on_node(node, cluster):
                if spot.task_id in victims:
                    continue
                virtually_preempt_task(views, spot)
                victims.append(spot.task_id)
                placements = find_placement(task, candidates, score=fgd_score, views=views)
                if placements is not None:
                    used_nodes = {p.node_id for p in placements}
                    needed = []
                    for vid in victims:
                        victim = cluster.running_tasks[vid]
                        if any(p.node_id in used_nodes for p in victim.placements):
                            needed.append(vid)
                    return SchedulingDecision(
                        placements=placements, preempted_task_ids=needed or victims
                    )
        ctx.note_failure(task, "fgd-preempt", track_spot=True)
        return None
