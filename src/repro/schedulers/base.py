"""Scheduler interface and shared behaviour.

Every scheduler (the four baselines and GFS itself) implements this
interface; the simulator only interacts with schedulers through it.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Optional

from ..cluster import Cluster, SchedulingDecision, Task
from .placement import PlacementContext


class Scheduler(ABC):
    """Abstract scheduler driven by :class:`repro.cluster.ClusterSimulator`.

    Subclasses implement :meth:`try_schedule` (placement decisions) and may
    override :meth:`sort_queue` (queue ordering), :meth:`blocks_on_failure`
    (FCFS head-of-line semantics) and the ``on_*`` notification hooks.  The
    simulator is duck-typed: any object with these methods works, but
    inheriting from this class gets the default FCFS ordering for free.

    Example
    -------
    >>> class FirstFit(Scheduler):
    ...     def try_schedule(self, task, cluster, now):
    ...         placements = find_placement(task, cluster.nodes)
    ...         return SchedulingDecision(placements=placements) if placements else None
    """

    #: human-readable name used in experiment tables
    name: str = "scheduler"

    # ------------------------------------------------------------------
    # Queue ordering
    # ------------------------------------------------------------------
    def sort_queue(self, pending: List[Task], now: float) -> List[Task]:
        """Order in which pending tasks are offered for scheduling.

        Default: first-come-first-served with HP tasks ahead of spot tasks
        submitted at the same time.
        """
        return sorted(pending, key=lambda t: (t.submit_time, not t.is_hp, t.task_id))

    def blocks_on_failure(self, task: Task) -> bool:
        """Whether a failed scheduling attempt blocks the rest of its class.

        First-come-first-served schedulers (YARN-CS, FGD) do not backfill:
        once the spot task at the head of the queue cannot be placed, the
        spot tasks behind it wait too.  Schedulers that reorder their queue
        (Chronus, Lyra, GFS) return ``False`` and keep trying later tasks.
        """
        return False

    # ------------------------------------------------------------------
    # Core decision
    # ------------------------------------------------------------------
    @abstractmethod
    def try_schedule(
        self,
        task: Task,
        cluster: Cluster,
        now: float,
        ctx: Optional[PlacementContext] = None,
    ) -> Optional[SchedulingDecision]:
        """Attempt to place ``task``; return ``None`` to keep it queued.

        ``ctx`` is the simulator's per-pass
        :class:`~repro.schedulers.placement.PlacementContext` (shared node
        views, indexed candidate enumeration, failed-shape memo).  It is
        optional so direct calls and third-party duck-typed schedulers
        keep working; implementations should build a transient context
        when it is ``None``.
        """

    # ------------------------------------------------------------------
    # Optional notification hooks
    # ------------------------------------------------------------------
    def on_simulation_start(self, cluster: Cluster, now: float) -> None:
        """Called once before the first event is processed."""

    def on_task_submit(self, task: Task, cluster: Cluster, now: float) -> None:
        """Called when a task enters the waiting queue."""

    def on_task_start(self, task: Task, cluster: Cluster, now: float) -> None:
        """Called when a task starts running."""

    def on_task_finish(self, task: Task, cluster: Cluster, now: float) -> None:
        """Called when a task completes."""

    def on_task_evicted(self, task: Task, cluster: Cluster, now: float) -> None:
        """Called when a spot task is preempted."""

    def on_tick(self, cluster: Cluster, now: float, pending: List[Task]) -> None:
        """Called at every periodic simulator tick (quota updates, feedback)."""

    # ------------------------------------------------------------------
    # Optional cluster-dynamics hooks (failures, drains, elastic capacity)
    # ------------------------------------------------------------------
    def on_node_down(self, node, cluster: Cluster, now: float) -> None:
        """Called after a node left the fleet (failure/drain/reclaim).

        The node's tasks have already been killed and requeued and its
        capacity removed from every aggregate and candidate index;
        schedulers that cache per-node state should invalidate it here.
        """

    def on_node_up(self, node, cluster: Cluster, now: float) -> None:
        """Called after a node rejoined the fleet (repair/activation)."""

    def on_task_killed(self, task: Task, cluster: Cluster, now: float) -> None:
        """Called when cluster dynamics killed a running task (any class).

        Distinct from :meth:`on_task_evicted`: kills are infrastructure
        faults, not scheduler preemptions, and may strike HP tasks.
        """

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} name={self.name!r}>"
