"""Chronus baseline: lease-based deadline-aware scheduling.

Chronus (SoCC '21) allocates time-limited leases to SLO (here: HP) and
best-effort (here: spot) tasks.  Tasks are guaranteed within their lease
period and resources change hands only at lease boundaries.  Following the
paper's adaptation (Section 4.1), HP tasks use 20-minute leases and spot
tasks 5-minute leases.

Modelling choices (documented in DESIGN.md): scheduling decisions align
task starts to the next lease boundary (the MILP/lease-packing latency the
paper attributes Chronus's higher HP JCT to), and running tasks are never
preempted mid-lease.  Because this simulator cannot pause/resume a task at
a lease boundary, a granted lease is renewed until the task finishes; HP
tasks therefore wait for spot completions instead of evicting them, which
is why the paper reports no eviction rate for Chronus.
"""

from __future__ import annotations

import math
from typing import Optional

from ..cluster import Cluster, SchedulingDecision, Task
from .base import Scheduler
from .placement import PlacementContext
from .yarn_cs import best_fit_score


class ChronusScheduler(Scheduler):
    """Lease-based deadline-aware baseline (Chronus, SoCC '21).

    Task starts are aligned to the next lease boundary — 20-minute leases
    for HP tasks, 5-minute leases for spot tasks by default — and running
    tasks are never preempted mid-lease, so Chronus reports a zero
    eviction rate at the price of higher HP queuing latency.

    Example
    -------
    >>> from repro import Cluster, ChronusScheduler, run_simulation
    >>> cluster = Cluster.homogeneous(num_nodes=4)
    >>> metrics = run_simulation(cluster, ChronusScheduler(), tasks)
    """

    name = "Chronus"

    def __init__(self, hp_lease: float = 20 * 60.0, spot_lease: float = 5 * 60.0):
        self.hp_lease = hp_lease
        self.spot_lease = spot_lease

    # ------------------------------------------------------------------
    def _lease_alignment_delay(self, now: float, lease: float) -> float:
        """Seconds until the next lease boundary (0 when exactly on one)."""
        if lease <= 0:
            return 0.0
        next_boundary = math.ceil(now / lease) * lease
        return max(0.0, next_boundary - now)

    def try_schedule(
        self,
        task: Task,
        cluster: Cluster,
        now: float,
        ctx: Optional[PlacementContext] = None,
    ) -> Optional[SchedulingDecision]:
        if ctx is None:
            ctx = PlacementContext(cluster)
        lease = self.hp_lease if task.is_hp else self.spot_lease
        delay = self._lease_alignment_delay(now, lease)
        placements = ctx.find_placement(task, score=best_fit_score, pool="chronus")
        if placements is None:
            # Lease guarantee: running tasks keep their lease; the HP task
            # waits for completions instead of preempting.
            return None
        return SchedulingDecision(placements=placements, start_delay=delay)
