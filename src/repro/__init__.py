"""Reproduction of GFS (ASPLOS 2026): preemption-aware GPU cluster scheduling
with predictive spot instance management.

Public API overview
-------------------
``repro.cluster``
    Discrete-event GPU cluster simulator (nodes, tasks, events, metrics).
``repro.workloads``
    Synthetic traces, organization demand processes, fleet definitions.
``repro.core``
    The paper's contribution: GDE forecasting, SQA quota control, the PTS
    preemption-aware scheduler and the assembled ``GFSScheduler``.
``repro.schedulers``
    Baseline schedulers (YARN-CS, Chronus, Lyra, FGD) and standalone PTS.
``repro.dynamics``
    Cluster dynamics: deterministic fault injection (node failures,
    maintenance drains, elastic capacity) for the simulator.
``repro.optim``
    The Eq. 12 optimisation model and a toy exact solver.
``repro.analysis``
    Observation statistics, economics and report formatting.
``repro.experiments``
    Runners that regenerate every table and figure of the evaluation.
"""

__version__ = "1.0.0"

from . import analysis, cluster, core, dynamics, experiments, optim, schedulers, workloads
from .cluster import (
    Cluster,
    ClusterSimulator,
    GPUModel,
    ReliabilityMetrics,
    SimulationMetrics,
    SimulatorConfig,
    Task,
    TaskType,
    run_simulation,
)
from .core import GFSConfig, GFSScheduler, make_ablation
from .dynamics import DynamicsSpec, FaultInjector, get_dynamics
from .schedulers import (
    ChronusScheduler,
    FGDScheduler,
    LyraScheduler,
    PTSScheduler,
    Scheduler,
    YarnCSScheduler,
    create_scheduler,
)
from .workloads import Trace, WorkloadConfig, generate_trace

__all__ = [
    "ChronusScheduler",
    "Cluster",
    "ClusterSimulator",
    "DynamicsSpec",
    "FGDScheduler",
    "FaultInjector",
    "GFSConfig",
    "GFSScheduler",
    "GPUModel",
    "LyraScheduler",
    "PTSScheduler",
    "ReliabilityMetrics",
    "Scheduler",
    "SimulationMetrics",
    "SimulatorConfig",
    "Task",
    "TaskType",
    "Trace",
    "WorkloadConfig",
    "YarnCSScheduler",
    "__version__",
    "analysis",
    "cluster",
    "core",
    "create_scheduler",
    "dynamics",
    "experiments",
    "generate_trace",
    "get_dynamics",
    "make_ablation",
    "optim",
    "run_simulation",
    "schedulers",
    "workloads",
]
