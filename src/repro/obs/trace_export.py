"""Chrome-trace / Perfetto JSON export of simulation runs.

Serialises a finished (or mid-flight) simulation into the Chrome
trace-event format — loadable in ``chrome://tracing``, Perfetto UI or
``speedscope`` — with two process tracks:

* **pid 1 "tasks"** — one thread per task, carrying its full lifecycle:
  ``queue`` and ``run`` complete events (phase ``"X"``) and ``finish`` /
  ``evict`` / ``kill`` instants (phase ``"i"``).
* **pid 2 "scheduler"** — one instant per scheduling pass (trigger,
  tasks examined/scheduled, memo hits, index rejects, searches) from the
  recorder's sim channel, plus ``"C"`` counter events (pending depth,
  running tasks, allocation rate) from the per-tick samples.

Timestamps are **simulated** microseconds, never wall clock, so the
export is a pure function of the run: two runs of the same seed produce
byte-identical JSON (``tests/test_trace_export.py`` pins this and the
schema).  Wall-clock data stays in the recorder's histograms and is the
self-profiler's business (:mod:`repro.obs.profiler`).

Typical use::

    rec = Recorder()
    sim = ClusterSimulator(cluster, scheduler, recorder=rec)
    sim.submit_all(tasks); sim.run()
    write_chrome_trace("trace.json", sim.all_tasks, recorder=rec)

or from the command line: ``python -m repro.experiments.cli trace-viz
--scenario node_churn --trace-out trace.json``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence

from .recorder import Recorder

#: pid of the task-lifecycle track.
TASKS_PID = 1
#: pid of the scheduler track (passes + counters).
SCHEDULER_PID = 2

#: Scale from simulated seconds to trace-event microseconds.
_US = 1_000_000.0


def _us(sim_seconds: float) -> int:
    """Simulated seconds -> integer trace microseconds (deterministic)."""
    return int(round(sim_seconds * _US))


def _meta(pid: int, name: str, tid: int = 0) -> Dict[str, object]:
    kind = "process_name" if tid == 0 else "thread_name"
    return {"ph": "M", "pid": pid, "tid": tid, "name": kind, "args": {"name": name}}


def _complete(pid: int, tid: int, name: str, start: float, end: float, args: Dict) -> Dict[str, object]:
    ts = _us(start)
    return {
        "ph": "X",
        "pid": pid,
        "tid": tid,
        "name": name,
        "cat": "task",
        "ts": ts,
        "dur": max(0, _us(end) - ts),
        "args": args,
    }


def _instant(pid: int, tid: int, name: str, when: float, args: Dict, cat: str) -> Dict[str, object]:
    return {
        "ph": "i",
        "s": "t",
        "pid": pid,
        "tid": tid,
        "name": name,
        "cat": cat,
        "ts": _us(when),
        "args": args,
    }


def task_lifecycle_events(tasks: Sequence, final_time: Optional[float] = None) -> List[Dict[str, object]]:
    """Trace events for every task's arrival→queue→run→outcome lifecycle.

    Tasks map to threads of ``pid 1`` in deterministic ``task_id`` order.
    Open-ended segments (a task still queued or running when the export
    happens) are clamped to ``final_time`` when given, else dropped.
    """
    events: List[Dict[str, object]] = []
    ordered = sorted(tasks, key=lambda t: t.task_id)
    for tid, task in enumerate(ordered, start=1):
        track: List[Dict[str, object]] = []
        base = {
            "task_id": task.task_id,
            "type": "HP" if task.is_hp else "SPOT",
            "pods": task.num_pods,
            "gpus_per_pod": task.gpus_per_pod,
            "org": task.org,
        }
        queue_from: Optional[float] = task.submit_time
        for attempt, run in enumerate(task.run_logs):
            if queue_from is not None:
                track.append(
                    _complete(TASKS_PID, tid, "queue", queue_from, run.start, dict(base))
                )
                queue_from = None
            end = run.end if run.end is not None else final_time
            if end is None:
                continue
            run_args = dict(base)
            run_args.update({"attempt": attempt, "overhead_s": run.overhead})
            track.append(_complete(TASKS_PID, tid, "run", run.start, end, run_args))
            if run.killed:
                track.append(_instant(TASKS_PID, tid, "kill", end, dict(base), "lifecycle"))
                queue_from = end
            elif run.evicted:
                track.append(_instant(TASKS_PID, tid, "evict", end, dict(base), "lifecycle"))
                queue_from = end
            elif run.end is not None and task.finish_time is not None and run is task.run_logs[-1]:
                track.append(_instant(TASKS_PID, tid, "finish", end, dict(base), "lifecycle"))
        if queue_from is not None and final_time is not None and final_time > queue_from:
            # Still waiting when the export happened.
            track.append(_complete(TASKS_PID, tid, "queue", queue_from, final_time, dict(base)))
        # Chrome renders any order, but a monotonic track is easier to
        # assert on and to diff: metadata first, then by timestamp (a
        # kill can land *before* a delayed run start it cancelled, so
        # emission order alone is not sorted), instants after spans.
        track.sort(key=lambda e: (e["ts"], 0 if e["ph"] == "X" else 1))
        events.append(_meta(TASKS_PID, task.task_id, tid=tid))
        events.extend(track)
    return events


def scheduler_events(recorder: Recorder) -> List[Dict[str, object]]:
    """Trace events for the scheduler track from the recorder's sim channel."""
    events: List[Dict[str, object]] = [
        _meta(SCHEDULER_PID, "scheduler"),
        _meta(SCHEDULER_PID, "scheduling passes", tid=1),
    ]
    for record in recorder.pass_records:
        events.append(
            _instant(
                SCHEDULER_PID,
                1,
                f"pass:{record.trigger}",
                record.sim_time,
                {
                    "trigger": record.trigger,
                    "examined": record.examined,
                    "scheduled": record.scheduled,
                    "memo_hits": record.memo_hits,
                    "index_rejects": record.index_rejects,
                    "searches": record.searches,
                    "pending_depth": record.pending_depth,
                },
                "scheduler",
            )
        )
    for sample in recorder.tick_samples:
        ts = _us(sample.sim_time)
        for name, value in (
            ("pending_depth", sample.pending_depth),
            ("running_tasks", sample.running_tasks),
            ("allocation_rate", sample.allocation_rate),
        ):
            events.append(
                {
                    "ph": "C",
                    "pid": SCHEDULER_PID,
                    "tid": 0,
                    "name": name,
                    "ts": ts,
                    "args": {name: value},
                }
            )
    return events


def build_chrome_trace(
    tasks: Optional[Iterable] = None,
    recorder: Optional[Recorder] = None,
    final_time: Optional[float] = None,
    metadata: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Assemble the complete trace document (JSON object format).

    ``tasks`` yields the task-lifecycle track, ``recorder`` the
    scheduler track; either may be omitted.  ``metadata`` lands in the
    Chrome ``otherData`` field (scenario name, scheduler, seed, ...).
    """
    events: List[Dict[str, object]] = []
    if tasks is not None:
        events.extend(task_lifecycle_events(list(tasks), final_time=final_time))
    if recorder is not None and recorder.enabled:
        events.extend(scheduler_events(recorder))
    trace: Dict[str, object] = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": dict(metadata or {}),
    }
    return trace


def trace_to_json(trace: Dict[str, object]) -> str:
    """Deterministic serialisation (sorted keys, fixed separators)."""
    return json.dumps(trace, sort_keys=True, separators=(",", ":")) + "\n"


def write_chrome_trace(
    path,
    tasks: Optional[Iterable] = None,
    recorder: Optional[Recorder] = None,
    final_time: Optional[float] = None,
    metadata: Optional[Dict[str, object]] = None,
) -> Path:
    """Build and write a trace; returns the written path."""
    trace = build_chrome_trace(
        tasks=tasks, recorder=recorder, final_time=final_time, metadata=metadata
    )
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(trace_to_json(trace))
    return out
