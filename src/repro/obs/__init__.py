"""Simulator-wide observability: recorder core, exporters, self-profiler.

The package splits into a dependency-free core — imported by the hot
path — and consumers imported only where used:

* :mod:`repro.obs.recorder` — :class:`Recorder` / :class:`NullRecorder`
  (counters, gauges, histograms, spans; sim-time vs wall-clock channels)
  and :class:`EventLoopCounters`, the simulator's per-kind heaped-event
  accounting.
* :mod:`repro.obs.prometheus` — exposition-format rendering for the
  service's ``GET /metrics``.
* :mod:`repro.obs.trace_export` — Chrome-trace/Perfetto JSON export of
  scheduling passes and task lifecycles (``cli trace-viz``).
* :mod:`repro.obs.profiler` — wall-clock self-profiler reporting the
  per-phase cost breakdown (``cli profile`` / ``make profile``).
* :mod:`repro.obs.telemetry` — the sweep-plane :class:`TelemetryBus`
  with JSONL / live-TTY / Prometheus sinks (``cli sweep --progress``).
* :mod:`repro.obs.logging` — structured JSON-lines logging with
  run/session/job correlation ids, shared by the engine, the runtime
  executor and the service.

See ``docs/observability.md`` for the recorder API, the hook-point
inventory and walkthroughs of every consumer.
"""

from .logging import StructuredLogger, configure_json_logging, get_logger, new_run_id
from .prometheus import (
    PROMETHEUS_CONTENT_TYPE,
    parse_prometheus_text,
    render_recorder,
)
from .recorder import (
    NULL_RECORDER,
    EventLoopCounters,
    Histogram,
    NullRecorder,
    PassRecord,
    Recorder,
    TickSample,
)
from .telemetry import (
    NULL_TELEMETRY,
    JsonlSink,
    MetricsServer,
    NullTelemetryBus,
    PrometheusSink,
    TelemetryBus,
    TTYProgressSink,
    validate_telemetry_line,
)

__all__ = [
    "NULL_RECORDER",
    "NULL_TELEMETRY",
    "EventLoopCounters",
    "Histogram",
    "JsonlSink",
    "MetricsServer",
    "NullRecorder",
    "NullTelemetryBus",
    "PassRecord",
    "PROMETHEUS_CONTENT_TYPE",
    "PrometheusSink",
    "Recorder",
    "StructuredLogger",
    "TTYProgressSink",
    "TelemetryBus",
    "TickSample",
    "configure_json_logging",
    "get_logger",
    "new_run_id",
    "parse_prometheus_text",
    "render_recorder",
    "validate_telemetry_line",
]
