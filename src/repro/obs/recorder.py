"""Instrumentation core: counters, gauges, histograms, spans and channels.

The recorder is the single sink for everything the simulator, the
placement engine, the experiment engine and the service want to measure.
Two design rules keep it safe to thread through the hot path:

**Zero overhead when disabled.**  Every instrumented call site is gated
on ``recorder.enabled`` — one attribute read on the shared
:data:`NULL_RECORDER` singleton, whose methods are all no-ops.  Nothing
is allocated, formatted or timed unless a real :class:`Recorder` was
attached explicitly.

**Sim-time and wall-clock never mix.**  Deterministic simulation data
(scheduling-pass records, tick samples — pure functions of the seed)
lives in the *sim channel* (:attr:`Recorder.pass_records`,
:attr:`Recorder.tick_samples`) and is what the Chrome-trace exporter
serialises; wall-clock data (dispatch timings, pass durations) lives in
wall histograms and only ever feeds the self-profiler and Prometheus
output.  Exported traces of two runs of the same seed are therefore
byte-identical even though their wall timings differ.

The recorder deliberately never *reads* simulation state — hook points
push values in — so attaching one cannot perturb a run: the parity suite
(``tests/test_obs_parity.py``) asserts instrumented runs produce
bit-identical :class:`~repro.cluster.metrics.SimulationMetrics`.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

#: Histogram bucket upper bounds in seconds (log scale, µs to 10 s); the
#: implicit final bucket is +Inf.  Chosen for event-dispatch and
#: scheduling-pass durations, which span ~1 µs to seconds.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0,
)

#: Label pairs hashed into metric keys: ``(("kind", "TASK_ARRIVAL"),)``.
LabelPairs = Tuple[Tuple[str, str], ...]


def label_pairs(labels: Optional[Dict[str, str]]) -> LabelPairs:
    """Canonical (sorted, hashable) form of a label mapping."""
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


@dataclass
class Histogram:
    """A fixed-bucket histogram plus count/sum/min/max running stats."""

    bounds: Tuple[float, ...] = DEFAULT_BUCKETS
    counts: List[int] = field(default_factory=list)
    count: int = 0
    total: float = 0.0
    min: float = math.inf
    max: float = -math.inf

    def __post_init__(self) -> None:
        if not self.counts:
            self.counts = [0] * (len(self.bounds) + 1)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else float("nan")

    def as_dict(self) -> Dict[str, object]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "mean": self.mean if self.count else None,
        }


@dataclass(frozen=True)
class PassRecord:
    """One ``_schedule_pending`` pass, in deterministic sim-time terms.

    Every field is a pure function of the simulation seed — no wall
    clock — so the sequence of pass records (and anything exported from
    it) is bit-identical across repeat runs and across machines.
    """

    sim_time: float
    #: what triggered the pass: arrival / finish / tick / dynamics
    trigger: str
    #: tasks offered to the scheduler this pass
    examined: int
    #: tasks that received a placement this pass
    scheduled: int
    #: searches skipped by the failed-shape memo
    memo_hits: int
    #: searches rejected by the capacity index before any node was touched
    index_rejects: int
    #: greedy placement searches actually run
    searches: int
    #: queue depth when the pass ended
    pending_depth: int


@dataclass(frozen=True)
class TickSample:
    """Deterministic gauge sample taken at one quota tick."""

    sim_time: float
    pending_depth: int
    running_tasks: int
    allocation_rate: float


@dataclass
class EventLoopCounters:
    """Per-kind counts of *outstanding* heaped events.

    This is the single source of truth behind the simulator's O(1)
    liveness checks (``done``, tick revival, trailing-dynamics
    abandonment).  It moved here from ad-hoc ``_task_events`` /
    ``_dynamics_events`` / ``_tick_events`` attributes on the simulator;
    those names survive as read-only shim properties, and
    ``ClusterSimulator.__setstate__`` migrates pre-obs pickles that
    still carry the plain ints.
    """

    task_events: int = 0
    dynamics_events: int = 0
    tick_events: int = 0

    def count(self, is_tick: bool, is_dynamics: bool, delta: int) -> None:
        if is_tick:
            self.tick_events += delta
        elif is_dynamics:
            self.dynamics_events += delta
        else:
            self.task_events += delta


class _NullSpan:
    """Context manager that does nothing (span of a disabled recorder)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullRecorder:
    """The disabled recorder: every operation is a no-op.

    Shared as :data:`NULL_RECORDER` and attached to every simulator by
    default, so the hot path's instrumentation gates reduce to a single
    ``.enabled`` attribute read.  All mutating methods exist (same
    surface as :class:`Recorder`) so un-gated call sites still work.
    """

    enabled = False

    def count(self, name: str, value: float = 1.0, labels: Optional[Dict[str, str]] = None) -> None:
        pass

    def gauge(self, name: str, value: float, labels: Optional[Dict[str, str]] = None) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass

    def span(self, name: str) -> _NullSpan:
        return _NULL_SPAN

    def record_dispatch(self, kind_name: str, seconds: float) -> None:
        pass

    def record_pass(self, record: PassRecord, wall_seconds: float) -> None:
        pass

    def sample_tick(self, sample: TickSample) -> None:
        pass

    def snapshot(self) -> Dict[str, object]:
        return {"enabled": False}

    def __reduce__(self):
        # Pickle back to the shared singleton so snapshots of
        # uninstrumented simulators stay tiny and restore to the default.
        return (_null_recorder, ())


def _null_recorder() -> "NullRecorder":
    return NULL_RECORDER


#: The process-wide disabled recorder (default for every simulator).
NULL_RECORDER = NullRecorder()


class _Span:
    """Wall-clock span feeding one histogram of its recorder."""

    __slots__ = ("_recorder", "_name", "_start")

    def __init__(self, recorder: "Recorder", name: str):
        self._recorder = recorder
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_Span":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self._recorder.observe(self._name, time.perf_counter() - self._start)


class Recorder:
    """The live instrumentation sink (see module docstring).

    Example
    -------
    >>> rec = Recorder()
    >>> metrics = run_simulation(cluster, scheduler, tasks, recorder=rec)
    >>> rec.counters[("sim.events", (("kind", "TASK_ARRIVAL"),))]
    1036.0
    >>> with rec.span("my.phase"):
    ...     do_work()

    ``pass_record_limit`` / ``tick_sample_limit`` bound the sim channel
    for long-running service sessions: once a limit is hit, the
    *oldest* records are dropped (deterministically), while counters
    and histograms keep aggregating forever.

    ``sim_listener`` is an optional observer of the sim channel: when
    set, its ``on_pass(record)`` / ``on_tick(sample)`` methods are
    called with each deterministic record as it lands (after ring
    trimming).  This is how the service's event stream taps the sim
    channel without reading any simulator state — the listener receives
    exactly the pushed values, so attaching one cannot perturb a run.
    """

    enabled = True

    def __init__(
        self,
        pass_record_limit: Optional[int] = None,
        tick_sample_limit: Optional[int] = None,
    ):
        #: (name, label pairs) -> running total
        self.counters: Dict[Tuple[str, LabelPairs], float] = {}
        #: (name, label pairs) -> last value
        self.gauges: Dict[Tuple[str, LabelPairs], float] = {}
        #: name -> wall-clock histogram
        self.histograms: Dict[str, Histogram] = {}
        #: sim channel: deterministic scheduling-pass records
        self.pass_records: List[PassRecord] = []
        #: sim channel: deterministic per-tick gauge samples
        self.tick_samples: List[TickSample] = []
        self.pass_record_limit = pass_record_limit
        self.tick_sample_limit = tick_sample_limit
        #: pass records dropped to honour ``pass_record_limit``
        self.dropped_pass_records = 0
        #: tick samples dropped to honour ``tick_sample_limit``
        self.dropped_tick_samples = 0
        #: optional sim-channel observer (``on_pass`` / ``on_tick``)
        self.sim_listener: Optional[object] = None

    # ------------------------------------------------------------------
    # Primitive instruments
    # ------------------------------------------------------------------
    def count(self, name: str, value: float = 1.0, labels: Optional[Dict[str, str]] = None) -> None:
        key = (name, label_pairs(labels))
        self.counters[key] = self.counters.get(key, 0.0) + value

    def gauge(self, name: str, value: float, labels: Optional[Dict[str, str]] = None) -> None:
        self.gauges[(name, label_pairs(labels))] = value

    def observe(self, name: str, value: float) -> None:
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram()
        hist.observe(value)

    def span(self, name: str) -> _Span:
        """Context manager timing a wall-clock phase into a histogram."""
        return _Span(self, name)

    # ------------------------------------------------------------------
    # Simulator hook points
    # ------------------------------------------------------------------
    def record_dispatch(self, kind_name: str, seconds: float) -> None:
        """One event popped and handled by the simulator loop."""
        self.count("sim.events", 1.0, {"kind": kind_name})
        self.observe(f"sim.dispatch_s.{kind_name}", seconds)

    def record_pass(self, record: PassRecord, wall_seconds: float) -> None:
        """One scheduling pass: sim-time record + wall-clock histogram."""
        self.pass_records.append(record)
        if (
            self.pass_record_limit is not None
            and len(self.pass_records) > self.pass_record_limit
        ):
            overflow = len(self.pass_records) - self.pass_record_limit
            del self.pass_records[:overflow]
            self.dropped_pass_records += overflow
        self.count("sim.passes")
        self.count("sim.pass.examined", record.examined)
        self.count("sim.pass.scheduled", record.scheduled)
        self.count("sim.pass.memo_hits", record.memo_hits)
        self.count("sim.pass.index_rejects", record.index_rejects)
        self.count("sim.pass.searches", record.searches)
        self.observe("sim.pass_wall_s", wall_seconds)
        if self.sim_listener is not None:
            self.sim_listener.on_pass(record)

    def sample_tick(self, sample: TickSample) -> None:
        """Gauges sampled at a quota tick (plus the sim-channel record)."""
        self.tick_samples.append(sample)
        if (
            self.tick_sample_limit is not None
            and len(self.tick_samples) > self.tick_sample_limit
        ):
            overflow = len(self.tick_samples) - self.tick_sample_limit
            del self.tick_samples[:overflow]
            self.dropped_tick_samples += overflow
        self.gauge("sim.pending_depth", sample.pending_depth)
        self.gauge("sim.running_tasks", sample.running_tasks)
        self.gauge("sim.allocation_rate", sample.allocation_rate)
        if self.sim_listener is not None:
            self.sim_listener.on_tick(sample)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def counter_value(self, name: str, labels: Optional[Dict[str, str]] = None) -> float:
        return self.counters.get((name, label_pairs(labels)), 0.0)

    def snapshot(self) -> Dict[str, object]:
        """JSON-able view of every instrument (live-stats endpoints)."""

        def render_key(key: Tuple[str, LabelPairs]) -> str:
            name, pairs = key
            if not pairs:
                return name
            inner = ",".join(f"{k}={v}" for k, v in pairs)
            return f"{name}{{{inner}}}"

        return {
            "enabled": True,
            "counters": {render_key(k): v for k, v in sorted(self.counters.items())},
            "gauges": {render_key(k): v for k, v in sorted(self.gauges.items())},
            "histograms": {
                name: hist.as_dict() for name, hist in sorted(self.histograms.items())
            },
            "pass_records": len(self.pass_records),
            "dropped_pass_records": self.dropped_pass_records,
            "tick_samples": len(self.tick_samples),
            "dropped_tick_samples": self.dropped_tick_samples,
        }
