"""Wall-clock self-profiler: where does a simulation spend its time?

Runs an instrumented simulation and reports the per-phase cost breakdown
ROADMAP item 1 ("profile a 512-node / 1M-task replay and attack the top
costs") needs: event dispatch by kind, placement search (scheduling
passes), and metric accrual, plus headline rates (events/s, tasks/s).

The default target is the BENCH_4 placement tier (512 nodes, 56 h,
Chronus, seed 11 — ``benchmarks/test_bench_scaling.py``'s
``PLACEMENT_CONFIGS``); ``tier="smoke"`` is the 256-node CI-sized run.
Use ``python -m repro.experiments.cli profile`` or ``make profile``.

The phase accounting comes entirely from the recorder's wall-clock
histograms; the deterministic sim channel is untouched, so profiling a
run never changes its metrics (``--check-overhead`` re-runs with the
:class:`~repro.obs.recorder.NullRecorder` and verifies bit-identical
``SimulationMetrics`` while measuring the instrumentation overhead
ratio — the number ``make bench-record`` stamps into ``BENCH_7.json``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .recorder import Recorder

#: The BENCH_4 placement tiers (mirrors benchmarks/test_bench_scaling.py
#: PLACEMENT_CONFIGS — Chronus re-offers the whole FCFS queue each pass,
#: making placement search the hot path).
PROFILE_TIERS: Dict[str, Dict[str, float]] = {
    "smoke": dict(num_nodes=256, duration_hours=24.0, spot_scale=2.0, seed=11),
    "full": dict(num_nodes=512, duration_hours=56.0, spot_scale=2.0, seed=11),
}


@dataclass
class PhaseCost:
    """One row of the breakdown: a named phase and its share of the run."""

    name: str
    seconds: float
    count: int
    share: float  # of total measured wall time, 0..1


@dataclass
class ProfileReport:
    """Everything ``cli profile`` prints, in structured form."""

    label: str
    wall_time_s: float
    num_tasks: int
    events: int
    passes: int
    phases: List[PhaseCost] = field(default_factory=list)
    #: NullRecorder wall time and on/off ratio (--check-overhead only)
    baseline_wall_time_s: Optional[float] = None
    metrics_identical: Optional[bool] = None

    @property
    def overhead_ratio(self) -> Optional[float]:
        """Instrumented / uninstrumented wall time (1.0 = free)."""
        if not self.baseline_wall_time_s:
            return None
        return self.wall_time_s / self.baseline_wall_time_s

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready report; ``phase_breakdown`` rows match BENCH_7.json."""
        out: Dict[str, object] = {
            "label": self.label,
            "wall_time_s": round(self.wall_time_s, 6),
            "num_tasks": self.num_tasks,
            "events": self.events,
            "passes": self.passes,
            "phase_breakdown": [
                {
                    "phase": phase.name.strip(),
                    "seconds": round(phase.seconds, 6),
                    "share": round(phase.share, 4),
                    "calls": phase.count,
                }
                for phase in self.phases
            ],
        }
        if self.baseline_wall_time_s is not None:
            out["uninstrumented_wall_time_s"] = round(self.baseline_wall_time_s, 6)
            out["overhead_ratio"] = round(self.overhead_ratio, 4)
            out["metrics_identical"] = self.metrics_identical
        return out

    def format(self) -> str:
        lines = [
            f"Self-profile: {self.label}",
            f"  wall time        {self.wall_time_s:8.2f} s",
            f"  tasks            {self.num_tasks:8d}  ({self.num_tasks / self.wall_time_s:,.0f}/s)"
            if self.wall_time_s > 0 else f"  tasks            {self.num_tasks:8d}",
            f"  events           {self.events:8d}  ({self.events / self.wall_time_s:,.0f}/s)"
            if self.wall_time_s > 0 else f"  events           {self.events:8d}",
            f"  scheduling passes{self.passes:8d}",
            "",
            f"  {'phase':32s} {'total s':>9s} {'share':>7s} {'calls':>9s} {'mean µs':>9s}",
        ]
        for phase in self.phases:
            mean_us = phase.seconds / phase.count * 1e6 if phase.count else 0.0
            lines.append(
                f"  {phase.name:32s} {phase.seconds:9.3f} {phase.share:6.1%} "
                f"{phase.count:9d} {mean_us:9.1f}"
            )
        if self.baseline_wall_time_s is not None:
            lines.append("")
            lines.append(
                f"  uninstrumented   {self.baseline_wall_time_s:8.2f} s  "
                f"(overhead ratio {self.overhead_ratio:.3f}x, "
                f"metrics identical: {self.metrics_identical})"
            )
        return "\n".join(lines)


def phase_breakdown(recorder: Recorder, wall_time_s: float) -> List[PhaseCost]:
    """Fold the recorder's wall histograms into the per-phase cost rows.

    Scheduling passes and metric accrual happen *inside* event handlers,
    so their time is subtracted from the per-kind dispatch totals to
    leave ``event dispatch (other)`` — bookkeeping, heap churn and
    handler logic that is neither placement search nor metric work.
    """
    phases: List[PhaseCost] = []
    dispatch_total = 0.0
    dispatch_count = 0
    for name, hist in sorted(recorder.histograms.items()):
        if name.startswith("sim.dispatch_s."):
            dispatch_total += hist.total
            dispatch_count += hist.count
    pass_hist = recorder.histograms.get("sim.pass_wall_s")
    accrual_hist = recorder.histograms.get("sim.metric_accrual_s")
    pass_total = pass_hist.total if pass_hist else 0.0
    accrual_total = accrual_hist.total if accrual_hist else 0.0

    def add(name: str, seconds: float, count: int) -> None:
        share = seconds / wall_time_s if wall_time_s > 0 else 0.0
        phases.append(PhaseCost(name=name, seconds=seconds, count=count, share=share))

    add("placement search (passes)", pass_total, pass_hist.count if pass_hist else 0)
    add("metric accrual", accrual_total, accrual_hist.count if accrual_hist else 0)
    add(
        "event dispatch (other)",
        max(0.0, dispatch_total - pass_total - accrual_total),
        dispatch_count,
    )
    for name, hist in sorted(recorder.histograms.items()):
        if name.startswith("sim.dispatch_s."):
            kind = name[len("sim.dispatch_s."):]
            add(f"  dispatch {kind}", hist.total, hist.count)
    add("outside dispatch (setup/teardown)", max(0.0, wall_time_s - dispatch_total), 1)
    return phases


def _build_run(tier_cfg: Dict[str, float], scheduler_kind: str):
    """Cluster, scheduler and task list for one profile tier."""
    from ..cluster import Cluster, reset_task_counter
    from ..cluster.gpu import GPUModel
    from ..schedulers import create_scheduler
    from ..workloads import generate_trace

    reset_task_counter()
    cluster = Cluster.homogeneous(int(tier_cfg["num_nodes"]), 8, GPUModel.A100)
    trace = generate_trace(
        cluster_gpus=cluster.total_gpus(),
        duration_hours=tier_cfg["duration_hours"],
        spot_scale=tier_cfg["spot_scale"],
        seed=int(tier_cfg["seed"]),
    )
    kwargs = {}
    if scheduler_kind.lower().startswith("gfs"):
        kwargs["org_history"] = trace.org_history
    scheduler = create_scheduler(scheduler_kind, **kwargs)
    return cluster, scheduler, trace.sorted_tasks()


def _timed_run(tier_cfg: Dict[str, float], scheduler_kind: str, recorder) -> Tuple[object, float, int, object]:
    """One full simulation; returns (metrics, wall s, task count, sim)."""
    from ..cluster import ClusterSimulator

    cluster, scheduler, tasks = _build_run(tier_cfg, scheduler_kind)
    sim = ClusterSimulator(cluster, scheduler, recorder=recorder)
    start = time.perf_counter()
    sim.submit_all(tasks)
    metrics = sim.run()
    elapsed = time.perf_counter() - start
    return metrics, elapsed, len(tasks), sim


def run_profile(
    tier: str = "full",
    scheduler: str = "chronus",
    check_overhead: bool = False,
    overrides: Optional[Dict[str, float]] = None,
    recorder: Optional[Recorder] = None,
) -> Tuple[ProfileReport, Recorder, object]:
    """Profile one tier; returns (report, recorder, simulator).

    ``overrides`` patches tier parameters (``num_nodes`` etc.) for ad-hoc
    sizings; ``check_overhead`` also runs the NullRecorder baseline and
    asserts metric parity while measuring the overhead ratio.
    """
    if tier not in PROFILE_TIERS:
        raise KeyError(f"unknown profile tier {tier!r}; expected one of {sorted(PROFILE_TIERS)}")
    cfg = dict(PROFILE_TIERS[tier])
    if overrides:
        cfg.update({k: v for k, v in overrides.items() if v is not None})
    rec = recorder if recorder is not None else Recorder()
    metrics, elapsed, num_tasks, sim = _timed_run(cfg, scheduler, rec)
    report = ProfileReport(
        label=(
            f"tier={tier} scheduler={scheduler} nodes={int(cfg['num_nodes'])} "
            f"hours={cfg['duration_hours']:g} seed={int(cfg['seed'])}"
        ),
        wall_time_s=elapsed,
        num_tasks=num_tasks,
        events=int(sum(v for (name, _), v in rec.counters.items() if name == "sim.events")),
        passes=int(rec.counter_value("sim.passes")),
        phases=phase_breakdown(rec, elapsed),
    )
    if check_overhead:
        base_metrics, base_elapsed, _, _ = _timed_run(cfg, scheduler, None)
        report.baseline_wall_time_s = base_elapsed
        report.metrics_identical = metrics == base_metrics or _metrics_equal(metrics, base_metrics)
    return report, rec, sim


def _metrics_equal(a, b) -> bool:
    """NaN-aware structural equality of two SimulationMetrics."""
    import dataclasses
    import math

    if dataclasses.is_dataclass(a) and dataclasses.is_dataclass(b):
        return type(a) is type(b) and all(
            _metrics_equal(getattr(a, f.name), getattr(b, f.name))
            for f in dataclasses.fields(a)
        )
    if isinstance(a, float) and isinstance(b, float) and math.isnan(a) and math.isnan(b):
        return True
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        return len(a) == len(b) and all(_metrics_equal(x, y) for x, y in zip(a, b))
    return a == b
