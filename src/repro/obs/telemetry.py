"""Sweep-plane telemetry: a structured event bus with pluggable sinks.

PR 8 made 10k-cell sweeps crash-safe, but they still run *dark*: the
engine prints nothing until the pool drains.  :class:`TelemetryBus` is
the narrow waist that fixes that — the experiment engine and the
resilient executor emit small structured events (job start/done/fail/
retry, cache and journal hits, pool rebuilds, progress with an ETA from
the completed-cell rate) and any number of sinks consume them:

* :class:`JsonlSink` — one compact JSON object per line, flushed per
  event, for machines (CI validates these against the schema below);
* :class:`TTYProgressSink` — a live single-line ANSI progress bar on a
  terminal, plain throttled progress lines on a pipe;
* :class:`PrometheusSink` — aggregates events into a
  :class:`~repro.obs.recorder.Recorder` and renders the standard
  exposition page, optionally served by :class:`MetricsServer`
  (``cli sweep --metrics-port``).

Design rules, inherited from the recorder (see ``docs/observability.md``):

* the bus only ever receives *pushed* values — no sink may reach into
  the engine or a simulator;
* emitting never raises into the engine: a faulty sink is disabled
  after its first exception and the sweep continues;
* every event carries ``seq`` (monotonic per bus), ``ts`` (epoch
  seconds), ``run_id`` and ``event``; per-type required fields are in
  :data:`TELEMETRY_EVENT_FIELDS` and checked by
  :func:`validate_telemetry_record`.

``python -m repro.obs.telemetry validate <file.jsonl>`` validates a
telemetry capture (used by ``make stream-smoke``).
"""

from __future__ import annotations

import json
import sys
import threading
import time
from typing import Dict, IO, List, Mapping, Optional, Tuple

from .recorder import Recorder

__all__ = [
    "JsonlSink",
    "MetricsServer",
    "NULL_TELEMETRY",
    "NullTelemetryBus",
    "PrometheusSink",
    "TELEMETRY_EVENT_FIELDS",
    "TTYProgressSink",
    "TelemetryBus",
    "validate_telemetry_line",
    "validate_telemetry_record",
]

#: required per-type payload fields (beyond the envelope's
#: ``seq``/``ts``/``run_id``/``event``) — the documented schema.
TELEMETRY_EVENT_FIELDS: Dict[str, Tuple[str, ...]] = {
    "sweep_start": ("cells", "workers"),
    "job_start": ("job", "attempt"),
    "job_done": ("job", "wall_s"),
    "job_fail": ("job", "kind", "attempts"),
    "job_retry": ("job", "attempt", "delay_s"),
    "job_timeout": ("job", "attempt", "timeout_s"),
    "cache_hit": ("job",),
    "journal_hit": ("job",),
    "pool_rebuild": ("rebuilds",),
    "progress": ("done", "total", "failed", "rate_per_s", "eta_s"),
    "sweep_end": ("done", "total", "failed", "executed", "cache_hits", "journal_hits", "wall_s"),
}

_ENVELOPE_FIELDS = ("seq", "ts", "run_id", "event")


def validate_telemetry_record(record: Mapping[str, object]) -> None:
    """Raise ``ValueError`` unless ``record`` matches the schema."""
    for field in _ENVELOPE_FIELDS:
        if field not in record:
            raise ValueError(f"telemetry record missing envelope field {field!r}: {record}")
    event = record["event"]
    if event not in TELEMETRY_EVENT_FIELDS:
        raise ValueError(f"unknown telemetry event type {event!r}")
    for field in TELEMETRY_EVENT_FIELDS[event]:
        if field not in record:
            raise ValueError(f"telemetry event {event!r} missing field {field!r}: {record}")


def validate_telemetry_line(line: str) -> Dict[str, object]:
    """Parse + validate one JSONL telemetry line; returns the record."""
    record = json.loads(line)
    if not isinstance(record, dict):
        raise ValueError(f"telemetry line is not an object: {line!r}")
    validate_telemetry_record(record)
    return record


# ----------------------------------------------------------------------
# Bus
# ----------------------------------------------------------------------
class TelemetryBus:
    """Fans structured events out to sinks; never raises into the caller."""

    def __init__(self, run_id: str = "", sinks: Optional[List[object]] = None):
        if not run_id:
            from .logging import new_run_id

            run_id = new_run_id("sweep")
        self.run_id = run_id
        self.sinks: List[object] = list(sinks or [])
        self.seq = 0
        self.emitted = 0
        self.sink_errors = 0
        self._lock = threading.Lock()

    @property
    def enabled(self) -> bool:
        return True

    def add_sink(self, sink: object) -> None:
        self.sinks.append(sink)

    def emit(self, event: str, **fields: object) -> None:
        with self._lock:
            self.seq += 1
            record: Dict[str, object] = {
                "seq": self.seq,
                "ts": round(time.time(), 6),
                "run_id": self.run_id,
                "event": event,
            }
            record.update(fields)
            self.emitted += 1
            dead: List[object] = []
            for sink in self.sinks:
                try:
                    sink.handle(record)
                except Exception:  # noqa: BLE001 - a sink must never kill the sweep
                    self.sink_errors += 1
                    dead.append(sink)
            for sink in dead:
                self.sinks.remove(sink)

    def close(self) -> None:
        with self._lock:
            for sink in self.sinks:
                try:
                    sink.close()
                except Exception:  # noqa: BLE001
                    self.sink_errors += 1


class NullTelemetryBus:
    """Disabled bus: every operation is a no-op (mirrors ``NullRecorder``)."""

    run_id = ""
    seq = 0
    emitted = 0
    sink_errors = 0

    @property
    def enabled(self) -> bool:
        return False

    def add_sink(self, sink: object) -> None:  # pragma: no cover - trivial
        pass

    def emit(self, event: str, **fields: object) -> None:
        pass

    def close(self) -> None:
        pass


#: shared disabled bus — the default for engine/executor telemetry params
NULL_TELEMETRY = NullTelemetryBus()


# ----------------------------------------------------------------------
# Sinks
# ----------------------------------------------------------------------
class JsonlSink:
    """One compact JSON object per line, flushed per event."""

    def __init__(self, target):
        """``target`` is a path (opened for append) or a writable file."""
        if hasattr(target, "write"):
            self._fh: IO[str] = target
            self._owned = False
        else:
            self._fh = open(target, "a", encoding="utf-8")
            self._owned = True

    def handle(self, record: Mapping[str, object]) -> None:
        self._fh.write(json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n")
        self._fh.flush()

    def close(self) -> None:
        if self._owned:
            self._fh.close()


class TTYProgressSink:
    """Live sweep progress: ANSI single-line bar on a TTY, plain lines on a pipe.

    Renders from ``progress`` events (rewritten in place at most
    ``min_interval_s`` apart on a TTY) and surfaces notable events —
    failures, retries, timeouts, pool rebuilds — as their own lines so
    they are not lost under the bar.
    """

    def __init__(self, stream: Optional[IO[str]] = None, min_interval_s: float = 0.1):
        self._fh = stream if stream is not None else sys.stderr
        self._tty = bool(getattr(self._fh, "isatty", lambda: False)())
        self._min_interval_s = min_interval_s if self._tty else max(min_interval_s, 2.0)
        self._last_render = 0.0
        self._line_open = False

    # -- rendering helpers ------------------------------------------------
    def _write_line(self, text: str) -> None:
        if self._line_open:
            self._fh.write("\x1b[2K\r")
            self._line_open = False
        self._fh.write(text + "\n")
        self._fh.flush()

    def _render_bar(self, record: Mapping[str, object], final: bool = False) -> None:
        now = time.monotonic()
        if not final and (now - self._last_render) < self._min_interval_s:
            return
        self._last_render = now
        done = int(record.get("done", 0))
        total = max(1, int(record.get("total", 1)))
        failed = int(record.get("failed", 0))
        eta = record.get("eta_s")
        rate = record.get("rate_per_s")
        width = 24
        filled = int(width * done / total)
        bar = "#" * filled + "-" * (width - filled)
        text = f"[{bar}] {done}/{total} cells"
        if failed:
            text += f" failed={failed}"
        if isinstance(rate, (int, float)) and rate > 0:
            text += f" {rate:.2f}/s"
        if isinstance(eta, (int, float)) and not final:
            text += f" eta={eta:.0f}s"
        if self._tty:
            self._fh.write("\x1b[2K\r" + text)
            self._line_open = True
            if final:
                self._fh.write("\n")
                self._line_open = False
            self._fh.flush()
        else:
            self._fh.write(text + "\n")
            self._fh.flush()

    # -- sink protocol ----------------------------------------------------
    def handle(self, record: Mapping[str, object]) -> None:
        event = record.get("event")
        if event == "sweep_start":
            self._write_line(
                f"sweep: {record.get('cells')} cells on {record.get('workers')} worker(s)"
                f" [{record.get('run_id')}]"
            )
        elif event == "progress":
            self._render_bar(record)
        elif event == "job_fail":
            self._write_line(
                f"FAIL {record.get('job')} ({record.get('kind')},"
                f" {record.get('attempts')} attempts)"
            )
        elif event == "job_retry":
            self._write_line(
                f"retry {record.get('job')} attempt={record.get('attempt')}"
                f" backoff={record.get('delay_s')}s"
            )
        elif event == "job_timeout":
            self._write_line(
                f"timeout {record.get('job')} after {record.get('timeout_s')}s"
            )
        elif event == "pool_rebuild":
            self._write_line(f"pool rebuilt (x{record.get('rebuilds')})")
        elif event == "sweep_end":
            self._render_bar(record, final=True)
            self._write_line(
                "sweep done: "
                f"{record.get('done')}/{record.get('total')} cells"
                f" executed={record.get('executed')}"
                f" cache={record.get('cache_hits')}"
                f" journal={record.get('journal_hits')}"
                f" failed={record.get('failed')}"
                f" in {record.get('wall_s')}s"
            )

    def close(self) -> None:
        if self._line_open:
            self._fh.write("\n")
            self._fh.flush()
            self._line_open = False


class PrometheusSink:
    """Aggregates sweep telemetry into a Recorder, rendered on demand.

    The exposition page (``repro_sweep_*`` series) is what
    :class:`MetricsServer` serves behind ``cli sweep --metrics-port``.
    Thread-safe: the HTTP server thread renders while the engine emits.
    """

    _COUNTERS = {
        "job_done": "sweep_jobs_done_total",
        "job_fail": "sweep_jobs_failed_total",
        "job_retry": "sweep_retries_total",
        "job_timeout": "sweep_timeouts_total",
        "cache_hit": "sweep_cache_hits_total",
        "journal_hit": "sweep_journal_hits_total",
        "pool_rebuild": "sweep_pool_rebuilds_total",
    }

    def __init__(self):
        self.recorder = Recorder()
        self._lock = threading.Lock()

    def handle(self, record: Mapping[str, object]) -> None:
        event = str(record.get("event"))
        with self._lock:
            counter = self._COUNTERS.get(event)
            if counter is not None:
                self.recorder.count(counter)
            if event == "sweep_start":
                self.recorder.gauge("sweep_cells_total", float(record.get("cells", 0)))
                self.recorder.gauge("sweep_cells_done", 0.0)
            elif event == "progress":
                self.recorder.gauge("sweep_cells_done", float(record.get("done", 0)))
                self.recorder.gauge("sweep_cells_failed", float(record.get("failed", 0)))
                eta = record.get("eta_s")
                if isinstance(eta, (int, float)):
                    self.recorder.gauge("sweep_eta_seconds", float(eta))
                rate = record.get("rate_per_s")
                if isinstance(rate, (int, float)):
                    self.recorder.gauge("sweep_rate_cells_per_second", float(rate))
            elif event == "sweep_end":
                self.recorder.gauge("sweep_cells_done", float(record.get("done", 0)))
                self.recorder.gauge("sweep_cells_failed", float(record.get("failed", 0)))
                self.recorder.gauge("sweep_eta_seconds", 0.0)

    def render(self) -> str:
        from .prometheus import render_recorder

        with self._lock:
            return render_recorder(self.recorder)

    def close(self) -> None:
        pass


class MetricsServer:
    """A daemon-thread stdlib HTTP server exposing a PrometheusSink.

    Serves ``GET /metrics`` (and ``/``) with the standard exposition
    content type.  ``port=0`` binds an ephemeral port; the bound port is
    available as :attr:`port` after :meth:`start`.
    """

    def __init__(self, sink: PrometheusSink, port: int = 0, host: str = "127.0.0.1"):
        self.sink = sink
        self.host = host
        self.port = port
        self._httpd = None
        self._thread: Optional[threading.Thread] = None

    def start(self) -> "MetricsServer":
        from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

        from .prometheus import PROMETHEUS_CONTENT_TYPE

        sink = self.sink

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self):  # noqa: N802 - stdlib naming
                if self.path not in ("/", "/metrics"):
                    self.send_error(404)
                    return
                body = sink.render().encode("utf-8")
                self.send_response(200)
                self.send_header("Content-Type", PROMETHEUS_CONTENT_TYPE)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, fmt, *args):  # silence per-request stderr noise
                pass

        self._httpd = ThreadingHTTPServer((self.host, self.port), Handler)
        self.port = self._httpd.server_address[1]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-metrics", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None


# ----------------------------------------------------------------------
# CLI: validate a telemetry capture (used by `make stream-smoke`)
# ----------------------------------------------------------------------
def _validate_main(argv: List[str]) -> int:
    if len(argv) != 1:
        print("usage: python -m repro.obs.telemetry validate <file.jsonl>", file=sys.stderr)
        return 2
    path = argv[0]
    count = 0
    events: Dict[str, int] = {}
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                record = validate_telemetry_line(line)
            except ValueError as exc:
                print(f"{path}:{lineno}: {exc}", file=sys.stderr)
                return 1
            count += 1
            events[str(record["event"])] = events.get(str(record["event"]), 0) + 1
    summary = " ".join(f"{k}={v}" for k, v in sorted(events.items()))
    print(f"{path}: {count} valid telemetry records ({summary})")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "validate":
        return _validate_main(argv[1:])
    print("usage: python -m repro.obs.telemetry validate <file.jsonl>", file=sys.stderr)
    return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
