"""Structured JSON-lines logging with run/session/job correlation ids.

Every long-running plane of the system — the experiment engine, the
resilient executor, the scheduler service — emits operational events
(retries, quarantines, timeouts, 504s) that previously went to ad-hoc
``%``-formatted log lines.  This module gives them one discipline:

* each log line is **one JSON object** with a stable vocabulary —
  ``ts`` (epoch seconds), ``level``, ``event`` (a short machine name
  like ``http_request`` or ``job_retry``), plus event-specific fields;
* correlation ids (``run_id``, ``session_id``, ``job_id``) are **bound
  once** with :meth:`StructuredLogger.bind` and stamped onto every
  subsequent line, so one ``grep '"run_id": "r-..."'`` reconstructs a
  sweep and one ``grep session-0007`` reconstructs a session's life;
* transport stays stdlib :mod:`logging` — handlers, levels, ``caplog``
  and host-application configuration all keep working, and a logger
  with no handler stays silent below WARNING exactly as before.

The emitted *message* is the JSON document itself, so pairing the
logger with a bare ``%(message)s`` formatter (what
:func:`configure_json_logging` installs) yields clean JSONL on stderr
or into a file.

Usage::

    from repro.obs.logging import get_logger, new_run_id

    log = get_logger("repro.experiments").bind(run_id=new_run_id())
    log.info("sweep_start", cells=120, workers=8)
    log.warning("job_retry", job_id="sweep/burst/GFS", attempt=2)
"""

from __future__ import annotations

import json
import logging
import math
import time
import uuid
from typing import Dict, IO, Mapping, Optional

__all__ = [
    "StructuredLogger",
    "configure_json_logging",
    "get_logger",
    "json_log_line",
    "new_run_id",
    "parse_log_line",
]


def new_run_id(prefix: str = "r") -> str:
    """A fresh correlation id binding every line of one run/sweep/serve."""
    return f"{prefix}-{uuid.uuid4().hex[:12]}"


def _jsonable(value: object) -> object:
    """Coerce a field value into something ``json.dumps`` accepts."""
    if value is None or isinstance(value, (str, int, bool)):
        return value
    if isinstance(value, float):
        # NaN/Inf are not JSON; stringify so a line never fails to parse.
        return value if math.isfinite(value) else repr(value)
    if isinstance(value, Mapping):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_jsonable(v) for v in value]
    return str(value)


def json_log_line(level: str, event: str, fields: Mapping[str, object]) -> str:
    """Render one structured log line (compact, key-sorted JSON)."""
    payload: Dict[str, object] = {
        "ts": round(time.time(), 6),
        "level": level.lower(),
        "event": event,
    }
    for key, value in fields.items():
        payload[str(key)] = _jsonable(value)
    return json.dumps(payload, sort_keys=False, separators=(",", ":"))


def parse_log_line(line: str) -> Dict[str, object]:
    """Parse one structured line back into a dict (tests, CI validators)."""
    record = json.loads(line)
    if not isinstance(record, dict) or "event" not in record:
        raise ValueError(f"not a structured log line: {line!r}")
    return record


class StructuredLogger:
    """A stdlib-logger wrapper emitting JSON-lines with bound fields.

    Instances are cheap and immutable: :meth:`bind` returns a new logger
    carrying extra correlation fields; the underlying
    :class:`logging.Logger` (and therefore handlers and levels) is
    shared.  Level methods mirror stdlib naming.
    """

    __slots__ = ("_logger", "_fields")

    def __init__(self, logger: logging.Logger, fields: Optional[Mapping[str, object]] = None):
        self._logger = logger
        self._fields: Dict[str, object] = dict(fields or {})

    @property
    def bound_fields(self) -> Dict[str, object]:
        return dict(self._fields)

    def bind(self, **fields: object) -> "StructuredLogger":
        """A child logger with ``fields`` stamped onto every line."""
        merged = dict(self._fields)
        merged.update(fields)
        return StructuredLogger(self._logger, merged)

    # ------------------------------------------------------------------
    def log(self, level: int, event: str, **fields: object) -> None:
        if not self._logger.isEnabledFor(level):
            return  # skip JSON rendering entirely when nobody listens
        merged = dict(self._fields)
        merged.update(fields)
        self._logger.log(
            level, json_log_line(logging.getLevelName(level), event, merged)
        )

    def debug(self, event: str, **fields: object) -> None:
        self.log(logging.DEBUG, event, **fields)

    def info(self, event: str, **fields: object) -> None:
        self.log(logging.INFO, event, **fields)

    def warning(self, event: str, **fields: object) -> None:
        self.log(logging.WARNING, event, **fields)

    def error(self, event: str, **fields: object) -> None:
        self.log(logging.ERROR, event, **fields)


def get_logger(name: str, **fields: object) -> StructuredLogger:
    """The structured logger for ``name``, with optional bound fields."""
    return StructuredLogger(logging.getLogger(name), fields)


def configure_json_logging(
    level_name: Optional[str],
    logger_name: str = "repro",
    stream: Optional[IO[str]] = None,
) -> Optional[logging.Handler]:
    """Wire ``logger_name`` (and children) to emit raw JSONL at a level.

    ``None`` configures nothing — logging stays at the host
    application's discretion.  Returns the installed handler so callers
    (tests) can remove it again.  The formatter is a bare
    ``%(message)s`` because the message *is* the JSON document.
    """
    if not level_name:
        return None
    level = getattr(logging, level_name.upper())
    handler = logging.StreamHandler(stream)
    handler.setFormatter(logging.Formatter("%(message)s"))
    logger = logging.getLogger(logger_name)
    logger.setLevel(level)
    logger.addHandler(handler)
    return handler
