"""Observability commands: ``profile`` and ``trace-viz``.

Routed from the main experiments CLI so both spellings work::

    python -m repro.experiments.cli profile --tier smoke --check-overhead
    python -m repro.experiments.cli trace-viz --scenario node_churn \\
        --scheduler gfs --trace-out trace.json

``profile`` runs the self-profiler on a BENCH_4 placement tier and
prints the per-phase wall-clock breakdown (see
:mod:`repro.obs.profiler`); ``trace-viz`` replays a scenario with a live
recorder and writes a Chrome-trace/Perfetto JSON of every task lifecycle
and scheduling pass (see :mod:`repro.obs.trace_export`).  Load the
output at ``chrome://tracing`` or https://ui.perfetto.dev.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .profiler import PROFILE_TIERS, run_profile
from .recorder import Recorder
from .trace_export import write_chrome_trace


def _profile_main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="cli profile",
        description="Self-profile a simulation run: per-phase wall-clock breakdown.",
    )
    parser.add_argument(
        "--tier",
        default="full",
        choices=sorted(PROFILE_TIERS),
        help="BENCH_4 placement tier: full = 512 nodes / 56 h, smoke = 256 nodes / 24 h",
    )
    parser.add_argument("--scheduler", default="chronus", help="scheduler kind to profile")
    parser.add_argument("--nodes", type=int, default=None, help="override the tier's node count")
    parser.add_argument("--hours", type=float, default=None, help="override the tier's duration")
    parser.add_argument("--seed", type=int, default=None, help="override the tier's trace seed")
    parser.add_argument(
        "--spot-scale", type=float, default=None, help="override the tier's spot multiplier"
    )
    parser.add_argument(
        "--check-overhead",
        action="store_true",
        help="also run the NullRecorder baseline: overhead ratio + metric parity",
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        help="additionally export the profiled run as Chrome-trace JSON to this path",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the report as JSON on stdout (phase_breakdown rows in "
        "the BENCH_7.json shape) instead of the text table",
    )
    args = parser.parse_args(argv)
    report, recorder, sim = run_profile(
        tier=args.tier,
        scheduler=args.scheduler,
        check_overhead=args.check_overhead,
        overrides={
            "num_nodes": args.nodes,
            "duration_hours": args.hours,
            "seed": args.seed,
            "spot_scale": args.spot_scale,
        },
    )
    if args.json:
        print(json.dumps(report.as_dict(), indent=2, sort_keys=True))
    else:
        print(report.format())
    if args.check_overhead and report.metrics_identical is False:
        print("ERROR: instrumented metrics diverged from the uninstrumented run", file=sys.stderr)
        return 1
    if args.trace_out:
        out = write_chrome_trace(
            args.trace_out,
            tasks=sim.all_tasks,
            recorder=recorder,
            final_time=sim.now,
            metadata={"command": "profile", "label": report.label},
        )
        print(f"[trace written to {out}]")
    return 0


def _trace_viz_main(argv: List[str]) -> int:
    from ..cluster import ClusterSimulator, reset_task_counter
    from ..dynamics import FaultInjector, dynamics_names, get_dynamics
    from ..schedulers import create_scheduler
    from ..workloads import get_scenario

    parser = argparse.ArgumentParser(
        prog="cli trace-viz",
        description="Replay a scenario and export a Chrome-trace/Perfetto JSON "
        "of task lifecycles and scheduling passes.",
    )
    parser.add_argument("--scenario", default="default", help="workload scenario name")
    parser.add_argument("--scheduler", default="gfs", help="scheduler kind")
    parser.add_argument("--nodes", type=int, default=32, help="cluster node count")
    parser.add_argument("--hours", type=float, default=8.0, help="trace duration (hours)")
    parser.add_argument("--seed", type=int, default=0, help="trace + dynamics seed")
    parser.add_argument("--spot-scale", type=float, default=2.0, help="spot submission multiplier")
    parser.add_argument(
        "--dynamics",
        default=None,
        choices=dynamics_names(),
        help="attach a dynamics preset (overrides the scenario's own)",
    )
    parser.add_argument(
        "--trace-out", "--out", dest="trace_out", default="trace.json",
        help="output path for the Chrome-trace JSON (default: trace.json)",
    )
    args = parser.parse_args(argv)

    scenario = get_scenario(args.scenario)
    reset_task_counter()
    cluster = scenario.build_cluster(args.nodes)
    trace = scenario.build_trace(
        cluster_gpus=cluster.total_gpus(),
        duration_hours=args.hours,
        spot_scale=args.spot_scale,
        seed=args.seed,
    )
    kwargs = {}
    if args.scheduler.lower().startswith("gfs"):
        kwargs["org_history"] = trace.org_history
    scheduler = create_scheduler(args.scheduler, **kwargs)
    spec = get_dynamics(args.dynamics) if args.dynamics else scenario.dynamics
    dynamics = FaultInjector(spec, seed=args.seed) if spec is not None else None

    recorder = Recorder()
    sim = ClusterSimulator(cluster, scheduler, dynamics=dynamics, recorder=recorder)
    sim.submit_all(trace.sorted_tasks())
    metrics = sim.run()

    out = write_chrome_trace(
        args.trace_out,
        tasks=sim.all_tasks,
        recorder=recorder,
        final_time=sim.now,
        metadata={
            "command": "trace-viz",
            "scenario": scenario.name,
            "scheduler": args.scheduler,
            "nodes": args.nodes,
            "hours": args.hours,
            "seed": args.seed,
            "spot_scale": args.spot_scale,
            "dynamics": spec.name if spec is not None else "",
        },
    )
    print(
        f"[trace-viz] scenario={scenario.name} scheduler={args.scheduler} "
        f"tasks={len(trace.tasks)} passes={len(recorder.pass_records)} "
        f"unfinished={metrics.unfinished_tasks}"
    )
    print(f"[trace written to {out} — load at chrome://tracing or ui.perfetto.dev]")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if not argv:
        print("usage: cli {profile,trace-viz} [options]", file=sys.stderr)
        return 2
    command, rest = argv[0], argv[1:]
    if command == "profile":
        return _profile_main(rest)
    if command == "trace-viz":
        return _trace_viz_main(rest)
    print(f"unknown obs command {command!r}; expected profile or trace-viz", file=sys.stderr)
    return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
