"""Prometheus text-format (exposition format 0.0.4) rendering.

Turns a :class:`~repro.obs.recorder.Recorder` into the plain-text page a
Prometheus scraper expects, stdlib only.  Metric names are sanitised
(``sim.pass_wall_s`` -> ``repro_sim_pass_wall_s``), label values are
escaped, histograms render as the conventional ``_bucket``/``_sum``/
``_count`` triplet with cumulative ``le`` buckets.

Used by ``GET /metrics`` on the scheduler service
(:mod:`repro.service.server`), which concatenates one server-level
section with one section per live session (labelled ``session="..."``).
"""

from __future__ import annotations

import math
import re
from typing import Dict, Iterable, Optional, Tuple

from .recorder import Histogram, LabelPairs, Recorder

#: Content type a /metrics response must declare.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")


def metric_name(name: str, prefix: str = "repro") -> str:
    """Sanitise a recorder metric name into a Prometheus metric name."""
    flat = _NAME_RE.sub("_", name)
    flat = re.sub(r"_+", "_", flat).strip("_")
    return f"{prefix}_{flat}" if prefix else flat


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _render_labels(pairs: Iterable[Tuple[str, str]]) -> str:
    items = [f'{k}="{_escape_label(str(v))}"' for k, v in pairs]
    return "{" + ",".join(items) + "}" if items else ""


def _format_value(value: float) -> str:
    if isinstance(value, float):
        if math.isnan(value):
            return "NaN"
        if math.isinf(value):
            return "+Inf" if value > 0 else "-Inf"
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
    return repr(float(value))


def _merge_labels(pairs: LabelPairs, extra: Optional[Dict[str, str]]) -> Tuple[Tuple[str, str], ...]:
    merged = dict(pairs)
    if extra:
        merged.update({str(k): str(v) for k, v in extra.items()})
    return tuple(sorted(merged.items()))


def render_histogram(
    name: str, hist: Histogram, extra_labels: Optional[Dict[str, str]] = None
) -> str:
    """One histogram as ``_bucket``/``_sum``/``_count`` sample lines."""
    base = _merge_labels((), extra_labels)
    lines = []
    cumulative = 0
    for bound, count in zip(hist.bounds, hist.counts):
        cumulative += count
        labels = _render_labels(base + (("le", _format_value(float(bound))),))
        lines.append(f"{name}_bucket{labels} {cumulative}")
    cumulative += hist.counts[-1]
    labels = _render_labels(base + (("le", "+Inf"),))
    lines.append(f"{name}_bucket{labels} {cumulative}")
    lines.append(f"{name}_sum{_render_labels(base)} {_format_value(hist.total)}")
    lines.append(f"{name}_count{_render_labels(base)} {hist.count}")
    return "\n".join(lines)


def render_recorder(
    recorder: Recorder,
    prefix: str = "repro",
    extra_labels: Optional[Dict[str, str]] = None,
    emit_type_lines: bool = True,
) -> str:
    """Render every instrument of ``recorder`` as Prometheus text.

    ``extra_labels`` (e.g. ``{"session": "session-0001"}``) are merged
    into every sample, which is how the service distinguishes per-session
    sections on one page.  ``emit_type_lines=False`` suppresses the
    ``# TYPE`` headers for sections after the first, so one page can
    carry the same metric family for many sessions without duplicate
    type declarations (which Prometheus parsers reject).
    """
    lines = []
    seen_types = set()

    def type_line(name: str, kind: str) -> None:
        if emit_type_lines and name not in seen_types:
            seen_types.add(name)
            lines.append(f"# TYPE {name} {kind}")

    for (raw, pairs), value in sorted(recorder.counters.items()):
        name = metric_name(raw, prefix) + ("_total" if not raw.endswith("_total") else "")
        type_line(name, "counter")
        lines.append(f"{name}{_render_labels(_merge_labels(pairs, extra_labels))} {_format_value(value)}")
    for (raw, pairs), value in sorted(recorder.gauges.items()):
        name = metric_name(raw, prefix)
        type_line(name, "gauge")
        lines.append(f"{name}{_render_labels(_merge_labels(pairs, extra_labels))} {_format_value(value)}")
    for raw, hist in sorted(recorder.histograms.items()):
        name = metric_name(raw, prefix)
        type_line(name, "histogram")
        lines.append(render_histogram(name, hist, extra_labels))
    return "\n".join(lines) + ("\n" if lines else "")


def parse_prometheus_text(text: str) -> Dict[str, float]:
    """Minimal exposition-format parser (tests and the smoke scrape).

    Returns ``{sample_name_with_labels: value}`` and raises
    ``ValueError`` on any line that is neither a comment, blank, nor a
    well-formed sample — enough to assert "Prometheus-parseable".
    """
    samples: Dict[str, float] = {}
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip() or line.startswith("#"):
            continue
        match = re.match(
            r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})?\s+(NaN|[+-]?Inf|[-+0-9.eE]+)$",
            line,
        )
        if match is None:
            raise ValueError(f"unparseable exposition line {lineno}: {line!r}")
        name, labels, value = match.groups()
        samples[f"{name}{labels or ''}"] = float(
            value.replace("+Inf", "inf").replace("-Inf", "-inf")
        )
    return samples
