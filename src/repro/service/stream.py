"""Per-session event streams: deterministic SSE with lossless resume.

:class:`SessionStream` is the service plane's live telemetry channel.
Each session owns one; the session emits small structured events into
it — deterministic sim-channel records (scheduling passes, tick
samples, via the recorder's ``sim_listener`` hook) plus explicit
operations (submit, inject, restore) — and any number of HTTP
subscribers consume them as Server-Sent Events from
``GET /sessions/{id}/stream``.

Three properties are load-bearing (and enforced by ``tests/test_stream.py``):

**Determinism.**  Events are a pure function of simulation *content*,
never of ``advance()`` call boundaries: the stream taps the recorder's
sim channel (whose records are bit-identical across chunkings) and
explicit operations, and serialises with key-sorted compact JSON — so
the full SSE byte sequence for a fixed (scenario, seed, operations) is
identical no matter how the session was stepped, which is what makes
`Last-Event-ID`` resume *provably* lossless.

**Zero observer effect.**  The stream only ever receives pushed values
(the recorder discipline, ``docs/observability.md``); it never reads
simulator state.  Subscribing, disconnecting or falling behind cannot
change ``SimulationMetrics`` or snapshot bytes.

**No backpressure.**  Emitting appends to a bounded ring and returns;
subscribers are cursors into that ring.  A slow subscriber that falls
off the ring's tail gets an explicit ``gap`` event with the count of
missed events (drop accounting) — the simulator is never throttled by
a slow reader.

Threading model: session operations run in the server's thread-pool
executor (under the per-session asyncio lock), so emits arrive from
worker threads while subscribers await in the event loop.  The ring is
guarded by a mutex; waiting subscribers are woken via
``loop.call_soon_threadsafe``.
"""

from __future__ import annotations

import asyncio
import json
import threading
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from ..obs.recorder import PassRecord, TickSample

__all__ = [
    "HEARTBEAT_FRAME",
    "SessionStream",
    "StreamSubscriber",
    "format_sse",
    "gap_frame",
    "parse_sse_stream",
    "stable_json",
]

#: SSE comment frame used as a keep-alive heartbeat (no id — heartbeats
#: are transport-level, not part of the event sequence)
HEARTBEAT_FRAME = ": hb\n\n"


def stable_json(data: Dict[str, object]) -> str:
    """Canonical event serialisation: key-sorted, compact, deterministic."""
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def format_sse(seq: int, event: str, data: str) -> str:
    """One SSE frame: ``id`` + ``event`` + ``data`` lines, blank-line terminated."""
    return f"id: {seq}\nevent: {event}\ndata: {data}\n\n"


def gap_frame(missed: int) -> str:
    """A subscriber-local drop-accounting frame (carries no ``id`` on
    purpose: gaps are a property of one subscription, not of the event
    sequence, so a client resuming from its last id never re-sees one)."""
    return f"event: gap\ndata: {stable_json({'missed': missed})}\n\n"


def parse_sse_stream(text: str) -> List[Dict[str, Optional[str]]]:
    """Parse SSE text into ``{id, event, data}`` dicts (tests, clients).

    Comment-only frames (heartbeats) are skipped; multi-``data``-line
    events are joined with newlines per the SSE spec.
    """
    events: List[Dict[str, Optional[str]]] = []
    for block in text.split("\n\n"):
        if not block.strip():
            continue
        event: Dict[str, Optional[str]] = {"id": None, "event": None, "data": None}
        data_lines: List[str] = []
        for line in block.split("\n"):
            if line.startswith(":"):
                continue
            if ":" not in line:
                continue
            field, _, value = line.partition(":")
            value = value[1:] if value.startswith(" ") else value
            if field == "id":
                event["id"] = value
            elif field == "event":
                event["event"] = value
            elif field == "data":
                data_lines.append(value)
        if data_lines:
            event["data"] = "\n".join(data_lines)
        if event["id"] is not None or event["event"] is not None or data_lines:
            events.append(event)
    return events


class StreamSubscriber:
    """A cursor into one session's event ring (one SSE connection).

    ``poll()`` returns every frame past the cursor (advancing it) plus
    the count of events that expired off the ring before they could be
    delivered; ``wait()`` parks until new events arrive or a timeout
    (heartbeat interval) elapses.  Counters feed the stream's drop
    accounting.
    """

    def __init__(self, stream: "SessionStream", subscriber_id: int, cursor: int):
        self._stream = stream
        self.subscriber_id = subscriber_id
        self.cursor = cursor
        self.delivered = 0
        self.dropped = 0
        self._closed = False

    def poll(self) -> Tuple[List[str], int]:
        """(new frames past the cursor, events lost off the ring's tail)."""
        frames, missed, self.cursor = self._stream._collect(self.cursor)
        self.delivered += len(frames)
        if missed:
            self.dropped += missed
        return frames, missed

    async def wait(self, timeout: float) -> None:
        """Park until an emit (possibly) lands past the cursor, or timeout."""
        await self._stream._wait_past(self.cursor, timeout)

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._stream._unsubscribe(self)


class SessionStream:
    """Bounded, sequence-numbered event ring for one session (module doc).

    ``backlog`` bounds both memory and the lossless-resume window: a
    reconnect with ``Last-Event-ID`` within the last ``backlog`` events
    replays exactly the missed frames; older cursors get a ``gap``.
    Frames are rendered once at emit time, so fan-out to N subscribers
    costs N socket writes and zero re-serialisation.

    Implements the recorder's ``sim_listener`` protocol (:meth:`on_pass`,
    :meth:`on_tick`) — attach with ``recorder.sim_listener = stream``.
    """

    def __init__(self, session_id: str, backlog: int = 4096):
        if backlog < 1:
            raise ValueError("stream backlog must be >= 1")
        self.session_id = session_id
        self.backlog = backlog
        self.last_seq = 0
        #: total events expired off the ring (independent of subscribers)
        self.expired = 0
        #: cumulative events dropped across all subscribers (gap totals)
        self.subscriber_drops = 0
        self.total_subscribers = 0
        self._ring: Deque[Tuple[int, str]] = deque()
        self._lock = threading.Lock()
        self._subscribers: Dict[int, StreamSubscriber] = {}
        self._next_subscriber = 1
        # waiter Event -> its owning loop (woken cross-thread on emit)
        self._waiters: Dict[asyncio.Event, asyncio.AbstractEventLoop] = {}

    # ------------------------------------------------------------------
    # Emit side (called from session operations / recorder listener)
    # ------------------------------------------------------------------
    def emit(self, event: str, data: Dict[str, object]) -> int:
        """Append one event; returns its sequence number.  Never blocks."""
        payload = stable_json(data)
        with self._lock:
            self.last_seq += 1
            seq = self.last_seq
            self._ring.append((seq, format_sse(seq, event, payload)))
            if len(self._ring) > self.backlog:
                self._ring.popleft()
                self.expired += 1
            waiters = list(self._waiters.items())
        for waiter, loop in waiters:
            try:
                loop.call_soon_threadsafe(waiter.set)
            except RuntimeError:
                pass  # loop already closed; its subscriber is gone anyway
        return seq

    # Recorder ``sim_listener`` protocol — deterministic sim channel.
    def on_pass(self, record: PassRecord) -> None:
        self.emit(
            "pass",
            {
                "t": record.sim_time,
                "trigger": record.trigger,
                "examined": record.examined,
                "scheduled": record.scheduled,
                "memo_hits": record.memo_hits,
                "index_rejects": record.index_rejects,
                "searches": record.searches,
                "pending": record.pending_depth,
            },
        )

    def on_tick(self, sample: TickSample) -> None:
        self.emit(
            "tick",
            {
                "t": sample.sim_time,
                "pending": sample.pending_depth,
                "running": sample.running_tasks,
                "alloc": sample.allocation_rate,
            },
        )

    # ------------------------------------------------------------------
    # Subscribe side (server stream handler)
    # ------------------------------------------------------------------
    def subscribe(self, after_seq: int = 0) -> StreamSubscriber:
        """A new cursor positioned just past ``after_seq`` (``Last-Event-ID``).

        ``after_seq=0`` (a fresh client) starts at the *live edge* — it
        sees only events emitted after it connected.  A resuming client
        passes its last received id and replays forward from there.
        """
        with self._lock:
            cursor = self.last_seq if after_seq <= 0 else min(after_seq, self.last_seq)
            sub = StreamSubscriber(self, self._next_subscriber, cursor)
            self._next_subscriber += 1
            self._subscribers[sub.subscriber_id] = sub
            self.total_subscribers += 1
        return sub

    def _unsubscribe(self, sub: StreamSubscriber) -> None:
        with self._lock:
            self._subscribers.pop(sub.subscriber_id, None)
            self.subscriber_drops += sub.dropped

    def _collect(self, cursor: int) -> Tuple[List[str], int, int]:
        """Frames past ``cursor`` plus (missed count, new cursor)."""
        with self._lock:
            earliest = self.last_seq - len(self._ring) + 1
            missed = 0
            if cursor + 1 < earliest:
                missed = earliest - cursor - 1
                cursor = earliest - 1
            frames = [frame for seq, frame in self._ring if seq > cursor]
            return frames, missed, self.last_seq

    async def _wait_past(self, cursor: int, timeout: float) -> None:
        waiter = asyncio.Event()
        loop = asyncio.get_running_loop()
        with self._lock:
            if self.last_seq > cursor:
                return
            self._waiters[waiter] = loop
        try:
            await asyncio.wait_for(waiter.wait(), timeout)
        except asyncio.TimeoutError:
            pass
        finally:
            with self._lock:
                self._waiters.pop(waiter, None)

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    @property
    def active_subscribers(self) -> int:
        with self._lock:
            return len(self._subscribers)

    def stats(self) -> Dict[str, object]:
        with self._lock:
            live_drops = sum(s.dropped for s in self._subscribers.values())
            delivered = sum(s.delivered for s in self._subscribers.values())
            return {
                "last_seq": self.last_seq,
                "backlog": self.backlog,
                "buffered": len(self._ring),
                "expired": self.expired,
                "active_subscribers": len(self._subscribers),
                "total_subscribers": self.total_subscribers,
                "delivered": delivered,
                "subscriber_drops": self.subscriber_drops + live_drops,
            }

    # The stream is host-local plumbing, never simulation state: keep it
    # (and the recorder that points at it) out of any pickle by accident.
    def __reduce__(self):
        raise TypeError("SessionStream is not picklable (host-local, not simulation state)")
