"""The self-contained live dashboard served at ``GET /dashboard``.

One HTML file, zero external assets (no CDN fonts, no JS frameworks):
everything a browser needs is inlined below, so the dashboard works on
an air-gapped host exactly as well as anywhere else.  It drives the
same public API every other client uses —

* ``GET /sessions`` to populate the session picker,
* ``GET /sessions/{id}/occupancy`` + ``/quota`` polled at a fixed
  cadence for fleet occupancy, pending/running and per-org headroom,
* ``EventSource('/sessions/{id}/stream')`` for the live feed: tick
  samples animate the gauges between polls, pass records accumulate
  into the scheduling-pass stats, ``gap`` events surface drop
  accounting instead of silently skipping.

Keeping it a Python string (rather than a static file) means the
service stays a single importable package with no data-file packaging
concerns, and tests can assert on the markup directly.
"""

from __future__ import annotations

DASHBOARD_HTML = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>repro scheduler — live dashboard</title>
<style>
  :root { --bg:#101418; --panel:#1a2027; --ink:#d8dee6; --dim:#7b8794;
          --accent:#4cc38a; --warn:#e5a54b; --bad:#e05d5d; --line:#2a323c; }
  * { box-sizing:border-box; }
  body { margin:0; background:var(--bg); color:var(--ink);
         font:14px/1.45 ui-monospace,SFMono-Regular,Menlo,Consolas,monospace; }
  header { display:flex; gap:1rem; align-items:baseline; padding:.8rem 1.2rem;
           border-bottom:1px solid var(--line); flex-wrap:wrap; }
  header h1 { font-size:1.05rem; margin:0; font-weight:600; }
  header .dim { color:var(--dim); }
  select { background:var(--panel); color:var(--ink); border:1px solid var(--line);
           padding:.25rem .5rem; border-radius:4px; font:inherit; }
  main { display:grid; grid-template-columns:repeat(auto-fit,minmax(340px,1fr));
         gap:1rem; padding:1rem 1.2rem; }
  section { background:var(--panel); border:1px solid var(--line);
            border-radius:8px; padding:.9rem 1rem; }
  section h2 { margin:0 0 .6rem; font-size:.8rem; letter-spacing:.08em;
               text-transform:uppercase; color:var(--dim); font-weight:600; }
  .kv { display:grid; grid-template-columns:auto 1fr; gap:.15rem .8rem; }
  .kv b { font-weight:600; color:var(--accent); text-align:right; }
  .kv span { color:var(--dim); }
  .bar { height:10px; background:var(--line); border-radius:5px; overflow:hidden;
         margin:.4rem 0 .2rem; }
  .bar i { display:block; height:100%; background:var(--accent); width:0; }
  table { width:100%; border-collapse:collapse; font-size:.85rem; }
  th,td { text-align:right; padding:.15rem .4rem; border-bottom:1px solid var(--line); }
  th:first-child,td:first-child { text-align:left; }
  th { color:var(--dim); font-weight:600; }
  #feed { list-style:none; margin:0; padding:0; max-height:300px; overflow-y:auto;
          font-size:.8rem; }
  #feed li { padding:.1rem 0; border-bottom:1px dotted var(--line); white-space:nowrap;
             overflow:hidden; text-overflow:ellipsis; }
  #feed .ev-pass { color:var(--accent); }
  #feed .ev-tick { color:var(--dim); }
  #feed .ev-submit { color:#6cb2e0; }
  #feed .ev-inject { color:var(--warn); }
  #feed .ev-gap, #feed .ev-error { color:var(--bad); }
  #link { color:var(--dim); }
  .ok { color:var(--accent); } .warn { color:var(--warn); } .bad { color:var(--bad); }
</style>
</head>
<body>
<header>
  <h1>repro scheduler</h1>
  <label>session <select id="session"></select></label>
  <span class="dim">t=<b id="simnow">–</b>s</span>
  <span id="link" class="dim">stream: <b id="streamstate">idle</b></span>
</header>
<main>
  <section>
    <h2>Occupancy</h2>
    <div class="bar"><i id="occbar"></i></div>
    <div class="kv">
      <b id="alloc">–</b><span>allocation rate</span>
      <b id="gpus">–</b><span>GPUs busy / total</span>
      <b id="hp">–</b><span>HP GPUs</span>
      <b id="spot">–</b><span>spot GPUs</span>
    </div>
  </section>
  <section>
    <h2>Workload</h2>
    <div class="kv">
      <b id="pending">–</b><span>pending tasks</span>
      <b id="running">–</b><span>running tasks</span>
      <b id="runhp">–</b><span>running HP</span>
      <b id="runspot">–</b><span>running spot</span>
    </div>
  </section>
  <section>
    <h2>Scheduling passes <span class="dim" id="passcount"></span></h2>
    <div class="kv">
      <b id="p-examined">0</b><span>tasks examined</span>
      <b id="p-scheduled">0</b><span>tasks placed</span>
      <b id="p-memo">0</b><span>memo hits</span>
      <b id="p-index">0</b><span>index rejects</span>
      <b id="p-searches">0</b><span>searches run</span>
    </div>
  </section>
  <section>
    <h2>Per-org quota headroom</h2>
    <table id="quota"><thead><tr>
      <th>org</th><th>HP running</th><th>HP queued</th><th>quota</th><th>headroom</th>
    </tr></thead><tbody></tbody></table>
  </section>
  <section style="grid-column:1/-1">
    <h2>Live events <span class="dim" id="dropnote"></span></h2>
    <ul id="feed"></ul>
  </section>
</main>
<script>
"use strict";
const $ = id => document.getElementById(id);
const fmt = x => (typeof x === "number" && isFinite(x))
  ? (Number.isInteger(x) ? x : x.toFixed(2)) : "–";
let sessionId = null, source = null, passTotals = null, dropped = 0;

function resetPassTotals() {
  passTotals = {count:0, examined:0, scheduled:0, memo_hits:0, index_rejects:0, searches:0};
}
resetPassTotals();

async function getJSON(path) {
  const resp = await fetch(path);
  if (!resp.ok) throw new Error(path + " -> " + resp.status);
  return resp.json();
}

function feed(kind, text) {
  const li = document.createElement("li");
  li.className = "ev-" + kind;
  li.textContent = text;
  const ul = $("feed");
  ul.insertBefore(li, ul.firstChild);
  while (ul.children.length > 200) ul.removeChild(ul.lastChild);
}

function renderPasses() {
  $("passcount").textContent = passTotals.count ? "(" + passTotals.count + ")" : "";
  $("p-examined").textContent = passTotals.examined;
  $("p-scheduled").textContent = passTotals.scheduled;
  $("p-memo").textContent = passTotals.memo_hits;
  $("p-index").textContent = passTotals.index_rejects;
  $("p-searches").textContent = passTotals.searches;
}

function onEvent(type, data) {
  if (type === "tick") {
    $("simnow").textContent = fmt(data.t);
    $("pending").textContent = fmt(data.pending);
    $("running").textContent = fmt(data.running);
    $("alloc").textContent = (100 * data.alloc).toFixed(1) + "%";
    $("occbar").style.width = Math.min(100, 100 * data.alloc) + "%";
    feed("tick", "tick t=" + fmt(data.t) + " pending=" + data.pending +
         " running=" + data.running + " alloc=" + (100 * data.alloc).toFixed(1) + "%");
  } else if (type === "pass") {
    passTotals.count += 1;
    for (const k of ["examined","scheduled","memo_hits","index_rejects","searches"])
      passTotals[k] += data[k] || 0;
    renderPasses();
    $("simnow").textContent = fmt(data.t);
    feed("pass", "pass t=" + fmt(data.t) + " [" + data.trigger + "] examined=" +
         data.examined + " placed=" + data.scheduled + " pending=" + data.pending);
  } else if (type === "submit") {
    feed("submit", "submit t=" + fmt(data.t) + " count=" + data.count);
  } else if (type === "inject") {
    feed("inject", "inject t=" + fmt(data.t) + " " + data.kind + " node=" + data.node);
  } else if (type === "restore") {
    resetPassTotals(); renderPasses();
    feed("inject", "state restored at t=" + fmt(data.t));
  } else if (type === "gap") {
    dropped += data.missed;
    $("dropnote").textContent = "(" + dropped + " events dropped)";
    feed("gap", "GAP: " + data.missed + " events dropped (slow subscriber)");
  }
}

function connectStream() {
  if (source) { source.close(); source = null; }
  if (!sessionId) return;
  source = new EventSource("/sessions/" + sessionId + "/stream");
  for (const type of ["pass","tick","submit","inject","restore","gap"])
    source.addEventListener(type, e => onEvent(type, JSON.parse(e.data)));
  source.onopen = () => { $("streamstate").textContent = "live";
                          $("streamstate").className = "ok"; };
  // EventSource auto-reconnects with Last-Event-ID: resume is lossless
  // within the server's backlog window.
  source.onerror = () => { $("streamstate").textContent = "reconnecting";
                           $("streamstate").className = "warn"; };
}

async function poll() {
  if (!sessionId) return;
  try {
    const occ = await getJSON("/sessions/" + sessionId + "/occupancy");
    $("simnow").textContent = fmt(occ.now);
    const busy = occ.total_gpus - occ.idle_gpus;
    $("gpus").textContent = fmt(busy) + " / " + fmt(occ.total_gpus);
    $("alloc").textContent = (100 * occ.allocation_rate).toFixed(1) + "%";
    $("occbar").style.width = Math.min(100, 100 * occ.allocation_rate) + "%";
    $("hp").textContent = fmt(occ.hp_gpus);
    $("spot").textContent = fmt(occ.spot_gpus);
    $("pending").textContent = fmt(occ.pending_tasks);
    $("running").textContent = fmt(occ.running_hp_tasks + occ.running_spot_tasks);
    $("runhp").textContent = fmt(occ.running_hp_tasks);
    $("runspot").textContent = fmt(occ.running_spot_tasks);
    const quota = await getJSON("/sessions/" + sessionId + "/quota");
    const tbody = $("quota").querySelector("tbody");
    tbody.innerHTML = "";
    for (const [org, q] of Object.entries(quota.orgs || {})) {
      const tr = document.createElement("tr");
      const headroom = q.headroom === undefined ? "–" : fmt(q.headroom);
      tr.innerHTML = "<td>" + org + "</td><td>" + fmt(q.hp_gpus_running) +
        "</td><td>" + fmt(q.hp_gpus_queued) + "</td><td>" +
        (q.quota === undefined ? "–" : fmt(q.quota)) + "</td><td>" + headroom + "</td>";
      tbody.appendChild(tr);
    }
  } catch (err) {
    feed("error", "poll failed: " + err.message);
  }
}

async function refreshSessions() {
  try {
    const data = await getJSON("/sessions");
    const sel = $("session");
    const current = sel.value;
    sel.innerHTML = "";
    for (const s of data.sessions) {
      const opt = document.createElement("option");
      opt.value = s.session_id;
      opt.textContent = s.session_id + " (" + s.scheduler + "/" + s.scenario + ")";
      sel.appendChild(opt);
    }
    if (data.sessions.length === 0) {
      $("streamstate").textContent = "no sessions"; $("streamstate").className = "warn";
      sessionId = null; return;
    }
    sel.value = data.sessions.some(s => s.session_id === current)
      ? current : data.sessions[0].session_id;
    if (sel.value !== sessionId) {
      sessionId = sel.value; resetPassTotals(); renderPasses();
      dropped = 0; $("dropnote").textContent = "";
      connectStream(); poll();
    }
  } catch (err) {
    feed("error", "session list failed: " + err.message);
  }
}

$("session").addEventListener("change", ev => {
  sessionId = ev.target.value; resetPassTotals(); renderPasses();
  dropped = 0; $("dropnote").textContent = "";
  connectStream(); poll();
});
refreshSessions();
setInterval(refreshSessions, 10000);
setInterval(poll, 2000);
</script>
</body>
</html>
"""
