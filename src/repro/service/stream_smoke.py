"""Live-telemetry smoke test (``make stream-smoke``).

Two gates in one process, mirroring the two telemetry planes:

1. **Service plane** — boot a real server on an ephemeral port, open an
   SSE subscription to a session, drive ``advance`` and assert live
   events arrive in sequence; disconnect mid-stream and resume with
   ``Last-Event-ID``, asserting the concatenated bytes match an
   uninterrupted witness subscriber; check ``GET /dashboard`` serves the
   self-contained HTML.
2. **Sweep plane** — run a tiny sweep through the real CLI with
   ``--progress`` and ``--telemetry``, then validate the captured JSONL
   against the documented schema (the same validator CI uses) and assert
   the lifecycle events are present.

Exit status 0 only if every assertion held; a hang is caught by the
overall timeout.  See ``docs/observability.md`` for the stream protocol
and the event schema.
"""

from __future__ import annotations

import asyncio
import sys
import tempfile
from pathlib import Path

from ..obs.telemetry import validate_telemetry_line
from .client import AsyncServiceClient
from .server import SchedulerServer

#: hard wall-clock cap on the whole smoke run
SMOKE_TIMEOUT_S = 180.0


def _task(task_id: str, submit_time: float, hp: bool = False) -> dict:
    return {
        "task_id": task_id,
        "task_type": 1 if hp else 0,
        "num_pods": 1,
        "gpus_per_pod": 4.0,
        "duration": 1800.0,
        "submit_time": submit_time,
        "org": "smoke-org",
    }


def _strip_heartbeats(raw: bytes) -> bytes:
    kept = [
        block
        for block in raw.split(b"\n\n")
        if block.strip() and not block.startswith(b":")
    ]
    return b"\n\n".join(kept) + (b"\n\n" if kept else b"")


async def _read_until_seq(sub, seq: int, timeout: float = 15.0) -> list:
    events = []
    while sub.last_event_id is None or sub.last_event_id < seq:
        event = await sub.read_event(timeout=timeout)
        assert event is not None, "stream closed before reaching the target seq"
        events.append(event)
    return events


async def _service_plane() -> None:
    server = SchedulerServer()
    await server.start(port=0)
    client = AsyncServiceClient(server.host, server.port)
    try:
        sid = (await client.create_session(scheduler="gfs", num_nodes=8,
                                           duration_hours=4.0))["session_id"]
        witness = await client.open_stream(sid)
        flaky = await client.open_stream(sid)
        print(f"[stream-smoke] session {sid}: 2 SSE subscribers open")

        await client.submit(sid, [_task(f"sm-a{i}", i * 60.0) for i in range(8)])
        await client.advance(sid, until=1800.0)
        mid_seq = (await client.stats(sid))["stream"]["last_seq"]
        assert mid_seq > 0, "no events emitted by submit+advance"
        events = await _read_until_seq(flaky, mid_seq)
        kinds = {e["event"] for e in events}
        assert "submit" in kinds, kinds
        assert kinds & {"pass", "tick"}, kinds
        await flaky.close()  # mid-stream disconnect

        await client.submit(sid, [_task(f"sm-b{i}", 1800.0, hp=True) for i in range(4)])
        await client.advance(sid)
        end_seq = (await client.stats(sid))["stream"]["last_seq"]
        assert end_seq > mid_seq

        resumed = await client.open_stream(sid, last_event_id=flaky.last_event_id)
        await _read_until_seq(resumed, end_seq)
        await _read_until_seq(witness, end_seq)
        rejoined = _strip_heartbeats(bytes(flaky.raw + resumed.raw))
        uninterrupted = _strip_heartbeats(bytes(witness.raw))
        assert rejoined == uninterrupted, "resume concatenation diverged from witness"
        await resumed.close()
        await witness.close()
        stats = (await client.stats(sid))["stream"]
        print(
            f"[stream-smoke] SSE ok: {stats['last_seq']} events, lossless "
            f"Last-Event-ID resume, drops={stats['subscriber_drops']}"
        )

        # Dashboard: served, HTML, self-contained.
        reader, writer = await asyncio.open_connection(server.host, server.port)
        writer.write(b"GET /dashboard HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n")
        await writer.drain()
        raw = await reader.read()
        writer.close()
        await writer.wait_closed()
        head, _, body = raw.partition(b"\r\n\r\n")
        assert b" 200 " in head.split(b"\r\n")[0] + b" ", head[:80]
        assert b"text/html" in head
        html = body.decode("utf-8")
        assert "EventSource" in html and "http://" not in html
        print(f"[stream-smoke] /dashboard ok ({len(html)} bytes, self-contained)")
    finally:
        await client.close()
        await server.stop()


def _sweep_plane() -> None:
    from ..experiments.cli import main as cli_main
    from ..obs.telemetry import main as telemetry_main

    with tempfile.TemporaryDirectory(prefix="stream-smoke-") as tmp:
        tele_path = Path(tmp) / "sweep.jsonl"
        rc = cli_main([
            "sweep", "--scenario", "default", "--schedulers", "GFS,YARN-CS",
            "--nodes", "6", "--hours", "2", "--progress",
            "--telemetry", str(tele_path),
        ])
        assert rc == 0, f"sweep exited {rc}"
        assert telemetry_main(["validate", str(tele_path)]) == 0
        records = [
            validate_telemetry_line(line)
            for line in tele_path.read_text().splitlines()
            if line.strip()
        ]
        events = [r["event"] for r in records]
        assert events[0] == "sweep_start" and events[-1] == "sweep_end"
        for expected in ("job_start", "job_done", "progress"):
            assert expected in events, (expected, events)
        run_ids = {r["run_id"] for r in records}
        assert len(run_ids) == 1 and next(iter(run_ids)).startswith("sweep-")
        seqs = [r["seq"] for r in records]
        assert seqs == sorted(seqs) == list(range(1, len(seqs) + 1))
        print(f"[stream-smoke] sweep telemetry ok ({len(records)} valid events)")


def main() -> int:
    asyncio.run(asyncio.wait_for(_service_plane(), timeout=SMOKE_TIMEOUT_S))
    _sweep_plane()
    print("[stream-smoke] OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
