"""Versioned, checksummed envelope for simulator snapshots.

:meth:`ClusterSimulator.snapshot` yields raw pickle bytes — fine inside
one process, fragile on the wire: a truncated upload, a bit flip in
transit or a snapshot taken by an incompatible build would surface as an
arbitrary unpickling error deep inside the simulator (or worse, as a
silently corrupted session).  The service therefore never ships raw
pickles; it wraps them in a small binary envelope::

    MAGIC (8 bytes)  | b"REPROSNP"
    VERSION (2 bytes)| big-endian uint16 format version
    DIGEST (32 bytes)| SHA-256 of the *compressed* payload
    PAYLOAD          | zlib-compressed pickle bytes

:func:`decode_snapshot` refuses anything that is not a well-formed
current-version envelope with a matching digest, so every failure mode
collapses into one typed, actionable :class:`SnapshotError` *before*
``pickle.loads`` ever sees attacker-shaped bytes.  Compression is not
cosmetic: mid-run simulators carry the full event heap and run logs, and
zlib routinely shrinks them several-fold, which matters when snapshots
travel through the JSON API base64-encoded.

Security note: the payload is still a pickle, and unpickling executes
code.  Only restore snapshots you produced yourself — the server is a
simulation tool for trusted clients, not a hardened public endpoint
(``docs/service.md`` repeats this warning where users will see it).
"""

from __future__ import annotations

import base64
import hashlib
import struct
import zlib

#: current wire-format version; bump when the envelope layout changes
SNAPSHOT_VERSION = 1

_MAGIC = b"REPROSNP"
_HEADER = struct.Struct(">8sH32s")  # magic, version, sha256 digest


class SnapshotError(ValueError):
    """A snapshot envelope failed validation (format, version or digest)."""


def encode_snapshot(raw: bytes) -> bytes:
    """Wrap raw simulator-snapshot bytes in the versioned envelope."""
    payload = zlib.compress(raw, level=6)
    digest = hashlib.sha256(payload).digest()
    return _HEADER.pack(_MAGIC, SNAPSHOT_VERSION, digest) + payload


def decode_snapshot(data: bytes) -> bytes:
    """Validate an envelope and return the raw snapshot bytes inside.

    Raises
    ------
    SnapshotError
        If the envelope is truncated, carries the wrong magic, was
        written by a different format version, fails its checksum, or
        the payload does not decompress.
    """
    if len(data) < _HEADER.size:
        raise SnapshotError(
            f"snapshot too short: {len(data)} bytes < {_HEADER.size}-byte header"
        )
    magic, version, digest = _HEADER.unpack_from(data)
    if magic != _MAGIC:
        raise SnapshotError("not a simulator snapshot (bad magic)")
    if version != SNAPSHOT_VERSION:
        raise SnapshotError(
            f"snapshot format version {version} is not supported "
            f"(this build reads version {SNAPSHOT_VERSION})"
        )
    payload = data[_HEADER.size :]
    if hashlib.sha256(payload).digest() != digest:
        raise SnapshotError("snapshot checksum mismatch (corrupt or truncated)")
    try:
        return zlib.decompress(payload)
    except zlib.error as exc:
        raise SnapshotError(f"snapshot payload does not decompress: {exc}") from exc


def snapshot_to_text(data: bytes) -> str:
    """Base64 form of an envelope, for embedding in JSON responses."""
    return base64.b64encode(data).decode("ascii")


def snapshot_from_text(text: str) -> bytes:
    """Decode the base64 form; raises :class:`SnapshotError` on bad input."""
    try:
        return base64.b64decode(text.encode("ascii"), validate=True)
    except (ValueError, UnicodeEncodeError) as exc:
        raise SnapshotError(f"snapshot is not valid base64: {exc}") from exc
