"""Live simulation sessions: one streaming simulator behind the service.

A :class:`SimulationSession` owns one incrementally-stepped
:class:`~repro.cluster.simulator.ClusterSimulator` plus the JSON codecs
the HTTP layer needs: task payloads in the exact field vocabulary of
``Trace.to_records`` (so a trace file row pastes straight into a submit
request), dynamics injections, live occupancy/quota views and what-if
placement advice computed on a :meth:`~ClusterSimulator.fork` so the
live state is never perturbed.

Sessions are synchronous, deterministic objects — all asyncio locking
and scheduling lives in :mod:`repro.service.server`, which serialises
operations per session.  That split keeps the determinism suite able to
drive sessions directly, with no event loop in sight.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Mapping, Optional, Sequence

from ..cluster.cluster import Cluster
from ..cluster.events import DYNAMICS_EVENT_KINDS, DynamicsAction, EventKind
from ..cluster.gpu import GPUModel
from ..cluster.simulator import ClusterSimulator, SimulatorConfig
from ..cluster.task import Task, TaskType
from ..dynamics import FaultInjector, get_dynamics
from ..experiments.engine import SchedulerSpec, build_scheduler
from ..obs import Recorder, render_recorder
from ..workloads.scenarios import get_scenario
from .stream import SessionStream

#: sim-channel records (pass records *and* tick samples) kept per
#: session before the oldest drop — bounds live-session memory;
#: counters/histograms aggregate forever.  Overridable per session via
#: the ``pass_record_limit`` create parameter.
PASS_RECORD_LIMIT = 4096

#: event-stream ring size (and the lossless ``Last-Event-ID`` resume
#: window) per session; ``stream_backlog=0`` disables streaming
STREAM_BACKLOG = 4096

#: session-creation parameters the service accepts, with their defaults —
#: anything else in a create request is rejected as a typo guard
SESSION_DEFAULTS: Dict[str, object] = {
    "scheduler": "gfs",
    "scenario": "default",
    "num_nodes": 16,
    "gpus_per_node": 8,
    "gpu_model": "A100",
    "duration_hours": 8.0,
    "spot_scale": 1.0,
    "seed": 7,
    "dynamics": "",
    "tick_interval": 300.0,
    "max_time": None,
    "preload": False,
    "pass_record_limit": PASS_RECORD_LIMIT,
    "stream_backlog": STREAM_BACKLOG,
}

_session_counter = itertools.count(1)


class SessionError(ValueError):
    """A request payload is invalid for this session or the service."""


# ----------------------------------------------------------------------
# Task payload codec (the Trace.to_records vocabulary)
# ----------------------------------------------------------------------
def task_from_payload(payload: Mapping[str, object]) -> Task:
    """Build a :class:`Task` from a JSON payload.

    Field names and types match ``Trace.to_records`` exactly, so rows
    from a saved trace file are valid submit payloads as-is.  Only
    ``task_id``, ``num_pods``, ``gpus_per_pod`` and ``duration`` are
    required; everything else takes the trace-format defaults.
    """
    if not isinstance(payload, Mapping):
        raise SessionError(f"task payload must be an object, got {type(payload).__name__}")
    missing = [k for k in ("task_id", "num_pods", "gpus_per_pod", "duration") if k not in payload]
    if missing:
        raise SessionError(f"task payload missing required fields: {', '.join(missing)}")
    try:
        return Task(
            task_id=str(payload["task_id"]),
            task_type=TaskType(int(payload.get("task_type", int(TaskType.SPOT)))),
            num_pods=int(payload["num_pods"]),
            gpus_per_pod=float(payload["gpus_per_pod"]),
            duration=float(payload["duration"]),
            submit_time=float(payload.get("submit_time", 0.0)),
            org=str(payload.get("org", "default")),
            gpu_model=GPUModel(payload["gpu_model"]) if payload.get("gpu_model") else None,
            gang=bool(payload.get("gang", False)),
            checkpoint_interval=float(payload.get("checkpoint_interval", 1800.0)),
        )
    except (TypeError, ValueError) as exc:
        raise SessionError(f"invalid task payload: {exc}") from exc


def task_to_payload(task: Task) -> Dict[str, object]:
    """Serialise a task back to the ``Trace.to_records`` vocabulary."""
    return {
        "task_id": task.task_id,
        "task_type": int(task.task_type),
        "num_pods": task.num_pods,
        "gpus_per_pod": task.gpus_per_pod,
        "duration": task.duration,
        "submit_time": task.submit_time,
        "org": task.org,
        "gpu_model": task.gpu_model.value if task.gpu_model else None,
        "gang": task.gang,
        "checkpoint_interval": task.checkpoint_interval,
    }


def _action_from_payload(payload: Mapping[str, object]) -> DynamicsAction:
    if "node_id" not in payload:
        raise SessionError("dynamics payload missing required field: node_id")
    return DynamicsAction(
        node_id=str(payload["node_id"]),
        cause=str(payload.get("cause", "failure")),
        graceful=bool(payload.get("graceful", False)),
        online=bool(payload.get("online", False)),
    )


_KIND_NAMES = {kind.name: kind for kind in DYNAMICS_EVENT_KINDS}


# ----------------------------------------------------------------------
# The session
# ----------------------------------------------------------------------
class SimulationSession:
    """One live, incrementally-stepped simulation behind the service.

    Construction mirrors one cell of the experiment grid — a scenario, a
    scheduler from the registry, a cluster size — but instead of running
    to completion the simulator sits live, accepting streamed
    submissions, dynamics injections and bounded :meth:`advance` calls.
    ``preload=True`` additionally submits the scenario's synthetic trace
    up front (useful for what-if experiments against a realistic
    background load); the scenario's trace is generated either way so
    GFS-family schedulers get their demand history.
    """

    def __init__(self, params: Optional[Mapping[str, object]] = None, session_id: Optional[str] = None):
        merged = dict(SESSION_DEFAULTS)
        unknown = sorted(set(params or ()) - set(SESSION_DEFAULTS))
        if unknown:
            raise SessionError(
                f"unknown session parameters: {', '.join(unknown)} "
                f"(accepted: {', '.join(sorted(SESSION_DEFAULTS))})"
            )
        merged.update(params or {})
        self.session_id = session_id or f"session-{next(_session_counter):04d}"
        self.params = merged
        try:
            scenario = get_scenario(str(merged["scenario"]))
            gpu_model = GPUModel(str(merged["gpu_model"]))
            seed = int(merged["seed"])
            num_nodes = int(merged["num_nodes"])
            gpus_per_node = int(merged["gpus_per_node"])
            duration_hours = float(merged["duration_hours"])
            spot_scale = float(merged["spot_scale"])
            record_limit = merged["pass_record_limit"]
            record_limit = None if record_limit in (None, 0) else int(record_limit)
            if record_limit is not None and record_limit < 1:
                raise ValueError("pass_record_limit must be >= 1 (or 0/null for unbounded)")
            stream_backlog = int(merged["stream_backlog"])
            if stream_backlog < 0:
                raise ValueError("stream_backlog must be >= 0 (0 disables streaming)")
        except (KeyError, ValueError) as exc:
            raise SessionError(f"invalid session parameters: {exc}") from exc

        cluster: Cluster = scenario.build_cluster(num_nodes, gpus_per_node, gpu_model)
        trace = scenario.build_trace(
            cluster_gpus=cluster.total_gpus(),
            duration_hours=duration_hours,
            spot_scale=spot_scale,
            seed=seed,
            gpu_model=gpu_model,
        )
        scheduler = build_scheduler(SchedulerSpec(kind=str(merged["scheduler"])), trace)
        dynamics = None
        if merged["dynamics"]:
            dynamics = FaultInjector(get_dynamics(str(merged["dynamics"])), seed=seed)
        max_time = merged["max_time"]
        config = SimulatorConfig(
            tick_interval=float(merged["tick_interval"]),
            max_time=float(max_time) if max_time is not None else None,
        )
        self.recorder = Recorder(
            pass_record_limit=record_limit, tick_sample_limit=record_limit
        )
        #: live SSE event channel (``None`` when ``stream_backlog=0``);
        #: taps the recorder's deterministic sim channel, so attaching it
        #: cannot perturb the run (zero-observer-effect, tests/test_stream.py)
        self.stream: Optional[SessionStream] = None
        if stream_backlog > 0:
            self.stream = SessionStream(self.session_id, backlog=stream_backlog)
            self.recorder.sim_listener = self.stream
        self.sim = ClusterSimulator(
            cluster, scheduler, config, dynamics=dynamics, recorder=self.recorder
        )
        if merged["preload"]:
            self.sim.submit_all(trace.sorted_tasks())

    # ------------------------------------------------------------------
    # Stepping
    # ------------------------------------------------------------------
    def status(self) -> Dict[str, object]:
        """Cheap liveness summary (no metric computation)."""
        sim = self.sim
        return {
            "session_id": self.session_id,
            "scheduler": self.params["scheduler"],
            "scenario": self.params["scenario"],
            "now": sim.now,
            "started": sim.started,
            "done": sim.done,
            "submitted_tasks": len(sim.all_tasks),
            "pending_tasks": len(sim.pending),
            "running_tasks": len(sim.cluster.running_tasks),
            "heap_events": len(sim._events),
        }

    def advance(
        self, until: Optional[float] = None, max_events: Optional[int] = None
    ) -> Dict[str, object]:
        """Step the simulator; returns processed-event count plus status."""
        if until is not None:
            until = float(until)
        if max_events is not None:
            max_events = int(max_events)
            if max_events < 0:
                raise SessionError("max_events must be non-negative")
        processed = self.sim.advance(until=until, max_events=max_events)
        result = self.status()
        result["processed_events"] = processed
        return result

    def submit(self, payloads: Sequence[Mapping[str, object]]) -> Dict[str, object]:
        """Submit a batch of task payloads; returns accepted task ids.

        Validation is all-or-nothing: every payload is decoded before any
        task reaches the simulator, so a malformed batch leaves the
        session untouched.
        """
        tasks = [task_from_payload(p) for p in payloads]
        ids = {t.task_id for t in tasks}
        if len(ids) != len(tasks):
            raise SessionError("duplicate task_id within one submit batch")
        known = {t.task_id for t in self.sim.all_tasks}
        clash = sorted(ids & known)
        if clash:
            raise SessionError(f"task ids already submitted: {', '.join(clash[:5])}")
        for task in tasks:
            self.sim.submit(task)
        if self.stream is not None:
            self.stream.emit("submit", {"t": self.sim.now, "count": len(tasks)})
        return {"accepted": [t.task_id for t in tasks], "now": self.sim.now}

    def inject(self, payload: Mapping[str, object]) -> Dict[str, object]:
        """Inject one dynamics action (node outage/return, capacity change)."""
        action = _action_from_payload(payload)
        kind_name = str(payload.get("kind", EventKind.CAPACITY_CHANGE.name))
        kind = _KIND_NAMES.get(kind_name)
        if kind is None:
            raise SessionError(
                f"unknown dynamics kind {kind_name!r} (accepted: {', '.join(sorted(_KIND_NAMES))})"
            )
        time = payload.get("time")
        self.sim.inject(action, time=float(time) if time is not None else None, kind=kind)
        if self.stream is not None:
            self.stream.emit(
                "inject", {"t": self.sim.now, "node": action.node_id, "kind": kind.name}
            )
        return {"injected": action.node_id, "kind": kind.name, "now": self.sim.now}

    # ------------------------------------------------------------------
    # Live queries
    # ------------------------------------------------------------------
    def occupancy(self) -> Dict[str, object]:
        """Live cluster occupancy: fleet aggregates, per-model capacity,
        per-org running usage and queued demand.

        Reads only O(1) aggregates and the incremental capacity index —
        no metric computation, no task scans beyond the running set — so
        clients can poll it at query rates without slowing the session.
        """
        sim = self.sim
        stats = sim.cluster.stats()
        return {
            "session_id": self.session_id,
            "now": sim.now,
            "total_gpus": stats.total_gpus,
            "idle_gpus": stats.idle_gpus,
            "hp_gpus": stats.hp_gpus,
            "spot_gpus": stats.spot_gpus,
            "allocation_rate": stats.allocation_rate,
            "running_hp_tasks": stats.running_hp_tasks,
            "running_spot_tasks": stats.running_spot_tasks,
            "pending_tasks": len(sim.pending),
            "capacity": sim.cluster.capacity_index.summary(),
            "org_usage": sim.cluster.org_usage(),
            "org_queued_demand": sim.pending.org_demand(),
        }

    def quota(self) -> Dict[str, object]:
        """Per-org quota headroom for high-priority work.

        ``quota`` is the scheduler's live per-org HP quota when it
        exposes one (GFS's SQA does, via ``current_quota()``); baselines
        without quota accounting report ``null`` and clients fall back
        to raw usage.  ``headroom = quota - hp_usage`` says how many more
        HP GPUs an org can claim before the quota gate closes on it.
        """
        sim = self.sim
        quota = None
        if hasattr(sim.scheduler, "current_quota"):
            quota = sim.scheduler.current_quota()
        hp_usage = sim.cluster.org_usage(TaskType.HP)
        hp_demand = sim.pending.org_demand(hp_only=True)
        orgs = sorted(set(hp_usage) | set(hp_demand))
        per_org = {}
        for org in orgs:
            used = hp_usage.get(org, 0.0)
            entry: Dict[str, object] = {
                "hp_gpus_running": used,
                "hp_gpus_queued": hp_demand.get(org, 0.0),
            }
            if quota is not None:
                entry["quota"] = quota
                entry["headroom"] = max(0.0, quota - used)
            per_org[org] = entry
        return {
            "session_id": self.session_id,
            "now": sim.now,
            "quota": quota,
            "orgs": per_org,
        }

    def sync_gauges(self) -> None:
        """Push the session's live state into its recorder's gauges.

        The recorder never *reads* simulator state (the zero-perturbation
        rule), so scrape-time values are pushed here instead — cheap O(1)
        aggregate reads only.
        """
        sim = self.sim
        rec = self.recorder
        rec.gauge("session.now", sim.now)
        rec.gauge("session.pending_tasks", len(sim.pending))
        rec.gauge("session.running_tasks", len(sim.cluster.running_tasks))
        rec.gauge("session.submitted_tasks", len(sim.all_tasks))
        rec.gauge("session.heap_events", len(sim._events))
        rec.gauge("session.allocation_rate", sim.cluster.allocation_rate())

    def stats(self) -> Dict[str, object]:
        """Live per-session observability: status plus the recorder view."""
        self.sync_gauges()
        result = self.status()
        result["recorder"] = self.recorder.snapshot()
        result["stream"] = self.stream.stats() if self.stream is not None else None
        return result

    def prometheus_section(self, emit_type_lines: bool = False) -> str:
        """This session's slice of the server's ``GET /metrics`` page.

        Every sample carries a ``session="<id>"`` label; ``# TYPE`` lines
        are suppressed by default so one page can stack many sessions
        without duplicate type declarations.
        """
        self.sync_gauges()
        return render_recorder(
            self.recorder,
            extra_labels={"session": self.session_id},
            emit_type_lines=emit_type_lines,
        )

    def metrics(self) -> Dict[str, object]:
        """Full simulation metrics of the run so far.

        :meth:`~ClusterSimulator.finalize` is safe mid-run (the capacity
        integral is incremental and idempotent), so live metric queries
        never change what the session will eventually report.
        """
        return self.sim.finalize().as_dict()

    def what_if(
        self,
        payload: Mapping[str, object],
        horizon_hours: float = 24.0,
    ) -> Dict[str, object]:
        """Speculative placement advice: where would this task land?

        Forks the live simulator, submits the candidate task into the
        fork and advances it until the task finishes or the horizon
        expires, then reports when the task would start and finish and
        what it would displace.  The live session is untouched — the
        fork shares no mutable state — and because the fork inherits the
        full deterministic state, the advice is exact, not an estimate,
        under the assumption of no further external submissions.
        """
        candidate = task_from_payload(payload)
        horizon_hours = float(horizon_hours)
        if horizon_hours <= 0:
            raise SessionError("horizon_hours must be positive")
        fork = self.sim.fork()
        known = {t.task_id for t in fork.all_tasks}
        if candidate.task_id in known:
            raise SessionError(f"task id {candidate.task_id!r} already submitted")
        evictions_before = sum(t.eviction_count for t in fork.all_tasks)
        fork.submit(candidate)
        deadline = max(fork.now, candidate.submit_time) + horizon_hours * 3600.0
        # Bounded chunks so one advice request can never wedge the server
        # on a pathological fork; the loop exits as soon as the candidate
        # finishes, the horizon passes, or the fork drains.
        while candidate.finish_time is None and not fork.done and fork.now < deadline:
            if fork.advance(until=deadline, max_events=256) == 0:
                break
        evictions_caused = sum(t.eviction_count for t in fork.all_tasks) - evictions_before
        started = candidate.first_start_time is not None
        result: Dict[str, object] = {
            "session_id": self.session_id,
            "task_id": candidate.task_id,
            "now": self.sim.now,
            "horizon_hours": horizon_hours,
            "would_start": started,
            "would_finish": candidate.finish_time is not None,
            "start_time": candidate.first_start_time,
            "finish_time": candidate.finish_time,
            "queue_wait": (
                candidate.first_start_time - max(self.sim.now, candidate.submit_time)
                if started
                else None
            ),
            "spot_evictions_caused": evictions_caused,
        }
        return result

    # ------------------------------------------------------------------
    # Snapshot / restore
    # ------------------------------------------------------------------
    @classmethod
    def from_stored(
        cls,
        params: Mapping[str, object],
        session_id: str,
        snapshot: bytes,
    ) -> "SimulationSession":
        """Rebuild a session from a durable store record (boot recovery).

        Construction re-derives the host-local scaffolding (scenario,
        trace, recorder) from the stored parameters, then the simulator
        state is replaced wholesale from the checksummed snapshot — so a
        recovered session advances bit-identically to one that never
        went down (guarded by ``tests/test_service_durability.py``).
        """
        session = cls(params, session_id=session_id)
        session.restore_bytes(snapshot)
        return session

    def snapshot_bytes(self) -> bytes:
        """The full session state as a versioned, checksummed envelope."""
        from .snapshot import encode_snapshot

        return encode_snapshot(self.sim.snapshot())

    def restore_bytes(self, data: bytes) -> Dict[str, object]:
        """Replace this session's simulator with a decoded snapshot."""
        from .snapshot import decode_snapshot

        self.sim = ClusterSimulator.restore(decode_snapshot(data))
        # Snapshots restore with the no-op recorder (instrumentation is
        # host-local, not simulation state); reattach this session's.
        self.sim.obs = self.recorder
        if self.stream is not None:
            self.stream.emit("restore", {"t": self.sim.now})
        return self.status()


def reset_session_counter() -> None:
    """Restart session-id numbering (test isolation)."""
    global _session_counter
    _session_counter = itertools.count(1)


def advance_session_counter(min_next: int) -> None:
    """Make newly-created sessions number from at least ``min_next``.

    Boot recovery calls this with one past the highest recovered
    ``session-NNNN`` ordinal so restored ids are never re-issued to new
    sessions.  Only call before any new sessions exist (at boot or after
    :func:`reset_session_counter`): the counter is replaced outright.
    """
    global _session_counter
    _session_counter = itertools.count(max(1, int(min_next)))
