"""Clients for the streaming scheduler service.

Two flavours over the same JSON API:

* :class:`ServiceClient` — synchronous, built on :mod:`http.client`
  with one persistent keep-alive connection.  For scripts, notebooks
  and the smoke/benchmark harnesses.
* :class:`AsyncServiceClient` — asyncio, built on
  ``asyncio.open_connection``.  For concurrent load tests and callers
  already inside an event loop.

Both raise :class:`ServiceError` on any non-200 response, carrying the
HTTP status and the server's ``error`` message.  Method names mirror the
routes one-to-one; see ``docs/service.md`` for the payload shapes.

Retry safety
------------
Transport failures (server restart, dropped keep-alive connection) are
retried with deterministic backoff — but *only* for requests that are
safe to deliver twice.  ``GET``/``DELETE`` are idempotent by HTTP
semantics; every ``POST`` the clients emit carries a generated
``Idempotency-Key`` header, reused verbatim across retries of the same
logical call, which the server uses to coalesce duplicate deliveries
onto one operation (see ``docs/fault_tolerance.md``).  A ``POST`` issued
without a key — only possible through the private transport layer — is
never retried: if the connection dies after the bytes left, the request
may or may not have executed, and replaying it blind could double-submit.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import time
import uuid
from typing import Dict, List, Mapping, Optional, Sequence

from .snapshot import snapshot_from_text, snapshot_to_text
from .stream import parse_sse_stream

#: transport-level delivery attempts per request (1 original + retries)
DEFAULT_RETRIES = 2


def _retry_delay_s(attempt: int, base_s: float = 0.05, cap_s: float = 2.0) -> float:
    """Deterministic exponential backoff between delivery attempts."""
    return min(cap_s, base_s * 2.0 ** (attempt - 1))


def _new_idempotency_key() -> str:
    """A fresh key binding all deliveries of one logical mutating call."""
    return uuid.uuid4().hex


class ServiceError(RuntimeError):
    """A service request failed; carries the HTTP status and message."""

    def __init__(self, status: int, message: str):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class ServiceClient:
    """Synchronous client holding one persistent connection.

    Example
    -------
    >>> client = ServiceClient("127.0.0.1", 8151)
    >>> session = client.create_session(scheduler="gfs", num_nodes=16)
    >>> client.submit(session["session_id"], [task_payload])
    >>> client.advance(session["session_id"], until=3600.0)
    >>> client.close()
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8151,
        timeout: float = 60.0,
        retries: int = DEFAULT_RETRIES,
    ):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = max(0, int(retries))
        self._conn: Optional[http.client.HTTPConnection] = None

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _send_once(self, method: str, path: str, body: bytes, headers: Dict[str, str]):
        if self._conn is None:
            self._conn = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        self._conn.request(method, path, body=body, headers=headers)
        response = self._conn.getresponse()
        return response, response.read()

    def _request_bytes(
        self,
        method: str,
        path: str,
        payload: Optional[Mapping] = None,
        idempotency_key: Optional[str] = None,
    ) -> bytes:
        body = json.dumps(payload).encode("utf-8") if payload is not None else b""
        headers = {"Content-Type": "application/json", "Content-Length": str(len(body))}
        if idempotency_key:
            headers["Idempotency-Key"] = idempotency_key
        # A request is only re-sent when delivering it twice is safe:
        # GET/DELETE by HTTP semantics, POST only when an Idempotency-Key
        # binds every delivery to one server-side operation.  An unkeyed
        # POST that dies mid-flight may already have executed — replaying
        # it blind could double-submit, so it fails loudly instead.
        retryable = method in ("GET", "DELETE") or bool(idempotency_key)
        attempts = 1 + (self.retries if retryable else 0)
        last_exc: Optional[Exception] = None
        for attempt in range(1, attempts + 1):
            try:
                response, data = self._send_once(method, path, body, headers)
            except (http.client.HTTPException, ConnectionError, OSError) as exc:
                # The connection is poisoned either way (stale keep-alive,
                # server restart); drop it so any retry reconnects fresh.
                self.close()
                last_exc = exc
                if attempt < attempts:
                    time.sleep(_retry_delay_s(attempt))
                    continue
                raise
            if response.status != 200:
                try:
                    decoded = json.loads(data) if data else {}
                except ValueError:
                    decoded = {}
                raise ServiceError(
                    response.status, decoded.get("error", data.decode("utf-8", "replace"))
                )
            return data
        raise last_exc  # unreachable; loop always returns or raises

    def _request(
        self,
        method: str,
        path: str,
        payload: Optional[Mapping] = None,
        idempotency_key: Optional[str] = None,
    ) -> Dict:
        data = self._request_bytes(method, path, payload, idempotency_key=idempotency_key)
        return json.loads(data) if data else {}

    def _post(self, path: str, payload: Optional[Mapping] = None) -> Dict:
        """A mutating POST: one fresh key spans all its delivery attempts."""
        return self._request("POST", path, payload, idempotency_key=_new_idempotency_key())

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # API surface
    # ------------------------------------------------------------------
    def healthz(self) -> Dict:
        return self._request("GET", "/healthz")

    def shutdown(self) -> Dict:
        return self._post("/shutdown")

    def readyz(self) -> Dict:
        return self._request("GET", "/readyz")

    def list_sessions(self) -> List[Dict]:
        return self._request("GET", "/sessions")["sessions"]

    def create_session(self, **params) -> Dict:
        return self._post("/sessions", params)

    def status(self, session_id: str) -> Dict:
        return self._request("GET", f"/sessions/{session_id}")

    def delete_session(self, session_id: str) -> Dict:
        return self._request("DELETE", f"/sessions/{session_id}")

    def advance(
        self,
        session_id: str,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> Dict:
        return self._post(
            f"/sessions/{session_id}/advance", {"until": until, "max_events": max_events}
        )

    def submit(self, session_id: str, tasks: Sequence[Mapping]) -> Dict:
        return self._post(f"/sessions/{session_id}/submit", {"tasks": list(tasks)})

    def inject(self, session_id: str, **payload) -> Dict:
        return self._post(f"/sessions/{session_id}/inject", payload)

    def what_if(self, session_id: str, task: Mapping, horizon_hours: float = 24.0) -> Dict:
        return self._post(
            f"/sessions/{session_id}/whatif", {"task": dict(task), "horizon_hours": horizon_hours}
        )

    def occupancy(self, session_id: str) -> Dict:
        return self._request("GET", f"/sessions/{session_id}/occupancy")

    def quota(self, session_id: str) -> Dict:
        return self._request("GET", f"/sessions/{session_id}/quota")

    def metrics(self, session_id: str) -> Dict:
        return self._request("GET", f"/sessions/{session_id}/metrics")

    def stats(self, session_id: str) -> Dict:
        """Live observability stats: status plus the session's recorder snapshot."""
        return self._request("GET", f"/sessions/{session_id}/stats")

    def metrics_text(self) -> str:
        """Scrape the server-wide Prometheus exposition page (``GET /metrics``)."""
        return self._request_bytes("GET", "/metrics").decode("utf-8")

    def snapshot(self, session_id: str) -> bytes:
        """Export the session's state as versioned envelope bytes."""
        text = self._post(f"/sessions/{session_id}/snapshot")["snapshot"]
        return snapshot_from_text(text)

    def restore(self, session_id: str, snapshot: bytes) -> Dict:
        return self._post(
            f"/sessions/{session_id}/restore", {"snapshot": snapshot_to_text(snapshot)}
        )


class SSESubscription:
    """One live ``GET /sessions/{id}/stream`` connection (SSE).

    Returned by :meth:`AsyncServiceClient.open_stream`; each
    subscription owns a dedicated connection (the stream never yields
    the socket back to request/response framing).  :meth:`read_frame`
    returns raw frames — heartbeat comments included — and appends
    every byte to :attr:`raw`, which is what the byte-identity tests in
    ``tests/test_stream.py`` compare; :meth:`read_event` skips
    heartbeats and hands back parsed ``{id, event, data}`` dicts.
    """

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        self._reader = reader
        self._writer = writer
        self._buffer = b""
        #: every stream byte received, in order (frames + heartbeats)
        self.raw = bytearray()
        #: last event id seen (feed to ``open_stream`` to resume)
        self.last_event_id: Optional[int] = None

    async def read_frame(self, timeout: Optional[float] = None) -> Optional[str]:
        """The next raw SSE frame (ending ``\\n\\n``), or ``None`` on EOF."""
        while b"\n\n" not in self._buffer:
            read = self._reader.read(4096)
            chunk = await (asyncio.wait_for(read, timeout) if timeout is not None else read)
            if not chunk:
                return None
            self._buffer += chunk
        frame, _, self._buffer = self._buffer.partition(b"\n\n")
        frame += b"\n\n"
        self.raw += frame
        return frame.decode("utf-8")

    async def read_event(self, timeout: Optional[float] = None) -> Optional[Dict[str, Optional[str]]]:
        """The next parsed event (heartbeat comments skipped); ``None`` on EOF."""
        while True:
            frame = await self.read_frame(timeout)
            if frame is None:
                return None
            events = parse_sse_stream(frame)
            if not events:
                continue  # heartbeat / comment frame
            event = events[0]
            if event["id"] is not None:
                self.last_event_id = int(event["id"])
            return event

    async def close(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass


class AsyncServiceClient:
    """Asyncio client over one persistent keep-alive connection.

    The transport is deliberately minimal — write request, read
    ``Content-Length``-framed response — because that is the only
    protocol shape the server emits.  One client instance is one
    connection and must not be shared between concurrently-running
    coroutines; spawn one client per concurrent worker instead (the
    concurrency tests do exactly that).

    Example
    -------
    >>> client = AsyncServiceClient("127.0.0.1", 8151)
    >>> session = await client.create_session(scheduler="fgd")
    >>> await client.advance(session["session_id"], until=7200.0)
    >>> await client.close()
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8151, retries: int = DEFAULT_RETRIES):
        self.host = host
        self.port = port
        self.retries = max(0, int(retries))
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    async def _connect(self) -> None:
        if self._writer is None:
            self._reader, self._writer = await asyncio.open_connection(self.host, self.port)

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._reader = None
            self._writer = None

    async def _send_once(self, method: str, path: str, body: bytes, extra_headers: str) -> tuple:
        await self._connect()
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"{extra_headers}"
            f"Connection: keep-alive\r\n\r\n"
        )
        self._writer.write(head.encode("latin-1") + body)
        await self._writer.drain()
        status_line = await self._reader.readline()
        if not status_line:
            raise ConnectionError("connection closed before a response arrived")
        status = int(status_line.split()[1])
        length = 0
        while True:
            line = await self._reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                length = int(value.strip())
        data = await self._reader.readexactly(length) if length else b""
        return status, data

    async def _request_bytes(
        self,
        method: str,
        path: str,
        payload: Optional[Mapping] = None,
        idempotency_key: Optional[str] = None,
    ) -> bytes:
        body = json.dumps(payload).encode("utf-8") if payload is not None else b""
        extra = f"Idempotency-Key: {idempotency_key}\r\n" if idempotency_key else ""
        # Same retry discipline as the sync client: re-send only what is
        # safe to deliver twice (GET/DELETE, or a keyed POST).
        retryable = method in ("GET", "DELETE") or bool(idempotency_key)
        attempts = 1 + (self.retries if retryable else 0)
        for attempt in range(1, attempts + 1):
            try:
                status, data = await self._send_once(method, path, body, extra)
            except (ConnectionError, OSError, asyncio.IncompleteReadError, ValueError) as exc:
                await self.close()
                if attempt < attempts:
                    await asyncio.sleep(_retry_delay_s(attempt))
                    continue
                raise
            if status != 200:
                try:
                    decoded = json.loads(data) if data else {}
                except ValueError:
                    decoded = {}
                raise ServiceError(status, decoded.get("error", data.decode("utf-8", "replace")))
            return data
        raise ConnectionError("request not delivered")  # unreachable

    async def _request(
        self,
        method: str,
        path: str,
        payload: Optional[Mapping] = None,
        idempotency_key: Optional[str] = None,
    ) -> Dict:
        data = await self._request_bytes(method, path, payload, idempotency_key=idempotency_key)
        return json.loads(data) if data else {}

    async def _post(self, path: str, payload: Optional[Mapping] = None) -> Dict:
        """A mutating POST: one fresh key spans all its delivery attempts."""
        return await self._request("POST", path, payload, idempotency_key=_new_idempotency_key())

    # ------------------------------------------------------------------
    # API surface (mirrors ServiceClient)
    # ------------------------------------------------------------------
    async def healthz(self) -> Dict:
        return await self._request("GET", "/healthz")

    async def shutdown(self) -> Dict:
        return await self._post("/shutdown")

    async def readyz(self) -> Dict:
        return await self._request("GET", "/readyz")

    async def list_sessions(self) -> List[Dict]:
        return (await self._request("GET", "/sessions"))["sessions"]

    async def create_session(self, **params) -> Dict:
        return await self._post("/sessions", params)

    async def status(self, session_id: str) -> Dict:
        return await self._request("GET", f"/sessions/{session_id}")

    async def delete_session(self, session_id: str) -> Dict:
        return await self._request("DELETE", f"/sessions/{session_id}")

    async def advance(
        self,
        session_id: str,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> Dict:
        return await self._post(
            f"/sessions/{session_id}/advance", {"until": until, "max_events": max_events}
        )

    async def submit(self, session_id: str, tasks: Sequence[Mapping]) -> Dict:
        return await self._post(f"/sessions/{session_id}/submit", {"tasks": list(tasks)})

    async def inject(self, session_id: str, **payload) -> Dict:
        return await self._post(f"/sessions/{session_id}/inject", payload)

    async def what_if(self, session_id: str, task: Mapping, horizon_hours: float = 24.0) -> Dict:
        return await self._post(
            f"/sessions/{session_id}/whatif", {"task": dict(task), "horizon_hours": horizon_hours}
        )

    async def occupancy(self, session_id: str) -> Dict:
        return await self._request("GET", f"/sessions/{session_id}/occupancy")

    async def quota(self, session_id: str) -> Dict:
        return await self._request("GET", f"/sessions/{session_id}/quota")

    async def metrics(self, session_id: str) -> Dict:
        return await self._request("GET", f"/sessions/{session_id}/metrics")

    async def stats(self, session_id: str) -> Dict:
        """Live observability stats: status plus the session's recorder snapshot."""
        return await self._request("GET", f"/sessions/{session_id}/stats")

    async def metrics_text(self) -> str:
        """Scrape the server-wide Prometheus exposition page (``GET /metrics``)."""
        return (await self._request_bytes("GET", "/metrics")).decode("utf-8")

    async def open_stream(
        self, session_id: str, last_event_id: Optional[int] = None
    ) -> SSESubscription:
        """Subscribe to the session's live SSE event stream.

        Opens a *dedicated* connection (independent of this client's
        keep-alive one, so requests and streaming never interleave).
        Pass the previous subscription's ``last_event_id`` to resume
        losslessly within the server's backlog window.
        """
        reader, writer = await asyncio.open_connection(self.host, self.port)
        head = (
            f"GET /sessions/{session_id}/stream HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            f"Accept: text/event-stream\r\n"
        )
        if last_event_id is not None:
            head += f"Last-Event-ID: {int(last_event_id)}\r\n"
        head += "Connection: close\r\n\r\n"
        writer.write(head.encode("latin-1"))
        await writer.drain()
        status_line = await reader.readline()
        if not status_line:
            raise ConnectionError("connection closed before the stream opened")
        status = int(status_line.split()[1])
        length = 0
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                length = int(value.strip())
        if status != 200:
            data = await reader.readexactly(length) if length else b""
            writer.close()
            try:
                decoded = json.loads(data) if data else {}
            except ValueError:
                decoded = {}
            raise ServiceError(status, decoded.get("error", data.decode("utf-8", "replace")))
        sub = SSESubscription(reader, writer)
        if last_event_id is not None:
            sub.last_event_id = int(last_event_id)
        return sub

    async def snapshot(self, session_id: str) -> bytes:
        text = (await self._post(f"/sessions/{session_id}/snapshot"))["snapshot"]
        return snapshot_from_text(text)

    async def restore(self, session_id: str, snapshot: bytes) -> Dict:
        return await self._post(
            f"/sessions/{session_id}/restore", {"snapshot": snapshot_to_text(snapshot)}
        )
