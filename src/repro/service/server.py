"""Asyncio scheduler service: streaming sessions over HTTP/JSON.

Stdlib only — the transport is a hand-rolled HTTP/1.1 server on
``asyncio.start_server`` (no aiohttp dependency), which is entirely
adequate for a JSON control plane: requests are small, responses are
JSON, and keep-alive plus ``Content-Length`` framing is all the protocol
surface the clients in :mod:`repro.service.client` use.

Concurrency model
-----------------
Each connection is one asyncio task; many clients interleave freely.
Simulator work is synchronous and CPU-bound, so every session carries an
``asyncio.Lock`` and all operations on it — stepping, submission,
queries, what-if forks — run under that lock in the default thread-pool
executor.  That gives:

* **per-session serial order**: operations on one session never
  interleave, so the simulator's determinism contract survives any
  client concurrency (the order of *independent* client requests is
  necessarily racy, but each request is atomic);
* **cross-session isolation**: sessions share nothing but the registry
  dict, so queries against one session cannot perturb another — guarded
  by ``tests/test_service.py``;
* **a responsive loop**: the event loop only parses bytes and routes;
  long advances run off-loop, bounded by ``max_events`` chunking in
  the what-if path.

Durability (see ``docs/fault_tolerance.md``)
--------------------------------------------
With a ``state_dir`` the server is restart-safe: every mutating
operation persists the session afterwards — parameters plus the same
versioned, checksummed snapshot envelope clients export — via atomic
temp-and-rename writes, and boot recovery rebuilds every stored session
before ``GET /readyz`` flips to ready (corrupt files are quarantined,
never fatal).  ``POST`` requests may carry an ``Idempotency-Key``
header: duplicate deliveries of the same key (client retries after a
lost connection) coalesce onto the *same* in-flight operation and
receive its one result, so a retried submit never double-submits.  A
``request_timeout_s`` bounds each request: past the deadline the client
gets 504 while the operation runs to completion server-side (cancelling
mid-mutation under the session lock would be worse than waiting).

Routes (all JSON; see ``docs/service.md`` for request/response bodies)::

    GET    /healthz
    GET    /readyz                       503 until boot recovery finishes
    GET    /metrics                      Prometheus text: server + every session
    GET    /sessions                     list sessions
    POST   /sessions                     create a session
    GET    /sessions/{id}                status
    DELETE /sessions/{id}                drop a session
    POST   /sessions/{id}/advance        step the simulator
    POST   /sessions/{id}/submit         stream task submissions
    POST   /sessions/{id}/inject         inject a dynamics event
    POST   /sessions/{id}/whatif         speculative placement advice
    GET    /sessions/{id}/occupancy      live cluster occupancy
    GET    /sessions/{id}/quota          per-org quota headroom
    GET    /sessions/{id}/metrics        full metrics of the run so far
    GET    /sessions/{id}/stats          live recorder stats (passes, counters)
    GET    /sessions/{id}/stream         live SSE event stream (docs/observability.md)
    POST   /sessions/{id}/snapshot       export a versioned snapshot
    POST   /sessions/{id}/restore        replace state from a snapshot
    GET    /dashboard                    self-contained live HTML dashboard
    POST   /shutdown                     stop the server
"""

from __future__ import annotations

import asyncio
import json
import time
from collections import OrderedDict
from pathlib import Path
from typing import Dict, Mapping, Optional, Tuple

from ..obs import PROMETHEUS_CONTENT_TYPE, Recorder, render_recorder
from ..obs.logging import get_logger, new_run_id
from .dashboard import DASHBOARD_HTML
from .session import SessionError, SimulationSession, advance_session_counter
from .snapshot import SnapshotError, snapshot_from_text, snapshot_to_text
from .store import RecoveryReport, SessionStore
from .stream import HEARTBEAT_FRAME, SessionStream, gap_frame

#: requests larger than this are rejected outright (snapshots dominate;
#: a FULL-scale mid-run snapshot compresses to a few MB)
MAX_BODY_BYTES = 256 * 1024 * 1024
_MAX_HEADER_BYTES = 64 * 1024

#: completed idempotency results kept for duplicate delivery (oldest drop)
IDEMPOTENCY_CACHE_SIZE = 1024

#: session verbs whose handlers mutate simulator state (persisted after)
_MUTATING_VERBS = frozenset({"advance", "submit", "inject", "restore"})

#: seconds between SSE keep-alive comments on an otherwise idle stream
STREAM_HEARTBEAT_S = 15.0

#: Structured JSON-lines log (``repro.obs.logging`` schema, one object
#: per line); silent unless the host configures logging — ``cli serve
#: --log-level info`` does.  Server instances bind a ``run_id``.
_LOG = get_logger("repro.service")


class TextResponse:
    """A non-JSON response body (``GET /metrics``' Prometheus page)."""

    __slots__ = ("text", "content_type")

    def __init__(self, text: str, content_type: str = "text/plain; charset=utf-8"):
        self.text = text
        self.content_type = content_type


class StreamHandle:
    """Sentinel payload: switch this connection to SSE streaming mode.

    Returned by the ``GET /sessions/{id}/stream`` route; the connection
    handler detects it and hands the socket to ``_serve_stream`` instead
    of the Content-Length response writer.
    """

    __slots__ = ("stream",)

    def __init__(self, stream: SessionStream):
        self.stream = stream


class _HttpError(Exception):
    """Terminates request handling with a specific status code."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status
        self.message = message


class SchedulerServer:
    """The streaming scheduler service (see module docstring).

    Example
    -------
    >>> server = SchedulerServer()
    >>> await server.start(port=0)          # 0 = ephemeral port
    >>> server.port                          # actual bound port
    >>> await server.wait_closed()           # returns after POST /shutdown
    """

    def __init__(
        self,
        state_dir: str | Path | None = None,
        request_timeout_s: Optional[float] = None,
        persist_interval_s: Optional[float] = None,
    ) -> None:
        self._sessions: Dict[str, SimulationSession] = {}
        self._locks: Dict[str, asyncio.Lock] = {}
        self._server: Optional[asyncio.base_events.Server] = None
        self._shutdown = asyncio.Event()
        self.host: str = ""
        self.port: int = 0
        #: correlation id stamped on every structured log line of this server
        self.run_id = new_run_id("svc")
        self._log = _LOG.bind(run_id=self.run_id)
        #: seconds between keep-alive comments on idle SSE streams
        self.stream_heartbeat_s = STREAM_HEARTBEAT_S
        #: server-level instruments: request counts and latencies
        self.recorder = Recorder()
        #: durable session store (None = in-memory-only service, as before)
        self.store = SessionStore(state_dir) if state_dir else None
        #: per-request deadline; past it the client gets 504 while the
        #: operation runs to completion server-side
        self.request_timeout_s = request_timeout_s
        self.persist_interval_s = persist_interval_s
        #: what boot recovery found (None until it has run)
        self.recovery: Optional[RecoveryReport] = None
        self._ready = asyncio.Event()
        #: scoped Idempotency-Key -> in-flight/completed dispatch task
        self._idempotent: "OrderedDict[str, asyncio.Task]" = OrderedDict()
        self._persist_task: Optional[asyncio.Task] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self, host: str = "127.0.0.1", port: int = 8151) -> None:
        self._server = await asyncio.start_server(self._handle_connection, host, port)
        sock = self._server.sockets[0]
        self.host, self.port = sock.getsockname()[:2]
        # The listener is up (so readiness probes can connect and get
        # 503) but session routes stay gated until recovery finishes.
        await self._recover_sessions()
        self._ready.set()
        if self.store is not None and self.persist_interval_s:
            self._persist_task = asyncio.ensure_future(self._persist_loop())

    async def wait_closed(self) -> None:
        """Block until a shutdown is requested, then close the listener."""
        await self._shutdown.wait()
        await self.stop()

    async def stop(self) -> None:
        self._shutdown.set()
        if self._persist_task is not None:
            self._persist_task.cancel()
            try:
                await self._persist_task
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass
            self._persist_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # ------------------------------------------------------------------
    # Durability
    # ------------------------------------------------------------------
    async def _recover_sessions(self) -> None:
        """Rebuild every stored session before the server reports ready.

        Corrupt files were already quarantined by the store scan; a
        session that fails to *rebuild* (e.g. its scenario was removed
        from the registry) is quarantined the same way — one lost
        session must never take the boot down.
        """
        if self.store is None:
            return
        loop = asyncio.get_running_loop()
        report = await loop.run_in_executor(None, self.store.recover)
        for stored in list(report.recovered):
            try:
                session = await loop.run_in_executor(
                    None,
                    SimulationSession.from_stored,
                    stored.params,
                    stored.session_id,
                    stored.snapshot,
                )
            except Exception as exc:  # noqa: BLE001 - quarantine, don't crash the boot
                self._log.warning(
                    "session_quarantined", session_id=stored.session_id, error=str(exc)
                )
                self.store.quarantine(self.store._path(stored.session_id))
                report.recovered.remove(stored)
                report.quarantined.append(f"{stored.session_id}.json")
                continue
            self._sessions[session.session_id] = session
            self._locks[session.session_id] = asyncio.Lock()
        # Never re-issue a recovered id to a newly-created session.
        advance_session_counter(report.max_session_number() + 1)
        self.recovery = report

    def _persist(self, session: SimulationSession) -> None:
        """Durably save one session (called off-loop, under its lock)."""
        if self.store is not None:
            self.store.save(session.session_id, dict(session.params), session.snapshot_bytes())

    async def _persist_loop(self) -> None:
        """Periodic belt-and-braces flush of every live session."""
        while not self._shutdown.is_set():
            try:
                await asyncio.wait_for(self._shutdown.wait(), self.persist_interval_s)
                return
            except asyncio.TimeoutError:
                pass
            for session_id in list(self._sessions):
                session = self._sessions.get(session_id)
                lock = self._locks.get(session_id)
                if session is None or lock is None:
                    continue
                try:
                    await self._run(lock, lambda s=session: self._persist(s))
                except Exception as exc:  # noqa: BLE001 - a failed flush must not kill the loop
                    self._log.warning(
                        "persist_failed", session_id=session_id, error=str(exc)
                    )

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while not self._shutdown.is_set():
                try:
                    request = await self._read_request(reader)
                except _HttpError as exc:
                    # Framing errors poison the stream; answer and hang up.
                    await self._write_response(
                        writer, exc.status, {"error": exc.message}, keep_alive=False
                    )
                    break
                if request is None:
                    break  # client closed the connection
                method, path, body, keep_alive, headers = request
                started = time.perf_counter()
                status, payload = await self._dispatch(method, path, body, headers)
                if isinstance(payload, StreamHandle):
                    # The connection becomes a dedicated SSE channel; it
                    # never returns to request/response framing.
                    await self._serve_stream(writer, payload.stream, headers)
                    duration_ms = (time.perf_counter() - started) * 1000.0
                    self._observe_request(method, path, status, duration_ms)
                    break
                duration_ms = (time.perf_counter() - started) * 1000.0
                self._observe_request(method, path, status, duration_ms)
                await self._write_response(writer, status, payload, keep_alive)
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-request; nothing to clean up
        except asyncio.CancelledError:
            # Event-loop teardown cancels idle keep-alive handlers;
            # finishing normally (socket closed below) keeps asyncio's
            # stream-protocol done-callback from logging the cancel.
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    def _observe_request(self, method: str, path: str, status: int, duration_ms: float) -> None:
        """Structured access log line + server-level request instruments."""
        session_id = None
        clean = path.split("?", 1)[0]
        if clean.startswith("/sessions/"):
            session_id = clean[len("/sessions/"):].split("/", 1)[0] or None
        self._log.info(
            "http_request",
            method=method,
            path=clean,
            status=status,
            duration_ms=round(duration_ms, 2),
            session_id=session_id,
        )
        self.recorder.count(
            "http.requests", 1.0, {"method": method, "status": str(status)}
        )
        self.recorder.observe("http.request_s", duration_ms / 1000.0)

    @staticmethod
    async def _read_request(
        reader: asyncio.StreamReader,
    ) -> Optional[Tuple[str, str, bytes, bool, Dict[str, str]]]:
        """Parse one HTTP/1.1 request; ``None`` on clean connection close."""
        try:
            header_blob = await reader.readuntil(b"\r\n\r\n")
        except asyncio.IncompleteReadError as exc:
            if not exc.partial:
                return None  # clean EOF between requests
            raise
        except asyncio.LimitOverrunError as exc:
            raise _HttpError(431, "request headers too large") from exc
        if len(header_blob) > _MAX_HEADER_BYTES:
            raise _HttpError(431, "request headers too large")
        head, *header_lines = header_blob.decode("latin-1").split("\r\n")
        parts = head.split(" ")
        if len(parts) != 3:
            raise _HttpError(400, f"malformed request line: {head!r}")
        method, path, _version = parts
        headers = {}
        for line in header_lines:
            if ":" in line:
                name, _, value = line.partition(":")
                headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > MAX_BODY_BYTES:
            raise _HttpError(413, f"request body too large ({length} bytes)")
        body = await reader.readexactly(length) if length else b""
        keep_alive = headers.get("connection", "keep-alive").lower() != "close"
        return method.upper(), path, body, keep_alive, headers

    @staticmethod
    async def _write_response(
        writer: asyncio.StreamWriter, status: int, payload: object, keep_alive: bool
    ) -> None:
        if isinstance(payload, TextResponse):
            body = payload.text.encode("utf-8")
            content_type = payload.content_type
        else:
            body = json.dumps(payload).encode("utf-8")
            content_type = "application/json"
        reason = {200: "OK", 400: "Bad Request", 404: "Not Found", 405: "Method Not Allowed",
                  409: "Conflict", 413: "Payload Too Large", 431: "Headers Too Large",
                  500: "Internal Server Error", 503: "Service Unavailable",
                  504: "Gateway Timeout"}.get(status, "Unknown")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            f"\r\n"
        )
        writer.write(head.encode("latin-1") + body)
        await writer.drain()

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    async def _dispatch(
        self, method: str, path: str, body: bytes, headers: Optional[Mapping[str, str]] = None
    ) -> Tuple[int, object]:
        """Dispatch one request: idempotency coalescing + deadline.

        A ``POST`` carrying an ``Idempotency-Key`` header is bound to one
        dispatch task per ``(method, path, key)``: the first delivery
        starts the operation, every duplicate — including retries sent
        while the original is *still executing* under the session lock —
        awaits that same task and receives its single result.  The
        per-request deadline 504s the waiter but never cancels the task
        (the operation finishes server-side; a later retry with the same
        key collects the result).
        """
        idem_key = (headers or {}).get("idempotency-key", "")
        inner = self._dispatch_inner(method, path, body)
        if idem_key and method == "POST":
            scoped = f"{method} {path.split('?', 1)[0]} {idem_key}"
            task = self._idempotent.get(scoped)
            if task is None:
                task = asyncio.ensure_future(inner)
                self._idempotent[scoped] = task
                while len(self._idempotent) > IDEMPOTENCY_CACHE_SIZE:
                    self._idempotent.popitem(last=False)
            else:
                inner.close()  # duplicate delivery: join the original
            return await self._await_with_deadline(task)
        return await self._await_with_deadline(asyncio.ensure_future(inner))

    async def _await_with_deadline(self, task: "asyncio.Task") -> Tuple[int, object]:
        if self.request_timeout_s is None:
            return await asyncio.shield(task)
        try:
            return await asyncio.wait_for(asyncio.shield(task), self.request_timeout_s)
        except asyncio.TimeoutError:
            return 504, {
                "error": (
                    f"request exceeded the {self.request_timeout_s:g}s deadline; "
                    "the operation continues server-side (retry idempotent "
                    "requests with the same Idempotency-Key to collect the result)"
                )
            }

    async def _dispatch_inner(self, method: str, path: str, body: bytes) -> Tuple[int, object]:
        try:
            return await self._route(method, path, body)
        except _HttpError as exc:
            return exc.status, {"error": exc.message}
        except (SessionError, SnapshotError) as exc:
            return 400, {"error": str(exc)}
        except Exception as exc:  # noqa: BLE001 - one request must never kill the server
            return 500, {"error": f"{type(exc).__name__}: {exc}"}

    async def _route(self, method: str, path: str, body: bytes) -> Tuple[int, object]:
        path = path.split("?", 1)[0].rstrip("/") or "/"
        if path == "/healthz" and method == "GET":
            return 200, {
                "status": "ok",
                "ready": self._ready.is_set(),
                "sessions": len(self._sessions),
                "durable": self.store is not None,
            }
        if path == "/readyz" and method == "GET":
            if not self._ready.is_set():
                return 503, {"status": "starting", "reason": "recovering sessions"}
            payload = {"status": "ready", "sessions": len(self._sessions)}
            if self.recovery is not None:
                payload["recovered"] = len(self.recovery.recovered)
                payload["quarantined"] = len(self.recovery.quarantined)
            return 200, payload
        if path == "/metrics" and method == "GET":
            return await self._metrics_page()
        if path == "/dashboard" and method == "GET":
            return 200, TextResponse(DASHBOARD_HTML, "text/html; charset=utf-8")
        if path == "/shutdown" and method == "POST":
            self._shutdown.set()
            return 200, {"status": "shutting down"}
        if not self._ready.is_set():
            # Session routes are gated until boot recovery finishes, so a
            # client can never observe (or mutate) a half-recovered set.
            return 503, {"error": "server is starting: session recovery in progress"}
        if path == "/sessions":
            if method == "GET":
                return 200, {"sessions": [s.status() for s in self._sessions.values()]}
            if method == "POST":
                return await self._create_session(self._json_body(body))
            raise _HttpError(405, f"{method} not allowed on {path}")
        if path.startswith("/sessions/"):
            rest = path[len("/sessions/") :]
            session_id, _, verb = rest.partition("/")
            return await self._session_route(method, session_id, verb, body)
        raise _HttpError(404, f"no route for {path}")

    @staticmethod
    def _json_body(body: bytes) -> dict:
        if not body:
            return {}
        try:
            payload = json.loads(body)
        except json.JSONDecodeError as exc:
            raise _HttpError(400, f"request body is not valid JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise _HttpError(400, "request body must be a JSON object")
        return payload

    async def _metrics_page(self) -> Tuple[int, object]:
        """``GET /metrics``: Prometheus text for the server and every session.

        One server-level section (request counters/latency) followed by
        one section per live session, each sample labelled
        ``session="<id>"``.  Session sections render under that session's
        lock so a concurrent advance cannot mutate the recorder's dicts
        mid-iteration.
        """
        sections = [
            render_recorder(self.recorder, extra_labels={"session": "_server"})
        ]
        for session_id in sorted(self._sessions):
            session = self._sessions.get(session_id)
            lock = self._locks.get(session_id)
            if session is None or lock is None:
                continue  # deleted between listing and rendering
            sections.append(
                await self._run(lock, session.prometheus_section)
            )
        page = "".join(s for s in sections if s)
        return 200, TextResponse(page, PROMETHEUS_CONTENT_TYPE)

    async def _create_session(self, payload: dict) -> Tuple[int, object]:
        loop = asyncio.get_running_loop()

        def build() -> SimulationSession:
            # Construction builds a trace and a cluster — CPU work, off-loop.
            session = SimulationSession(payload)
            self._persist(session)
            return session

        session = await loop.run_in_executor(None, build)
        self._sessions[session.session_id] = session
        self._locks[session.session_id] = asyncio.Lock()
        return 200, session.status()

    def _session(self, session_id: str) -> SimulationSession:
        session = self._sessions.get(session_id)
        if session is None:
            raise _HttpError(404, f"no such session: {session_id!r}")
        return session

    async def _session_route(
        self, method: str, session_id: str, verb: str, body: bytes
    ) -> Tuple[int, object]:
        session = self._session(session_id)
        lock = self._locks[session_id]
        if not verb:
            if method == "GET":
                return 200, await self._run(lock, session.status)
            if method == "DELETE":
                del self._sessions[session_id]
                del self._locks[session_id]
                if self.store is not None:
                    self.store.delete(session_id)
                return 200, {"deleted": session_id}
            raise _HttpError(405, f"{method} not allowed on session root")

        if verb == "stream":
            if method != "GET":
                raise _HttpError(405, "stream only supports GET")
            if session.stream is None:
                raise _HttpError(
                    409, f"streaming is disabled for session {session_id!r} (stream_backlog=0)"
                )
            # No session lock and no executor hop: subscribing is a
            # cursor registration, and delivery happens on the loop while
            # session operations emit from worker threads.
            return 200, StreamHandle(session.stream)

        payload = self._json_body(body) if method == "POST" else {}
        routes = {
            ("POST", "advance"): lambda: session.advance(
                payload.get("until"), payload.get("max_events")
            ),
            ("POST", "submit"): lambda: session.submit(self._task_list(payload)),
            ("POST", "inject"): lambda: session.inject(payload),
            ("POST", "whatif"): lambda: session.what_if(
                self._task_payload(payload), payload.get("horizon_hours", 24.0)
            ),
            ("GET", "occupancy"): session.occupancy,
            ("GET", "quota"): session.quota,
            ("GET", "metrics"): session.metrics,
            ("GET", "stats"): session.stats,
            ("POST", "snapshot"): lambda: {
                "session_id": session.session_id,
                "snapshot": snapshot_to_text(session.snapshot_bytes()),
            },
            ("POST", "restore"): lambda: session.restore_bytes(
                snapshot_from_text(self._text_field(payload, "snapshot"))
            ),
        }
        handler = routes.get((method, verb))
        if handler is None:
            raise _HttpError(404, f"no route for {method} /sessions/{{id}}/{verb}")
        if self.store is not None and verb in _MUTATING_VERBS:
            # Apply-then-persist as one unit under the session lock, so
            # the stored state can never skip a mutation.
            def apply_and_persist():
                result = handler()
                self._persist(session)
                return result

            return 200, await self._run(lock, apply_and_persist)
        return 200, await self._run(lock, handler)

    async def _serve_stream(
        self,
        writer: asyncio.StreamWriter,
        stream: SessionStream,
        headers: Mapping[str, str],
    ) -> None:
        """Pump one SSE subscription until the client or server goes away.

        The connection is dedicated: headers go out without a
        ``Content-Length`` (the stream has no end), frames are written
        as the ring produces them, idle periods are bridged with comment
        heartbeats, and a cursor that fell off the ring is told so with
        an explicit ``gap`` event before delivery resumes.  Emitters are
        never throttled by this loop — a slow socket only grows its own
        subscriber's gap count.
        """
        last_id = str(headers.get("last-event-id", "")).strip()
        try:
            after_seq = int(last_id) if last_id else 0
        except ValueError:
            after_seq = 0  # unparseable resume point: start at the live edge
        subscriber = stream.subscribe(after_seq)
        head = (
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: text/event-stream\r\n"
            "Cache-Control: no-cache\r\n"
            "Connection: close\r\n"
            "\r\n"
        )
        writer.write(head.encode("latin-1"))
        try:
            await writer.drain()
            while not self._shutdown.is_set():
                frames, missed = subscriber.poll()
                if not frames and not missed:
                    await subscriber.wait(self.stream_heartbeat_s)
                    frames, missed = subscriber.poll()
                chunks = []
                if missed:
                    chunks.append(gap_frame(missed))
                chunks.extend(frames)
                if not chunks:
                    chunks.append(HEARTBEAT_FRAME)  # idle keep-alive
                writer.write("".join(chunks).encode("utf-8"))
                await writer.drain()
        finally:
            subscriber.close()

    @staticmethod
    async def _run(lock: asyncio.Lock, fn):
        """Run one session operation: serialised per session, off-loop."""
        loop = asyncio.get_running_loop()
        async with lock:
            return await loop.run_in_executor(None, fn)

    @staticmethod
    def _task_list(payload: dict) -> list:
        tasks = payload.get("tasks")
        if not isinstance(tasks, list) or not tasks:
            raise _HttpError(400, "submit body must carry a non-empty 'tasks' array")
        return tasks

    @staticmethod
    def _task_payload(payload: dict) -> dict:
        task = payload.get("task")
        if not isinstance(task, dict):
            raise _HttpError(400, "whatif body must carry a 'task' object")
        return task

    @staticmethod
    def _text_field(payload: dict, field: str) -> str:
        value = payload.get(field)
        if not isinstance(value, str) or not value:
            raise _HttpError(400, f"body must carry a non-empty {field!r} string")
        return value


async def serve(
    host: str = "127.0.0.1",
    port: int = 8151,
    state_dir: str | Path | None = None,
    request_timeout_s: Optional[float] = None,
    persist_interval_s: Optional[float] = None,
) -> None:
    """Start a server and run until ``POST /shutdown`` (CLI entry point)."""
    server = SchedulerServer(
        state_dir=state_dir,
        request_timeout_s=request_timeout_s,
        persist_interval_s=persist_interval_s,
    )
    await server.start(host, port)
    banner = f"scheduler service listening on http://{server.host}:{server.port}"
    if server.store is not None:
        recovered = len(server.recovery.recovered) if server.recovery else 0
        quarantined = len(server.recovery.quarantined) if server.recovery else 0
        banner += f" (durable: {server.store.root}, recovered {recovered} session(s)"
        if quarantined:
            banner += f", quarantined {quarantined} file(s)"
        banner += ")"
    print(banner)
    await server.wait_closed()
