"""End-to-end smoke test of the scheduler service (``make serve-smoke``).

Boots a real server on an ephemeral port, drives it through one complete
streaming workflow — create a session, stream submissions, advance,
query occupancy/quota/advice, snapshot and restore — and shuts it down
cleanly.  Everything runs in-process (server task + async client in one
event loop), so CI needs no port coordination and no subprocess reaping;
a hang is caught by the overall timeout.

Exit status is 0 only if every step returned the expected shape, which
makes this the cheapest possible "did the service wiring break?" gate.
"""

from __future__ import annotations

import asyncio
import sys

from ..obs import parse_prometheus_text
from .client import AsyncServiceClient
from .server import SchedulerServer

#: hard wall-clock cap on the whole smoke run
SMOKE_TIMEOUT_S = 120.0


def _task(task_id: str, submit_time: float, hp: bool = False) -> dict:
    return {
        "task_id": task_id,
        "task_type": 1 if hp else 0,
        "num_pods": 1,
        "gpus_per_pod": 4.0,
        "duration": 1800.0,
        "submit_time": submit_time,
        "org": "smoke-org",
    }


async def _run() -> int:
    server = SchedulerServer()
    await server.start(port=0)
    server_task = asyncio.ensure_future(server.wait_closed())
    client = AsyncServiceClient(server.host, server.port)
    try:
        health = await client.healthz()
        assert health["status"] == "ok", health

        session = await client.create_session(scheduler="gfs", num_nodes=8, duration_hours=4.0)
        sid = session["session_id"]
        print(f"[serve-smoke] session {sid} on {server.host}:{server.port}")

        # Stream two submission waves with an advance in between.
        await client.submit(sid, [_task(f"smoke-a{i}", i * 60.0) for i in range(8)])
        step = await client.advance(sid, until=1800.0)
        assert step["processed_events"] > 0, step
        await client.submit(sid, [_task(f"smoke-b{i}", 1800.0, hp=True) for i in range(4)])

        occupancy = await client.occupancy(sid)
        assert occupancy["total_gpus"] > 0, occupancy
        quota = await client.quota(sid)
        assert "orgs" in quota, quota
        advice = await client.what_if(sid, _task("smoke-whatif", 1800.0), horizon_hours=12.0)
        assert advice["task_id"] == "smoke-whatif", advice
        print(
            f"[serve-smoke] occupancy rate={occupancy['allocation_rate']:.2f} "
            f"whatif start={advice['start_time']}"
        )

        # Snapshot, keep advancing, then restore and check we went back.
        snap = await client.snapshot(sid)
        now_at_snap = (await client.status(sid))["now"]
        await client.advance(sid, until=now_at_snap + 3600.0)
        restored = await client.restore(sid, snap)
        assert restored["now"] == now_at_snap, (restored["now"], now_at_snap)
        print(f"[serve-smoke] snapshot round-trip ok ({len(snap)} bytes, now={now_at_snap:.0f})")

        metrics = await client.metrics(sid)
        assert "makespan_hours" in metrics or metrics, metrics

        # Observability: live per-session stats and the Prometheus page.
        stats = await client.stats(sid)
        assert "recorder" in stats, stats
        page = await client.metrics_text()
        samples = parse_prometheus_text(page)
        names = {key.split("{", 1)[0] for key in samples}
        assert "repro_http_requests_total" in names, sorted(names)
        session_labelled = [key for key in samples if f'session="{sid}"' in key]
        assert session_labelled, f"no samples labelled session={sid!r}"
        print(f"[serve-smoke] /metrics scrape ok ({len(samples)} samples)")

        await client.delete_session(sid)
        await client.shutdown()
        await asyncio.wait_for(server_task, timeout=10.0)
        print("[serve-smoke] OK")
        return 0
    finally:
        await client.close()
        if not server_task.done():
            await server.stop()
            server_task.cancel()


def main() -> int:
    return asyncio.run(asyncio.wait_for(_run(), timeout=SMOKE_TIMEOUT_S))


if __name__ == "__main__":
    sys.exit(main())
