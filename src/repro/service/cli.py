"""``serve`` subcommand: run the streaming scheduler service.

Reached through the main experiments CLI (``python -m repro.experiments.cli
serve``) or directly as ``python -m repro.service.cli``.  The server runs
until interrupted or until a client posts ``/shutdown``.

``--log-level info`` turns on the structured JSON-lines log (one JSON
object per request/operation, with run/session correlation ids — schema
in ``docs/observability.md``) on the ``repro.service`` logger; the
default leaves logging unconfigured, so the server stays silent exactly
as before.
"""

from __future__ import annotations

import argparse
import asyncio
from typing import List, Optional

from ..obs.logging import configure_json_logging
from .server import serve

_LOG_LEVELS = ("critical", "error", "warning", "info", "debug")


def configure_logging(level_name: Optional[str]) -> None:
    """Wire the ``repro.service`` structured log to stderr at ``level_name``.

    ``None`` (flag omitted) configures nothing — logging stays at the
    host application's discretion and the server is silent by default.
    The emitted lines are raw JSON documents (``repro.obs.logging``).
    """
    configure_json_logging(level_name, "repro.service")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Run the streaming scheduler service (see docs/service.md).",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address (default: %(default)s)")
    parser.add_argument(
        "--port", type=int, default=8151, help="bind port, 0 for ephemeral (default: %(default)s)"
    )
    parser.add_argument(
        "--log-level",
        default=None,
        choices=_LOG_LEVELS,
        help="enable the structured access log at this level (default: off)",
    )
    parser.add_argument(
        "--state-dir",
        default=None,
        metavar="DIR",
        help="durable session store: sessions are persisted here after every "
        "mutation and recovered on the next boot (default: in-memory only; "
        "see docs/fault_tolerance.md)",
    )
    parser.add_argument(
        "--request-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-request deadline; past it the client gets 504 while the "
        "operation finishes server-side (default: unbounded)",
    )
    parser.add_argument(
        "--persist-interval",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="with --state-dir, also flush every session periodically "
        "(default: %(default)ss; 0 disables the periodic flush)",
    )
    args = parser.parse_args(argv)
    configure_logging(args.log_level)
    try:
        asyncio.run(
            serve(
                args.host,
                args.port,
                state_dir=args.state_dir,
                request_timeout_s=args.request_timeout,
                persist_interval_s=args.persist_interval or None,
            )
        )
    except KeyboardInterrupt:
        print("scheduler service stopped")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
