"""``serve`` subcommand: run the streaming scheduler service.

Reached through the main experiments CLI (``python -m repro.experiments.cli
serve``) or directly as ``python -m repro.service.cli``.  The server runs
until interrupted or until a client posts ``/shutdown``.
"""

from __future__ import annotations

import argparse
import asyncio
from typing import List, Optional

from .server import serve


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Run the streaming scheduler service (see docs/service.md).",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address (default: %(default)s)")
    parser.add_argument(
        "--port", type=int, default=8151, help="bind port, 0 for ephemeral (default: %(default)s)"
    )
    args = parser.parse_args(argv)
    try:
        asyncio.run(serve(args.host, args.port))
    except KeyboardInterrupt:
        print("scheduler service stopped")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
