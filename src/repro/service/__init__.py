"""Streaming scheduler service: the simulator as a long-running server.

Everything else in this repository is batch — build a trace, run it to
completion, read metrics.  This package turns the incremental-stepping
API of :class:`~repro.cluster.simulator.ClusterSimulator` (``advance``,
mid-flight ``submit``/``inject``, ``snapshot``/``restore``/``fork``) into
an operational tool: an asyncio HTTP/JSON server that hosts many live
simulation *sessions*, accepts streaming job submissions from concurrent
clients, and answers live queries — cluster occupancy, per-org quota
headroom, and speculative *what-if* placement advice computed against a
forked copy of the session without disturbing the live state.

Start it from the CLI::

    python -m repro.experiments.cli serve --port 8151

and talk to it with :class:`~repro.service.client.ServiceClient` (sync)
or :class:`~repro.service.client.AsyncServiceClient` (asyncio).  The full
API, the session lifecycle and the snapshot wire format are documented in
``docs/service.md``; the determinism contract (stepped == batch,
snapshot→restore→continue == uninterrupted, fork isolation) is enforced
by ``tests/test_stepping_determinism.py``, ``tests/test_snapshot_fork.py``
and ``tests/test_service.py``.

With ``serve --state-dir DIR`` the service is additionally *durable*:
sessions persist across server restarts (boot recovery with corrupt-file
quarantine, ``GET /readyz`` gating), requests honour per-request
deadlines, and clients retry safely through ``Idempotency-Key`` headers
— see ``docs/fault_tolerance.md`` and
``tests/test_service_durability.py``.
"""

from .client import AsyncServiceClient, ServiceClient, ServiceError
from .dashboard import DASHBOARD_HTML
from .server import SchedulerServer
from .session import SimulationSession, task_from_payload, task_to_payload
from .snapshot import (
    SNAPSHOT_VERSION,
    SnapshotError,
    decode_snapshot,
    encode_snapshot,
)
from .store import RecoveryReport, SessionStore, StoredSession
from .stream import SessionStream, parse_sse_stream

__all__ = [
    "AsyncServiceClient",
    "DASHBOARD_HTML",
    "RecoveryReport",
    "SchedulerServer",
    "ServiceClient",
    "ServiceError",
    "SessionStore",
    "SessionStream",
    "SimulationSession",
    "SnapshotError",
    "SNAPSHOT_VERSION",
    "StoredSession",
    "decode_snapshot",
    "encode_snapshot",
    "parse_sse_stream",
    "task_from_payload",
    "task_to_payload",
]
