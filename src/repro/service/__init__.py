"""Streaming scheduler service: the simulator as a long-running server.

Everything else in this repository is batch — build a trace, run it to
completion, read metrics.  This package turns the incremental-stepping
API of :class:`~repro.cluster.simulator.ClusterSimulator` (``advance``,
mid-flight ``submit``/``inject``, ``snapshot``/``restore``/``fork``) into
an operational tool: an asyncio HTTP/JSON server that hosts many live
simulation *sessions*, accepts streaming job submissions from concurrent
clients, and answers live queries — cluster occupancy, per-org quota
headroom, and speculative *what-if* placement advice computed against a
forked copy of the session without disturbing the live state.

Start it from the CLI::

    python -m repro.experiments.cli serve --port 8151

and talk to it with :class:`~repro.service.client.ServiceClient` (sync)
or :class:`~repro.service.client.AsyncServiceClient` (asyncio).  The full
API, the session lifecycle and the snapshot wire format are documented in
``docs/service.md``; the determinism contract (stepped == batch,
snapshot→restore→continue == uninterrupted, fork isolation) is enforced
by ``tests/test_stepping_determinism.py``, ``tests/test_snapshot_fork.py``
and ``tests/test_service.py``.
"""

from .client import AsyncServiceClient, ServiceClient, ServiceError
from .server import SchedulerServer
from .session import SimulationSession, task_from_payload, task_to_payload
from .snapshot import (
    SNAPSHOT_VERSION,
    SnapshotError,
    decode_snapshot,
    encode_snapshot,
)

__all__ = [
    "AsyncServiceClient",
    "SchedulerServer",
    "ServiceClient",
    "ServiceError",
    "SimulationSession",
    "SnapshotError",
    "SNAPSHOT_VERSION",
    "decode_snapshot",
    "encode_snapshot",
    "task_from_payload",
    "task_to_payload",
]
