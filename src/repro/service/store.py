"""Durable session store: service sessions that survive server restarts.

One JSON file per session under a state directory::

    <state_dir>/session-0001.json
        {"store_version": 1, "session_id": "...", "params": {...},
         "saved_at": ..., "snapshot": "<base64 REPROSNP envelope>"}

The ``snapshot`` field reuses the versioned, zlib-compressed,
SHA-256-checksummed envelope of :mod:`repro.service.snapshot` (PR 6), so
a stored session carries the same integrity guarantees as a snapshot a
client exported — a flipped bit anywhere in the state fails the checksum
instead of resurrecting a corrupt simulator.  Files are written via
:func:`repro.runtime.atomic_write_text` (unique temp + fsync + rename):
a crash mid-save leaves the previous good file, never a torn one.

Boot recovery (:meth:`SessionStore.recover`) scans the directory and
returns every loadable record; unreadable or checksum-failing files are
**quarantined** — renamed to ``<name>.quarantined`` and reported, never
deleted and never allowed to crash the boot — so one bad file costs one
session, not the server.
"""

from __future__ import annotations

import json
import logging
import re
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from ..runtime import atomic_write_text
from .snapshot import (
    SnapshotError,
    decode_snapshot,
    snapshot_from_text,
    snapshot_to_text,
)

#: store record format version
STORE_VERSION = 1

_LOG = logging.getLogger("repro.service.store")

_SESSION_NUM = re.compile(r"session-(\d+)$")


@dataclass
class StoredSession:
    """One recoverable session record read back from disk."""

    session_id: str
    params: Dict[str, object]
    snapshot: bytes
    saved_at: float = 0.0


@dataclass
class RecoveryReport:
    """What a boot-time scan of the state directory found."""

    recovered: List[StoredSession] = field(default_factory=list)
    #: file names that failed to parse/verify and were quarantined
    quarantined: List[str] = field(default_factory=list)

    def max_session_number(self) -> int:
        """Highest ``session-NNNN`` ordinal among recovered sessions."""
        best = 0
        for stored in self.recovered:
            match = _SESSION_NUM.match(stored.session_id)
            if match:
                best = max(best, int(match.group(1)))
        return best


class SessionStore:
    """File-per-session durable store under one state directory."""

    def __init__(self, root: str | Path):
        self.root = Path(root)

    def _path(self, session_id: str) -> Path:
        # Session ids are server-generated (``session-NNNN``), but guard
        # against path tricks anyway: the id must be a plain file name.
        if "/" in session_id or "\\" in session_id or session_id in (".", ".."):
            raise ValueError(f"invalid session id for storage: {session_id!r}")
        return self.root / f"{session_id}.json"

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def save(self, session_id: str, params: Dict[str, object], snapshot: bytes) -> Path:
        """Durably persist one session's parameters and state envelope."""
        record = {
            "store_version": STORE_VERSION,
            "session_id": session_id,
            "params": params,
            "saved_at": time.time(),
            "snapshot": snapshot_to_text(snapshot),
        }
        path = self._path(session_id)
        self.root.mkdir(parents=True, exist_ok=True)
        atomic_write_text(path, json.dumps(record))
        return path

    def delete(self, session_id: str) -> None:
        """Forget a session (e.g. after ``DELETE /sessions/{id}``)."""
        try:
            self._path(session_id).unlink(missing_ok=True)
        except OSError:
            pass  # a leftover file only costs one spurious recovery

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def _read_one(self, path: Path) -> Optional[StoredSession]:
        record = json.loads(path.read_text())
        if not isinstance(record, dict):
            raise ValueError("store record is not an object")
        version = record.get("store_version")
        if version != STORE_VERSION:
            raise ValueError(f"unsupported store_version {version!r}")
        session_id = record.get("session_id")
        params = record.get("params")
        text = record.get("snapshot")
        if not isinstance(session_id, str) or not isinstance(params, dict) or not isinstance(text, str):
            raise ValueError("store record is missing required fields")
        snapshot = snapshot_from_text(text)
        # Verify the envelope (magic, version, SHA-256 digest) at scan
        # time: a flipped bit quarantines the file here, instead of
        # surfacing as a rebuild failure at session-recovery time.
        decode_snapshot(snapshot)
        return StoredSession(
            session_id=session_id,
            params=params,
            snapshot=snapshot,
            saved_at=float(record.get("saved_at", 0.0)),
        )

    def quarantine(self, path: Path) -> None:
        """Move an unusable file aside (never delete, never re-scan)."""
        target = path.with_name(path.name + ".quarantined")
        try:
            path.replace(target)
        except OSError:
            pass

    def recover(self) -> RecoveryReport:
        """Scan the state directory; quarantine anything unreadable."""
        report = RecoveryReport()
        if not self.root.exists():
            return report
        for path in sorted(self.root.glob("*.json")):
            try:
                stored = self._read_one(path)
            except (ValueError, KeyError, TypeError, OSError, SnapshotError) as exc:
                _LOG.warning("quarantining corrupt session file %s: %s", path, exc)
                self.quarantine(path)
                report.quarantined.append(path.name)
                continue
            report.recovered.append(stored)
        return report
