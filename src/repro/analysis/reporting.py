"""Plain-text table rendering for experiment results.

The benchmark harness prints the same rows the paper's tables report; this
module keeps the formatting in one place.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
    float_format: str = "{:,.2f}",
) -> str:
    """Render a simple aligned text table."""

    def fmt(value: object) -> str:
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    rendered = [[fmt(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    parts: List[str] = []
    if title:
        parts.append(title)
    parts.append(line(list(headers)))
    parts.append("  ".join("-" * w for w in widths))
    parts.extend(line(row) for row in rendered)
    return "\n".join(parts)


def scheduler_metrics_rows(results: Mapping[str, Mapping[str, float]]) -> List[List[object]]:
    """Rows of the Table-5 style scheduler comparison."""
    rows: List[List[object]] = []
    for scheduler, metrics in results.items():
        rows.append(
            [
                scheduler,
                metrics.get("hp_jct_p99", float("nan")),
                metrics.get("hp_jct", float("nan")),
                metrics.get("hp_jqt", float("nan")),
                metrics.get("spot_jct", float("nan")),
                metrics.get("spot_jqt", float("nan")),
                metrics.get("spot_eviction", float("nan")) * 100.0,
            ]
        )
    return rows


SCHEDULER_TABLE_HEADERS = [
    "Scheduler",
    "HP JCT-p99(s)",
    "HP JCT(s)",
    "HP JQT(s)",
    "Spot JCT(s)",
    "Spot JQT(s)",
    "Spot e(%)",
]


def format_scheduler_table(results: Mapping[str, Mapping[str, float]], title: str) -> str:
    return format_table(SCHEDULER_TABLE_HEADERS, scheduler_metrics_rows(results), title=title)


def improvement_row(results: Mapping[str, Mapping[str, float]], ours: str = "GFS") -> Dict[str, float]:
    """Relative improvement of ``ours`` over the best baseline per metric."""
    if ours not in results:
        return {}
    improvements: Dict[str, float] = {}
    for metric in ("hp_jct", "hp_jqt", "spot_jct", "spot_jqt", "spot_eviction"):
        baseline_values = [
            m[metric] for name, m in results.items() if name != ours and metric in m
        ]
        if not baseline_values:
            continue
        best_baseline = min(baseline_values)
        ours_value = results[ours].get(metric)
        if ours_value is None or best_baseline <= 0:
            continue
        improvements[metric] = (best_baseline - ours_value) / best_baseline
    return improvements
