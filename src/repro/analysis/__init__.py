"""Analysis utilities: observation statistics, economics, reporting."""

from .economics import DeploymentBenefit, estimate_deployment_benefit
from .observations import (
    EvictionSeries,
    RequestCDFComparison,
    RuntimeDistribution,
    allocation_heatmap,
    cdf_at,
    compare_request_cdfs,
    demand_summary,
    empirical_cdf,
    fleet_allocation_table,
    heatmap_statistics,
    hourly_eviction_series,
    organization_demand_figure,
    runtime_distribution,
)
from .reporting import (
    SCHEDULER_TABLE_HEADERS,
    format_scheduler_table,
    format_table,
    improvement_row,
    scheduler_metrics_rows,
)

__all__ = [
    "DeploymentBenefit",
    "EvictionSeries",
    "RequestCDFComparison",
    "RuntimeDistribution",
    "SCHEDULER_TABLE_HEADERS",
    "allocation_heatmap",
    "cdf_at",
    "compare_request_cdfs",
    "demand_summary",
    "empirical_cdf",
    "estimate_deployment_benefit",
    "fleet_allocation_table",
    "format_scheduler_table",
    "format_table",
    "heatmap_statistics",
    "hourly_eviction_series",
    "improvement_row",
    "organization_demand_figure",
    "runtime_distribution",
    "scheduler_metrics_rows",
]
