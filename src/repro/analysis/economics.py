"""Economic analysis of a deployment (the Figure 9 / $459,715 estimate)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping

from ..cluster import GPUModel
from ..cluster.pricing import FleetPricing, monthly_benefit
from ..workloads.fleet import (
    FleetEntry,
    POST_DEPLOYMENT_ALLOCATION,
    POST_DEPLOYMENT_EVICTION,
    PRE_DEPLOYMENT_EVICTION,
    PRODUCTION_FLEET,
    production_gpu_counts,
)


@dataclass
class DeploymentBenefit:
    """Before/after comparison of a production deployment."""

    allocation_before: Dict[GPUModel, float]
    allocation_after: Dict[GPUModel, float]
    eviction_before: Dict[GPUModel, float]
    eviction_after: Dict[GPUModel, float]
    monthly_gain_usd: float
    allocation_gain_usd: float
    eviction_gain_usd: float

    def allocation_improvement(self, model: GPUModel) -> float:
        """Absolute allocation-rate improvement in percentage points."""
        return (self.allocation_after[model] - self.allocation_before[model]) * 100.0

    def eviction_reduction(self, model: GPUModel) -> float:
        """Relative eviction-rate reduction (e.g. 0.678 = 67.8%)."""
        before = self.eviction_before[model]
        if before <= 0:
            return 0.0
        return (before - self.eviction_after[model]) / before


def estimate_deployment_benefit(
    allocation_before: Mapping[GPUModel, float] | None = None,
    allocation_after: Mapping[GPUModel, float] | None = None,
    eviction_before: Mapping[GPUModel, float] | None = None,
    eviction_after: Mapping[GPUModel, float] | None = None,
    fleet: list[FleetEntry] | None = None,
    pricing: FleetPricing | None = None,
) -> DeploymentBenefit:
    """Estimate the monthly benefit of a GFS deployment over a fleet.

    Defaults reproduce the paper's production deployment (Table 1 fleet,
    Figure 9 allocation / eviction levels).
    """
    fleet = fleet or PRODUCTION_FLEET
    allocation_before = dict(allocation_before or {e.model: e.allocation_rate for e in fleet})
    allocation_after = dict(allocation_after or POST_DEPLOYMENT_ALLOCATION)
    eviction_before = dict(eviction_before or PRE_DEPLOYMENT_EVICTION)
    eviction_after = dict(eviction_after or POST_DEPLOYMENT_EVICTION)
    counts = production_gpu_counts(fleet)
    benefit = monthly_benefit(
        counts,
        allocation_before,
        allocation_after,
        eviction_before,
        eviction_after,
        pricing=pricing,
    )
    return DeploymentBenefit(
        allocation_before=allocation_before,
        allocation_after=allocation_after,
        eviction_before=eviction_before,
        eviction_after=eviction_after,
        monthly_gain_usd=benefit["total"],
        allocation_gain_usd=benefit["allocation_gain"],
        eviction_gain_usd=benefit["eviction_gain"],
    )
