"""Statistics behind the paper's observation figures (Section 2.2).

These functions regenerate the data series shown in Figures 2-5 and 8 and
the allocation statistics of Table 1, from synthetic traces and
simulations, so that the shapes (full-card shift, heavy-tailed runtimes,
diurnal eviction peaks, inter-cluster heterogeneity) can be compared with
the paper's.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..cluster import SimulationMetrics, Task, TaskType, percentile
from ..workloads import OrganizationProfile, default_organizations, generate_org_demand_matrix


# ----------------------------------------------------------------------
# Figure 2: CDF of GPU requests (2020 vs 2024)
# ----------------------------------------------------------------------
def empirical_cdf(values: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
    """Return sorted values and their empirical CDF."""
    data = np.sort(np.asarray(values, dtype=float))
    if data.size == 0:
        return data, data
    cdf = np.arange(1, data.size + 1) / data.size
    return data, cdf


def cdf_at(values: Sequence[float], threshold: float) -> float:
    """Fraction of values <= threshold."""
    data = np.asarray(values, dtype=float)
    if data.size == 0:
        return 0.0
    return float(np.mean(data <= threshold + 1e-12))


@dataclass
class RequestCDFComparison:
    """CDF summary comparing two eras of GPU requests (Figure 2)."""

    legacy_partial_fraction: float     # share of <1-GPU requests in 2020
    modern_full_card_fraction: float   # share of >=1-GPU requests in 2024
    modern_full_node_fraction: float   # share of 8-GPU requests in 2024
    legacy_values: List[float] = field(default_factory=list)
    modern_values: List[float] = field(default_factory=list)


def compare_request_cdfs(
    legacy_requests: Sequence[float], modern_requests: Sequence[float]
) -> RequestCDFComparison:
    """Summarise the 2020-vs-2024 shift of Figure 2."""
    legacy = np.asarray(legacy_requests, dtype=float)
    modern = np.asarray(modern_requests, dtype=float)
    return RequestCDFComparison(
        legacy_partial_fraction=float(np.mean(legacy < 1.0)) if legacy.size else 0.0,
        modern_full_card_fraction=float(np.mean(modern >= 1.0)) if modern.size else 0.0,
        modern_full_node_fraction=float(np.mean(modern >= 8.0)) if modern.size else 0.0,
        legacy_values=list(map(float, legacy)),
        modern_values=list(map(float, modern)),
    )


# ----------------------------------------------------------------------
# Figure 3: running and queuing time distributions
# ----------------------------------------------------------------------
@dataclass
class RuntimeDistribution:
    """Running/queuing statistics per GPU-request size (Figure 3)."""

    runtime_p50: float
    runtime_p90: float
    runtime_p99: float
    queue_p50_by_gpus: Dict[int, float]

    def queue_ratio(self, large: int = 8, small: int = 1) -> float:
        """How much longer large-GPU tasks queue than small ones."""
        small_q = self.queue_p50_by_gpus.get(small, 0.0)
        large_q = self.queue_p50_by_gpus.get(large, 0.0)
        if small_q <= 0:
            return float("inf") if large_q > 0 else 1.0
        return large_q / small_q


def runtime_distribution(tasks: Sequence[Task]) -> RuntimeDistribution:
    """Compute the Figure-3 style statistics from (simulated) tasks."""
    runtimes = [t.duration for t in tasks]
    queue_by_gpus: Dict[int, List[float]] = {}
    for task in tasks:
        bucket = int(round(task.gpus_per_pod)) if task.gpus_per_pod >= 1 else 0
        queue_by_gpus.setdefault(bucket, []).append(task.jqt)
    return RuntimeDistribution(
        runtime_p50=percentile(runtimes, 50),
        runtime_p90=percentile(runtimes, 90),
        runtime_p99=percentile(runtimes, 99),
        queue_p50_by_gpus={k: percentile(v, 50) for k, v in queue_by_gpus.items()},
    )


# ----------------------------------------------------------------------
# Figure 4: organization demand series
# ----------------------------------------------------------------------
def organization_demand_figure(
    organizations: Optional[Sequence[OrganizationProfile]] = None,
    hours: int = 168,
    seed: int = 0,
) -> Dict[str, np.ndarray]:
    """One week of per-organization GPU demand (Figure 4)."""
    organizations = list(organizations or default_organizations(seed))
    return generate_org_demand_matrix(organizations, hours, seed=seed)


def demand_summary(demand: Mapping[str, np.ndarray]) -> Dict[str, Dict[str, float]]:
    """Min / max / mean per organization (the figures quoted in Observation 2)."""
    return {
        org: {
            "min": float(np.min(series)),
            "max": float(np.max(series)),
            "mean": float(np.mean(series)),
        }
        for org, series in demand.items()
    }


# ----------------------------------------------------------------------
# Figure 5: hourly eviction-rate series
# ----------------------------------------------------------------------
@dataclass
class EvictionSeries:
    """Hourly eviction rate over a simulated period (one week per entry)."""

    hours: np.ndarray
    rates: np.ndarray

    @property
    def max_rate(self) -> float:
        return float(np.max(self.rates)) if self.rates.size else 0.0

    @property
    def min_rate(self) -> float:
        return float(np.min(self.rates)) if self.rates.size else 0.0

    @property
    def median_rate(self) -> float:
        return float(np.median(self.rates)) if self.rates.size else 0.0


def hourly_eviction_series(tasks: Sequence[Task], horizon_hours: int) -> EvictionSeries:
    """Hourly eviction rate: evictions / runs started in each hour."""
    runs = np.zeros(horizon_hours)
    evictions = np.zeros(horizon_hours)
    for task in tasks:
        if task.task_type is not TaskType.SPOT:
            continue
        for log in task.run_logs:
            hour = int(log.start // 3600)
            if 0 <= hour < horizon_hours:
                runs[hour] += 1
                if log.evicted:
                    evictions[hour] += 1
    rates = np.divide(evictions, np.maximum(runs, 1.0))
    return EvictionSeries(hours=np.arange(horizon_hours), rates=rates)


# ----------------------------------------------------------------------
# Figure 8: node-hour allocation heatmap
# ----------------------------------------------------------------------
def allocation_heatmap(
    demand: Mapping[str, np.ndarray],
    nodes_per_cluster: Mapping[str, int],
    gpus_per_node: int = 8,
    seed: int = 0,
) -> Dict[str, np.ndarray]:
    """Synthesize per-node hourly GPU allocation matrices (Figure 8).

    Cluster-level demand is spread over nodes with a packing bias (some
    nodes stay persistently idle, as observed in Clusters A and C).
    """
    rng = np.random.default_rng(seed)
    heatmaps: Dict[str, np.ndarray] = {}
    for cluster, series in demand.items():
        n_nodes = nodes_per_cluster.get(cluster, 8)
        hours = len(series)
        matrix = np.zeros((n_nodes, hours))
        for hour, value in enumerate(series):
            remaining = min(value, n_nodes * gpus_per_node)
            for node in range(n_nodes):
                take = min(gpus_per_node, remaining)
                matrix[node, hour] = take
                remaining -= take
                if remaining <= 0:
                    break
        # Persistent idle nodes plus mild per-node noise.
        idle_nodes = rng.choice(n_nodes, size=max(1, n_nodes // 10), replace=False)
        matrix[idle_nodes, :] *= 0.1
        heatmaps[cluster] = matrix
    return heatmaps


def heatmap_statistics(heatmaps: Mapping[str, np.ndarray], gpus_per_node: int = 8) -> Dict[str, float]:
    """Average allocation rate per cluster (the 68.51% style figures)."""
    return {
        cluster: float(np.mean(matrix) / gpus_per_node)
        for cluster, matrix in heatmaps.items()
    }


# ----------------------------------------------------------------------
# Table 1: fleet allocation statistics
# ----------------------------------------------------------------------
def fleet_allocation_table(metrics_by_model: Mapping[str, SimulationMetrics]) -> Dict[str, float]:
    """Mean allocation rate per GPU model from simulation metrics."""
    return {
        model: float(metrics.allocation_rate_mean)
        for model, metrics in metrics_by_model.items()
    }
