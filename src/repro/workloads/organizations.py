"""Per-organization GPU demand processes.

Observation 2 (Figure 4) shows that organizations sharing a cluster have
distinct demand patterns: all have a diurnal cycle peaking between 10:00
and 24:00, some add a weekly cycle (e.g. a 35.7% weekend drop for
Organization C), amplitudes differ, and demand occasionally bursts.

These processes serve two roles in the reproduction:

* they generate the *historical* per-organization GPU demand series the
  GDE forecasting experiments (Figure 10, Table 7) train and test on, and
* they modulate HP task arrival rates in the synthetic trace generator so
  the simulated cluster sees the same temporal structure the paper's
  production cluster does.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

HOURS_PER_DAY = 24
HOURS_PER_WEEK = 7 * 24


@dataclass
class OrganizationProfile:
    """Statistical description of one organization's GPU demand.

    Attributes
    ----------
    name:
        Organization identifier (e.g. ``"org-A"``).
    base_demand:
        Average demand level in GPUs.
    diurnal_amplitude:
        Peak-to-mean amplitude of the daily cycle (GPUs).
    peak_hours:
        Half-open interval ``(start, end)`` of the daily peak window.
    weekly_drop:
        Relative demand drop on weekends (0.357 reproduces Organization C).
    burst_probability:
        Per-hour probability of a demand burst.
    burst_magnitude:
        Additional GPUs requested during a burst.
    noise_std:
        Standard deviation of Gaussian noise added to every hour.
    cluster_label / gpu_model_label:
        Business attributes consumed by the business-feature embedding.
    holidays:
        Day indices (0-based from the series start) treated as holidays.
    """

    name: str
    base_demand: float = 80.0
    diurnal_amplitude: float = 8.0
    peak_hours: tuple = (10, 24)
    weekly_drop: float = 0.0
    burst_probability: float = 0.02
    burst_magnitude: float = 10.0
    noise_std: float = 1.5
    cluster_label: str = "cluster-A"
    gpu_model_label: str = "A100"
    holidays: Sequence[int] = field(default_factory=tuple)
    holiday_drop: float = 0.3

    def hourly_factor(self, hour_of_day: int) -> float:
        """Smooth diurnal multiplier in [-1, 1] peaking inside ``peak_hours``."""
        start, end = self.peak_hours
        centre = (start + end) / 2.0
        width = max(1.0, (end - start) / 2.0)
        distance = min(abs(hour_of_day - centre), HOURS_PER_DAY - abs(hour_of_day - centre))
        return math.cos(min(math.pi, math.pi * distance / (2 * width)))

    def demand_at(self, hour_index: int, rng: np.random.Generator) -> float:
        """Sample the demand (in GPUs) at an absolute hour index."""
        hour_of_day = hour_index % HOURS_PER_DAY
        day_index = hour_index // HOURS_PER_DAY
        weekday = day_index % 7

        demand = self.base_demand
        demand += self.diurnal_amplitude * self.hourly_factor(hour_of_day)
        if self.weekly_drop > 0 and weekday >= 5:
            demand *= 1.0 - self.weekly_drop
        if day_index in set(self.holidays):
            demand *= 1.0 - self.holiday_drop
        if rng.random() < self.burst_probability:
            demand += self.burst_magnitude
        demand += rng.normal(0.0, self.noise_std)
        return max(0.0, demand)

    def demand_series(self, hours: int, rng: Optional[np.random.Generator] = None, start_hour: int = 0) -> np.ndarray:
        """Generate ``hours`` consecutive hourly demand samples."""
        rng = rng or np.random.default_rng(0)
        return np.array(
            [self.demand_at(start_hour + h, rng) for h in range(hours)], dtype=float
        )

    def business_attributes(self) -> Dict[str, str]:
        """Business metadata consumed by the business-feature extractor."""
        return {
            "organization": self.name,
            "cluster": self.cluster_label,
            "gpu_model": self.gpu_model_label,
        }


#: Company-wide holiday calendar (day indices from the series start) shared
#: by the default organizations; the GDE's holiday feature learns these.
DEFAULT_HOLIDAYS = (12, 26, 40)


def default_organizations(seed: int = 0) -> List[OrganizationProfile]:
    """The four organizations of Figure 4, calibrated to its reported ranges.

    Organization A: stable around 74-86 GPUs with clear peaks.
    Organization B: pronounced fluctuations between 67 and 90 GPUs.
    Organization C: diurnal plus a 35.7% weekend drop.
    Organization D: moderate demand with occasional bursts.
    """
    return [
        OrganizationProfile(
            name="org-A",
            base_demand=80.0,
            diurnal_amplitude=5.0,
            weekly_drop=0.0,
            burst_probability=0.03,
            burst_magnitude=6.0,
            noise_std=1.0,
            cluster_label="cluster-A",
            holidays=DEFAULT_HOLIDAYS,
        ),
        OrganizationProfile(
            name="org-B",
            base_demand=78.0,
            diurnal_amplitude=10.0,
            weekly_drop=0.0,
            burst_probability=0.05,
            burst_magnitude=12.0,
            noise_std=2.5,
            cluster_label="cluster-B",
            holidays=DEFAULT_HOLIDAYS,
            holiday_drop=0.4,
        ),
        OrganizationProfile(
            name="org-C",
            base_demand=76.0,
            diurnal_amplitude=7.0,
            weekly_drop=0.357,
            burst_probability=0.02,
            burst_magnitude=8.0,
            noise_std=1.5,
            cluster_label="cluster-A",
            holidays=DEFAULT_HOLIDAYS,
        ),
        OrganizationProfile(
            name="org-D",
            base_demand=72.0,
            diurnal_amplitude=6.0,
            weekly_drop=0.1,
            burst_probability=0.04,
            burst_magnitude=10.0,
            noise_std=2.0,
            cluster_label="cluster-C",
            holidays=DEFAULT_HOLIDAYS,
            holiday_drop=0.25,
        ),
    ]


def generate_org_demand_matrix(
    organizations: Sequence[OrganizationProfile],
    hours: int,
    seed: int = 0,
    start_hour: int = 0,
) -> Dict[str, np.ndarray]:
    """Hourly demand series for several organizations, keyed by name."""
    result: Dict[str, np.ndarray] = {}
    for i, org in enumerate(organizations):
        rng = np.random.default_rng(seed + i * 1013)
        result[org.name] = org.demand_series(hours, rng, start_hour=start_hour)
    return result


def aggregate_demand(demand: Dict[str, np.ndarray]) -> np.ndarray:
    """Cluster-level demand: element-wise sum over organizations."""
    series = list(demand.values())
    if not series:
        return np.zeros(0)
    return np.sum(np.stack(series, axis=0), axis=0)
