"""Synthetic trace generation calibrated to the paper's published statistics.

The paper evaluates GFS on a proprietary Alibaba trace (Apr-Jun 2024,
138,403 HP tasks and 26,635 spot tasks on a 2,296-GPU A100 cluster).  That
trace is not available offline, so this module generates synthetic traces
that reproduce the published distributional properties:

* GPU-size mix and gang-scheduling fractions per task class (Table 3),
* the 2024-vs-2020 shift towards whole-card and full-node requests (Fig. 2),
* heavy-tailed runtimes with multi-hour medians (Fig. 3),
* per-organization diurnal/weekly demand patterns (Fig. 4),
* spot submission scaling for the low/medium/high workloads (Section 4.1).

Absolute rates are re-scaled to the simulated cluster capacity so that the
cluster is meaningfully loaded (peak HP demand close to capacity) at any
simulation scale.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..cluster import GPUModel, Task, TaskType, make_task
from .organizations import (
    HOURS_PER_DAY,
    OrganizationProfile,
    default_organizations,
    generate_org_demand_matrix,
)
from .trace import Trace, fluid_org_usage


@dataclass
class GPUSizeDistribution:
    """Distribution over requested GPUs per pod (one column group of Table 3)."""

    #: (gpus_per_pod, probability); fractional sizes model <1 card requests
    sizes: Sequence[Tuple[float, float]]

    def sample(self, rng: np.random.Generator) -> float:
        values = [s for s, _ in self.sizes]
        probs = np.array([p for _, p in self.sizes], dtype=float)
        probs = probs / probs.sum()
        return float(rng.choice(values, p=probs))


#: Table 3, HP row: <1: 0.11%, 1: 55.11%, 2: 13.37%, 4: 7.53%, 8: 23.69%.
HP_GPU_DISTRIBUTION = GPUSizeDistribution(
    sizes=[(0.5, 0.0011), (1, 0.5511), (2, 0.1337), (4, 0.0753), (8, 0.2369)]
)

#: Table 3, spot row: <1: 0.82%, 1: 67.35%, 2: 5.67%, 4: 12.00%, 8: 14.04%.
SPOT_GPU_DISTRIBUTION = GPUSizeDistribution(
    sizes=[(0.5, 0.0082), (1, 0.6735), (2, 0.0567), (4, 0.1200), (8, 0.1404)]
)

#: A 2020-era distribution for the Figure 2 comparison: 80% partial-card.
LEGACY_2020_DISTRIBUTION = GPUSizeDistribution(
    sizes=[(0.1, 0.30), (0.25, 0.25), (0.5, 0.25), (1, 0.12), (2, 0.05), (4, 0.02), (8, 0.01)]
)

#: Gang-scheduling fractions from Table 3.
HP_GANG_FRACTION = 0.0866
SPOT_GANG_FRACTION = 0.2726


@dataclass
class WorkloadConfig:
    """Parameters of a synthetic workload.

    Defaults are calibrated against the paper's production trace: task
    size/duration distributions from Table 3, diurnal per-organization HP
    demand, and a spot submission rate expressed as a fraction of cluster
    capacity.  Construct directly for fine-grained control or go through
    :func:`generate_trace` for the common path.

    Example
    -------
    >>> config = WorkloadConfig(cluster_gpus=512.0, duration_hours=24.0,
    ...                         spot_scale=2.0, seed=7)
    >>> trace = SyntheticTraceGenerator(config).generate()
    """

    #: simulated cluster capacity the rates are calibrated against (GPUs)
    cluster_gpus: float = 2296.0
    #: length of the submission window, in hours
    duration_hours: float = 24.0
    #: average HP load as a fraction of capacity (peaks go higher diurnally)
    hp_target_utilization: float = 0.62
    #: average spot load (before scaling) as a fraction of capacity
    spot_target_utilization: float = 0.12
    #: spot submission-rate multiplier: 1.0 = Low, 2.0 = Medium, 4.0 = High
    spot_scale: float = 1.0
    #: relative amplitude of the diurnal arrival-intensity modulation
    diurnal_arrival_amplitude: float = 0.40
    #: median task runtime in seconds (log-normal)
    hp_median_runtime: float = 2.0 * 3600.0
    spot_median_runtime: float = 1.0 * 3600.0
    #: log-normal sigma controlling the runtime tail
    runtime_sigma: float = 1.0
    #: clip runtimes to keep the simulation horizon bounded
    max_runtime: float = 10.0 * 3600.0
    min_runtime: float = 300.0
    #: checkpoint interval for spot tasks (guaranteed-duration milestones);
    #: an eviction loses on average half this much work per GPU
    checkpoint_interval: float = 3600.0
    #: number of pods for gang tasks is drawn uniformly from this range
    gang_pod_range: Tuple[int, int] = (2, 4)
    #: gang-scheduling fraction overrides; ``None`` keeps the Table 3 values
    hp_gang_fraction: Optional[float] = None
    spot_gang_fraction: Optional[float] = None
    #: arrival bursts: every ``arrival_burst_period`` hours, the arrival
    #: intensity of ``arrival_burst_width`` consecutive hours is multiplied
    #: by ``arrival_burst_multiplier`` (total submitted work is unchanged —
    #: the profile is re-normalised, so bursts *concentrate* arrivals).
    #: ``period = 0`` disables bursts (the default).
    arrival_burst_period: int = 0
    arrival_burst_width: int = 1
    arrival_burst_multiplier: float = 1.0
    #: number of hours of per-organization demand history to attach
    history_hours: int = 14 * 24
    gpu_model: Optional[GPUModel] = GPUModel.A100
    #: largest pod size the target nodes can host (1 for single-GPU nodes);
    #: sampled sizes are clamped to this value
    max_gpus_per_pod: float = 8.0
    seed: int = 0


class SyntheticTraceGenerator:
    """Generates calibrated task traces and organization demand histories."""

    def __init__(
        self,
        config: Optional[WorkloadConfig] = None,
        organizations: Optional[Sequence[OrganizationProfile]] = None,
    ):
        self.config = config or WorkloadConfig()
        self.organizations = list(organizations or default_organizations(self.config.seed))
        self._rng = np.random.default_rng(self.config.seed)

    # ------------------------------------------------------------------
    # Sampling primitives
    # ------------------------------------------------------------------
    def _sample_runtime(self, median: float) -> float:
        cfg = self.config
        value = self._rng.lognormal(mean=math.log(median), sigma=cfg.runtime_sigma)
        return float(min(cfg.max_runtime, max(cfg.min_runtime, value)))

    def _sample_task_shape(
        self, distribution: GPUSizeDistribution, gang_fraction: float
    ) -> Tuple[int, float, bool]:
        gpus_per_pod = min(distribution.sample(self._rng), self.config.max_gpus_per_pod)
        gang = bool(self._rng.random() < gang_fraction)
        if gang:
            low, high = self.config.gang_pod_range
            num_pods = int(self._rng.integers(low, high + 1))
        else:
            num_pods = 1
        return num_pods, gpus_per_pod, gang

    def _org_weights_at(self, hour: int, org_demand: Dict[str, np.ndarray]) -> np.ndarray:
        weights = np.array(
            [org_demand[o.name][hour % len(org_demand[o.name])] for o in self.organizations]
        )
        total = weights.sum()
        if total <= 0:
            return np.full(len(self.organizations), 1.0 / len(self.organizations))
        return weights / total

    def _diurnal_profile(self, hours: int) -> np.ndarray:
        """Normalised arrival-intensity multiplier per hour (mean 1.0)."""
        cfg = self.config
        amplitude = cfg.diurnal_arrival_amplitude
        profile = np.array(
            [
                1.0 + amplitude * self.organizations[0].hourly_factor(h % HOURS_PER_DAY)
                for h in range(hours)
            ]
        )
        if cfg.arrival_burst_period > 0:
            for hour in range(hours):
                if hour % cfg.arrival_burst_period < cfg.arrival_burst_width:
                    profile[hour] *= cfg.arrival_burst_multiplier
        return profile / profile.mean()

    # ------------------------------------------------------------------
    # Task stream generation
    # ------------------------------------------------------------------
    def _generate_stream(
        self,
        task_type: TaskType,
        target_utilization: float,
        distribution: GPUSizeDistribution,
        gang_fraction: float,
        median_runtime: float,
        org_demand: Dict[str, np.ndarray],
    ) -> List[Task]:
        cfg = self.config
        hours = int(math.ceil(cfg.duration_hours))
        horizon = cfg.duration_hours * 3600.0

        # Expected GPU-seconds of work to submit over the window.
        total_work = target_utilization * cfg.cluster_gpus * horizon
        mean_gpus = sum(s * p for s, p in distribution.sizes) * (
            1.0 + gang_fraction * (sum(cfg.gang_pod_range) / 2.0 - 1.0)
        )
        mean_runtime = median_runtime * math.exp(cfg.runtime_sigma**2 / 2.0)
        expected_tasks = max(1, int(round(total_work / (mean_gpus * mean_runtime))))

        profile = self._diurnal_profile(hours)
        per_hour = profile / profile.sum() * expected_tasks

        tasks: List[Task] = []
        for hour in range(hours):
            count = self._rng.poisson(per_hour[hour])
            weights = self._org_weights_at(hour, org_demand)
            for _ in range(count):
                submit = hour * 3600.0 + float(self._rng.uniform(0.0, 3600.0))
                if submit >= horizon:
                    continue
                num_pods, gpus_per_pod, gang = self._sample_task_shape(distribution, gang_fraction)
                org = self.organizations[int(self._rng.choice(len(self.organizations), p=weights))]
                tasks.append(
                    make_task(
                        task_type=task_type,
                        num_pods=num_pods,
                        gpus_per_pod=gpus_per_pod,
                        duration=self._sample_runtime(median_runtime),
                        submit_time=submit,
                        org=org.name,
                        gpu_model=cfg.gpu_model,
                        gang=gang,
                        checkpoint_interval=cfg.checkpoint_interval,
                    )
                )
        return tasks

    def _fluid_usage_profile(self, hp_tasks: List[Task]) -> Dict[str, np.ndarray]:
        """Per-organization concurrent HP GPU usage, assuming immediate starts.

        This "fluid" profile is what the cluster's HP demand actually looks
        like hour by hour; it is the quantity the GDE has to predict.  Usage
        is clipped at the calibrated cluster capacity.
        """
        cfg = self.config
        return fluid_org_usage(
            hp_tasks,
            hours=int(math.ceil(cfg.duration_hours)) + 1,
            org_names=[o.name for o in self.organizations],
            cluster_gpus=cfg.cluster_gpus,
        )

    def _build_demand_history(self, hp_tasks: List[Task]) -> Dict[str, np.ndarray]:
        """Synthesize a multi-week demand history consistent with the trace.

        The simulated window's fluid usage profile is tiled backwards with
        mild day-to-day noise, so the GDE trains on a history whose seasonal
        structure matches the demand the simulation will experience —
        mirroring the paper's setting where evaluation weeks resemble the
        historical weeks the model was trained on.
        """
        cfg = self.config
        profile = self._fluid_usage_profile(hp_tasks)
        rng = np.random.default_rng(cfg.seed + 43)
        # Keep the history an exact number of days so hour-of-day alignment
        # between history and simulation time is preserved.
        history_hours = max(24, (cfg.history_hours // 24) * 24)
        history: Dict[str, np.ndarray] = {}
        for org, series in profile.items():
            day_profile = np.zeros(HOURS_PER_DAY)
            counts = np.zeros(HOURS_PER_DAY)
            for hour, value in enumerate(series):
                day_profile[hour % HOURS_PER_DAY] += value
                counts[hour % HOURS_PER_DAY] += 1
            day_profile = day_profile / np.maximum(counts, 1.0)
            days = history_hours // HOURS_PER_DAY
            blocks = []
            for _ in range(days):
                noise = rng.normal(1.0, 0.05, size=HOURS_PER_DAY)
                blocks.append(np.maximum(0.0, day_profile * noise))
            history[org] = np.concatenate(blocks)
        return history

    def generate(self) -> Trace:
        """Generate a complete trace (HP + spot tasks + org demand history)."""
        cfg = self.config
        org_demand = generate_org_demand_matrix(
            self.organizations, int(cfg.duration_hours) + 1, seed=cfg.seed + 17
        )
        hp_gang = cfg.hp_gang_fraction if cfg.hp_gang_fraction is not None else HP_GANG_FRACTION
        spot_gang = (
            cfg.spot_gang_fraction if cfg.spot_gang_fraction is not None else SPOT_GANG_FRACTION
        )
        hp_tasks = self._generate_stream(
            TaskType.HP,
            cfg.hp_target_utilization,
            HP_GPU_DISTRIBUTION,
            hp_gang,
            cfg.hp_median_runtime,
            org_demand,
        )
        spot_tasks = self._generate_stream(
            TaskType.SPOT,
            cfg.spot_target_utilization * cfg.spot_scale,
            SPOT_GPU_DISTRIBUTION,
            spot_gang,
            cfg.spot_median_runtime,
            org_demand,
        )
        history = self._build_demand_history(hp_tasks)
        trace = Trace(
            tasks=sorted(hp_tasks + spot_tasks, key=lambda t: t.submit_time),
            org_history=history,
            metadata={
                "seed": cfg.seed,
                "cluster_gpus": cfg.cluster_gpus,
                "duration_hours": cfg.duration_hours,
                "spot_scale": cfg.spot_scale,
                "num_hp": len(hp_tasks),
                "num_spot": len(spot_tasks),
            },
        )
        return trace


def generate_trace(
    cluster_gpus: float,
    duration_hours: float = 24.0,
    spot_scale: float = 1.0,
    seed: int = 0,
    **overrides,
) -> Trace:
    """One-call synthetic trace generation used by examples and benchmarks.

    Builds a :class:`WorkloadConfig` calibrated to the paper's task mix
    (Table 3) for a cluster of ``cluster_gpus`` GPUs, scales the spot
    submission rate by ``spot_scale`` (1.0 = Low, 2.0 = Medium, 4.0 =
    High) and returns a deterministic, replayable :class:`Trace` for the
    given ``seed``; extra keyword arguments override any config field.

    Example
    -------
    >>> trace = generate_trace(cluster_gpus=256.0, duration_hours=16.0,
    ...                        spot_scale=2.0, seed=42)
    >>> len(trace.tasks) > 0 and trace.metadata["seed"] == 42
    True
    """
    config = WorkloadConfig(
        cluster_gpus=cluster_gpus,
        duration_hours=duration_hours,
        spot_scale=spot_scale,
        seed=seed,
        **overrides,
    )
    return SyntheticTraceGenerator(config).generate()


def generate_legacy_2020_requests(count: int = 5000, seed: int = 0) -> List[float]:
    """Per-pod GPU request samples shaped like the Jul 2020 CDF of Figure 2."""
    rng = np.random.default_rng(seed)
    return [LEGACY_2020_DISTRIBUTION.sample(rng) for _ in range(count)]


def generate_modern_2024_requests(count: int = 5000, seed: int = 0) -> List[float]:
    """Per-pod GPU request samples shaped like the Oct 2024 CDF of Figure 2."""
    rng = np.random.default_rng(seed)
    # Nearly 100% whole-card requests with 70% full-node 8-GPU allocations.
    dist = GPUSizeDistribution(sizes=[(1, 0.12), (2, 0.08), (4, 0.10), (8, 0.70)])
    return [dist.sample(rng) for _ in range(count)]
