"""Trace containers and (de)serialisation.

A trace is the list of task submissions a simulation replays, together
with the per-organization demand history the GDE needs for training.  It
can be round-tripped through plain JSON so generated traces can be saved
next to experiment results.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Sequence

import numpy as np

from ..cluster import GPUModel, Task, TaskType


@dataclass
class TraceStatistics:
    """Summary statistics of a trace (used to validate calibration)."""

    num_hp: int
    num_spot: int
    hp_gpu_histogram: Dict[str, float]
    spot_gpu_histogram: Dict[str, float]
    hp_gang_fraction: float
    spot_gang_fraction: float
    duration_p50: float
    duration_p90: float
    duration_p99: float

    def as_dict(self) -> Dict[str, object]:
        return {
            "num_hp": self.num_hp,
            "num_spot": self.num_spot,
            "hp_gpu_histogram": self.hp_gpu_histogram,
            "spot_gpu_histogram": self.spot_gpu_histogram,
            "hp_gang_fraction": self.hp_gang_fraction,
            "spot_gang_fraction": self.spot_gang_fraction,
            "duration_p50": self.duration_p50,
            "duration_p90": self.duration_p90,
            "duration_p99": self.duration_p99,
        }


@dataclass
class Trace:
    """A replayable workload trace.

    Bundles the task list with the per-organization hourly GPU demand
    history the GDE forecaster trains on, plus generation metadata (seed,
    scale, scenario).  Feed ``sorted_tasks()`` to the simulator so
    arrivals are replayed in submission order.

    Example
    -------
    >>> trace = generate_trace(cluster_gpus=256.0)
    >>> metrics = run_simulation(cluster, scheduler, trace.sorted_tasks())
    >>> trace.statistics().num_hp > 0
    True
    """

    tasks: List[Task] = field(default_factory=list)
    #: organization name -> hourly GPU demand history (for GDE training)
    org_history: Dict[str, np.ndarray] = field(default_factory=dict)
    #: metadata (seed, scale, scenario name, ...)
    metadata: Dict[str, object] = field(default_factory=dict)

    @property
    def hp_tasks(self) -> List[Task]:
        return [t for t in self.tasks if t.is_hp]

    @property
    def spot_tasks(self) -> List[Task]:
        return [t for t in self.tasks if t.is_spot]

    @property
    def horizon(self) -> float:
        """Last submission time in the trace (seconds)."""
        return max((t.submit_time for t in self.tasks), default=0.0)

    def sorted_tasks(self) -> List[Task]:
        return sorted(self.tasks, key=lambda t: t.submit_time)

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    @staticmethod
    def _gpu_bucket(task: Task) -> str:
        size = task.gpus_per_pod
        if size < 1.0:
            return "<1"
        return str(int(round(size)))

    def statistics(self) -> TraceStatistics:
        """Compute the calibration statistics of this trace."""

        def histogram(tasks: Sequence[Task]) -> Dict[str, float]:
            counts: Dict[str, int] = {}
            for t in tasks:
                counts[self._gpu_bucket(t)] = counts.get(self._gpu_bucket(t), 0) + 1
            total = max(1, len(tasks))
            return {k: v / total for k, v in sorted(counts.items())}

        def gang_fraction(tasks: Sequence[Task]) -> float:
            if not tasks:
                return 0.0
            return sum(1 for t in tasks if t.gang) / len(tasks)

        durations = sorted(t.duration for t in self.tasks) or [0.0]
        arr = np.array(durations)
        return TraceStatistics(
            num_hp=len(self.hp_tasks),
            num_spot=len(self.spot_tasks),
            hp_gpu_histogram=histogram(self.hp_tasks),
            spot_gpu_histogram=histogram(self.spot_tasks),
            hp_gang_fraction=gang_fraction(self.hp_tasks),
            spot_gang_fraction=gang_fraction(self.spot_tasks),
            duration_p50=float(np.percentile(arr, 50)),
            duration_p90=float(np.percentile(arr, 90)),
            duration_p99=float(np.percentile(arr, 99)),
        )

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_records(self) -> Dict[str, object]:
        """Convert to plain JSON-serialisable structures."""
        return {
            "metadata": self.metadata,
            "org_history": {k: list(map(float, v)) for k, v in self.org_history.items()},
            "tasks": [
                {
                    "task_id": t.task_id,
                    "task_type": int(t.task_type),
                    "num_pods": t.num_pods,
                    "gpus_per_pod": t.gpus_per_pod,
                    "duration": t.duration,
                    "submit_time": t.submit_time,
                    "org": t.org,
                    "gpu_model": t.gpu_model.value if t.gpu_model else None,
                    "gang": t.gang,
                    "checkpoint_interval": t.checkpoint_interval,
                }
                for t in self.tasks
            ],
        }

    @classmethod
    def from_records(cls, records: Dict[str, object]) -> "Trace":
        tasks = [
            Task(
                task_id=r["task_id"],
                task_type=TaskType(r["task_type"]),
                num_pods=r["num_pods"],
                gpus_per_pod=r["gpus_per_pod"],
                duration=r["duration"],
                submit_time=r["submit_time"],
                org=r.get("org", "default"),
                gpu_model=GPUModel(r["gpu_model"]) if r.get("gpu_model") else None,
                gang=r.get("gang", False),
                checkpoint_interval=r.get("checkpoint_interval", 1800.0),
            )
            for r in records.get("tasks", [])
        ]
        org_history = {
            k: np.asarray(v, dtype=float) for k, v in records.get("org_history", {}).items()
        }
        return cls(tasks=tasks, org_history=org_history, metadata=dict(records.get("metadata", {})))

    def save(self, path: str | Path) -> None:
        Path(path).write_text(json.dumps(self.to_records()))

    @classmethod
    def load(cls, path: str | Path) -> "Trace":
        return cls.from_records(json.loads(Path(path).read_text()))

    def __len__(self) -> int:
        return len(self.tasks)
