"""Trace containers and (de)serialisation.

A trace is the list of task submissions a simulation replays, together
with the per-organization demand history the GDE needs for training.  It
can be round-tripped through plain JSON — or gzip-compressed JSON when
the path ends in ``.gz`` — so generated and ingested traces can be saved
next to experiment results.  Writes are atomic (write-to-temp + rename),
so an interrupted save never corrupts an existing trace file.
"""

from __future__ import annotations

import gzip
import json
import math
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..cluster import GPUModel, Task, TaskType


def fluid_org_usage(
    tasks: Sequence[Task],
    hours: Optional[int] = None,
    org_names: Optional[Sequence[str]] = None,
    cluster_gpus: Optional[float] = None,
) -> Dict[str, np.ndarray]:
    """Hourly concurrent HP GPU usage per organization, fluid model.

    Every HP task is assumed to run ``[submit, submit + duration)``; its
    GPU-time is spread over the hours it overlaps.  ``hours`` fixes the
    series length (default: up to the last task end); ``org_names`` seeds
    the organizations (and their order) so quiet orgs still get a zero
    series; ``cluster_gpus`` clips aggregate usage at capacity, scaling
    every org proportionally.  Shared by the synthetic generator's
    demand-history construction and the ingest subsystem's history
    reconstruction — one implementation, one set of conventions.
    """
    hp_tasks = [t for t in tasks if t.is_hp]
    if hours is None:
        if not hp_tasks:
            return {}
        last_end = max(t.submit_time + t.duration for t in hp_tasks)
        hours = max(1, int(math.ceil(last_end / 3600.0)))
    usage: Dict[str, np.ndarray] = {name: np.zeros(hours) for name in (org_names or ())}
    for task in hp_tasks:
        start_hour = task.submit_time / 3600.0
        end_hour = min(hours, (task.submit_time + task.duration) / 3600.0)
        series = usage.setdefault(task.org, np.zeros(hours))
        for hour in range(int(start_hour), int(math.ceil(end_hour))):
            overlap = min(hour + 1, end_hour) - max(hour, start_hour)
            if overlap > 0:
                series[hour] += task.total_gpus * overlap
    if not usage:
        return {}
    if cluster_gpus is not None and cluster_gpus > 0:
        total = np.sum(np.stack(list(usage.values())), axis=0)
        scale = np.minimum(1.0, cluster_gpus / np.maximum(total, 1e-9))
        usage = {org: series * scale for org, series in usage.items()}
    return usage


@dataclass
class TraceStatistics:
    """Summary statistics of a trace (used to validate calibration)."""

    num_hp: int
    num_spot: int
    hp_gpu_histogram: Dict[str, float]
    spot_gpu_histogram: Dict[str, float]
    hp_gang_fraction: float
    spot_gang_fraction: float
    duration_p50: float
    duration_p90: float
    duration_p99: float

    def as_dict(self) -> Dict[str, object]:
        return {
            "num_hp": self.num_hp,
            "num_spot": self.num_spot,
            "hp_gpu_histogram": self.hp_gpu_histogram,
            "spot_gpu_histogram": self.spot_gpu_histogram,
            "hp_gang_fraction": self.hp_gang_fraction,
            "spot_gang_fraction": self.spot_gang_fraction,
            "duration_p50": self.duration_p50,
            "duration_p90": self.duration_p90,
            "duration_p99": self.duration_p99,
        }


@dataclass
class Trace:
    """A replayable workload trace.

    Bundles the task list with the per-organization hourly GPU demand
    history the GDE forecaster trains on, plus generation metadata (seed,
    scale, scenario).  Feed ``sorted_tasks()`` to the simulator so
    arrivals are replayed in submission order.

    Example
    -------
    >>> trace = generate_trace(cluster_gpus=256.0)
    >>> metrics = run_simulation(cluster, scheduler, trace.sorted_tasks())
    >>> trace.statistics().num_hp > 0
    True
    """

    tasks: List[Task] = field(default_factory=list)
    #: organization name -> hourly GPU demand history (for GDE training)
    org_history: Dict[str, np.ndarray] = field(default_factory=dict)
    #: metadata (seed, scale, scenario name, ...)
    metadata: Dict[str, object] = field(default_factory=dict)

    @property
    def hp_tasks(self) -> List[Task]:
        return [t for t in self.tasks if t.is_hp]

    @property
    def spot_tasks(self) -> List[Task]:
        return [t for t in self.tasks if t.is_spot]

    @property
    def horizon(self) -> float:
        """Last submission time in the trace (seconds)."""
        return max((t.submit_time for t in self.tasks), default=0.0)

    def sorted_tasks(self) -> List[Task]:
        """Tasks in replay order: ``(submit_time, task_id)``.

        The task-id tie-break keeps replay order — and therefore every
        downstream metric — deterministic for traces with simultaneous
        arrivals (common in ingested external logs with coarse
        timestamps), independent of how the task list was assembled.
        """
        return sorted(self.tasks, key=lambda t: (t.submit_time, t.task_id))

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    @staticmethod
    def _gpu_bucket(task: Task) -> str:
        size = task.gpus_per_pod
        if size < 1.0:
            return "<1"
        return str(int(round(size)))

    def statistics(self) -> TraceStatistics:
        """Compute the calibration statistics of this trace."""

        def histogram(tasks: Sequence[Task]) -> Dict[str, float]:
            counts: Dict[str, int] = {}
            for t in tasks:
                counts[self._gpu_bucket(t)] = counts.get(self._gpu_bucket(t), 0) + 1
            total = max(1, len(tasks))
            return {k: v / total for k, v in sorted(counts.items())}

        def gang_fraction(tasks: Sequence[Task]) -> float:
            if not tasks:
                return 0.0
            return sum(1 for t in tasks if t.gang) / len(tasks)

        durations = sorted(t.duration for t in self.tasks) or [0.0]
        arr = np.array(durations)
        return TraceStatistics(
            num_hp=len(self.hp_tasks),
            num_spot=len(self.spot_tasks),
            hp_gpu_histogram=histogram(self.hp_tasks),
            spot_gpu_histogram=histogram(self.spot_tasks),
            hp_gang_fraction=gang_fraction(self.hp_tasks),
            spot_gang_fraction=gang_fraction(self.spot_tasks),
            duration_p50=float(np.percentile(arr, 50)),
            duration_p90=float(np.percentile(arr, 90)),
            duration_p99=float(np.percentile(arr, 99)),
        )

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_records(self) -> Dict[str, object]:
        """Convert to plain JSON-serialisable structures."""
        return {
            "metadata": self.metadata,
            "org_history": {k: list(map(float, v)) for k, v in self.org_history.items()},
            "tasks": [
                {
                    "task_id": t.task_id,
                    "task_type": int(t.task_type),
                    "num_pods": t.num_pods,
                    "gpus_per_pod": t.gpus_per_pod,
                    "duration": t.duration,
                    "submit_time": t.submit_time,
                    "org": t.org,
                    "gpu_model": t.gpu_model.value if t.gpu_model else None,
                    "gang": t.gang,
                    "checkpoint_interval": t.checkpoint_interval,
                }
                for t in self.tasks
            ],
        }

    @classmethod
    def from_records(cls, records: Dict[str, object]) -> "Trace":
        tasks = [
            Task(
                task_id=r["task_id"],
                task_type=TaskType(r["task_type"]),
                num_pods=r["num_pods"],
                gpus_per_pod=r["gpus_per_pod"],
                duration=r["duration"],
                submit_time=r["submit_time"],
                org=r.get("org", "default"),
                gpu_model=GPUModel(r["gpu_model"]) if r.get("gpu_model") else None,
                gang=r.get("gang", False),
                checkpoint_interval=r.get("checkpoint_interval", 1800.0),
            )
            for r in records.get("tasks", [])
        ]
        org_history = {
            k: np.asarray(v, dtype=float) for k, v in records.get("org_history", {}).items()
        }
        return cls(tasks=tasks, org_history=org_history, metadata=dict(records.get("metadata", {})))

    @staticmethod
    def _is_gzip_path(path: Path) -> bool:
        return path.name.lower().endswith(".gz")

    def save(self, path: str | Path) -> None:
        """Write the trace as JSON (gzip-compressed when ``path`` ends in
        ``.gz``), atomically.

        The payload goes to a temp file in the same directory first and
        is renamed into place, so a crash or interrupt mid-write leaves
        any previous version of the file intact instead of a truncated
        JSON document.
        """
        path = Path(path)
        payload = json.dumps(self.to_records())
        tmp = path.parent / f".{path.name}.tmp.{os.getpid()}"
        try:
            if self._is_gzip_path(path):
                # Fixed mtime and no embedded filename keep byte-identical
                # traces byte-identical on disk (content-keyed caching).
                with tmp.open("wb") as handle:
                    with gzip.GzipFile(
                        filename="", fileobj=handle, mode="wb", mtime=0
                    ) as zipped:
                        zipped.write(payload.encode("utf-8"))
            else:
                tmp.write_text(payload)
            os.replace(tmp, path)
        finally:
            tmp.unlink(missing_ok=True)

    @classmethod
    def load(cls, path: str | Path) -> "Trace":
        path = Path(path)
        if cls._is_gzip_path(path):
            with gzip.open(path, "rt", encoding="utf-8") as handle:
                return cls.from_records(json.load(handle))
        return cls.from_records(json.loads(path.read_text()))

    def __len__(self) -> int:
        return len(self.tasks)
