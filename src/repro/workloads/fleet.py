"""Model fleets reproducing Table 1 and the simulated cluster of Section 4.1.

Table 1 describes the production fleet (node counts per GPU model, GPUs per
node and pre-GFS allocation rates).  The simulation experiments use a
single 287-node x 8-GPU A100 cluster (2,296 GPUs).  Both are expressible
here, optionally scaled down so the full suite runs quickly on one machine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..cluster import Cluster, GPUModel, Node, make_nodes


@dataclass
class FleetEntry:
    """One row of Table 1."""

    model: GPUModel
    node_count: int
    gpus_per_node: int
    allocation_rate: float  # pre-deployment allocation rate (Jan 2024)


#: The production fleet of Table 1.  Table 1 gives lower bounds on node
#: counts ("more than"); counts are chosen to respect those bounds and sum
#: to the 10,365 GPUs the paper reports for the whole cluster.
PRODUCTION_FLEET: List[FleetEntry] = [
    FleetEntry(GPUModel.A10, node_count=2781, gpus_per_node=1, allocation_rate=0.8459),
    FleetEntry(GPUModel.A100, node_count=520, gpus_per_node=8, allocation_rate=0.7434),
    FleetEntry(GPUModel.A800, node_count=65, gpus_per_node=8, allocation_rate=0.6296),
    FleetEntry(GPUModel.H800, node_count=363, gpus_per_node=8, allocation_rate=0.6811),
]

#: Post-deployment allocation rates reported in Figure 9b.
POST_DEPLOYMENT_ALLOCATION: Dict[GPUModel, float] = {
    GPUModel.A10: 0.9868,
    GPUModel.A100: 0.8837,
    GPUModel.A800: 0.8575,
    GPUModel.H800: 0.8623,
}

#: Pre-deployment spot eviction rates of Figure 9a (approximate values read
#: off the bar chart; the A100 reduction is the 67.81% quoted in the text).
PRE_DEPLOYMENT_EVICTION: Dict[GPUModel, float] = {
    GPUModel.A10: 0.12,
    GPUModel.A100: 0.28,
    GPUModel.A800: 0.24,
    GPUModel.H800: 0.22,
}

#: Post-deployment spot eviction rates of Figure 9a (all below 10%).
POST_DEPLOYMENT_EVICTION: Dict[GPUModel, float] = {
    GPUModel.A10: 0.05,
    GPUModel.A100: 0.09,
    GPUModel.A800: 0.08,
    GPUModel.H800: 0.07,
}


def production_gpu_counts(entries: List[FleetEntry] | None = None) -> Dict[GPUModel, int]:
    """Total GPU count per model for a fleet description."""
    entries = entries or PRODUCTION_FLEET
    return {e.model: e.node_count * e.gpus_per_node for e in entries}


def scaled_fleet(scale: float = 1.0, entries: List[FleetEntry] | None = None) -> List[FleetEntry]:
    """A proportionally scaled copy of the fleet (at least one node per model)."""
    entries = entries or PRODUCTION_FLEET
    return [
        FleetEntry(
            model=e.model,
            node_count=max(1, int(round(e.node_count * scale))),
            gpus_per_node=e.gpus_per_node,
            allocation_rate=e.allocation_rate,
        )
        for e in entries
    ]


def build_production_cluster(scale: float = 0.05) -> Cluster:
    """Build a heterogeneous cluster mirroring Table 1, scaled by ``scale``."""
    nodes: List[Node] = []
    for entry in scaled_fleet(scale):
        nodes.extend(
            make_nodes(
                entry.node_count,
                entry.model,
                gpus_per_node=entry.gpus_per_node,
                cluster_label="production",
                prefix=f"{entry.model.value.lower()}-prod",
            )
        )
    return Cluster(nodes)


def build_simulation_cluster(num_nodes: int = 287, gpus_per_node: int = 8) -> Cluster:
    """The homogeneous A100 simulation cluster of Section 4.1 (2,296 GPUs)."""
    return Cluster.homogeneous(num_nodes, gpus_per_node, GPUModel.A100, cluster_label="sim")
