"""Named workload scenarios: a registry of trace-generator parameterizations.

The paper evaluates GFS on one synthetic workload family calibrated to its
production trace.  Real clusters see far more variety, so this module
exposes a *scenario library*: each :class:`Scenario` is a named, documented
parameterization of :class:`~repro.workloads.synthetic.SyntheticTraceGenerator`
(config-field overrides, an optional custom organization mix and an
optional heterogeneous fleet composition), runnable through the parallel
experiment engine and the CLI::

    python -m repro.experiments.cli sweep --scenario burst --workers 8

Built-in scenarios (see ``docs/workloads.md`` for the full catalog):

========== =============================================================
name       what it stresses
========== =============================================================
default    the paper's calibrated Table 3 mix (baseline for everything)
burst      synchronized arrival spikes every few hours (quota headroom)
diurnal    follow-the-sun org peaks + strong arrival modulation (GDE)
hetero     mixed A100/A800/H800/A10 fleet, model-agnostic tasks (PTS)
org_skew   one organization dominating demand (per-org fairness, GDE)
spot_heavy spot submission rivalling HP load (SQA admission control)
large_gang frequent 4-8 pod gangs (gang admission and preemption cost)
========== =============================================================

Chaos scenarios pair the default workload with a cluster-dynamics preset
(:mod:`repro.dynamics`, ``docs/reliability.md``): ``node_churn`` (random
failures + repairs), ``maintenance_wave`` (rolling graceful drains),
``spot_reclaim_storm`` (periodic abrupt capacity loss) and
``elastic_fleet`` (fleet grow/shrink).  Any scenario — including
``trace:<path>`` replays — can be combined with any dynamics preset via
``cli sweep --dynamics <name>``.

Register custom scenarios with :func:`register_scenario`; look one up with
:func:`get_scenario`; enumerate with :func:`scenario_names`.  Ingested
external traces join the library through ``trace:<path>`` refs (see
:mod:`repro.workloads.ingest` and ``docs/traces.md``)::

    python -m repro.experiments.cli sweep --scenario trace:philly.json.gz
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..cluster import Cluster, GPUModel, Node, make_nodes
from ..dynamics import DynamicsSpec, get_dynamics
from .organizations import OrganizationProfile, default_organizations
from .synthetic import SyntheticTraceGenerator, WorkloadConfig
from .trace import Trace

#: Builds the organization mix for a scenario: ``seed -> profiles``.
OrgBuilder = Callable[[int], List[OrganizationProfile]]


@dataclass(frozen=True)
class Scenario:
    """A named parameterization of the synthetic trace generator.

    ``overrides`` are :class:`WorkloadConfig` field overrides applied on
    top of the caller's base parameters (cluster size, duration, seed,
    spot scale); caller-supplied ``extra_overrides`` win over both.
    ``org_builder`` optionally replaces the default organization mix, and
    ``fleet_mix`` optionally replaces the homogeneous simulation cluster
    with a multi-model fleet (node fractions per GPU model).

    ``org_builder`` must be a module-level function (not a lambda or
    closure) so scenarios pickle into experiment-engine worker processes
    on every multiprocessing start method.
    """

    name: str
    summary: str
    overrides: Mapping[str, object] = field(default_factory=dict)
    org_builder: Optional[OrgBuilder] = None
    #: ``((GPUModel, node_fraction), ...)``; ``None`` keeps a homogeneous cluster
    fleet_mix: Optional[Tuple[Tuple[GPUModel, float], ...]] = None
    #: cluster dynamics attached to every run of this scenario (chaos
    #: scenarios); ``None`` keeps the fleet static
    dynamics: Optional[DynamicsSpec] = None

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def build_config(
        self,
        cluster_gpus: float,
        duration_hours: float,
        spot_scale: float = 1.0,
        seed: int = 0,
        gpu_model: Optional[GPUModel] = GPUModel.A100,
        extra_overrides: Optional[Mapping[str, object]] = None,
        base_overrides: Optional[Mapping[str, object]] = None,
    ) -> WorkloadConfig:
        """Assemble the workload config for this scenario.

        Precedence (lowest to highest): base parameters, ``base_overrides``
        (e.g. an experiment scale's workload overrides), the scenario's own
        ``overrides``, then caller ``extra_overrides``.
        """
        kwargs: Dict[str, object] = {
            "cluster_gpus": cluster_gpus,
            "duration_hours": duration_hours,
            "spot_scale": spot_scale,
            "seed": seed,
            "gpu_model": gpu_model,
        }
        if base_overrides:
            kwargs.update(base_overrides)
        kwargs.update(self.overrides)
        if extra_overrides:
            kwargs.update(extra_overrides)
        # JSON round-trips (job specs, caches) turn tuples into lists.
        for key in ("gang_pod_range",):
            if key in kwargs and isinstance(kwargs[key], list):
                kwargs[key] = tuple(kwargs[key])
        return WorkloadConfig(**kwargs)

    def build_trace(
        self,
        cluster_gpus: float,
        duration_hours: float,
        spot_scale: float = 1.0,
        seed: int = 0,
        gpu_model: Optional[GPUModel] = GPUModel.A100,
        extra_overrides: Optional[Mapping[str, object]] = None,
        base_overrides: Optional[Mapping[str, object]] = None,
    ) -> Trace:
        """Generate a trace for this scenario (deterministic in ``seed``)."""
        config = self.build_config(
            cluster_gpus,
            duration_hours,
            spot_scale,
            seed,
            gpu_model,
            extra_overrides,
            base_overrides,
        )
        organizations = self.org_builder(seed) if self.org_builder else None
        trace = SyntheticTraceGenerator(config, organizations=organizations).generate()
        trace.metadata["scenario"] = self.name
        return trace

    def cache_descriptor(self, seed: int) -> Dict[str, object]:
        """The scenario's contribution to an engine cache key.

        Everything that can change simulated results must appear here:
        the overrides, the fleet mix and the organization mix
        materialised for ``seed``.  Subclasses that source tasks outside
        the synthetic generator (e.g. ingested trace replay) override
        this with their own content descriptor.
        """
        descriptor: Dict[str, object] = {
            "name": self.name,
            "overrides": dict(self.overrides),
            "fleet_mix": self.fleet_mix,
        }
        if self.org_builder is not None:
            descriptor["organizations"] = self.org_builder(seed)
        if self.dynamics is not None:
            # The fault schedule is a pure function of (spec, seed, node
            # ids); the seed and cluster size are already part of the
            # engine's cache payload, so the spec descriptor is all the
            # cache key needs to never serve stale results across
            # dynamics changes.
            descriptor["dynamics"] = self.dynamics.descriptor()
        return descriptor

    def build_cluster(
        self,
        num_nodes: int,
        gpus_per_node: int = 8,
        gpu_model: GPUModel = GPUModel.A100,
    ) -> Cluster:
        """Build the cluster this scenario runs on.

        Homogeneous by default; scenarios with a ``fleet_mix`` split the
        node budget across GPU models proportionally.  Exactly
        ``num_nodes`` nodes are built; every model gets at least one node
        whenever the budget allows (``num_nodes >= len(fleet_mix)``),
        models earlier in the mix winning ties on smaller clusters.
        """
        if not self.fleet_mix:
            return Cluster.homogeneous(num_nodes, gpus_per_node, gpu_model)
        nodes: List[Node] = []
        remaining = num_nodes
        mix = list(self.fleet_mix)
        for i, (model, fraction) in enumerate(mix):
            if remaining <= 0:
                break
            models_left = len(mix) - i - 1
            if models_left == 0:
                count = remaining
            else:
                # Proportional share, but never below one node and never so
                # many that later models are starved when nodes remain.
                count = max(1, int(round(num_nodes * fraction)))
                count = min(count, max(1, remaining - models_left))
            remaining -= count
            nodes.extend(
                make_nodes(
                    count,
                    model,
                    gpus_per_node=gpus_per_node,
                    cluster_label=self.name,
                    prefix=f"{model.value.lower()}-{self.name}",
                )
            )
        return Cluster(nodes)


# ----------------------------------------------------------------------
# Organization mixes used by the built-in scenarios
# ----------------------------------------------------------------------
def follow_the_sun_organizations(seed: int = 0) -> List[OrganizationProfile]:
    """Four organizations whose daily peaks are staggered around the clock.

    Models a cluster shared across timezones: each org keeps the default
    statistical profile but peaks in a different 14-hour window, so
    aggregate demand shifts through the day instead of peaking once.
    """
    windows = [(0, 14), (5, 19), (10, 24), (15, 29)]  # centres 7h/12h/17h/22h
    orgs = default_organizations(seed)
    return [
        replace(org, peak_hours=windows[i % len(windows)], diurnal_amplitude=org.diurnal_amplitude * 1.8)
        for i, org in enumerate(orgs)
    ]


def skewed_organizations(seed: int = 0) -> List[OrganizationProfile]:
    """One dominant organization plus a long tail of small ones.

    The lead org carries ~75% of demand with pronounced bursts; the
    remaining orgs shrink proportionally.  Stresses per-organization
    forecasting and quota fairness under concentration.
    """
    scales = [3.0, 0.5, 0.3, 0.2]
    orgs = default_organizations(seed)
    return [
        replace(
            org,
            base_demand=org.base_demand * scales[i % len(scales)],
            diurnal_amplitude=org.diurnal_amplitude * scales[i % len(scales)],
            burst_magnitude=org.burst_magnitude * scales[i % len(scales)],
        )
        for i, org in enumerate(orgs)
    ]


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_REGISTRY: Dict[str, Scenario] = {}


def register_scenario(scenario: Scenario, replace_existing: bool = False) -> Scenario:
    """Add a scenario to the global registry (name must be unique)."""
    if scenario.name in _REGISTRY and not replace_existing:
        raise ValueError(f"scenario {scenario.name!r} is already registered")
    _REGISTRY[scenario.name] = scenario
    return scenario


def get_scenario(name: str) -> Scenario:
    """Look a scenario up by name.

    ``trace:<path>`` refs resolve to a
    :class:`~repro.workloads.ingest.TraceScenario` replaying the ingested
    trace at ``<path>`` (a converted ``.json``/``.json.gz`` trace or a
    raw external log); everything else hits the registry.
    """
    if name.startswith("trace:"):
        from .ingest import trace_scenario

        return trace_scenario(name[len("trace:"):])
    key = name.lower().replace("-", "_")
    if key not in _REGISTRY:
        raise KeyError(f"unknown scenario {name!r}; expected one of {scenario_names()}")
    return _REGISTRY[key]


def scenario_names() -> List[str]:
    """Sorted names of all registered scenarios."""
    return sorted(_REGISTRY)


def iter_scenarios() -> Sequence[Scenario]:
    """All registered scenarios, sorted by name."""
    return [_REGISTRY[name] for name in scenario_names()]


# ----------------------------------------------------------------------
# Built-in scenarios
# ----------------------------------------------------------------------
DEFAULT_SCENARIO = register_scenario(
    Scenario(
        name="default",
        summary="Paper-calibrated workload: Table 3 size/gang mix, diurnal org demand.",
    )
)

BURST_SCENARIO = register_scenario(
    Scenario(
        name="burst",
        summary="Synchronized arrival spikes: every 6h one hour carries ~8x intensity.",
        overrides={
            "arrival_burst_period": 6,
            "arrival_burst_width": 1,
            "arrival_burst_multiplier": 8.0,
            "diurnal_arrival_amplitude": 0.15,
        },
    )
)

DIURNAL_SCENARIO = register_scenario(
    Scenario(
        name="diurnal",
        summary="Follow-the-sun: org peaks staggered around the clock, strong modulation.",
        overrides={"diurnal_arrival_amplitude": 0.85},
        org_builder=follow_the_sun_organizations,
    )
)

HETERO_SCENARIO = register_scenario(
    Scenario(
        name="hetero",
        summary="Heterogeneous fleet: A100/H800/A800/A10 mix, model-agnostic tasks.",
        overrides={"gpu_model": None},
        fleet_mix=(
            (GPUModel.A100, 0.50),
            (GPUModel.H800, 0.25),
            (GPUModel.A800, 0.125),
            (GPUModel.A10, 0.125),
        ),
    )
)

ORG_SKEW_SCENARIO = register_scenario(
    Scenario(
        name="org_skew",
        summary="One org carries ~75% of HP demand; stresses per-org forecasts/quota.",
        org_builder=skewed_organizations,
    )
)

SPOT_HEAVY_SCENARIO = register_scenario(
    Scenario(
        name="spot_heavy",
        summary="Spot submissions rival HP load; short spot jobs hammer admission.",
        overrides={
            "spot_target_utilization": 0.40,
            "hp_target_utilization": 0.45,
            "spot_median_runtime": 1800.0,
        },
    )
)

LARGE_GANG_SCENARIO = register_scenario(
    Scenario(
        name="large_gang",
        summary="Frequent 4-8 pod gangs in both classes; stresses gang placement.",
        overrides={
            "hp_gang_fraction": 0.35,
            "spot_gang_fraction": 0.50,
            "gang_pod_range": (4, 8),
        },
    )
)


# ----------------------------------------------------------------------
# Chaos scenarios: the default workload under cluster dynamics
# ----------------------------------------------------------------------
NODE_CHURN_SCENARIO = register_scenario(
    Scenario(
        name="node_churn",
        summary="Random node failures (50h MTBF, ~2h repairs) under the default mix.",
        dynamics=get_dynamics("node_churn"),
    )
)

MAINTENANCE_WAVE_SCENARIO = register_scenario(
    Scenario(
        name="maintenance_wave",
        summary="Rolling graceful drains: 1/8 of the fleet out for 3h every 12h.",
        dynamics=get_dynamics("maintenance_wave"),
    )
)

SPOT_RECLAIM_STORM_SCENARIO = register_scenario(
    Scenario(
        name="spot_reclaim_storm",
        summary="Abrupt reclamation of 25% of nodes every 8h, with heavier spot load.",
        overrides={"spot_target_utilization": 0.20},
        dynamics=get_dynamics("spot_reclaim_storm"),
    )
)

ELASTIC_FLEET_SCENARIO = register_scenario(
    Scenario(
        name="elastic_fleet",
        summary="Fleet starts at 75%, grows to 100% at 6h, retires 10% for good at 18h.",
        dynamics=get_dynamics("elastic_fleet"),
    )
)
