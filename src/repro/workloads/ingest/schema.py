"""The normalized trace-record schema and its validation.

Every ingest adapter — whatever the source format — emits a stream of
:class:`TraceRecord` objects: one normalized row per task submission.
The record is the *documented* generic schema (``docs/traces.md``): a
generic CSV or JSONL trace simply lists these fields verbatim, while the
Philly- and PAI-style adapters derive them from their native columns.

All times are seconds; ``submit_time`` may be absolute in the source file
(epoch seconds or wall-clock timestamps) — the ingest builder rebases the
stream so the earliest submission lands at ``t = 0``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict, List, Optional, Sequence

#: Task classes a record may declare (``zeta`` in the paper's task tuple).
TASK_TYPES = ("hp", "spot")

#: Fields a generic CSV/JSONL trace may carry.  Only ``submit_time`` and
#: ``duration`` are required; everything else falls back to the defaults
#: of :class:`TraceRecord`.
GENERIC_FIELDS = (
    "job_id",
    "task_type",
    "submit_time",
    "duration",
    "num_pods",
    "gpus_per_pod",
    "org",
    "gpu_model",
    "gang",
    "checkpoint_interval",
)

REQUIRED_FIELDS = ("submit_time", "duration")


@dataclass
class TraceRecord:
    """One normalized task submission from an external trace.

    The intermediate currency of the ingest pipeline: adapters produce
    records, transforms rewrite them, and the builder turns the surviving
    records into :class:`~repro.cluster.Task` objects.

    ``gang=None`` means "derive from shape" (multi-pod requests gang,
    single-pod requests don't); an explicit ``True``/``False`` from the
    source is preserved.
    """

    submit_time: float
    duration: float
    job_id: str = ""
    task_type: str = "hp"
    num_pods: int = 1
    gpus_per_pod: float = 1.0
    org: str = "default"
    gpu_model: Optional[str] = None
    gang: Optional[bool] = None
    checkpoint_interval: float = 3600.0

    @property
    def is_gang(self) -> bool:
        """The effective gang flag (derived from the shape when unset)."""
        return self.num_pods > 1 if self.gang is None else bool(self.gang)

    @property
    def total_gpus(self) -> float:
        return self.num_pods * self.gpus_per_pod


_RECORD_FIELDS = {f.name for f in fields(TraceRecord)}


def record_from_mapping(row: Dict[str, object]) -> TraceRecord:
    """Build a record from a generic-schema mapping (CSV row / JSONL object).

    Unknown keys are ignored so traces can carry extra columns; missing
    optional keys take the schema defaults.  Raises ``KeyError`` when a
    required field is absent and ``ValueError`` on unparseable values.
    """
    for name in REQUIRED_FIELDS:
        if row.get(name) in (None, ""):
            raise KeyError(f"required field {name!r} missing from row")
    kwargs: Dict[str, object] = {}
    for name, value in row.items():
        if name not in _RECORD_FIELDS or value in (None, ""):
            continue
        if name in ("submit_time", "duration", "gpus_per_pod", "checkpoint_interval"):
            kwargs[name] = float(value)
        elif name == "num_pods":
            kwargs[name] = int(float(value))
        elif name == "gang":
            kwargs[name] = parse_bool(value)
        elif name == "task_type":
            kwargs[name] = str(value).strip().lower()
        else:
            kwargs[name] = str(value)
    return TraceRecord(**kwargs)


def parse_bool(value: object) -> bool:
    """Parse the bool spellings CSV files use (``true``/``1``/``yes``...)."""
    if isinstance(value, bool):
        return value
    text = str(value).strip().lower()
    if text in ("true", "1", "yes", "y", "t"):
        return True
    if text in ("false", "0", "no", "n", "f", ""):
        return False
    raise ValueError(f"cannot parse boolean from {value!r}")


# ----------------------------------------------------------------------
# Validation
# ----------------------------------------------------------------------
#: At most this many individual issues are kept per severity; past that,
#: only the counter grows (keeps reports readable on huge broken traces).
MAX_REPORTED_ISSUES = 25


@dataclass
class ValidationReport:
    """Outcome of validating a record stream or a converted trace."""

    errors: List[str] = field(default_factory=list)
    warnings: List[str] = field(default_factory=list)
    error_count: int = 0
    warning_count: int = 0
    checked: int = 0

    @property
    def ok(self) -> bool:
        return self.error_count == 0

    def error(self, message: str) -> None:
        self.error_count += 1
        if len(self.errors) < MAX_REPORTED_ISSUES:
            self.errors.append(message)

    def warn(self, message: str) -> None:
        self.warning_count += 1
        if len(self.warnings) < MAX_REPORTED_ISSUES:
            self.warnings.append(message)

    def raise_if_invalid(self) -> None:
        if not self.ok:
            shown = "; ".join(self.errors)
            extra = self.error_count - len(self.errors)
            if extra > 0:
                shown += f"; ... and {extra} more"
            raise ValueError(f"trace failed validation ({self.error_count} error(s)): {shown}")

    def summary(self) -> str:
        status = "OK" if self.ok else "INVALID"
        return (
            f"{status}: {self.checked} record(s) checked, "
            f"{self.error_count} error(s), {self.warning_count} warning(s)"
        )


def validate_records(
    records: Sequence[TraceRecord],
    known_gpu_models: Optional[Sequence[str]] = None,
) -> ValidationReport:
    """Validate a normalized record stream against the generic schema.

    Structural violations (non-positive durations, bad shapes, unknown
    task types) are errors; suspicious-but-replayable rows (unknown GPU
    model names, explicit gang flags on single-pod tasks) are warnings.
    """
    report = ValidationReport()
    if not records:
        report.error("trace contains no records")
        return report
    known = {m.upper() for m in known_gpu_models} if known_gpu_models else None
    for i, record in enumerate(records):
        report.checked += 1
        where = f"record {i} ({record.job_id or 'unnamed'})"
        if record.duration <= 0:
            report.error(f"{where}: duration must be > 0, got {record.duration}")
        if record.submit_time < 0:
            report.error(f"{where}: submit_time must be >= 0, got {record.submit_time}")
        if record.num_pods < 1:
            report.error(f"{where}: num_pods must be >= 1, got {record.num_pods}")
        if record.gpus_per_pod <= 0:
            report.error(f"{where}: gpus_per_pod must be > 0, got {record.gpus_per_pod}")
        if record.task_type not in TASK_TYPES:
            report.error(
                f"{where}: task_type must be one of {TASK_TYPES}, got {record.task_type!r}"
            )
        if record.checkpoint_interval <= 0:
            report.error(
                f"{where}: checkpoint_interval must be > 0, got {record.checkpoint_interval}"
            )
        if known is not None and record.gpu_model and record.gpu_model.upper() not in known:
            report.warn(f"{where}: unknown gpu_model {record.gpu_model!r} (will be remapped)")
        if record.gang is True and record.num_pods == 1:
            report.warn(f"{where}: gang=true on a single-pod task")
    return report


def validate_trace(trace) -> ValidationReport:
    """Validate a converted :class:`~repro.workloads.Trace` for replay.

    Checks the task list the simulator will consume (positive shapes and
    durations, non-negative submit times, unique task ids) and the
    attached per-organization demand history (whole days, finite,
    non-negative) the GDE forecaster trains on.
    """
    import numpy as np

    report = ValidationReport()
    if not trace.tasks:
        report.error("trace contains no tasks")
    seen_ids: Dict[str, int] = {}
    for i, task in enumerate(trace.tasks):
        report.checked += 1
        where = f"task {i} ({task.task_id})"
        if task.duration <= 0:
            report.error(f"{where}: duration must be > 0")
        if task.submit_time < 0:
            report.error(f"{where}: submit_time must be >= 0")
        if task.num_pods < 1 or task.gpus_per_pod <= 0:
            report.error(f"{where}: invalid shape {task.num_pods}x{task.gpus_per_pod}")
        seen_ids[task.task_id] = seen_ids.get(task.task_id, 0) + 1
    for task_id, count in seen_ids.items():
        if count > 1:
            report.error(f"duplicate task id {task_id!r} appears {count} times")
    task_orgs = {t.org for t in trace.tasks}
    for org, series in trace.org_history.items():
        arr = np.asarray(series, dtype=float)
        if arr.size == 0 or arr.size % 24 != 0:
            report.warn(f"org {org!r}: history length {arr.size} is not whole days")
        if not np.all(np.isfinite(arr)):
            report.error(f"org {org!r}: history contains non-finite values")
        elif np.any(arr < 0):
            report.error(f"org {org!r}: history contains negative demand")
    missing_history = task_orgs - set(trace.org_history)
    if trace.org_history and missing_history:
        report.warn(
            f"{len(missing_history)} org(s) submit tasks but have no demand history: "
            f"{sorted(missing_history)[:5]}"
        )
    return report
