"""Format adapters: external cluster logs -> normalized record streams.

Each adapter streams its source file in bounded-memory chunks and yields
:class:`~.schema.TraceRecord` objects.  Three families are supported:

* **Philly-style CSV** (`philly`) — Microsoft Philly DNN trace exports:
  one job per row with ``jobid, vc, submitted_time, started_time,
  finished_time, num_gpus, status`` columns.  Timestamps may be epoch
  seconds or ISO ``YYYY-MM-DD HH:MM:SS`` strings.
* **Alibaba/PAI-style job tables** (`pai`, alias `alibaba`) — cluster-
  data GPU job tables with ``job_name, inst_num, status, start_time,
  end_time, plan_gpu, gpu_type`` columns (``plan_gpu`` in percent of a
  card, ``inst_num`` instances per job).
* **Generic CSV / JSONL** (`csv`, `jsonl`) — the documented generic
  schema (``docs/traces.md``): columns/keys named exactly after
  :class:`~.schema.TraceRecord` fields.

Adapters only *normalize*; rebasing times to ``t = 0``, transforms, GPU
remapping and history reconstruction happen in :mod:`.builder`.
"""

from __future__ import annotations

import csv
import json
import math
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Tuple, Type

from .schema import TraceRecord, record_from_mapping

#: Rows parsed per chunk; bounds peak memory while amortising dispatch.
DEFAULT_CHUNK_SIZE = 4096


def parse_timestamp(value: object) -> float:
    """Parse a source timestamp into float seconds.

    Accepts epoch/relative seconds (``"1506980.0"``) and wall-clock
    ISO-ish strings (``"2017-10-03 05:07:49"``), which are treated as UTC
    so ingestion is reproducible across machines and timezones.
    """
    text = str(value).strip()
    if not text:
        raise ValueError("empty timestamp")
    try:
        return float(text)
    except ValueError:
        pass
    parsed = datetime.fromisoformat(text)
    if parsed.tzinfo is None:
        parsed = parsed.replace(tzinfo=timezone.utc)
    return parsed.timestamp()


def _chunked(rows: Iterable[Mapping[str, object]], size: int) -> Iterator[List[Mapping[str, object]]]:
    chunk: List[Mapping[str, object]] = []
    for row in rows:
        chunk.append(row)
        if len(chunk) >= size:
            yield chunk
            chunk = []
    if chunk:
        yield chunk


@dataclass
class TraceAdapter:
    """Base class: stream a source file into normalized records.

    ``skipped`` counts rows the adapter dropped (unusable status, missing
    fields, unparseable values) during the last :meth:`iter_records`
    pass; ``skip_reasons`` breaks the count down for diagnostics.
    """

    chunk_size: int = DEFAULT_CHUNK_SIZE
    skipped: int = 0
    skip_reasons: Dict[str, int] = field(default_factory=dict)

    format_name = ""

    def iter_records(self, path: str | Path) -> Iterator[TraceRecord]:
        """Yield normalized records, streaming the file chunk by chunk."""
        self.skipped = 0
        self.skip_reasons = {}
        for chunk in _chunked(self._iter_rows(Path(path)), self.chunk_size):
            for row in chunk:
                try:
                    record = self._convert_row(row)
                except (KeyError, ValueError, TypeError) as exc:
                    self._skip(type(exc).__name__)
                    continue
                if record is not None:
                    yield record

    def read_records(self, path: str | Path) -> List[TraceRecord]:
        """Materialise the whole record stream (what the builder uses)."""
        return list(self.iter_records(path))

    # -- hooks ---------------------------------------------------------
    def _iter_rows(self, path: Path) -> Iterator[Mapping[str, object]]:
        raise NotImplementedError

    def _convert_row(self, row: Mapping[str, object]) -> Optional[TraceRecord]:
        raise NotImplementedError

    def _skip(self, reason: str) -> None:
        self.skipped += 1
        self.skip_reasons[reason] = self.skip_reasons.get(reason, 0) + 1


class _CSVRows:
    """Shared lazy CSV row iteration with lower-cased, stripped headers."""

    @staticmethod
    def rows(path: Path) -> Iterator[Dict[str, object]]:
        with path.open(newline="") as handle:
            reader = csv.DictReader(handle)
            if reader.fieldnames:
                reader.fieldnames = [name.strip().lower() for name in reader.fieldnames]
            for row in reader:
                yield row


@dataclass
class PhillyCSVAdapter(TraceAdapter):
    """Philly-style job CSV: one row per job, wall-clock or epoch times.

    Status decides the task class: ``Pass`` jobs ran to completion under
    a guarantee (HP); ``Killed`` jobs were terminated early, the closest
    analogue of best-effort/spot work; ``Failed`` jobs carry no usable
    duration signal and are skipped.  Jobs wider than a node are split
    into gangs of at most ``gpus_per_node`` GPUs per pod.
    """

    hp_statuses: Tuple[str, ...] = ("pass",)
    spot_statuses: Tuple[str, ...] = ("killed",)
    gpus_per_node: int = 8

    format_name = "philly"

    def _iter_rows(self, path: Path) -> Iterator[Mapping[str, object]]:
        return _CSVRows.rows(path)

    def _convert_row(self, row: Mapping[str, object]) -> Optional[TraceRecord]:
        status = str(row.get("status", "")).strip().lower()
        if status in self.hp_statuses:
            task_type = "hp"
        elif status in self.spot_statuses:
            task_type = "spot"
        else:
            self._skip(f"status:{status or 'missing'}")
            return None
        submit = parse_timestamp(row["submitted_time"])
        duration = self._duration(row)
        if duration is None or duration <= 0:
            self._skip("no-duration")
            return None
        num_gpus = max(1.0, float(row.get("num_gpus") or 1))
        num_pods = max(1, int(math.ceil(num_gpus / self.gpus_per_node)))
        return TraceRecord(
            job_id=str(row.get("jobid", "")).strip(),
            task_type=task_type,
            submit_time=submit,
            duration=duration,
            num_pods=num_pods,
            gpus_per_pod=num_gpus / num_pods,
            org=str(row.get("vc") or "default").strip(),
            gang=num_pods > 1,
        )

    def _duration(self, row: Mapping[str, object]) -> Optional[float]:
        run_time = row.get("run_time")
        if run_time not in (None, ""):
            return float(run_time)
        started, finished = row.get("started_time"), row.get("finished_time")
        if started in (None, "") or finished in (None, ""):
            return None
        return parse_timestamp(finished) - parse_timestamp(started)


@dataclass
class PAIJobTableAdapter(TraceAdapter):
    """Alibaba/PAI-style job table: ``plan_gpu`` percent, ``inst_num`` pods.

    ``Terminated`` jobs completed normally (HP); ``Cancelled`` jobs were
    killed mid-flight, the best-effort analogue (spot); anything else
    (``Failed``, ``Running``, ``Waiting``) has no replayable duration and
    is skipped.  ``gpu_type`` rides along verbatim and is remapped onto
    the configured fleet by the builder.
    """

    hp_statuses: Tuple[str, ...] = ("terminated",)
    spot_statuses: Tuple[str, ...] = ("cancelled",)

    format_name = "pai"

    def _iter_rows(self, path: Path) -> Iterator[Mapping[str, object]]:
        return _CSVRows.rows(path)

    def _convert_row(self, row: Mapping[str, object]) -> Optional[TraceRecord]:
        status = str(row.get("status", "")).strip().lower()
        if status in self.hp_statuses:
            task_type = "hp"
        elif status in self.spot_statuses:
            task_type = "spot"
        else:
            self._skip(f"status:{status or 'missing'}")
            return None
        start = parse_timestamp(row["start_time"])
        end = parse_timestamp(row["end_time"])
        if end <= start:
            self._skip("no-duration")
            return None
        plan_gpu = float(row.get("plan_gpu") or 0.0)
        if plan_gpu <= 0:
            self._skip("no-gpu")
            return None
        inst_num = max(1, int(float(row.get("inst_num") or 1)))
        gpu_type = str(row.get("gpu_type") or "").strip() or None
        org = str(row.get("group") or row.get("user") or "default").strip()
        return TraceRecord(
            job_id=str(row.get("job_name", "")).strip(),
            task_type=task_type,
            submit_time=start,
            duration=end - start,
            num_pods=inst_num,
            gpus_per_pod=plan_gpu / 100.0,
            org=org,
            gpu_model=gpu_type,
            gang=inst_num > 1,
        )


@dataclass
class GenericCSVAdapter(TraceAdapter):
    """Generic CSV trace: columns named after the record schema fields."""

    format_name = "csv"

    def _iter_rows(self, path: Path) -> Iterator[Mapping[str, object]]:
        return _CSVRows.rows(path)

    def _convert_row(self, row: Mapping[str, object]) -> Optional[TraceRecord]:
        return record_from_mapping(dict(row))


@dataclass
class GenericJSONLAdapter(TraceAdapter):
    """Generic JSONL trace: one schema-shaped JSON object per line."""

    format_name = "jsonl"

    def _iter_rows(self, path: Path) -> Iterator[Mapping[str, object]]:
        with Path(path).open() as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                yield json.loads(line)

    def _convert_row(self, row: Mapping[str, object]) -> Optional[TraceRecord]:
        return record_from_mapping(dict(row))


# ----------------------------------------------------------------------
# Registry and sniffing
# ----------------------------------------------------------------------
ADAPTERS: Dict[str, Type[TraceAdapter]] = {
    "philly": PhillyCSVAdapter,
    "pai": PAIJobTableAdapter,
    "alibaba": PAIJobTableAdapter,
    "csv": GenericCSVAdapter,
    "jsonl": GenericJSONLAdapter,
}


def get_adapter(format_name: str, **kwargs) -> TraceAdapter:
    """Instantiate the adapter registered under ``format_name``."""
    key = format_name.strip().lower()
    if key not in ADAPTERS:
        raise KeyError(f"unknown trace format {format_name!r}; expected one of {sorted(ADAPTERS)}")
    return ADAPTERS[key](**kwargs)


def detect_format(path: str | Path) -> str:
    """Sniff the trace format from the suffix and the CSV header.

    ``.jsonl``/``.ndjson`` files are generic JSONL; for CSVs the header
    decides: ``jobid``+``vc`` means Philly, ``job_name``+``plan_gpu``
    means PAI, anything else is treated as the generic schema.
    """
    path = Path(path)
    suffix = path.suffix.lower()
    if suffix in (".jsonl", ".ndjson"):
        return "jsonl"
    with path.open() as handle:
        header = handle.readline()
    columns = {c.strip().lower() for c in header.split(",")}
    if {"jobid", "vc"} <= columns:
        return "philly"
    if {"job_name", "plan_gpu"} <= columns:
        return "pai"
    return "csv"
