"""Trace ingestion & replay: external cluster logs as first-class workloads.

The subsystem turns real cluster traces — Philly-style CSVs, Alibaba/
PAI-style job tables, or the documented generic CSV/JSONL schema — into
replayable :class:`~repro.workloads.Trace` objects that plug into the
scenario registry (``trace:<path>`` refs), the parallel experiment
engine, and the content-keyed artifact cache.  See ``docs/traces.md``
for formats, the transform pipeline and the CLI cookbook.

Layers::

    adapters.py    format adapters -> normalized TraceRecord streams
    schema.py      the generic record schema + validation
    transforms.py  deterministic composable record transforms
    history.py     per-org demand-history reconstruction (GDE training)
    builder.py     ingest_trace(): records -> Task objects -> Trace
    scenario.py    TraceScenario: trace files in the scenario registry
"""

from .adapters import (
    ADAPTERS,
    GenericCSVAdapter,
    GenericJSONLAdapter,
    PAIJobTableAdapter,
    PhillyCSVAdapter,
    TraceAdapter,
    detect_format,
    get_adapter,
    parse_timestamp,
)
from .builder import (
    DEFAULT_GPU_MODEL_MAP,
    file_sha256,
    ingest_trace,
    known_gpu_model_names,
    load_trace_file,
    rebase_and_sort,
    records_to_tasks,
    remap_gpu_model,
)
from .history import DEFAULT_HISTORY_HOURS, fluid_org_usage, reconstruct_org_history
from .scenario import TRACE_SCENARIO_PREFIX, TraceScenario, trace_scenario
from .schema import (
    GENERIC_FIELDS,
    TraceRecord,
    ValidationReport,
    record_from_mapping,
    validate_records,
    validate_trace,
)
from .transforms import (
    ArrivalScale,
    Downsample,
    DurationClamp,
    OrgConsolidate,
    TimeWindow,
    TransformOp,
    TransformPipeline,
    make_pipeline,
)

__all__ = [
    "ADAPTERS",
    "ArrivalScale",
    "DEFAULT_GPU_MODEL_MAP",
    "DEFAULT_HISTORY_HOURS",
    "Downsample",
    "DurationClamp",
    "GENERIC_FIELDS",
    "GenericCSVAdapter",
    "GenericJSONLAdapter",
    "OrgConsolidate",
    "PAIJobTableAdapter",
    "PhillyCSVAdapter",
    "TRACE_SCENARIO_PREFIX",
    "TimeWindow",
    "TraceAdapter",
    "TraceRecord",
    "TraceScenario",
    "TransformOp",
    "TransformPipeline",
    "ValidationReport",
    "detect_format",
    "file_sha256",
    "fluid_org_usage",
    "get_adapter",
    "ingest_trace",
    "known_gpu_model_names",
    "load_trace_file",
    "make_pipeline",
    "parse_timestamp",
    "rebase_and_sort",
    "record_from_mapping",
    "records_to_tasks",
    "reconstruct_org_history",
    "remap_gpu_model",
    "trace_scenario",
    "validate_records",
    "validate_trace",
]
