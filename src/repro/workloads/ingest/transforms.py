"""Deterministic, composable transforms over normalized record streams.

Each op is a frozen dataclass — picklable into experiment-engine worker
processes and canonically describable for content-keyed caching — whose
``apply`` maps a record list to a new record list without mutating the
input.  A :class:`TransformPipeline` chains ops in order; the pipeline's
``describe()`` is embedded in trace metadata and in engine cache keys, so
two conversions agree iff their source bytes *and* their transform chains
agree.

Determinism contract: given the same input records (in the same order)
and the same op parameters — including seeds — every op produces the
same output on every machine and Python process.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .schema import TraceRecord


@dataclass(frozen=True)
class TransformOp:
    """Base class for record-stream transforms."""

    def apply(self, records: List[TraceRecord]) -> List[TraceRecord]:
        raise NotImplementedError

    def describe(self) -> Dict[str, object]:
        """Canonical JSON-able descriptor (metadata and cache keying)."""
        return {"op": type(self).__name__, **dataclasses.asdict(self)}


@dataclass(frozen=True)
class TimeWindow(TransformOp):
    """Keep submissions inside ``[start_hours, end_hours)``.

    ``end_hours=None`` keeps everything from ``start_hours`` on.  With
    ``rebase=True`` (the default) surviving submissions are shifted so
    the window start becomes ``t = 0`` — what replay expects.
    """

    start_hours: float = 0.0
    end_hours: Optional[float] = None
    rebase: bool = True

    def apply(self, records: List[TraceRecord]) -> List[TraceRecord]:
        start = self.start_hours * 3600.0
        end = None if self.end_hours is None else self.end_hours * 3600.0
        out: List[TraceRecord] = []
        for record in records:
            if record.submit_time < start:
                continue
            if end is not None and record.submit_time >= end:
                continue
            if self.rebase and start > 0:
                record = dataclasses.replace(record, submit_time=record.submit_time - start)
            out.append(record)
        return out


@dataclass(frozen=True)
class ArrivalScale(TransformOp):
    """Scale the arrival *rate* by ``factor`` (compress/stretch time).

    ``factor=2.0`` squeezes submissions into half the wall-clock span, so
    twice as many tasks arrive per hour; durations are untouched.  This
    is how an external trace recorded on a large cluster is re-pressured
    for a smaller simulated fleet.
    """

    factor: float = 1.0

    def __post_init__(self):
        if self.factor <= 0:
            raise ValueError(f"arrival-scale factor must be > 0, got {self.factor}")

    def apply(self, records: List[TraceRecord]) -> List[TraceRecord]:
        if self.factor == 1.0:
            return list(records)
        return [
            dataclasses.replace(r, submit_time=r.submit_time / self.factor) for r in records
        ]


@dataclass(frozen=True)
class DurationClamp(TransformOp):
    """Clamp task durations into ``[min_seconds, max_seconds]``.

    External traces carry second-long probes and week-long stragglers;
    clamping keeps the replay horizon bounded the same way the synthetic
    generator's ``min_runtime``/``max_runtime`` do.
    """

    min_seconds: Optional[float] = None
    max_seconds: Optional[float] = None

    def apply(self, records: List[TraceRecord]) -> List[TraceRecord]:
        out: List[TraceRecord] = []
        for record in records:
            duration = record.duration
            if self.min_seconds is not None:
                duration = max(duration, self.min_seconds)
            if self.max_seconds is not None:
                duration = min(duration, self.max_seconds)
            out.append(
                record if duration == record.duration
                else dataclasses.replace(record, duration=duration)
            )
        return out


@dataclass(frozen=True)
class OrgConsolidate(TransformOp):
    """Keep the ``top_k`` organizations by GPU-time; fold the rest.

    Real traces have hundreds of tenants with long-tail activity; the
    GDE forecasts per-organization series, so consolidating the tail
    into ``other_name`` keeps the forecasting problem well-posed.  Ties
    break lexicographically so the fold is deterministic.
    """

    top_k: int = 8
    other_name: str = "other"

    def __post_init__(self):
        if self.top_k < 1:
            raise ValueError(f"top_k must be >= 1, got {self.top_k}")

    def apply(self, records: List[TraceRecord]) -> List[TraceRecord]:
        gpu_time: Dict[str, float] = {}
        for record in records:
            gpu_time[record.org] = gpu_time.get(record.org, 0.0) + (
                record.total_gpus * record.duration
            )
        ranked = sorted(gpu_time.items(), key=lambda item: (-item[1], item[0]))
        keep = {org for org, _ in ranked[: self.top_k]}
        return [
            r if r.org in keep else dataclasses.replace(r, org=self.other_name)
            for r in records
        ]


@dataclass(frozen=True)
class Downsample(TransformOp):
    """Keep a seeded random ``fraction`` of the records.

    The coin flips come from one ``numpy`` generator seeded with
    ``seed``, so the same (ordered) input always keeps the same subset —
    downsampled conversions are reproducible and cache-stable.
    """

    fraction: float = 1.0
    seed: int = 0

    def __post_init__(self):
        if not 0.0 < self.fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {self.fraction}")

    def apply(self, records: List[TraceRecord]) -> List[TraceRecord]:
        if self.fraction >= 1.0:
            return list(records)
        rng = np.random.default_rng(self.seed)
        keep = rng.random(len(records)) < self.fraction
        return [record for record, kept in zip(records, keep) if kept]


@dataclass(frozen=True)
class TransformPipeline(TransformOp):
    """An ordered chain of transform ops applied left to right."""

    ops: Tuple[TransformOp, ...] = ()

    def apply(self, records: List[TraceRecord]) -> List[TraceRecord]:
        out = list(records)
        for op in self.ops:
            out = op.apply(out)
        return out

    def describe(self) -> Dict[str, object]:
        return {"op": "TransformPipeline", "ops": [op.describe() for op in self.ops]}

    def __len__(self) -> int:
        return len(self.ops)


def make_pipeline(ops: Sequence[TransformOp]) -> TransformPipeline:
    """Build a pipeline, flattening nested pipelines."""
    flat: List[TransformOp] = []
    for op in ops:
        if isinstance(op, TransformPipeline):
            flat.extend(op.ops)
        else:
            flat.append(op)
    return TransformPipeline(ops=tuple(flat))
