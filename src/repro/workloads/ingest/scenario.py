"""``trace:<path>`` scenario refs: ingested traces in the scenario registry.

A :class:`TraceScenario` makes an external trace a drop-in peer of the
synthetic scenario library: it satisfies the same ``build_trace`` /
``build_cluster`` contract the experiment engine and CLI drive, so

    python -m repro.experiments.cli sweep --scenario trace:philly.json.gz

runs the full scheduler line-up over a real-world workload.  Replay is a
pure function of the trace file's bytes plus the experiment scale — the
``seed`` and ``spot_scale`` knobs that parameterize synthetic generation
are no-ops here — so results are bit-identical at any worker count, and
the scenario's cache descriptor is the SHA-256 of the trace file, making
engine cache hits follow trace *content*.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Mapping, Optional

from ...cluster import GPUModel
from ..scenarios import Scenario
from ..trace import Trace
from .builder import file_sha256, load_trace_file

#: Scenario-name prefix that routes to :func:`trace_scenario`.
TRACE_SCENARIO_PREFIX = "trace:"


@dataclass(frozen=True)
class TraceScenario(Scenario):
    """A scenario that replays an ingested trace file.

    Inherits the :class:`Scenario` contract (so it rides inside picklable
    engine job specs and builds the same homogeneous replay cluster) but
    sources its tasks from ``path`` instead of the synthetic generator;
    the ``overrides``/``org_builder``/``fleet_mix`` fields stay at their
    empty defaults.
    """

    path: str = ""

    # ------------------------------------------------------------------
    def build_trace(
        self,
        cluster_gpus: float,
        duration_hours: float,
        spot_scale: float = 1.0,
        seed: int = 0,
        gpu_model: Optional[GPUModel] = GPUModel.A100,
        extra_overrides: Optional[Mapping[str, object]] = None,
        base_overrides: Optional[Mapping[str, object]] = None,
    ) -> Trace:
        """Load the trace and clip it to the experiment scale's window.

        ``spot_scale``/``seed``/override mappings parameterize synthetic
        generation and are ignored for replay (recorded in metadata so
        reports stay honest).  Tasks requesting a GPU model other than
        the replay fleet's are remapped onto it — conversion normally did
        this already; the remap here covers replaying on a different
        fleet model than the trace was converted for.
        """
        source = load_trace_file(self.path)
        horizon = duration_hours * 3600.0
        tasks = [t for t in source.sorted_tasks() if t.submit_time < horizon]
        if gpu_model is not None:
            for task in tasks:
                if task.gpu_model is not None and task.gpu_model is not gpu_model:
                    task.gpu_model = gpu_model
        metadata: Dict[str, object] = {
            **source.metadata,
            "scenario": self.name,
            "replay_duration_hours": duration_hours,
            "replay_clipped_tasks": len(source.tasks) - len(tasks),
        }
        if spot_scale != 1.0:
            metadata["replay_spot_scale_ignored"] = spot_scale
        return Trace(tasks=tasks, org_history=source.org_history, metadata=metadata)

    def cache_descriptor(self, seed: int) -> Dict[str, object]:
        """Content-keyed descriptor: the trace file's bytes decide the key.

        The path and display name are deliberately excluded so renaming
        or moving a trace file doesn't invalidate cached results, while
        any edit to its contents does.
        """
        return {"kind": "trace", "source_sha256": file_sha256(self.path)}


def trace_scenario(path: str | Path) -> TraceScenario:
    """Build the scenario for ``trace:<path>`` (file must exist)."""
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"trace scenario file not found: {path}")
    return TraceScenario(
        name=f"{TRACE_SCENARIO_PREFIX}{path}",
        path=str(path),
        summary=f"replay of external trace {path.name}",
    )
