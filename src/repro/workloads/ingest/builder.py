"""Turn an external trace file into a first-class, replayable ``Trace``.

The conversion path (``repro trace convert`` and programmatic
:func:`ingest_trace`):

1. stream the source through a format adapter into normalized records,
2. rebase submission times so the earliest arrival is ``t = 0`` and sort
   stably by ``(submit_time, job_id)``,
3. apply the deterministic transform pipeline,
4. remap GPU model names onto the configured fleet,
5. materialise :class:`~repro.cluster.Task` objects with unique ids,
6. reconstruct the per-organization hourly demand history the GDE
   forecaster trains on,
7. stamp provenance metadata — source path, format, the SHA-256 of the
   source bytes, and the transform chain — so converted traces are
   auditable and engine cache keys can follow trace *content*.
"""

from __future__ import annotations

import dataclasses
import hashlib
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ...cluster import GPUModel, Task, TaskType
from ..trace import Trace
from .adapters import detect_format, get_adapter
from .history import DEFAULT_HISTORY_HOURS, reconstruct_org_history
from .schema import TraceRecord, validate_records
from .transforms import TransformOp, make_pipeline

#: Canonical remappings for GPU model names common in public traces but
#: absent from the simulated fleet (Table 1 models only).  ``None`` means
#: "model-agnostic": the task can land on any node.
DEFAULT_GPU_MODEL_MAP: Dict[str, Optional[str]] = {
    "V100": "A100",
    "V100M32": "A100",
    "A100-80G": "A100",
    "H100": "H800",
    "P100": "A800",
    "T4": "A10",
    "K80": "A10",
    "MISC": None,
    "CPU": None,
}

_KNOWN_MODELS = {m.value.upper(): m for m in GPUModel}


def known_gpu_model_names() -> List[str]:
    """Model names the remapper understands without a custom map."""
    return sorted(_KNOWN_MODELS) + sorted(DEFAULT_GPU_MODEL_MAP)


def remap_gpu_model(
    name: Optional[str],
    fleet_models: Optional[Sequence[GPUModel]] = None,
    extra_map: Optional[Mapping[str, Optional[str]]] = None,
) -> Optional[GPUModel]:
    """Map a source GPU model name onto the configured fleet.

    Resolution order: caller's ``extra_map``, the built-in
    :data:`DEFAULT_GPU_MODEL_MAP`, then the fleet's own model names.
    Unknown names become ``None`` (model-agnostic), and a resolved model
    absent from ``fleet_models`` falls back to the fleet's first model so
    every ingested task is schedulable on the target cluster.
    """
    if name is None:
        return None
    key = str(name).strip().upper()
    if not key:
        return None
    if extra_map:
        upper_map = {str(k).upper(): v for k, v in extra_map.items()}
        if key in upper_map:
            mapped = upper_map[key]
            key = str(mapped).upper() if mapped is not None else ""
    if key in DEFAULT_GPU_MODEL_MAP and key not in _KNOWN_MODELS:
        mapped = DEFAULT_GPU_MODEL_MAP[key]
        key = str(mapped).upper() if mapped is not None else ""
    model = _KNOWN_MODELS.get(key)
    if model is None:
        return None
    if fleet_models and model not in tuple(fleet_models):
        return tuple(fleet_models)[0]
    return model


# ----------------------------------------------------------------------
# Content hashing (engine cache keys follow trace bytes)
# ----------------------------------------------------------------------
_SHA_CACHE: Dict[Tuple[str, int, int], str] = {}


def file_sha256(path: str | Path, chunk_size: int = 1 << 20) -> str:
    """SHA-256 of a file's bytes, memoised by ``(path, size, mtime)``.

    The memo makes per-job cache keying cheap inside the experiment
    engine while still reacting to edits: rewriting the trace file
    changes its mtime/size and forces a re-hash.
    """
    path = Path(path)
    stat = path.stat()
    memo_key = (str(path.resolve()), stat.st_size, stat.st_mtime_ns)
    cached = _SHA_CACHE.get(memo_key)
    if cached is not None:
        return cached
    digest = hashlib.sha256()
    with path.open("rb") as handle:
        while chunk := handle.read(chunk_size):
            digest.update(chunk)
    value = digest.hexdigest()
    _SHA_CACHE[memo_key] = value
    return value


# ----------------------------------------------------------------------
# Record -> Task materialisation
# ----------------------------------------------------------------------
def rebase_and_sort(records: Sequence[TraceRecord]) -> List[TraceRecord]:
    """Shift submissions so the earliest lands at ``t = 0``; stable sort.

    Sorting key is ``(submit_time, job_id)`` — the same tie-break replay
    uses — so downstream seeded transforms see a canonical order
    regardless of row order in the source file.
    """
    if not records:
        return []
    base = min(r.submit_time for r in records)
    rebased = [
        dataclasses.replace(r, submit_time=r.submit_time - base) if base != 0 else r
        for r in records
    ]
    return sorted(rebased, key=lambda r: (r.submit_time, r.job_id))


def records_to_tasks(
    records: Sequence[TraceRecord],
    fleet_models: Optional[Sequence[GPUModel]] = None,
    gpu_model_map: Optional[Mapping[str, Optional[str]]] = None,
) -> List[Task]:
    """Materialise simulator tasks, deduplicating ids deterministically."""
    tasks: List[Task] = []
    seen: Dict[str, int] = {}
    for i, record in enumerate(records):
        task_type = TaskType.HP if record.task_type == "hp" else TaskType.SPOT
        base_id = record.job_id or f"{record.task_type}-ingest-{i:06d}"
        count = seen.get(base_id, 0)
        seen[base_id] = count + 1
        task_id = base_id if count == 0 else f"{base_id}#{count}"
        tasks.append(
            Task(
                task_id=task_id,
                task_type=task_type,
                num_pods=record.num_pods,
                gpus_per_pod=record.gpus_per_pod,
                duration=record.duration,
                submit_time=record.submit_time,
                org=record.org,
                gpu_model=remap_gpu_model(record.gpu_model, fleet_models, gpu_model_map),
                gang=record.is_gang,
                checkpoint_interval=record.checkpoint_interval,
            )
        )
    return tasks


def ingest_trace(
    path: str | Path,
    format: Optional[str] = None,
    transforms: Sequence[TransformOp] = (),
    fleet_models: Optional[Sequence[GPUModel]] = None,
    gpu_model_map: Optional[Mapping[str, Optional[str]]] = None,
    history_hours: int = DEFAULT_HISTORY_HOURS,
    history_seed: int = 0,
    cluster_gpus: Optional[float] = None,
    validate: bool = True,
) -> Trace:
    """Ingest an external trace file into a replayable :class:`Trace`.

    ``format`` names a registered adapter (``philly``/``pai``/``csv``/
    ``jsonl``); ``None`` sniffs it from the file.  ``transforms`` is an
    ordered sequence of :class:`~.transforms.TransformOp`; ``fleet_models``
    and ``gpu_model_map`` steer GPU remapping; ``history_hours`` and
    ``history_seed`` control the reconstructed GDE demand history.  With
    ``validate=True`` (default) structural schema violations raise before
    a broken trace is materialised.

    Example
    -------
    >>> trace = ingest_trace("philly.csv", transforms=[TimeWindow(0, 24)],
    ...                      fleet_models=[GPUModel.A100])
    >>> trace.save("philly.json.gz")
    """
    path = Path(path)
    format_name = format or detect_format(path)
    adapter = get_adapter(format_name)
    records = rebase_and_sort(adapter.read_records(path))
    pipeline = make_pipeline(transforms)
    records = rebase_and_sort(pipeline.apply(records)) if len(pipeline) else records
    report = validate_records(records, known_gpu_models=known_gpu_model_names())
    if validate:
        report.raise_if_invalid()
    tasks = records_to_tasks(records, fleet_models, gpu_model_map)
    org_history = reconstruct_org_history(
        tasks, history_hours=history_hours, seed=history_seed, cluster_gpus=cluster_gpus
    )
    horizon = max((t.submit_time for t in tasks), default=0.0)
    metadata: Dict[str, object] = {
        "source": str(path),
        "source_format": adapter.format_name,
        "source_sha256": file_sha256(path),
        "transforms": pipeline.describe()["ops"] if len(pipeline) else [],
        "skipped_rows": adapter.skipped,
        "skip_reasons": dict(sorted(adapter.skip_reasons.items())),
        "num_hp": sum(1 for t in tasks if t.is_hp),
        "num_spot": sum(1 for t in tasks if t.is_spot),
        "duration_hours": horizon / 3600.0,
        "history_hours": history_hours,
        "history_seed": history_seed,
        "validation_warnings": report.warning_count,
        "ingest_version": 1,
    }
    if cluster_gpus is not None:
        metadata["cluster_gpus"] = cluster_gpus
    return Trace(tasks=tasks, org_history=org_history, metadata=metadata)


#: Parsed-record memo for :func:`load_trace_file`, keyed like the sha
#: memo.  Records are plain JSON data; tasks are rebuilt fresh per call.
_RECORDS_CACHE: Dict[Tuple[str, int, int], Dict[str, object]] = {}
_RECORDS_CACHE_MAX = 8


def load_trace_file(path: str | Path) -> Trace:
    """Load *any* trace file: converted JSON(.gz) or a raw external log.

    ``.json``/``.json.gz`` files are treated as converted
    :class:`Trace` serialisations; anything else goes through
    :func:`ingest_trace` with format sniffing and default settings.  This
    is what makes ``trace:<path>`` scenario refs work for both.

    The parsed records are memoised per process, keyed on ``(path, size,
    mtime)``, so a grid of N cells replaying one trace parses it once per
    worker instead of N times — but every call still materialises *fresh*
    ``Task`` objects, because the simulator mutates task state and two
    grid cells must never share it.
    """
    path = Path(path)
    stat = path.stat()
    memo_key = (str(path.resolve()), stat.st_size, stat.st_mtime_ns)
    records = _RECORDS_CACHE.get(memo_key)
    if records is None:
        name = path.name.lower()
        if name.endswith(".json") or name.endswith(".json.gz"):
            records = Trace.load(path).to_records()
        else:
            records = ingest_trace(path).to_records()
        if len(_RECORDS_CACHE) >= _RECORDS_CACHE_MAX:
            _RECORDS_CACHE.clear()
        _RECORDS_CACHE[memo_key] = records
    return Trace.from_records(records)
