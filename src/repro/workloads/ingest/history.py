"""Reconstruct per-organization demand history from ingested arrivals.

External traces record *task submissions*, but the GDE forecaster trains
on *hourly per-organization GPU demand series* (the synthetic generator
fabricates these directly).  This module closes the gap: it rebuilds the
fluid concurrent-usage profile each organization's HP tasks would produce
if every task started on submission, then tiles that profile backwards
into a multi-week history with mild seeded day-to-day noise — the same
construction the synthetic generator uses, so ingested traces feed the
forecaster a history whose seasonal structure matches the demand the
simulation will replay.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from ...cluster import Task
from ..trace import fluid_org_usage  # noqa: F401  (re-exported: ingest API)

HOURS_PER_DAY = 24

#: Default history length: two weeks, matching the synthetic generator.
DEFAULT_HISTORY_HOURS = 14 * HOURS_PER_DAY


def reconstruct_org_history(
    tasks: Sequence[Task],
    history_hours: int = DEFAULT_HISTORY_HOURS,
    seed: int = 0,
    cluster_gpus: Optional[float] = None,
) -> Dict[str, np.ndarray]:
    """Build the multi-week per-org demand history a trace needs for GDE.

    The fluid usage profile of the trace window is averaged into one
    hour-of-day day profile per organization, then tiled over
    ``history_hours`` (rounded down to whole days, minimum one day) with
    5% multiplicative Gaussian noise from a generator seeded with
    ``seed`` — deterministic, and aligned so hour-of-day phase agrees
    between history and replay.
    """
    profile = fluid_org_usage(tasks, cluster_gpus=cluster_gpus)
    if not profile:
        return {}
    history_hours = max(HOURS_PER_DAY, (int(history_hours) // HOURS_PER_DAY) * HOURS_PER_DAY)
    days = history_hours // HOURS_PER_DAY
    rng = np.random.default_rng(seed + 43)
    history: Dict[str, np.ndarray] = {}
    for org in sorted(profile):
        series = profile[org]
        day_profile = np.zeros(HOURS_PER_DAY)
        counts = np.zeros(HOURS_PER_DAY)
        for hour, value in enumerate(series):
            day_profile[hour % HOURS_PER_DAY] += value
            counts[hour % HOURS_PER_DAY] += 1
        day_profile = day_profile / np.maximum(counts, 1.0)
        blocks = []
        for _ in range(days):
            noise = rng.normal(1.0, 0.05, size=HOURS_PER_DAY)
            blocks.append(np.maximum(0.0, day_profile * noise))
        history[org] = np.concatenate(blocks)
    return history
