"""Workload substrate: organization demand processes, fleets and traces."""

from .fleet import (
    FleetEntry,
    POST_DEPLOYMENT_ALLOCATION,
    POST_DEPLOYMENT_EVICTION,
    PRE_DEPLOYMENT_EVICTION,
    PRODUCTION_FLEET,
    build_production_cluster,
    build_simulation_cluster,
    production_gpu_counts,
    scaled_fleet,
)
from .organizations import (
    DEFAULT_HOLIDAYS,
    OrganizationProfile,
    aggregate_demand,
    default_organizations,
    generate_org_demand_matrix,
)
from .scaling import SpotWorkloadLevel, SPOT_SCALE_FACTORS, all_levels, spot_scale
from .scenarios import (
    Scenario,
    get_scenario,
    iter_scenarios,
    register_scenario,
    scenario_names,
)
from .synthetic import (
    GPUSizeDistribution,
    HP_GANG_FRACTION,
    HP_GPU_DISTRIBUTION,
    SPOT_GANG_FRACTION,
    SPOT_GPU_DISTRIBUTION,
    SyntheticTraceGenerator,
    WorkloadConfig,
    generate_legacy_2020_requests,
    generate_modern_2024_requests,
    generate_trace,
)
from .trace import Trace, TraceStatistics

__all__ = [
    "DEFAULT_HOLIDAYS",
    "FleetEntry",
    "GPUSizeDistribution",
    "HP_GANG_FRACTION",
    "HP_GPU_DISTRIBUTION",
    "OrganizationProfile",
    "POST_DEPLOYMENT_ALLOCATION",
    "POST_DEPLOYMENT_EVICTION",
    "PRE_DEPLOYMENT_EVICTION",
    "PRODUCTION_FLEET",
    "SPOT_GANG_FRACTION",
    "SPOT_GPU_DISTRIBUTION",
    "SPOT_SCALE_FACTORS",
    "Scenario",
    "SpotWorkloadLevel",
    "SyntheticTraceGenerator",
    "Trace",
    "TraceStatistics",
    "WorkloadConfig",
    "aggregate_demand",
    "all_levels",
    "build_production_cluster",
    "build_simulation_cluster",
    "default_organizations",
    "generate_legacy_2020_requests",
    "generate_modern_2024_requests",
    "generate_org_demand_matrix",
    "generate_trace",
    "get_scenario",
    "iter_scenarios",
    "production_gpu_counts",
    "register_scenario",
    "scaled_fleet",
    "scenario_names",
    "spot_scale",
]
