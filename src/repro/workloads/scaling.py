"""Spot workload scaling (Section 4.1).

The paper evaluates three spot workload intensities against the same HP
stream: Low (original submission rate), Medium (200%) and High (400%).
"""

from __future__ import annotations

from enum import Enum
from typing import Dict


class SpotWorkloadLevel(str, Enum):
    """Named spot workload intensities from the evaluation setup."""

    LOW = "low"
    MEDIUM = "medium"
    HIGH = "high"


#: Submission-rate multiplier for each workload level.
SPOT_SCALE_FACTORS: Dict[SpotWorkloadLevel, float] = {
    SpotWorkloadLevel.LOW: 1.0,
    SpotWorkloadLevel.MEDIUM: 2.0,
    SpotWorkloadLevel.HIGH: 4.0,
}


def spot_scale(level: SpotWorkloadLevel | str) -> float:
    """Return the submission-rate multiplier for a workload level."""
    if isinstance(level, str):
        level = SpotWorkloadLevel(level.lower())
    return SPOT_SCALE_FACTORS[level]


def all_levels() -> list[SpotWorkloadLevel]:
    return [SpotWorkloadLevel.LOW, SpotWorkloadLevel.MEDIUM, SpotWorkloadLevel.HIGH]
