"""Graceful SIGINT/SIGTERM draining for long-running sweeps.

First signal: set a flag.  The engine's supervision loop sees it, stops
launching queued cells, lets in-flight workers finish, flushes the
journal and the partial grid, then surfaces a ``KeyboardInterrupt`` so
the CLI can report what was saved and exit 130.  Second signal: raise
``KeyboardInterrupt`` immediately — the user insists, and the journal's
fsync'd appends mean even a hard stop (or a ``kill -9``, which no
handler can see) loses at most the cell in flight.

Handlers only install in the main thread of the main interpreter
(``signal.signal`` refuses anywhere else); elsewhere the context manager
degrades to a no-op flag that never triggers.
"""

from __future__ import annotations

import signal
import threading
from types import FrameType
from typing import List, Optional, Tuple


class GracefulShutdown:
    """Context manager turning SIGINT/SIGTERM into a drain flag.

    Example::

        with GracefulShutdown() as stop:
            for job, outcome in executor.run(jobs, should_stop=stop.triggered):
                ...  # journal, cache, report
        if stop.requested:
            raise KeyboardInterrupt
    """

    def __init__(self, signums: Tuple[int, ...] = (signal.SIGINT, signal.SIGTERM)):
        self.signums = signums
        self.requested = False
        self._previous: List[Tuple[int, object]] = []
        self._installed = False

    # `should_stop` callable handed to the executor
    def triggered(self) -> bool:
        return self.requested

    def _handler(self, signum: int, frame: Optional[FrameType]) -> None:
        if self.requested:
            raise KeyboardInterrupt  # second signal: stop now
        self.requested = True

    def __enter__(self) -> "GracefulShutdown":
        if threading.current_thread() is threading.main_thread():
            try:
                for signum in self.signums:
                    self._previous.append((signum, signal.getsignal(signum)))
                    signal.signal(signum, self._handler)
                self._installed = True
            except (ValueError, OSError):
                # Non-main interpreter or restricted environment: flag-only.
                self._restore()
        return self

    def __exit__(self, *exc) -> None:
        self._restore()

    def _restore(self) -> None:
        for signum, previous in self._previous:
            try:
                signal.signal(signum, previous)
            except (ValueError, OSError):
                pass
        self._previous.clear()
        self._installed = False
