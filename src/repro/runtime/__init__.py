"""Fault-tolerant execution layer for the harness itself.

PR 5 made *simulated* failures first-class events; this package does the
same for failures of the machinery that runs the simulations and serves
them.  It is deliberately generic — nothing here imports the simulator —
so the experiment engine, the service and the benchmark recorders all
share one vocabulary of durability primitives:

* :mod:`.atomic` — crash-safe file writes (unique temp + fsync + rename)
  behind every durable artifact in the repository;
* :mod:`.guards` — per-job execution guards: timeouts, bounded retries
  with deterministic exponential backoff, and structured
  :class:`JobFailure` results instead of sweep-aborting exceptions;
* :mod:`.journal` — the write-ahead sweep journal (append-only fsync'd
  JSONL keyed by content-hash cache keys) behind
  ``cli sweep --resume``;
* :mod:`.executor` — a supervised process pool that survives
  ``BrokenProcessPool`` by re-spawning and re-queueing, and un-wedges
  hung workers by deadline-killing the pool;
* :mod:`.chaos` — the self-chaos harness: seeded kill/hang/poison
  injection into harness workers, mirroring the discipline
  :class:`~repro.dynamics.FaultInjector` applies to simulated nodes;
* :mod:`.signals` — graceful SIGINT/SIGTERM draining with a
  partial-grid flush.

See ``docs/fault_tolerance.md`` for the journal format, the recovery
semantics and the chaos-harness acceptance suite.
"""

from .atomic import atomic_write_bytes, atomic_write_text, fsync_dir
from .chaos import CHAOS_ACTIONS, ChaosPlan, ChaosPoison, ChaosWorker
from .executor import ResilientExecutor
from .guards import (
    FAILURE_KINDS,
    JobFailure,
    JobGuard,
    RetryPolicy,
    SweepError,
    deterministic_fraction,
)
from .journal import JOURNAL_VERSION, JournalError, JournalReplay, SweepJournal
from .signals import GracefulShutdown

__all__ = [
    "CHAOS_ACTIONS",
    "ChaosPlan",
    "ChaosPoison",
    "ChaosWorker",
    "FAILURE_KINDS",
    "GracefulShutdown",
    "JOURNAL_VERSION",
    "JobFailure",
    "JobGuard",
    "JournalError",
    "JournalReplay",
    "ResilientExecutor",
    "RetryPolicy",
    "SweepError",
    "SweepJournal",
    "atomic_write_bytes",
    "atomic_write_text",
    "deterministic_fraction",
    "fsync_dir",
]
