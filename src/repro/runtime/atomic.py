"""Crash-safe file writes: unique temp file + fsync + atomic rename.

Every durable artifact in this repository — cache entries, sweep
journals, grid exports, ``BENCH_*.json`` perf records, persisted service
sessions — goes through these two functions so a crash (or ``kill -9``)
at any instant leaves either the complete old file or the complete new
file, never a truncated hybrid.  ``Trace.save`` pioneered the
temp-and-rename idiom; this module centralises it and adds the two
pieces the original lacked:

* a **unique** temp name (``tempfile.mkstemp`` in the target directory),
  so two processes writing the same path concurrently — e.g. two CLI
  invocations sharing one result cache — cannot clobber each other's
  half-written temp file;
* an ``fsync`` of the file (and, best-effort, its directory) before the
  rename, so the rename cannot be reordered ahead of the data reaching
  disk across a power failure.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path


def fsync_dir(path: Path) -> None:
    """Best-effort fsync of a directory (not all platforms allow it)."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(path: str | Path, data: bytes, durable: bool = True) -> Path:
    """Write ``data`` to ``path`` atomically; returns the final path.

    The bytes land in a uniquely-named temp file in the same directory
    (same filesystem, so the rename is atomic), are flushed and — when
    ``durable`` — fsync'd, then renamed over the target.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            if durable:
                os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    if durable:
        fsync_dir(path.parent)
    return path


def atomic_write_text(path: str | Path, text: str, durable: bool = True) -> Path:
    """:func:`atomic_write_bytes` for UTF-8 text."""
    return atomic_write_bytes(path, text.encode("utf-8"), durable=durable)
