"""Write-ahead sweep journal: crash-safe, resumable experiment grids.

One journal is an append-only JSONL file recording the life of a sweep:

    {"kind": "sweep", "version": 1, "created": ..., "jobs": N, ...}
    {"kind": "start", "job_key": "...", "cache_key": "<sha256>", "attempt": 1}
    {"kind": "done",  "job_key": "...", "cache_key": "<sha256>", "metrics": {...}}
    {"kind": "failed","job_key": "...", "cache_key": "<sha256>", "failure": {...}}

Records are keyed by the same content-hash **cache keys** the artifact
cache uses (``engine.cache_payload`` → ``artifacts.content_key``), not by
display keys — so a journal recognises a completed cell across renamed
grids, re-ordered job lists and label changes, exactly like the cache
does.  ``done`` records embed the full lossless metrics payload, which
makes a journal *self-contained*: resuming needs neither the cache nor
the original process, only the journal file.

Durability contract: every append is one ``write()`` of a complete
``\\n``-terminated line, flushed and fsync'd before :meth:`append`
returns.  A crash (SIGKILL, power loss) can therefore lose at most the
line being written — never corrupt earlier lines — and :meth:`replay`
tolerates exactly that: a torn trailing line is counted and ignored,
anything readable before it is recovered.  Appending after a crash picks
up where the journal left off; the torn line's cell simply re-runs
(simulations are deterministic and side-effect-free, so a duplicate
``done`` record later in the file is harmless — last record wins).
"""

from __future__ import annotations

import io
import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, Optional

#: journal format version (stamped into the header record)
JOURNAL_VERSION = 1


class JournalError(ValueError):
    """A journal file is unusable (not a journal / wrong version)."""


@dataclass
class JournalReplay:
    """Everything recoverable from scanning a journal file."""

    header: Dict[str, object] = field(default_factory=dict)
    #: cache_key -> lossless metrics payload of every completed cell
    completed: Dict[str, Dict[str, object]] = field(default_factory=dict)
    #: cache_key -> job display key (auditing / reporting)
    job_keys: Dict[str, str] = field(default_factory=dict)
    #: cache_key -> failure payload of cells that exhausted their guard
    failed: Dict[str, Dict[str, object]] = field(default_factory=dict)
    #: unreadable lines skipped during the scan (torn tail after a crash)
    torn_lines: int = 0

    @property
    def is_empty(self) -> bool:
        return not self.completed and not self.failed and not self.header


class SweepJournal:
    """Append-only JSONL journal with fsync'd atomic-line appends."""

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._handle: Optional[io.TextIOWrapper] = None

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def _open(self) -> io.TextIOWrapper:
        if self._handle is None or self._handle.closed:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.path, "a", encoding="utf-8")
        return self._handle

    def append(self, record: Dict[str, object]) -> None:
        """Durably append one record: single write, flush, fsync."""
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        if "\n" in line:  # defensive: json.dumps never emits raw newlines
            raise JournalError("journal records must serialise to one line")
        handle = self._open()
        handle.write(line + "\n")
        handle.flush()
        os.fsync(handle.fileno())

    def begin_sweep(self, jobs: int, meta: Optional[Dict[str, object]] = None) -> None:
        """Append the sweep header (once per invocation; replays dedupe)."""
        record: Dict[str, object] = {
            "kind": "sweep",
            "version": JOURNAL_VERSION,
            "created": time.time(),
            "jobs": int(jobs),
        }
        if meta:
            record.update(meta)
        self.append(record)

    def record_start(self, job_key: str, cache_key: str, attempt: int = 1) -> None:
        self.append(
            {"kind": "start", "job_key": job_key, "cache_key": cache_key, "attempt": attempt}
        )

    def record_done(
        self, job_key: str, cache_key: str, metrics_payload: Dict[str, object]
    ) -> None:
        self.append(
            {
                "kind": "done",
                "job_key": job_key,
                "cache_key": cache_key,
                "metrics": metrics_payload,
            }
        )

    def record_failed(
        self, job_key: str, cache_key: str, failure_payload: Dict[str, object]
    ) -> None:
        self.append(
            {
                "kind": "failed",
                "job_key": job_key,
                "cache_key": cache_key,
                "failure": failure_payload,
            }
        )

    def close(self) -> None:
        if self._handle is not None and not self._handle.closed:
            self._handle.close()
        self._handle = None

    def __enter__(self) -> "SweepJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def _iter_lines(self) -> Iterator[str]:
        with open(self.path, "r", encoding="utf-8", errors="replace") as handle:
            yield from handle

    def replay(self) -> JournalReplay:
        """Scan the journal, recovering every readable record.

        Unreadable lines (torn by a crash mid-append) are counted in
        ``torn_lines`` and skipped; a later ``done`` for the same cell
        supersedes an earlier ``failed`` and vice versa (last wins), so
        a resumed sweep that finally completes a flaky cell reports it
        as completed.
        """
        replay = JournalReplay()
        if not self.path.exists():
            return replay
        for raw in self._iter_lines():
            line = raw.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                replay.torn_lines += 1
                continue
            if not isinstance(record, dict):
                replay.torn_lines += 1
                continue
            kind = record.get("kind")
            if kind == "sweep":
                version = record.get("version")
                if version != JOURNAL_VERSION:
                    raise JournalError(
                        f"journal {self.path} has format version {version!r}; "
                        f"this build reads version {JOURNAL_VERSION}"
                    )
                if not replay.header:
                    replay.header = record
            elif kind == "done":
                cache_key = record.get("cache_key")
                metrics = record.get("metrics")
                if isinstance(cache_key, str) and isinstance(metrics, dict):
                    replay.completed[cache_key] = metrics
                    replay.job_keys[cache_key] = str(record.get("job_key", ""))
                    replay.failed.pop(cache_key, None)
                else:
                    replay.torn_lines += 1
            elif kind == "failed":
                cache_key = record.get("cache_key")
                if isinstance(cache_key, str):
                    replay.failed[cache_key] = dict(record.get("failure") or {})
                    replay.job_keys[cache_key] = str(record.get("job_key", ""))
                    replay.completed.pop(cache_key, None)
            # "start" records are intent markers; nothing to recover.
        return replay
