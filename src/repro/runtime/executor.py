"""Fault-tolerant job execution over a supervised process pool.

``concurrent.futures.ProcessPoolExecutor`` has a brutal failure model:
one worker dying (``kill -9``, OOM kill, a segfaulting extension)
*breaks the entire pool* — every in-flight future raises
``BrokenProcessPool`` and nothing can be submitted again.  A hung worker
is worse: nothing times out, ever.  :class:`ResilientExecutor` wraps the
pool with the supervision loop both cases need:

* **pool loss** — on ``BrokenProcessPool`` the pool is torn down and
  re-spawned, and every in-flight job is re-queued with its attempt
  counter bumped (the guilty job cannot be distinguished from innocent
  ones, so all pay one attempt — bounded by the guard's retry budget);
* **timeouts** — each submitted job carries a deadline; when one
  expires the pool's worker processes are terminated outright (the only
  way to un-wedge a hung worker), the pool is rebuilt, the expired job
  is charged an attempt and innocent in-flight jobs are re-queued *for
  free* at their current attempt;
* **retries** — failed attempts re-queue after a deterministic
  exponential backoff (:class:`~.guards.RetryPolicy`); jobs whose
  budget is exhausted yield a structured
  :class:`~.guards.JobFailure` instead of raising;
* **draining** — a ``should_stop`` callable (typically
  :class:`~.signals.GracefulShutdown`'s flag) stops new submissions
  and lets in-flight work finish, so Ctrl-C flushes a consistent
  partial grid instead of vaporising it.

Jobs flow out of :meth:`run` as ``(item, outcome)`` pairs the moment
they complete — outcome is the worker's return value or a
:class:`JobFailure` — so callers can journal and cache incrementally.
Workers are called as ``worker(item, attempt)``; the attempt number is
what lets the chaos harness (:mod:`.chaos`) key fault injection
deterministically per execution.

The ``workers=1`` path runs everything in-process (the reference serial
path: no pool, no pickling) with the same retry/failure semantics;
``timeout_s`` is not enforceable there since a process cannot preempt
itself.
"""

from __future__ import annotations

import signal
import sys
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Deque, Dict, Iterator, List, Optional, Sequence, Tuple

from ..obs.logging import get_logger
from ..obs.telemetry import NULL_TELEMETRY
from .guards import JobFailure, JobGuard

#: maximum seconds one supervision-loop wait blocks (keeps the loop
#: responsive to drain signals and retry timers)
_POLL_S = 0.25

#: structured JSON-lines log for supervision events (silent unless the
#: host configures logging; ``repro.obs.logging`` schema)
_LOG = get_logger("repro.runtime")


def _worker_init() -> None:
    """Signal hygiene for pool workers (runs in each worker process).

    A terminal Ctrl-C delivers SIGINT to the whole foreground process
    group; workers ignore it so the parent's graceful drain can let
    in-flight cells finish instead of vaporising them.  SIGTERM resets
    to the default disposition: forked workers would otherwise inherit
    the parent's :class:`~.signals.GracefulShutdown` handler, whose
    first-signal-sets-a-flag semantics would make ``terminate()`` a
    no-op and force :func:`_kill_pool` through its SIGKILL escalation.
    """
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
    except (ValueError, OSError):  # pragma: no cover - restricted platforms
        pass
    # A worker whose parent is SIGKILL'd would otherwise block forever on
    # the call queue — the fork kept the queue pipe's write end open in
    # every worker, so the blocking read never sees EOF — leaking a
    # process (and any inherited pipes) per kill.  On Linux, ask the
    # kernel to deliver SIGTERM the moment the parent dies.
    if sys.platform.startswith("linux"):
        try:
            import ctypes

            PR_SET_PDEATHSIG = 1
            ctypes.CDLL(None, use_errno=True).prctl(
                PR_SET_PDEATHSIG, signal.SIGTERM, 0, 0, 0
            )
        except (OSError, AttributeError, ValueError):  # pragma: no cover
            pass


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a pool down *now*, terminating workers (hung ones included)."""
    processes = list(getattr(pool, "_processes", {}).values())
    pool.shutdown(wait=False, cancel_futures=True)
    for proc in processes:
        try:
            proc.terminate()
        except (OSError, ValueError):
            pass
    deadline = time.monotonic() + 5.0
    for proc in processes:
        try:
            proc.join(timeout=max(0.0, deadline - time.monotonic()))
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=1.0)
        except (OSError, ValueError, AssertionError):
            pass


class ResilientExecutor:
    """Supervised execution of a batch of keyed jobs (see module doc).

    ``worker`` must be picklable for ``workers > 1`` (a top-level
    function or an instance of a top-level class) and is invoked as
    ``worker(item, attempt)``.  ``key_of`` extracts the stable string
    key failures are reported under (defaults to ``item.key``).

    ``telemetry`` is an optional :class:`~repro.obs.telemetry.TelemetryBus`
    receiving the supervision events live — ``job_start`` / ``job_done``
    / ``job_retry`` / ``job_timeout`` / ``job_fail`` / ``pool_rebuild``
    (schema in ``docs/observability.md``); the default null bus makes
    every emit a no-op.
    """

    def __init__(
        self,
        worker: Callable,
        workers: int = 1,
        guard: Optional[JobGuard] = None,
        key_of: Callable[[object], str] = None,
        telemetry=None,
    ):
        self.worker = worker
        self.workers = max(1, int(workers))
        self.guard = guard or JobGuard()
        self.key_of = key_of or (lambda item: item.key)
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        #: supervision counters (pool rebuilds, retries, timeouts)
        self.pool_rebuilds = 0
        self.retries = 0
        self.timeouts = 0

    # ------------------------------------------------------------------
    def run(
        self,
        items: Sequence[object],
        should_stop: Optional[Callable[[], bool]] = None,
    ) -> Iterator[Tuple[object, object]]:
        """Yield ``(item, result_or_JobFailure)`` as jobs complete.

        With ``should_stop`` returning ``True`` the executor stops
        launching queued jobs, drains in-flight ones and returns;
        un-launched items are simply never yielded (the caller's
        journal knows which cells completed).
        """
        if self.workers == 1:
            yield from self._run_serial(items, should_stop)
        else:
            yield from self._run_pool(items, should_stop)

    # ------------------------------------------------------------------
    # Serial reference path
    # ------------------------------------------------------------------
    def _run_serial(
        self, items: Sequence[object], should_stop: Optional[Callable[[], bool]]
    ) -> Iterator[Tuple[object, object]]:
        for item in items:
            if should_stop is not None and should_stop():
                return
            attempt = 1
            while True:
                key = self.key_of(item)
                self.telemetry.emit("job_start", job=key, attempt=attempt)
                started = time.perf_counter()
                try:
                    result = self.worker(item, attempt)
                except KeyboardInterrupt:
                    raise
                except Exception as exc:  # noqa: BLE001 - guard converts to JobFailure
                    if self.guard.allows_retry(attempt):
                        self.retries += 1
                        delay = self.guard.backoff.delay(attempt)
                        self.telemetry.emit(
                            "job_retry", job=key, attempt=attempt, delay_s=delay
                        )
                        time.sleep(delay)
                        attempt += 1
                        continue
                    failure = JobFailure.from_exception(key, exc, attempt)
                    self.telemetry.emit(
                        "job_fail", job=key, kind=failure.kind, attempts=failure.attempts
                    )
                    _LOG.warning("job_fail", job_id=key, kind=failure.kind, attempts=attempt)
                    yield item, failure
                    break
                else:
                    self.telemetry.emit(
                        "job_done",
                        job=key,
                        wall_s=round(time.perf_counter() - started, 6),
                    )
                    yield item, result
                    break

    # ------------------------------------------------------------------
    # Supervised pool path
    # ------------------------------------------------------------------
    def _run_pool(
        self, items: Sequence[object], should_stop: Optional[Callable[[], bool]]
    ) -> Iterator[Tuple[object, object]]:
        # queue entries: (item, attempt, not_before_monotonic)
        queue: Deque[Tuple[object, int, float]] = deque(
            (item, 1, 0.0) for item in items
        )
        # future -> (item, attempt, deadline, started_monotonic)
        inflight: Dict[object, Tuple[object, int, float, float]] = {}
        pool: Optional[ProcessPoolExecutor] = None
        timeout_s = self.guard.timeout_s
        try:
            while queue or inflight:
                now = time.monotonic()
                stopping = should_stop is not None and should_stop()

                # Launch ready jobs up to the worker count (capping
                # in-flight at `workers` keeps deadlines honest: a
                # submitted job starts immediately).
                if not stopping:
                    pending_retry: List[Tuple[object, int, float]] = []
                    while queue and len(inflight) < self.workers:
                        item, attempt, not_before = queue.popleft()
                        if not_before > now:
                            pending_retry.append((item, attempt, not_before))
                            continue
                        if pool is None:
                            pool = ProcessPoolExecutor(
                                max_workers=self.workers, initializer=_worker_init
                            )
                        try:
                            future = pool.submit(self.worker, item, attempt)
                        except (BrokenProcessPool, RuntimeError):
                            # Pool broke between harvests; recycle and requeue.
                            queue.appendleft((item, attempt, not_before))
                            for fut, entry in inflight.items():
                                fut.cancel()
                                queue.append(entry[:2] + (0.0,))
                            inflight.clear()
                            _kill_pool(pool)
                            pool = None
                            self.pool_rebuilds += 1
                            self._note_rebuild()
                            break
                        deadline = now + timeout_s if timeout_s else float("inf")
                        inflight[future] = (item, attempt, deadline, time.monotonic())
                        self.telemetry.emit(
                            "job_start", job=self.key_of(item), attempt=attempt
                        )
                    queue.extendleft(reversed(pending_retry))

                if not inflight:
                    if stopping or not queue:
                        return
                    # Everything queued is backing off; sleep to the
                    # earliest retry time.
                    wake = min(entry[2] for entry in queue)
                    time.sleep(min(_POLL_S, max(0.0, wake - time.monotonic())))
                    continue

                next_deadline = min(entry[2] for entry in inflight.values())
                wait_s = max(0.0, min(_POLL_S, next_deadline - time.monotonic()))
                done, _ = wait(list(inflight), timeout=wait_s, return_when=FIRST_COMPLETED)

                pool_broken = False
                outcomes: List[Tuple[object, object]] = []
                for future in done:
                    item, attempt, _, started = inflight.pop(future)
                    try:
                        result = future.result()
                    except BrokenProcessPool as exc:
                        pool_broken = True
                        outcomes.extend(self._requeue_or_fail(queue, item, attempt, exc, "worker-lost"))
                    except KeyboardInterrupt:
                        raise
                    except Exception as exc:  # noqa: BLE001 - guard converts to JobFailure
                        outcomes.extend(self._requeue_or_fail(queue, item, attempt, exc, "exception"))
                    else:
                        self.telemetry.emit(
                            "job_done",
                            job=self.key_of(item),
                            wall_s=round(time.monotonic() - started, 6),
                        )
                        outcomes.append((item, result))

                if pool_broken:
                    # The whole pool is dead: every other in-flight job
                    # failed with it.  Charge them all one attempt (the
                    # guilty one is indistinguishable) and rebuild.
                    for future, (item, attempt, _, _) in list(inflight.items()):
                        exc = BrokenProcessPool("worker process died; pool re-spawned")
                        outcomes.extend(self._requeue_or_fail(queue, item, attempt, exc, "worker-lost"))
                    inflight.clear()
                    if pool is not None:
                        _kill_pool(pool)
                        pool = None
                    self.pool_rebuilds += 1
                    self._note_rebuild()

                # Deadline sweep: a hung worker cannot be interrupted, so
                # an expired job costs the whole pool — innocents requeue
                # at their current attempt (they did nothing wrong).
                now = time.monotonic()
                expired = [f for f, entry in inflight.items() if entry[2] <= now]
                if expired:
                    for future in expired:
                        item, attempt, _, _ = inflight.pop(future)
                        self.timeouts += 1
                        self.telemetry.emit(
                            "job_timeout",
                            job=self.key_of(item),
                            attempt=attempt,
                            timeout_s=timeout_s,
                        )
                        _LOG.warning(
                            "job_timeout",
                            job_id=self.key_of(item),
                            attempt=attempt,
                            timeout_s=timeout_s,
                        )
                        exc = TimeoutError(
                            f"job exceeded guard timeout of {timeout_s:.3f}s"
                        )
                        outcomes.extend(self._requeue_or_fail(queue, item, attempt, exc, "timeout"))
                    for future, (item, attempt, _, _) in inflight.items():
                        queue.append((item, attempt, 0.0))
                    inflight.clear()
                    if pool is not None:
                        _kill_pool(pool)
                        pool = None
                    self.pool_rebuilds += 1
                    self._note_rebuild()

                yield from outcomes

            # Clean finish: let workers exit normally.
            if pool is not None:
                pool.shutdown(wait=True)
                pool = None
        finally:
            if pool is not None:
                _kill_pool(pool)

    def _note_rebuild(self) -> None:
        """Telemetry + log for one pool teardown/re-spawn."""
        self.telemetry.emit("pool_rebuild", rebuilds=self.pool_rebuilds)
        _LOG.warning("pool_rebuild", rebuilds=self.pool_rebuilds)

    def _requeue_or_fail(
        self,
        queue: Deque,
        item: object,
        attempt: int,
        exc: BaseException,
        kind: str,
    ) -> List[Tuple[object, JobFailure]]:
        """Schedule a retry with backoff, or emit a terminal failure."""
        key = self.key_of(item)
        if self.guard.allows_retry(attempt):
            self.retries += 1
            delay = self.guard.backoff.delay(attempt)
            self.telemetry.emit("job_retry", job=key, attempt=attempt, delay_s=delay)
            not_before = time.monotonic() + delay
            queue.append((item, attempt + 1, not_before))
            return []
        failure = JobFailure.from_exception(key, exc, attempt, kind=kind)
        self.telemetry.emit(
            "job_fail", job=key, kind=failure.kind, attempts=failure.attempts
        )
        _LOG.warning("job_fail", job_id=key, kind=failure.kind, attempts=failure.attempts)
        return [(item, failure)]
