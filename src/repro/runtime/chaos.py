"""Self-chaos harness: seeded fault injection for the *harness itself*.

PR 5's :class:`~repro.dynamics.FaultInjector` kills simulated nodes
inside the simulation; this module applies the same discipline one layer
up, to the processes that *run* the simulations.  A :class:`ChaosPlan`
is a pure function of ``(seed, job key, attempt)`` — no wall clock, no
global RNG — so a chaos schedule is exactly reproducible, and a
:class:`ChaosWorker` wraps the real worker callable with three failure
modes drawn from that schedule:

* ``kill``   — ``os._exit(139)``: the worker process vanishes without
  unwinding, exactly like ``kill -9`` / an OOM kill.  Breaks the whole
  ``ProcessPoolExecutor``, which is the point.
* ``hang``   — sleep past the guard timeout: a wedged worker that will
  never return (deadlocked allocator, stuck NFS read).
* ``poison`` — raise :class:`ChaosPoison`: a job that fails loudly.

``max_strikes`` bounds injections per job: once a job's attempt number
exceeds it, the plan always answers ``ok`` — so any guard whose retry
budget exceeds the worst-case strike count provably converges, and the
chaos suite can assert the swept grid is bit-identical to an
uninterrupted reference run (``tests/test_chaos_harness.py``).

Only use ``kill``/``hang`` modes with pool execution (``workers >= 2``):
in-process, ``os._exit`` would take the driver down with it.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Callable

from .guards import deterministic_fraction

#: chaos decision outcomes, in evaluation order
CHAOS_ACTIONS = ("kill", "hang", "poison", "ok")


class ChaosPoison(RuntimeError):
    """The exception a poisoned chaos job raises."""


@dataclass(frozen=True)
class ChaosPlan:
    """A seeded, deterministic schedule of harness faults.

    Probabilities are cumulative-checked in ``kill, hang, poison``
    order against one deterministic draw per ``(job, attempt)``.
    """

    seed: int = 0
    kill_prob: float = 0.0
    hang_prob: float = 0.0
    poison_prob: float = 0.0
    hang_s: float = 30.0
    #: attempts beyond this are never struck (guarantees convergence)
    max_strikes: int = 2

    def decide(self, job_key: str, attempt: int) -> str:
        """The fault (or ``"ok"``) this job suffers on this attempt."""
        if attempt > self.max_strikes:
            return "ok"
        draw = deterministic_fraction("chaos", self.seed, job_key, attempt)
        threshold = 0.0
        for action, prob in (
            ("kill", self.kill_prob),
            ("hang", self.hang_prob),
            ("poison", self.poison_prob),
        ):
            threshold += prob
            if draw < threshold:
                return action
        return "ok"


class ChaosWorker:
    """Picklable wrapper injecting a :class:`ChaosPlan` around a worker.

    ``inner`` must itself be picklable (a top-level function); the
    wrapper is invoked with the executor's ``(item, attempt)`` protocol
    and consults the plan *before* running the real work, so a struck
    attempt does no simulation at all — like a worker that died on
    startup.
    """

    def __init__(self, plan: ChaosPlan, inner: Callable, key_of: str = "key"):
        self.plan = plan
        self.inner = inner
        self.key_of = key_of

    def __call__(self, item, attempt: int = 1):
        job_key = str(getattr(item, self.key_of, item))
        action = self.plan.decide(job_key, attempt)
        if action == "kill":
            os._exit(139)  # no unwinding: indistinguishable from kill -9
        if action == "hang":
            time.sleep(self.plan.hang_s)
            raise ChaosPoison(
                f"chaos hang on {job_key!r} attempt {attempt} outlived its sleep "
                f"(guard timeout did not fire?)"
            )
        if action == "poison":
            raise ChaosPoison(f"chaos poison on {job_key!r} attempt {attempt}")
        return self.inner(item, attempt)
