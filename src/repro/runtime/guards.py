"""Per-job execution guards: timeouts, bounded retries, structured failure.

A :class:`JobGuard` describes how one grid cell is allowed to fail:
how long it may run (``timeout_s``), how many times it is re-executed
(``retries``, with deterministic exponential backoff from
:class:`RetryPolicy`), and whether failures abort the sweep
(``strict``, raised *after* every other cell has completed and been
journaled — never mid-sweep).

When the budget is exhausted the job collapses into a
:class:`JobFailure` — job key, failure kind, attempt count, exception
type and the full (remote) traceback — instead of an exception tearing
down the whole sweep.  The three failure kinds mirror the three ways a
worker can die:

* ``exception`` — the job raised; the traceback is captured verbatim.
* ``timeout``   — the job exceeded ``timeout_s``; the worker pool was
  killed and rebuilt, innocent in-flight jobs were re-queued.
* ``worker-lost`` — the worker process died (``kill -9``, OOM,
  ``os._exit``); every in-flight job of the broken pool is retried.

Backoff is a pure function of the attempt number (no wall-clock
randomness), so a journaled sweep replays through the exact same retry
schedule — the determinism discipline every other subsystem follows.
"""

from __future__ import annotations

import math
import traceback
from dataclasses import dataclass, field
from typing import Optional, Tuple

#: the three ways a guarded job can fail
FAILURE_KINDS: Tuple[str, ...] = ("exception", "timeout", "worker-lost")


@dataclass(frozen=True)
class RetryPolicy:
    """Deterministic exponential backoff: ``base * factor**(attempt-1)``."""

    base_s: float = 0.05
    factor: float = 2.0
    cap_s: float = 5.0

    def delay(self, attempt: int) -> float:
        """Seconds to wait before re-running after failed attempt ``attempt``."""
        if attempt < 1:
            return 0.0
        return min(self.cap_s, self.base_s * self.factor ** (attempt - 1))


@dataclass(frozen=True)
class JobGuard:
    """How one job may fail: timeout, retry budget, sweep strictness.

    ``timeout_s=None`` disables the deadline (and is the only mode the
    in-process serial path supports — a single process cannot preempt
    itself; pool execution enforces deadlines by killing workers).
    ``retries=N`` allows up to ``1 + N`` executions per job.  With
    ``strict=True`` (the default) the engine raises :class:`SweepError`
    once the whole sweep has drained if any cell failed; ``strict=False``
    leaves failures in ``engine.failures`` for the caller to report.
    """

    timeout_s: Optional[float] = None
    retries: int = 2
    backoff: RetryPolicy = field(default_factory=RetryPolicy)
    strict: bool = True

    def allows_retry(self, attempt: int) -> bool:
        """May a job that failed on execution ``attempt`` run again?"""
        return attempt <= self.retries


@dataclass(frozen=True)
class JobFailure:
    """The structured result of a job that exhausted its guard budget."""

    job_key: str
    kind: str  # one of FAILURE_KINDS
    attempts: int
    error_type: str = ""
    message: str = ""
    traceback_text: str = ""

    def summary(self) -> str:
        what = f"{self.error_type}: {self.message}" if self.error_type else self.kind
        return f"{self.job_key} [{self.kind} after {self.attempts} attempt(s)] {what}"

    def as_payload(self) -> dict:
        """JSON-able form for the sweep journal."""
        return {
            "job_key": self.job_key,
            "kind": self.kind,
            "attempts": self.attempts,
            "error_type": self.error_type,
            "message": self.message,
            "traceback": self.traceback_text,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "JobFailure":
        return cls(
            job_key=str(payload.get("job_key", "")),
            kind=str(payload.get("kind", "exception")),
            attempts=int(payload.get("attempts", 1)),
            error_type=str(payload.get("error_type", "")),
            message=str(payload.get("message", "")),
            traceback_text=str(payload.get("traceback", "")),
        )

    @classmethod
    def from_exception(
        cls, job_key: str, exc: BaseException, attempts: int, kind: str = "exception"
    ) -> "JobFailure":
        """Capture an exception (incl. the remote traceback a
        ``ProcessPoolExecutor`` chains onto ``__cause__``) into a failure."""
        text = "".join(traceback.format_exception(type(exc), exc, exc.__traceback__))
        cause = exc.__cause__
        if cause is not None and type(cause).__name__ == "_RemoteTraceback":
            text = f"{cause}\n{text}"
        return cls(
            job_key=job_key,
            kind=kind,
            attempts=attempts,
            error_type=type(exc).__name__,
            message=str(exc),
            traceback_text=text,
        )


class SweepError(RuntimeError):
    """One or more cells of a strict sweep failed (raised after draining).

    Carries the full list of :class:`JobFailure` results so callers can
    report or persist them; the rest of the grid completed, was cached
    and journaled before this was raised.
    """

    def __init__(self, failures):
        self.failures = list(failures)
        lines = [f.summary() for f in self.failures[:5]]
        more = len(self.failures) - len(lines)
        if more > 0:
            lines.append(f"... and {more} more")
        super().__init__(
            f"{len(self.failures)} job(s) failed after retries:\n  " + "\n  ".join(lines)
        )


def deterministic_fraction(*parts: object) -> float:
    """A stable pseudo-random fraction in ``[0, 1)`` from hashable parts.

    Used by the chaos planner (and available for backoff jitter): the
    value depends only on the inputs, never on wall-clock or interpreter
    state, so fault schedules are exactly reproducible.
    """
    import hashlib

    text = ":".join(str(p) for p in parts)
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / math.ldexp(1.0, 64)
