"""Kill-and-resume smoke of the fault-tolerance layer (``make chaos-harness-smoke``).

Four scenarios, each ending in a byte-identity check against an
uninterrupted reference:

1. **sigint-drain** — a journaled sweep in a subprocess is SIGINT'd after
   its first cell; the driver drains in-flight work, flushes the journal
   and exits; resuming from the journal replays the drained cells and the
   final grid serializes byte-identically to a quiet single-worker run.
2. **sigkill-resume** — the same sweep is ``kill -9``'d (no handler can
   run, exactly like the OOM killer); the fsync'd write-ahead journal
   keeps every completed cell and the resume converges byte-identically.
3. **chaos-convergence** — a seeded :class:`ChaosPlan` kills and poisons
   worker processes in-process; with a retry budget covering the strikes
   the sweep converges byte-identically, visible only in the supervision
   counters (the pool really was rebuilt).
4. **service-restart** — a durable scheduler service is stopped mid
   session and rebooted over the same state directory; the recovered
   session continues to a metrics fingerprint byte-identical to one
   uninterrupted server life.

Everything runs from one entry point (``python -m repro.runtime.smoke``)
with exit status 0 only if every scenario holds, which makes this the
cheapest "did crash-safety break?" gate for CI.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import subprocess
import sys
import tempfile
from pathlib import Path

from ..experiments import (
    ExperimentEngine,
    ExperimentScale,
    SchedulerSpec,
    WorkloadSpec,
    metrics_to_payload,
    sweep_jobs,
)
from ..service.client import AsyncServiceClient
from ..service.server import SchedulerServer
from .chaos import ChaosPlan
from .guards import JobGuard, RetryPolicy
from .journal import SweepJournal

#: hard wall-clock cap on the whole smoke run
SMOKE_TIMEOUT_S = 300.0

TINY = ExperimentScale(name="tiny", num_nodes=8, duration_hours=6.0, seed=13)

#: fast backoff so injected retry storms don't stretch the smoke
FAST = RetryPolicy(base_s=0.01, factor=2.0, cap_s=0.05)

#: exit code the driver uses after a clean SIGINT drain
DRAIN_EXIT = 3


def sweep_grid():
    """A 4x2 grid: wide enough that a mid-sweep signal always leaves
    un-launched cells behind for the resume to run."""
    specs = [
        SchedulerSpec(kind="yarn-cs"),
        SchedulerSpec(kind="fgd"),
        SchedulerSpec(kind="chronus"),
        SchedulerSpec(kind="lyra"),
    ]
    workloads = [
        WorkloadSpec(spot_scale=2.0, label="medium"),
        WorkloadSpec(scenario="burst", spot_scale=1.0, label="burst"),
    ]
    return sweep_jobs(TINY, specs, workloads, prefix="grid")


def grid_bytes(results) -> bytes:
    """Canonical byte serialization of a sweep's full metrics grid."""
    payloads = {key: metrics_to_payload(m) for key, m in results.items()}
    return json.dumps(payloads, sort_keys=True).encode()


# The subprocess driver: the same journaled sweep the scenarios resume.
# Progress stretches the sweep (~0.5s per absorbed cell) so the parent
# can signal it mid-flight after reading the first CELL-DONE marker.
_DRIVER = """
import sys, time
from repro.experiments import (
    ExperimentEngine, ExperimentScale, SchedulerSpec, WorkloadSpec, sweep_jobs,
)

TINY = ExperimentScale(name="tiny", num_nodes=8, duration_hours=6.0, seed=13)
specs = [
    SchedulerSpec(kind="yarn-cs"),
    SchedulerSpec(kind="fgd"),
    SchedulerSpec(kind="chronus"),
    SchedulerSpec(kind="lyra"),
]
workloads = [
    WorkloadSpec(spot_scale=2.0, label="medium"),
    WorkloadSpec(scenario="burst", spot_scale=1.0, label="burst"),
]
jobs = sweep_jobs(TINY, specs, workloads, prefix="grid")

def progress(job, outcome):
    print("CELL-DONE", flush=True)
    time.sleep(0.5)

engine = ExperimentEngine(workers=2, journal=sys.argv[1], progress=progress)
try:
    engine.run(jobs)
except KeyboardInterrupt:
    print("DRAINED", len(engine.history), flush=True)
    sys.exit(3)
print("FINISHED", flush=True)
"""


def _drive_and_signal(journal_path: Path, sig: int) -> int:
    """Run the driver sweep, signal it after its first completed cell."""
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[2])
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-c", _DRIVER, str(journal_path)],
        stdout=subprocess.PIPE,
        text=True,
        env=env,
    )
    try:
        line = proc.stdout.readline()
        assert "CELL-DONE" in line, f"driver died before its first cell: {line!r}"
        proc.send_signal(sig)
        # wait(), not communicate(): a SIGKILL'd driver leaves orphaned
        # pool workers holding the stdout pipe open, so waiting for EOF
        # would hang until they exit.
        proc.wait(timeout=120)
    except subprocess.TimeoutExpired:
        proc.kill()
        proc.wait(timeout=10)
        raise AssertionError(f"driver did not exit after signal {sig}")
    finally:
        proc.stdout.close()
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)
    return proc.returncode


def scenario_sigint_drain(workdir: Path, reference: bytes, jobs) -> str:
    journal_path = workdir / "sigint.jsonl"
    rc = _drive_and_signal(journal_path, signal.SIGINT)
    assert rc == DRAIN_EXIT, f"driver exited {rc}, expected a clean drain"

    replay = SweepJournal(journal_path).replay()
    assert replay.torn_lines == 0, "SIGINT drain must flush whole records"
    drained = len(replay.completed)
    assert 1 <= drained < len(jobs), f"drained {drained} of {len(jobs)} cells"

    engine = ExperimentEngine(workers=2, journal=journal_path)
    resumed = engine.run(jobs)
    assert engine.stats.journal_hits == drained, engine.stats
    assert engine.stats.executed == len(jobs) - drained, engine.stats
    assert grid_bytes(resumed) == reference, "resumed grid diverged from reference"
    return f"drained {drained}/{len(jobs)} cells, resume byte-identical"


def scenario_sigkill_resume(workdir: Path, reference: bytes, jobs) -> str:
    journal_path = workdir / "sigkill.jsonl"
    rc = _drive_and_signal(journal_path, signal.SIGKILL)
    assert rc == -signal.SIGKILL, f"driver exited {rc}, expected -SIGKILL"

    replay = SweepJournal(journal_path).replay()
    survived = len(replay.completed)
    assert survived >= 1, "the fsync'd journal lost the completed cell"

    engine = ExperimentEngine(workers=2, journal=journal_path)
    resumed = engine.run(jobs)
    assert engine.stats.journal_hits == survived, engine.stats
    assert grid_bytes(resumed) == reference, "resumed grid diverged from reference"
    return f"journal kept {survived} cell(s) through kill -9, resume byte-identical"


def scenario_chaos_convergence(reference: bytes, jobs) -> str:
    # Pure seed search (no RNG): the first plan scheduling a kill and a
    # poison on first attempts, which are the only guaranteed attempts.
    plan = None
    for seed in range(200):
        candidate = ChaosPlan(seed=seed, kill_prob=0.25, poison_prob=0.25, max_strikes=2)
        first = [candidate.decide(job.key, 1) for job in jobs]
        if "kill" in first and "poison" in first:
            plan = candidate
            break
    assert plan is not None, "no seed under 200 schedules a kill and a poison"

    guard = JobGuard(retries=plan.max_strikes + 1, backoff=FAST)
    engine = ExperimentEngine(workers=2, guard=guard, chaos=plan)
    results = engine.run(jobs)
    assert engine.failures == {}, engine.failures
    assert grid_bytes(results) == reference, "chaotic grid diverged from reference"
    supervision = engine.last_supervision
    assert supervision["pool_rebuilds"] >= 1, supervision
    return (
        f"seed {plan.seed}: {supervision['pool_rebuilds']} pool rebuild(s), "
        f"{supervision['retries']} retr(ies), grid byte-identical"
    )


SERVICE_PARAMS = {"scheduler": "gfs", "num_nodes": 6, "duration_hours": 4.0, "seed": 11}


def _service_task(task_id: str, submit_time: float) -> dict:
    return {
        "task_id": task_id,
        "task_type": 0,
        "num_pods": 1,
        "gpus_per_pod": 4.0,
        "duration": 1800.0,
        "submit_time": submit_time,
        "org": "smoke-org",
    }


async def _service_life(state_dir: Path, body):
    server = SchedulerServer(state_dir=state_dir)
    await server.start(port=0)
    client = AsyncServiceClient(server.host, server.port)
    try:
        return await body(client)
    finally:
        await client.close()
        await server.stop()


async def _service_fingerprint_two_lives(state_dir: Path) -> str:
    wave = [_service_task(f"smoke-{i:03d}", i * 120.0) for i in range(12)]

    async def first_life(client):
        session = await client.create_session(**SERVICE_PARAMS)
        sid = session["session_id"]
        await client.submit(sid, wave)
        await client.advance(sid, until=1800.0)
        return sid

    sid = await _service_life(state_dir, first_life)

    async def second_life(client):
        ready = await client.readyz()
        assert ready["status"] == "ready", ready
        assert ready["recovered"] >= 1, ready
        assert ready["quarantined"] == 0, ready
        await client.advance(sid, until=3600.0)
        status = await client.status(sid)
        metrics = await client.metrics(sid)
        return json.dumps({"status": status, "metrics": metrics}, sort_keys=True)

    return await _service_life(state_dir, second_life)


async def _service_fingerprint_one_life(state_dir: Path) -> str:
    wave = [_service_task(f"smoke-{i:03d}", i * 120.0) for i in range(12)]

    async def life(client):
        session = await client.create_session(**SERVICE_PARAMS)
        sid = session["session_id"]
        await client.submit(sid, wave)
        await client.advance(sid, until=1800.0)
        await client.advance(sid, until=3600.0)
        status = await client.status(sid)
        metrics = await client.metrics(sid)
        return json.dumps({"status": status, "metrics": metrics}, sort_keys=True)

    return await _service_life(state_dir, life)


def scenario_service_restart(workdir: Path) -> str:
    restarted = asyncio.run(_service_fingerprint_two_lives(workdir / "state-restart"))
    reference = asyncio.run(_service_fingerprint_one_life(workdir / "state-reference"))
    assert restarted == reference, "recovered session diverged from one-life reference"
    return f"recovered session fingerprint byte-identical ({len(restarted)} bytes)"


def main() -> int:
    import threading

    watchdog = threading.Timer(SMOKE_TIMEOUT_S, os._exit, args=(124,))
    watchdog.daemon = True
    watchdog.start()
    try:
        jobs = sweep_grid()
        reference = grid_bytes(ExperimentEngine(workers=1).run(jobs))
        print(f"[chaos-harness-smoke] reference grid: {len(jobs)} cells")

        detail = scenario_sigint_drain(_workdir(), reference, jobs)
        print(f"[chaos-harness-smoke] sigint-drain: {detail}")
        detail = scenario_sigkill_resume(_workdir(), reference, jobs)
        print(f"[chaos-harness-smoke] sigkill-resume: {detail}")
        detail = scenario_chaos_convergence(reference, jobs)
        print(f"[chaos-harness-smoke] chaos-convergence: {detail}")
        detail = scenario_service_restart(_workdir())
        print(f"[chaos-harness-smoke] service-restart: {detail}")

        print("[chaos-harness-smoke] OK")
        return 0
    finally:
        watchdog.cancel()


def _workdir() -> Path:
    return Path(tempfile.mkdtemp(prefix="chaos-smoke-"))


if __name__ == "__main__":
    sys.exit(main())
