"""Estimate the value of deploying GFS on a heterogeneous production fleet.

This example mirrors the paper's production-deployment analysis (Figure 9
and the $459,715/month estimate): it simulates each GPU-model partition of
the Table 1 fleet under the legacy first-fit policy and under GFS, then
prices the allocation-rate and eviction-rate changes with the cloud
pricing model.

Run with:  python examples/production_deployment.py [--fast]
Exits non-zero if the experiment fails to cover the fleet or the pricing
model produces nonsense.
"""

import argparse
import math
import sys

from repro.experiments import paper_reference_benefit, run_deployment_experiment


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--fast", action="store_true", help="tiny fleet/duration for CI smoke runs"
    )
    args = parser.parse_args(argv)

    fleet_scale = 0.004 if args.fast else 0.02
    duration_hours = 6.0 if args.fast else 12.0

    print("Simulating pre/post-GFS operating points per GPU model (scaled fleet)...")
    result = run_deployment_experiment(
        fleet_scale=fleet_scale, duration_hours=duration_hours, spot_scale=2.0
    )
    print()
    print(result.report())

    print("\nPer-model improvements (simulated):")
    for model, outcome in result.per_model.items():
        eviction_drop = (
            (outcome.eviction_before - outcome.eviction_after)
            / outcome.eviction_before * 100.0
            if outcome.eviction_before > 0
            else 0.0
        )
        allocation_gain = (outcome.allocation_after - outcome.allocation_before) * 100.0
        print(
            f"  {model.value:5s} eviction {eviction_drop:+.1f}% relative, "
            f"allocation {allocation_gain:+.1f} points"
        )

    reference = paper_reference_benefit()
    print(
        "\nFor reference, pricing the paper's own reported operating points "
        f"(Table 1 / Figure 9 fleet) yields ${reference.monthly_gain_usd:,.0f} per month."
    )

    # Sanity checks for CI: all four fleet models simulated, rates in range,
    # and the paper-reference pricing strictly positive.
    failures = []
    if len(result.per_model) != 4:
        failures.append(f"expected 4 GPU models, got {len(result.per_model)}")
    for model, outcome in result.per_model.items():
        for label, rate in (
            ("eviction_before", outcome.eviction_before),
            ("eviction_after", outcome.eviction_after),
            ("allocation_before", outcome.allocation_before),
            ("allocation_after", outcome.allocation_after),
        ):
            if not (math.isfinite(rate) and 0.0 <= rate <= 1.0):
                failures.append(f"{model.value}.{label} out of range: {rate}")
    if result.benefit is None or not math.isfinite(result.benefit.monthly_gain_usd):
        failures.append("missing/non-finite simulated benefit")
    if not reference.monthly_gain_usd > 0:
        failures.append(f"paper-reference benefit not positive: {reference.monthly_gain_usd}")
    if failures:
        print("\nFAILED:", "; ".join(failures), file=sys.stderr)
        return 1
    print("\nOK: deployment experiment covered the fleet with sane operating points.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
