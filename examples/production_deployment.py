"""Estimate the value of deploying GFS on a heterogeneous production fleet.

This example mirrors the paper's production-deployment analysis (Figure 9
and the $459,715/month estimate): it simulates each GPU-model partition of
the Table 1 fleet under the legacy first-fit policy and under GFS, then
prices the allocation-rate and eviction-rate changes with the cloud
pricing model.

Run with:  python examples/production_deployment.py
"""

from repro.experiments import paper_reference_benefit, run_deployment_experiment


def main() -> None:
    print("Simulating pre/post-GFS operating points per GPU model (scaled fleet)...")
    result = run_deployment_experiment(fleet_scale=0.02, duration_hours=12.0, spot_scale=2.0)
    print()
    print(result.report())

    print("\nPer-model improvements (simulated):")
    for model, outcome in result.per_model.items():
        eviction_drop = (
            (outcome.eviction_before - outcome.eviction_after)
            / outcome.eviction_before * 100.0
            if outcome.eviction_before > 0
            else 0.0
        )
        allocation_gain = (outcome.allocation_after - outcome.allocation_before) * 100.0
        print(
            f"  {model.value:5s} eviction {eviction_drop:+.1f}% relative, "
            f"allocation {allocation_gain:+.1f} points"
        )

    reference = paper_reference_benefit()
    print(
        "\nFor reference, pricing the paper's own reported operating points "
        f"(Table 1 / Figure 9 fleet) yields ${reference.monthly_gain_usd:,.0f} per month."
    )


if __name__ == "__main__":
    main()
