"""Quickstart: run the GFS scheduler on a synthetic GPU cluster trace.

This example builds a small A100 cluster, generates a calibrated workload
(HP + spot tasks with per-organization demand history), runs the full GFS
scheduler (GDE + SQA + PTS) in the discrete-event simulator and prints the
headline metrics the paper reports: JCT, JQT and spot eviction rate.

Run with:  python examples/quickstart.py
"""

from repro import Cluster, GPUModel, GFSScheduler, run_simulation
from repro.workloads import generate_trace


def main() -> None:
    # 1. A 32-node x 8-GPU A100 cluster (256 GPUs).
    cluster = Cluster.homogeneous(num_nodes=32, gpus_per_node=8, gpu_model=GPUModel.A100)
    print(f"Cluster: {cluster.describe()}")

    # 2. A 16-hour workload calibrated to the paper's task mix (Table 3),
    #    with the spot submission rate doubled (the "medium" workload).
    trace = generate_trace(
        cluster_gpus=cluster.total_gpus(),
        duration_hours=16.0,
        spot_scale=2.0,
        seed=42,
    )
    stats = trace.statistics()
    print(
        f"Trace: {stats.num_hp} HP tasks, {stats.num_spot} spot tasks, "
        f"gang fraction HP={stats.hp_gang_fraction:.1%} spot={stats.spot_gang_fraction:.1%}"
    )

    # 3. The GFS scheduler, fed with the trace's per-organization demand
    #    history so the GPU demand estimator can forecast HP demand.
    scheduler = GFSScheduler(org_history=trace.org_history)

    # 4. Run the discrete-event simulation to completion.
    metrics = run_simulation(cluster, scheduler, trace.sorted_tasks())

    # 5. Report.
    print("\n=== GFS results ===")
    print(metrics.summary())
    print(f"\nFinal spot quota in force: {scheduler.current_quota():.0f} GPUs")


if __name__ == "__main__":
    main()
