"""Compare GFS with the four baseline schedulers on the same workload.

This reproduces a miniature version of the paper's Table 5 through the
parallel experiment engine: every scheduler (YARN-CS, Chronus, Lyra, FGD
and GFS) is run over an identical synthetic medium-spot workload — fanned
out across worker processes — and the HP/spot SLO metrics are printed side
by side.

Run with:  python examples/scheduler_comparison.py [--fast] [--workers N]
                                                   [--spot-scale X]
Exits non-zero if any scheduler fails to produce sane metrics.
"""

import argparse
import math
import sys

from repro.analysis import format_scheduler_table, improvement_row
from repro.experiments import (
    ExperimentEngine,
    ExperimentResult,
    ExperimentScale,
    WorkloadSpec,
    comparison_specs,
    sweep_jobs,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--spot-scale", type=float, default=2.0)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument(
        "--fast", action="store_true", help="tiny scale for CI smoke runs"
    )
    args = parser.parse_args(argv)

    if args.fast:
        scale = ExperimentScale(name="example-fast", num_nodes=8, duration_hours=6.0, seed=21)
    else:
        scale = ExperimentScale(name="example", num_nodes=32, duration_hours=16.0, seed=21)

    specs = comparison_specs(include_gfs=True)
    workload = WorkloadSpec(spot_scale=args.spot_scale, label="example")
    engine = ExperimentEngine(workers=args.workers)

    print(
        f"Running {len(specs)} schedulers on a {scale.num_nodes * scale.gpus_per_node}-GPU "
        f"cluster, {scale.duration_hours:.0f}h workload, spot x{args.spot_scale:g}, "
        f"{engine.workers} worker(s) ..."
    )
    metrics = engine.run(sweep_jobs(scale, specs, [workload], prefix="example"))

    rows = {}
    for spec in specs:
        cell = metrics.get(f"example/example/{spec.display}")
        if cell is None:
            continue  # reported by the missing-schedulers check below
        rows[spec.display] = ExperimentResult(
            scheduler=spec.display, workload="example", metrics=cell
        ).as_row()

    print()
    print(format_scheduler_table(rows, title="Scheduler comparison (Table 5 style)"))

    improvements = improvement_row(rows)
    if improvements:
        print("\nGFS vs the best baseline per metric (positive = GFS better):")
        for metric, value in improvements.items():
            print(f"  {metric:15s} {value * 100:+.1f}%")

    # Sanity checks: every scheduler must have completed HP work with finite
    # SLO metrics and a bounded eviction rate.  A broken API or scheduler
    # shows up here and flips the exit code for CI.
    failures = []
    expected = {spec.display for spec in specs}
    if set(rows) != expected:
        failures.append(f"missing schedulers: {sorted(expected - set(rows))}")
    for name, row in rows.items():
        if not (row["hp_jct"] > 0 and math.isfinite(row["hp_jct"])):
            failures.append(f"{name}: bad hp_jct {row['hp_jct']}")
        if not (0.0 <= row["spot_eviction"] <= 1.0):
            failures.append(f"{name}: eviction rate out of range {row['spot_eviction']}")
    if failures:
        print("\nFAILED:", "; ".join(failures), file=sys.stderr)
        return 1
    print(f"\nOK: {len(rows)} schedulers compared, all metrics sane.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
