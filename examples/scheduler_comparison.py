"""Compare GFS with the four baseline schedulers on the same workload.

This reproduces a miniature version of the paper's Table 5: every
scheduler (YARN-CS, Chronus, Lyra, FGD and GFS) is run over an identical
synthetic medium-spot workload, and the HP/spot SLO metrics are printed
side by side.

Run with:  python examples/scheduler_comparison.py [spot_scale]
"""

import sys

from repro.analysis import format_scheduler_table, improvement_row
from repro.experiments import ExperimentScale, baseline_factories, gfs_factory, run_sweep


def main() -> None:
    spot_scale = float(sys.argv[1]) if len(sys.argv) > 1 else 2.0
    scale = ExperimentScale(name="example", num_nodes=32, duration_hours=16.0, seed=21)

    factories = baseline_factories()
    factories["GFS"] = gfs_factory()

    print(
        f"Running {len(factories)} schedulers on a {scale.num_nodes * scale.gpus_per_node}-GPU "
        f"cluster, {scale.duration_hours:.0f}h workload, spot x{spot_scale:.0f} ..."
    )
    results = run_sweep(scale, factories, workload_name="example", spot_scale=spot_scale)

    rows = results.rows()
    print()
    print(format_scheduler_table(rows, title="Scheduler comparison (Table 5 style)"))

    improvements = improvement_row(rows)
    if improvements:
        print("\nGFS vs the best baseline per metric (positive = GFS better):")
        for metric, value in improvements.items():
            print(f"  {metric:15s} {value * 100:+.1f}%")


if __name__ == "__main__":
    main()
