"""Ingest an external cluster trace and replay it through the schedulers.

The trace ingestion subsystem (``repro.workloads.ingest``) turns real
cluster logs into first-class workloads.  This example walks the whole
path end to end without needing any dataset download:

1. write a small Philly-style job CSV (the shape of the public Microsoft
   Philly DNN trace) to a temp directory,
2. convert it with the ingest pipeline — time-window slice, duration
   clamp, GPU remap onto the fleet, per-org demand-history
   reconstruction — and save it as a compressed ``.json.gz`` trace,
3. replay it through the parallel experiment engine via a
   ``trace:<path>`` scenario ref, comparing GFS against YARN-CS,
4. verify replay determinism: two runs produce identical metrics.

Run with:  python examples/trace_replay.py [--fast] [--workers N]
Exits non-zero if conversion, validation or replay misbehaves.
"""

import argparse
import math
import sys
import tempfile
from pathlib import Path

from repro.analysis import format_scheduler_table
from repro.experiments import (
    ExperimentEngine,
    ExperimentResult,
    ExperimentScale,
    SchedulerSpec,
    WorkloadSpec,
    metrics_to_payload,
    sweep_jobs,
)
from repro.workloads import Trace
from repro.workloads.ingest import DurationClamp, TimeWindow, ingest_trace, validate_trace
from repro.cluster import GPUModel

#: Deterministic Philly-style rows: (jobid, vc, submit_h, run_h, num_gpus, status).
#: A synthetic stand-in with the same columns as the public Philly CSVs.
PHILLY_ROWS = [
    (f"job-{i:03d}", vc, submit, run, gpus, status)
    for i, (vc, submit, run, gpus, status) in enumerate(
        [
            ("vc-ads", 0.0, 2.0, 8, "Pass"),
            ("vc-ads", 0.2, 1.0, 1, "Pass"),
            ("vc-ml", 0.5, 4.0, 16, "Pass"),
            ("vc-ml", 0.7, 0.5, 2, "Killed"),
            ("vc-speech", 1.0, 3.0, 8, "Pass"),
            ("vc-ads", 1.5, 0.4, 1, "Killed"),
            ("vc-ml", 2.0, 2.5, 4, "Pass"),
            ("vc-speech", 2.2, 0.8, 2, "Killed"),
            ("vc-ads", 2.8, 12.0, 8, "Pass"),
            ("vc-ml", 3.1, 1.5, 1, "Pass"),
            ("vc-speech", 3.5, 0.6, 1, "Killed"),
            ("vc-ads", 4.0, 2.0, 24, "Pass"),
            ("vc-ml", 4.4, 1.0, 2, "Pass"),
            ("vc-speech", 4.9, 5.0, 8, "Pass"),
            ("vc-ads", 5.3, 0.5, 1, "Killed"),
            ("vc-ml", 5.8, 3.0, 4, "Pass"),
        ]
    )
]


def write_source_csv(path: Path) -> None:
    lines = ["jobid,vc,submitted_time,started_time,finished_time,num_gpus,status"]
    for jobid, vc, submit_h, run_h, gpus, status in PHILLY_ROWS:
        submit = submit_h * 3600.0
        lines.append(
            f"{jobid},{vc},{submit},{submit + 60.0},{submit + 60.0 + run_h * 3600.0},"
            f"{gpus},{status}"
        )
    path.write_text("\n".join(lines) + "\n")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--fast", action="store_true", help="tiny scale for CI smoke runs")
    args = parser.parse_args(argv)

    nodes = 4 if args.fast else 8
    scale = ExperimentScale(name="replay", num_nodes=nodes, duration_hours=8.0, seed=17)

    with tempfile.TemporaryDirectory(prefix="trace-replay-") as tmp:
        source = Path(tmp) / "philly_style.csv"
        converted = Path(tmp) / "philly_style.json.gz"
        write_source_csv(source)

        # Convert: slice the first 8 hours, clamp stragglers to 6h, remap
        # every GPU model onto the A100 fleet the replay cluster runs.
        trace = ingest_trace(
            source,
            transforms=[TimeWindow(0.0, 8.0), DurationClamp(max_seconds=6 * 3600.0)],
            fleet_models=[GPUModel.A100],
            cluster_gpus=scale.total_gpus,
        )
        trace.save(converted)
        report = validate_trace(Trace.load(converted))
        print(
            f"Converted {source.name}: {len(trace)} tasks "
            f"({trace.metadata['num_hp']} HP, {trace.metadata['num_spot']} spot), "
            f"validation: {report.summary()}"
        )
        if not report.ok:
            print("FAILED: converted trace is invalid", file=sys.stderr)
            return 1

        specs = [SchedulerSpec(kind="yarn-cs"), SchedulerSpec(kind="gfs")]
        workload = WorkloadSpec(scenario=f"trace:{converted}", label="replay")
        jobs = sweep_jobs(scale, specs, [workload], prefix="trace")
        engine = ExperimentEngine(workers=args.workers)
        print(
            f"Replaying through {len(specs)} schedulers on a "
            f"{scale.total_gpus:.0f}-GPU cluster, {engine.workers} worker(s) ..."
        )
        metrics = engine.run(jobs)

        rows = {
            spec.display: ExperimentResult(
                scheduler=spec.display,
                workload="replay",
                metrics=metrics[f"trace/replay/{spec.display}"],
            ).as_row()
            for spec in specs
        }
        print()
        print(format_scheduler_table(rows, title="External-trace replay"))

        # Replay must be deterministic: a second run over the same file
        # produces bit-identical metrics.
        again = ExperimentEngine(workers=1).run(jobs)
        failures = []
        for key in metrics:
            if metrics_to_payload(metrics[key]) != metrics_to_payload(again[key]):
                failures.append(f"{key}: replay not deterministic")
        for name, row in rows.items():
            if not (row["hp_jct"] > 0 and math.isfinite(row["hp_jct"])):
                failures.append(f"{name}: bad hp_jct {row['hp_jct']}")
        if failures:
            print("\nFAILED:", "; ".join(failures), file=sys.stderr)
            return 1
        print(f"\nOK: {len(rows)} schedulers replayed the ingested trace deterministically.")
        return 0


if __name__ == "__main__":
    sys.exit(main())
