"""Probabilistic GPU demand forecasting with OrgLinear.

This example trains the paper's OrgLinear model on per-organization GPU
demand series, compares it with the DLinear and previous-week-peak
baselines, and shows how the Spot Quota Allocator turns the forecast into
a spot GPU quota with a guaranteed duration.

Run with:  python examples/demand_forecasting.py
"""


from repro.core.gde import (
    DLinearModel,
    GPUDemandEstimator,
    OrgLinear,
    OrgLinearConfig,
    PreviousWeekPeakModel,
    SeasonalQuantileForecaster,
    build_window_dataset,
    evaluate_forecast,
    train_test_split_dataset,
)
from repro.core.sqa import GPUInventoryEstimator, SpotQuotaAllocator, SQAConfig
from repro.workloads import DEFAULT_HOLIDAYS, default_organizations, generate_org_demand_matrix


def main() -> None:
    # 1. Eight weeks of hourly demand for the four organizations of Figure 4.
    organizations = default_organizations()
    history = generate_org_demand_matrix(organizations, hours=8 * 168, seed=3)
    attributes = {o.name: o.business_attributes() for o in organizations}

    # 2. Sliding-window dataset: 168 h of history -> 24 h forecast.
    dataset = build_window_dataset(
        history, attributes, input_length=168, horizon=24, stride=6, holidays=set(DEFAULT_HOLIDAYS)
    )
    train, test = train_test_split_dataset(dataset, test_fraction=0.25)
    y_true = test.arrays()["Y"]
    print(f"Training windows: {len(train)}, test windows: {len(test)}")

    # 3. Train OrgLinear and two baselines; compare accuracy.
    models = {
        "OrgLinear": OrgLinear(OrgLinearConfig(epochs=60)),
        "DLinear": DLinearModel(),
        "PrevWeekPeak": PreviousWeekPeakModel(),
    }
    print(f"\n{'model':14s} {'MAE':>8s} {'RMSE':>8s} {'MAPE':>8s} {'0.95-MAQE':>10s} {'train(s)':>9s}")
    for name, model in models.items():
        model.fit(train)
        mu, sigma = model.predict(test)
        ev = evaluate_forecast(y_true, mu, sigma, model.training_time)
        print(
            f"{name:14s} {ev.mae:8.2f} {ev.rmse:8.2f} {ev.mape:8.3f} "
            f"{ev.maqe_95:10.3f} {ev.training_time:9.2f}"
        )

    # 4. Turn the probabilistic forecast into a spot quota (Eqs. 9-10).
    estimator = GPUDemandEstimator(SeasonalQuantileForecaster()).fit(history)
    capacity = 512.0
    inventory = GPUInventoryEstimator(estimator, capacity=capacity)
    sqa = SpotQuotaAllocator(inventory, SQAConfig(guarantee_rate=0.9, guarantee_hours=1.0))

    now_hour = 8 * 168  # "now" = right after the history ends
    estimate = inventory.estimate(now_hour, horizon_hours=1.0, p=0.9)
    quota = sqa.compute_quota(
        now=0.0,
        start_hour=now_hour,
        idle_gpus=capacity * 0.4,
        guaranteed_spot_gpus=60.0,
        eviction_rate=0.02,
        max_queue_time=120.0,
    )
    print(
        f"\nCluster capacity {capacity:.0f} GPUs; predicted aggregated HP peak "
        f"(next hour, p=0.9) = {estimate.aggregated_peak_demand:.0f} GPUs"
    )
    print(f"Spot quota with 1-hour guarantee: {quota:.0f} GPUs (eta = {sqa.eta:.2f})")


if __name__ == "__main__":
    main()
