# Developer entry points. Everything runs from the repo root and uses
# PYTHONPATH=src so no install step is required.

PYTHON      ?= python
PYTHONPATH  := src
export PYTHONPATH

.PHONY: test bench bench-scaling bench-record perf-smoke lint verify sweep trace-smoke chaos-smoke chaos-harness-smoke serve-smoke stream-smoke profile obs-smoke all

# Knobs for `make profile` (self-profiler tier/scheduler).
PROFILE_TIER      ?= full
PROFILE_SCHEDULER ?= chronus

# Knobs for `make sweep` (scenario library + parallel experiment engine).
SCENARIO ?= burst
WORKERS  ?= 4
SCALE    ?= small

# Workdir for `make trace-smoke` (trace ingestion end-to-end check).
TRACE_DIR ?= .trace-smoke

## Tier-1 verify: the full unit suite + every benchmark at reduced scale.
verify:
	$(PYTHON) -m pytest -x -q

## Unit/integration tests only (fast).
test:
	$(PYTHON) -m pytest tests -q

## Paper-artifact benchmarks + the scheduling-core scaling benchmark.
bench:
	$(PYTHON) -m pytest benchmarks -q -s

## Just the scaling benchmark (legacy-vs-optimized engine comparison).
bench-scaling:
	$(PYTHON) -m pytest benchmarks/test_bench_scaling.py -q -s

## Full placement-bound benchmark (512 nodes, >=20k tasks) with the
## legacy search comparison, the full churn tier (256 nodes under
## node_churn) and the full service load tier (streaming session over
## HTTP); writes the machine-readable BENCH_4.json, BENCH_5.json and
## BENCH_6.json perf records at the repo root and fails on any regression.
bench-record:
	REPRO_BENCH_PLACEMENT_TIER=full REPRO_BENCH_RECORD=1 REPRO_BENCH_ENFORCE=1 \
		$(PYTHON) -m pytest benchmarks/test_bench_scaling.py -q -s -k placement
	REPRO_BENCH_DYNAMICS_TIER=full REPRO_BENCH_RECORD=1 REPRO_BENCH_ENFORCE=1 \
		$(PYTHON) -m pytest benchmarks/test_bench_dynamics.py -q -s
	REPRO_BENCH_SERVICE_TIER=full REPRO_BENCH_RECORD=1 REPRO_BENCH_ENFORCE=1 \
		$(PYTHON) -m pytest benchmarks/test_bench_service.py -q -s
	REPRO_BENCH_OBS_TIER=full REPRO_BENCH_RECORD=1 REPRO_BENCH_ENFORCE=1 \
		$(PYTHON) -m pytest benchmarks/test_bench_obs.py -q -s
	REPRO_BENCH_STREAM_TIER=full REPRO_BENCH_RECORD=1 REPRO_BENCH_ENFORCE=1 \
		$(PYTHON) -m pytest benchmarks/test_bench_stream.py -q -s

## Reduced placement benchmark used by the CI perf gate: fails when the
## measured speedup ratio regresses >20% vs the checked-in reference.
perf-smoke:
	REPRO_BENCH_PLACEMENT_TIER=smoke REPRO_BENCH_ENFORCE=1 \
		$(PYTHON) -m pytest benchmarks/test_bench_scaling.py -q -s -k placement

## Scenario sweep through the parallel experiment engine, e.g.
##   make sweep SCENARIO=spot_heavy WORKERS=8 SCALE=medium
sweep:
	$(PYTHON) -m repro.experiments.cli sweep --scenario $(SCENARIO) \
		--scale $(SCALE) --workers $(WORKERS) --cache-dir .repro-cache

## Trace-ingest smoke: convert a fixture trace, validate it, inspect it,
## then run one simulation cell on it through the engine (cached).
trace-smoke:
	$(PYTHON) -m repro.experiments.cli trace convert \
		tests/fixtures/philly_small.csv $(TRACE_DIR)/philly.json.gz \
		--fleet-model A100
	$(PYTHON) -m repro.experiments.cli trace validate $(TRACE_DIR)/philly.json.gz
	$(PYTHON) -m repro.experiments.cli trace stats $(TRACE_DIR)/philly.json.gz
	$(PYTHON) -m repro.experiments.cli sweep \
		--scenario trace:$(TRACE_DIR)/philly.json.gz \
		--schedulers GFS --workers 1 --cache-dir $(TRACE_DIR)/cache

## Chaos smoke: one fast node_churn sweep covering every scheduler
## family (Chronus/YARN-CS/FGD/Lyra/PTS/GFS) through the parallel
## engine, plus the dynamics overhead/determinism benchmark.
chaos-smoke:
	$(PYTHON) -m repro.experiments.cli sweep --scenario node_churn \
		--scale small --workers 2 --spot-scale 2.0
	$(PYTHON) -m pytest benchmarks/test_bench_dynamics.py tests/test_chaos_scenarios.py -q

## Fault-tolerance smoke: kill-and-resume scenarios (SIGINT drain,
## kill -9 + journal resume, seeded worker chaos, durable service
## restart — each asserting byte-identity with an uninterrupted
## reference), then the crash-safety suites.
chaos-harness-smoke:
	$(PYTHON) -m repro.runtime.smoke
	$(PYTHON) -m pytest tests/test_runtime.py tests/test_resume.py \
		tests/test_chaos_harness.py tests/test_service_durability.py -q

## Self-profiler: wall-clock phase breakdown (event dispatch vs placement
## search vs metric accrual) of the placement-bound benchmark tier, with
## the instrumentation-off baseline and metric-parity check.  E.g.
##   make profile PROFILE_TIER=smoke
profile:
	$(PYTHON) -m repro.experiments.cli profile \
		--tier $(PROFILE_TIER) --scheduler $(PROFILE_SCHEDULER) --check-overhead

## Observability smoke for CI: profile + trace export on the smoke tier,
## plus the /metrics scrape exercised by the service smoke.
obs-smoke:
	$(PYTHON) -m repro.experiments.cli profile --tier smoke --check-overhead
	$(PYTHON) -m repro.experiments.cli trace-viz --scenario node_churn \
		--nodes 16 --hours 4.0 --trace-out .obs-smoke-trace.json
	$(PYTHON) -m repro.service.smoke

## Live-telemetry smoke: SSE subscribe + mid-stream disconnect +
## Last-Event-ID resume against a real server (byte-for-byte lossless
## vs an uninterrupted witness), the /dashboard page, then a --progress
## sweep whose JSONL telemetry capture is validated against the
## documented schema (see docs/observability.md).
stream-smoke:
	$(PYTHON) -m repro.service.stream_smoke

## Service smoke: boot the streaming scheduler server in-process, drive
## one full session lifecycle over HTTP (create, stream submissions,
## advance, occupancy/quota/what-if queries, snapshot/restore, shutdown).
serve-smoke:
	$(PYTHON) -m repro.service.smoke

## Lint: ruff when available, otherwise a byte-compile syntax sweep.
lint:
	@if $(PYTHON) -m ruff --version >/dev/null 2>&1; then \
		$(PYTHON) -m ruff check src tests benchmarks examples; \
	else \
		echo "ruff not installed; falling back to compileall"; \
		$(PYTHON) -m compileall -q src tests benchmarks examples; \
	fi

all: lint test bench
