# Developer entry points. Everything runs from the repo root and uses
# PYTHONPATH=src so no install step is required.

PYTHON      ?= python
PYTHONPATH  := src
export PYTHONPATH

.PHONY: test bench bench-scaling lint verify sweep all

# Knobs for `make sweep` (scenario library + parallel experiment engine).
SCENARIO ?= burst
WORKERS  ?= 4
SCALE    ?= small

## Tier-1 verify: the full unit suite + every benchmark at reduced scale.
verify:
	$(PYTHON) -m pytest -x -q

## Unit/integration tests only (fast).
test:
	$(PYTHON) -m pytest tests -q

## Paper-artifact benchmarks + the scheduling-core scaling benchmark.
bench:
	$(PYTHON) -m pytest benchmarks -q -s

## Just the scaling benchmark (legacy-vs-optimized engine comparison).
bench-scaling:
	$(PYTHON) -m pytest benchmarks/test_bench_scaling.py -q -s

## Scenario sweep through the parallel experiment engine, e.g.
##   make sweep SCENARIO=spot_heavy WORKERS=8 SCALE=medium
sweep:
	$(PYTHON) -m repro.experiments.cli sweep --scenario $(SCENARIO) \
		--scale $(SCALE) --workers $(WORKERS) --cache-dir .repro-cache

## Lint: ruff when available, otherwise a byte-compile syntax sweep.
lint:
	@if $(PYTHON) -m ruff --version >/dev/null 2>&1; then \
		$(PYTHON) -m ruff check src tests benchmarks examples; \
	else \
		echo "ruff not installed; falling back to compileall"; \
		$(PYTHON) -m compileall -q src tests benchmarks examples; \
	fi

all: lint test bench
