"""Shared helpers for the benchmark harness.

Lives beside the benchmark tests (the benchmarks directory is on
``sys.path`` during collection, like ``legacy/``) so every harness uses
one definition of metric bit-identity instead of drifting copies.
"""

from __future__ import annotations

import json
import math
from pathlib import Path

from repro.cluster import SimulationMetrics
from repro.runtime import atomic_write_text


def values_equal(a, b) -> bool:
    """Exact equality, treating NaN == NaN and descending into sequences."""
    if isinstance(a, float) and isinstance(b, float):
        if math.isnan(a) and math.isnan(b):
            return True
        return a == b
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        return len(a) == len(b) and all(values_equal(x, y) for x, y in zip(a, b))
    return a == b


def assert_metrics_identical(new: SimulationMetrics, old: SimulationMetrics, label: str) -> None:
    """Field-by-field bit-identity, descending into the per-class metrics."""
    for cls_name in ("hp", "spot"):
        new_cls, old_cls = getattr(new, cls_name), getattr(old, cls_name)
        for field_name, old_value in vars(old_cls).items():
            new_value = getattr(new_cls, field_name)
            assert values_equal(new_value, old_value), (
                f"[{label}] {cls_name}.{field_name}: "
                f"optimized {new_value!r} != reference {old_value!r}"
            )
    for field_name, old_value in vars(old).items():
        if field_name in ("hp", "spot"):
            continue
        new_value = getattr(new, field_name)
        assert values_equal(new_value, old_value), (
            f"[{label}] {field_name}: optimized {new_value!r} != reference {old_value!r}"
        )


#: Version stamp written into every ``BENCH_*.json`` perf record.
#: Version 2 adds the ``schema_version`` field itself plus the BENCH_7
#: observability-overhead record; bump it whenever a record's fields
#: change shape so downstream tooling can branch on it.
BENCH_SCHEMA_VERSION = 2


def write_bench_record(out: Path, record: dict) -> Path:
    """Write a ``BENCH_*.json`` perf record atomically (temp + fsync + rename).

    The records live at the repo root and are read by CI and by the next
    benchmark run (as the regression reference), so a crash or ^C mid-write
    must never leave a torn file behind.
    """
    return atomic_write_text(out, json.dumps(record, indent=2) + "\n")
