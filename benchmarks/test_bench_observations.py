"""Benchmarks E-T1 and E-F2/F3/F4/F8: the observation tables and figures."""


from repro.analysis import demand_summary
from repro.experiments import (
    run_fleet_observation,
    run_heatmap_observation,
    run_request_cdf_observation,
    run_runtime_observation,
)
from repro.experiments.config import ExperimentScale
from repro.workloads import organizations


def test_bench_table1_fleet_allocation(run_once):
    rates = run_once(run_fleet_observation, fleet_scale=0.008, duration_hours=8.0)
    print()
    print("Table 1 (simulated pre-GFS allocation rate per GPU model)")
    for model, rate in rates.items():
        print(f"  {model:5s} {rate * 100:6.2f}%")
    assert set(rates) == {"A10", "A100", "A800", "H800"}
    # Allocation-rate means are diluted by the post-window drain at this
    # small scale; require sane bounds and meaningful utilisation somewhere.
    assert all(0.05 <= r <= 1.0 for r in rates.values())
    assert max(rates.values()) > 0.3


def test_bench_fig2_request_cdfs(run_once):
    cmp = run_once(run_request_cdf_observation, samples=20_000)
    print()
    print(
        "Figure 2: 2020 partial-card share "
        f"{cmp.legacy_partial_fraction * 100:.1f}%, 2024 full-card share "
        f"{cmp.modern_full_card_fraction * 100:.1f}%, 2024 full-node share "
        f"{cmp.modern_full_node_fraction * 100:.1f}%"
    )
    # Paper shape: ~80% partial requests in 2020, ~100% whole-card and ~70%
    # full-node requests in 2024.
    assert cmp.legacy_partial_fraction > 0.6
    assert cmp.modern_full_card_fraction > 0.95
    assert abs(cmp.modern_full_node_fraction - 0.70) < 0.05


def test_bench_fig3_runtime_distribution(run_once):
    scale = ExperimentScale(name="fig3", num_nodes=24, duration_hours=12.0, seed=23)
    dist = run_once(run_runtime_observation, scale)
    print()
    print(
        "Figure 3: runtime p50/p90/p99 = "
        f"{dist.runtime_p50 / 3600:.1f}h / {dist.runtime_p90 / 3600:.1f}h / {dist.runtime_p99 / 3600:.1f}h; "
        f"8-GPU vs 1-GPU median queue ratio = {dist.queue_ratio():.2f}x"
    )
    # Heavy-tailed runtimes: p99 well above the median; large gang-style
    # requests queue at least as long as single-GPU requests.
    assert dist.runtime_p99 > 3 * dist.runtime_p50
    assert dist.queue_ratio() >= 1.0 or dist.queue_p50_by_gpus.get(1, 0.0) == 0.0


def test_bench_fig4_org_demand(run_once):
    def build():
        orgs = organizations.default_organizations()
        return organizations.generate_org_demand_matrix(orgs, 168, seed=0)

    demand = run_once(build)
    summary = demand_summary(demand)
    print()
    print("Figure 4 (weekly per-organization GPU demand):")
    for org, stats in summary.items():
        print(f"  {org}: min={stats['min']:.0f} max={stats['max']:.0f} mean={stats['mean']:.0f}")
    # Paper shape: org-B fluctuates more than org-A; demand stays in the
    # 60-100 GPU band reported in Observation 2.
    spread_a = summary["org-A"]["max"] - summary["org-A"]["min"]
    spread_b = summary["org-B"]["max"] - summary["org-B"]["min"]
    assert spread_b > spread_a
    assert 50 <= summary["org-A"]["mean"] <= 110


def test_bench_fig8_heatmap(run_once):
    rates = run_once(run_heatmap_observation, hours=168)
    print()
    print("Figure 8 (average allocation rate per A100 cluster):")
    for cluster, rate in rates.items():
        print(f"  {cluster}: {rate * 100:.1f}%")
    # Paper shape: the three clusters are heterogeneous, with Cluster B the
    # least allocated of the three.
    assert len(set(round(r, 3) for r in rates.values())) > 1
    assert rates["Cluster B"] <= max(rates.values())
