"""Benchmark E-F5: hourly eviction-rate series under a static-quota policy."""

from repro.experiments import run_eviction_observation
from repro.experiments.config import ExperimentScale


def test_bench_fig5_weekly_eviction_series(run_once):
    scale = ExperimentScale(name="fig5", num_nodes=20, duration_hours=12.0, seed=29)
    series = run_once(run_eviction_observation, scale, weeks=2, spot_scale=3.0)
    print()
    for week, s in series.items():
        print(
            f"Figure 5 week {week}: eviction max={s.max_rate * 100:.1f}% "
            f"median={s.median_rate * 100:.1f}% min={s.min_rate * 100:.1f}%"
        )
    # Paper shape: pronounced hour-to-hour variation with high peaks under
    # the legacy first-fit policy, and near-zero troughs.
    for s in series.values():
        assert s.max_rate >= s.median_rate >= s.min_rate
        assert s.min_rate <= 0.05
    assert max(s.max_rate for s in series.values()) > 0.1
