"""Benchmark E-F10: regenerate Figure 10 (forecasting accuracy comparison)."""

from repro.experiments.forecasting import ForecastingExperimentConfig, run_forecasting_experiment


def test_bench_fig10_forecasting_accuracy(run_once):
    config = ForecastingExperimentConfig(history_weeks=6, stride=8, orglinear_epochs=40)
    result = run_once(run_forecasting_experiment, config)
    print()
    print(result.report())
    evaluations = result.evaluations
    assert set(evaluations) == {
        "OrgLinear",
        "Transformer",
        "Informer",
        "Autoformer",
        "FEDformer",
        "DLinear",
        "DeepAR",
    }
    # Paper shape (Figure 10): OrgLinear achieves the lowest point errors.
    org = evaluations["OrgLinear"]
    for name, ev in evaluations.items():
        if name == "OrgLinear":
            continue
        assert org.mae <= ev.mae * 1.15, f"OrgLinear should not lose clearly to {name}"
    assert org.mape < 0.15
