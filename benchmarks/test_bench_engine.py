"""Benchmark E-ENG: parallel experiment engine vs the serial reference path.

Runs the Table 5 medium-workload scheduler line-up once with ``workers=1``
(the serial reference) and once on a process pool, asserting bit-identical
metrics.  The wall-clock speedup is printed; on a multi-core machine the
pool should approach ``min(workers, cells)``x, but the ratio is only
enforced when ``REPRO_BENCH_STRICT=1`` *and* the machine has the cores to
show it — CI runners and 1-core containers get a warning instead.
"""

import os
import time

from repro.experiments import (
    ExperimentEngine,
    WorkloadSpec,
    comparison_specs,
    metrics_to_payload,
    sweep_jobs,
)


def test_bench_engine_parallel_matches_serial(bench_scale, bench_spot_scale):
    jobs = sweep_jobs(
        bench_scale,
        comparison_specs(include_gfs=True),
        [WorkloadSpec(spot_scale=bench_spot_scale, label="medium")],
        prefix="bench-engine",
    )

    start = time.perf_counter()
    serial = ExperimentEngine(workers=1).run(jobs)
    serial_time = time.perf_counter() - start

    workers = min(4, os.cpu_count() or 1)
    start = time.perf_counter()
    parallel = ExperimentEngine(workers=workers).run(jobs)
    parallel_time = time.perf_counter() - start

    speedup = serial_time / max(parallel_time, 1e-9)
    print()
    print(
        f"engine grid ({len(jobs)} cells): serial={serial_time:.2f}s "
        f"workers={workers} parallel={parallel_time:.2f}s speedup={speedup:.2f}x"
    )

    # Metric identity is always enforced: the pool must be invisible in the
    # results, cell by cell and field by field.
    assert set(serial) == set(parallel)
    for key in serial:
        assert metrics_to_payload(serial[key]) == metrics_to_payload(parallel[key]), key

    # Wall-clock ratio only matters where the hardware can show it.
    strict = os.environ.get("REPRO_BENCH_STRICT", "1").strip().lower() not in (
        "", "0", "false", "no", "off",
    )
    cores = os.cpu_count() or 1
    if strict and cores >= 4:
        assert speedup >= 2.0, (
            f"expected >= 2x speedup with {workers} workers on {cores} cores, "
            f"measured {speedup:.2f}x"
        )
    elif speedup < 2.0:
        import warnings

        warnings.warn(
            f"engine speedup {speedup:.2f}x (workers={workers}, cores={cores}); "
            "not enforced on this runner"
        )
