"""Service load benchmark: streaming throughput and advice latency.

Boots a real :class:`~repro.service.server.SchedulerServer` (in-process,
ephemeral port) and measures the two rates that make the streaming mode
usable as an operational tool:

* **sustained submissions/sec** — waves of task submissions streamed
  over HTTP into a live session, interleaved with ``advance`` steps, the
  way a real client feeds a shadow scheduler;
* **what-if advice latency (p50/p99)** — speculative placement queries,
  each forking the live session and advancing the fork until the probe
  task finishes; the p99 is the number a dashboard integration would
  care about.

Tiers (select with ``REPRO_BENCH_SERVICE_TIER``):

* ``smoke`` (default) — small session, enough load to catch wiring or
  order-of-magnitude regressions on every suite run;
* ``full`` — the recorded tier: ``make bench-record`` writes the
  machine-readable ``BENCH_6.json`` perf record at the repo root.

``REPRO_BENCH_ENFORCE=1`` turns the throughput/latency floors into hard
asserts (CI perf gates); otherwise ``REPRO_BENCH_STRICT=0`` downgrades
them to warnings for noisy shared runners.
"""

from __future__ import annotations

import asyncio
import json
import os
import time
from pathlib import Path
from typing import Dict

from _bench_common import BENCH_SCHEMA_VERSION, write_bench_record
from repro.cluster.metrics import percentile
from repro.service import AsyncServiceClient, SchedulerServer

SERVICE_CONFIGS: Dict[str, Dict[str, float]] = {
    "smoke": dict(num_nodes=8, duration_hours=6.0, waves=4, wave_size=25, whatif_queries=15),
    "full": dict(num_nodes=32, duration_hours=24.0, waves=10, wave_size=100, whatif_queries=100),
}

#: floors/ceilings the perf gates enforce; deliberately loose (~5x slack
#: against a dev laptop) so only real regressions trip them
SUBMISSIONS_PER_SEC_FLOOR = 200.0
WHATIF_P99_CEILING_S = 5.0


def _task(task_id: str, submit_time: float, hp: bool) -> dict:
    return {
        "task_id": task_id,
        "task_type": 1 if hp else 0,
        "num_pods": 1,
        "gpus_per_pod": 4.0,
        "duration": 2400.0,
        "submit_time": submit_time,
        "org": f"org-{sum(task_id.encode()) % 3}",
    }


async def _drive(cfg: Dict[str, float]) -> Dict[str, float]:
    server = SchedulerServer()
    await server.start(port=0)
    client = AsyncServiceClient(server.host, server.port)
    try:
        sid = (
            await client.create_session(
                scheduler="gfs",
                num_nodes=int(cfg["num_nodes"]),
                duration_hours=cfg["duration_hours"],
                seed=19,
            )
        )["session_id"]

        # Streaming phase: waves of submissions interleaved with advances.
        waves, wave_size = int(cfg["waves"]), int(cfg["wave_size"])
        span = cfg["duration_hours"] * 3600.0
        submitted = 0
        submit_wall = 0.0
        for wave in range(waves):
            wave_start = wave * span / waves
            tasks = [
                _task(f"w{wave:02d}-{i:04d}", wave_start + i * (span / waves / wave_size),
                      hp=(i % 4 == 0))
                for i in range(wave_size)
            ]
            begin = time.perf_counter()
            await client.submit(sid, tasks)
            submit_wall += time.perf_counter() - begin
            submitted += len(tasks)
            await client.advance(sid, until=(wave + 1) * span / waves)

        # Advice phase against the now-loaded live session.
        latencies = []
        status = await client.status(sid)
        for i in range(int(cfg["whatif_queries"])):
            begin = time.perf_counter()
            await client.what_if(
                sid, _task(f"probe-{i:04d}", status["now"], hp=(i % 2 == 0)), horizon_hours=12.0
            )
            latencies.append(time.perf_counter() - begin)

        await client.advance(sid)
        metrics = await client.metrics(sid)
        assert metrics["unfinished_tasks"] == 0
        return {
            "submitted": submitted,
            "submit_wall_s": submit_wall,
            "submissions_per_sec": submitted / submit_wall,
            "whatif_queries": len(latencies),
            "whatif_p50_ms": percentile(latencies, 50) * 1000.0,
            "whatif_p99_ms": percentile(latencies, 99) * 1000.0,
        }
    finally:
        await client.close()
        await server.stop()


def _record_bench6(tier: str, cfg: Dict[str, float], result: Dict[str, float]) -> None:
    record = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "bench": "service-streaming",
        "pr": 6,
        "tier": tier,
        "scenario": "streaming gfs session over HTTP (in-process server)",
        "node_count": int(cfg["num_nodes"]),
        "duration_hours": cfg["duration_hours"],
        "submitted_tasks": int(result["submitted"]),
        "submissions_per_sec": round(result["submissions_per_sec"], 1),
        "whatif_queries": int(result["whatif_queries"]),
        "whatif_p50_ms": round(result["whatif_p50_ms"], 1),
        "whatif_p99_ms": round(result["whatif_p99_ms"], 1),
    }
    out = Path(__file__).resolve().parent.parent / "BENCH_6.json"
    write_bench_record(out, record)
    print(f"\n[service {tier}] wrote {out}")


def test_bench_service_streaming():
    tier = os.environ.get("REPRO_BENCH_SERVICE_TIER", "smoke").strip().lower()
    assert tier in SERVICE_CONFIGS, f"unknown service tier {tier!r}"
    cfg = SERVICE_CONFIGS[tier]
    result = asyncio.run(_drive(cfg))

    print(
        f"\n[service {tier}] submitted={result['submitted']} "
        f"rate={result['submissions_per_sec']:.0f}/s "
        f"whatif p50={result['whatif_p50_ms']:.0f}ms p99={result['whatif_p99_ms']:.0f}ms"
    )
    if os.environ.get("REPRO_BENCH_RECORD", "").strip().lower() not in ("", "0", "false", "no", "off"):
        _record_bench6(tier, cfg, result)

    enforce = os.environ.get("REPRO_BENCH_ENFORCE", "").strip().lower() not in ("", "0", "false", "no", "off")
    strict = os.environ.get("REPRO_BENCH_STRICT", "1").strip().lower() not in ("", "0", "false", "no", "off")
    failures = []
    if result["submissions_per_sec"] < SUBMISSIONS_PER_SEC_FLOOR:
        failures.append(
            f"submission throughput below floor: {result['submissions_per_sec']:.0f}/s "
            f"(floor {SUBMISSIONS_PER_SEC_FLOOR:.0f}/s)"
        )
    if result["whatif_p99_ms"] > WHATIF_P99_CEILING_S * 1000.0:
        failures.append(
            f"what-if p99 above ceiling: {result['whatif_p99_ms']:.0f}ms "
            f"(ceiling {WHATIF_P99_CEILING_S * 1000:.0f}ms)"
        )
    if enforce or strict:
        assert not failures, f"service perf regressed on the {tier} tier: " + "; ".join(failures)
    elif failures:
        import warnings

        warnings.warn(f"service {tier} perf below target on this runner: " + "; ".join(failures))
