"""Observability overhead benchmark (PR 7): what does watching cost?

Runs the BENCH_4 placement tier twice — once with a live
:class:`~repro.obs.Recorder`, once with the default ``NullRecorder`` —
through the self-profiler harness (:func:`repro.obs.profiler.run_profile`)
and measures the instrumentation-on/off wall-clock ratio.  Two claims
are on trial:

1. **Observation never steers.**  The instrumented run's
   ``SimulationMetrics`` must be bit-identical to the uninstrumented
   run's — *always* enforced, on every tier, regardless of the perf
   env knobs.
2. **Observation is cheap.**  The on/off overhead ratio must stay under
   :data:`OVERHEAD_RATIO_CEILING` (observed ~1.2-1.4x; the ceiling has
   slack for noisy runners — a real regression such as unconditionally
   formatting labels in the hot path lands at 3x+).

Tiers (select with ``REPRO_BENCH_OBS_TIER``): ``smoke`` (256 nodes,
default) and ``full`` (the 512-node BENCH_4 tier).  With
``REPRO_BENCH_RECORD=1`` (``make bench-record``) the run is summarised
into the machine-readable ``BENCH_7.json`` perf record at the repo
root, including the per-phase breakdown that feeds ROADMAP item 1.
``REPRO_BENCH_ENFORCE=1`` makes the overhead ceiling a hard assert;
otherwise ``REPRO_BENCH_STRICT=0`` downgrades it to a warning.

The complementary *zero-overhead-when-disabled* gate lives in CI's
obs-smoke job: it re-runs the perf-smoke placement benchmark with
``REPRO_BENCH_PLACEMENT_TOLERANCE=0.05``, so the NullRecorder hot path
may not regress the recorded speedup ratio by more than 5%.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from _bench_common import BENCH_SCHEMA_VERSION, write_bench_record
from repro.obs.profiler import PROFILE_TIERS, run_profile

#: Hard ceiling on instrumented / uninstrumented wall time.
OVERHEAD_RATIO_CEILING = 2.0


def _record_bench7(tier: str, report) -> None:
    """Write the machine-readable perf record for the bench trajectory."""
    cfg = PROFILE_TIERS[tier]
    record = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "bench": "observability-overhead",
        "pr": 7,
        "tier": tier,
        "scenario": "default(chronus) with live Recorder vs NullRecorder",
        "node_count": int(cfg["num_nodes"]),
        "duration_hours": cfg["duration_hours"],
        "num_tasks": report.num_tasks,
        "events": report.events,
        "passes": report.passes,
        "instrumented_wall_time_s": round(report.wall_time_s, 3),
        "uninstrumented_wall_time_s": round(report.baseline_wall_time_s, 3),
        "overhead_ratio": round(report.overhead_ratio, 3),
        "metrics_identical": bool(report.metrics_identical),
        "phase_breakdown": [
            {
                "phase": phase.name.strip(),
                "seconds": round(phase.seconds, 3),
                "share": round(phase.share, 4),
                "calls": phase.count,
            }
            for phase in report.phases
            if not phase.name.startswith("  ")  # summary rows, not per-kind
        ],
    }
    out = Path(__file__).resolve().parent.parent / "BENCH_7.json"
    write_bench_record(out, record)
    print(f"\n[obs {tier}] wrote {out}")


def test_bench_observability_overhead():
    tier = os.environ.get("REPRO_BENCH_OBS_TIER", "smoke").strip().lower()
    assert tier in PROFILE_TIERS, f"unknown obs tier {tier!r}"
    report, recorder, _sim = run_profile(tier=tier, scheduler="chronus", check_overhead=True)

    # Claim 1, unconditionally: observation must not steer the run.
    assert report.metrics_identical, (
        f"instrumented run diverged from the NullRecorder run on the {tier} tier"
    )
    # Sanity: the recorder really was live, or the ratio measures nothing.
    assert report.passes > 0 and report.events > 0
    assert recorder.counter_value("sim.pass.searches") > 0

    ratio = report.overhead_ratio
    print(
        f"\n[obs {tier}] tasks={report.num_tasks} events={report.events} "
        f"passes={report.passes} instrumented={report.wall_time_s:.2f}s "
        f"uninstrumented={report.baseline_wall_time_s:.2f}s "
        f"overhead={ratio:.3f}x (ceiling {OVERHEAD_RATIO_CEILING:.1f}x)"
    )
    if ratio > OVERHEAD_RATIO_CEILING:
        # Retry once before a verdict: a load spike on a shared runner can
        # hit either leg of the ratio.
        retry, _, _ = run_profile(tier=tier, scheduler="chronus", check_overhead=True)
        assert retry.metrics_identical
        ratio = min(ratio, retry.overhead_ratio)

    if os.environ.get("REPRO_BENCH_RECORD", "").strip().lower() not in ("", "0", "false", "no", "off"):
        _record_bench7(tier, report)

    enforce = os.environ.get("REPRO_BENCH_ENFORCE", "").strip().lower() not in ("", "0", "false", "no", "off")
    strict = os.environ.get("REPRO_BENCH_STRICT", "1").strip().lower() not in ("", "0", "false", "no", "off")
    if enforce or strict:
        assert ratio <= OVERHEAD_RATIO_CEILING, (
            f"observability overhead regressed on the {tier} tier: "
            f"{ratio:.2f}x (ceiling {OVERHEAD_RATIO_CEILING:.1f}x)"
        )
    elif ratio > OVERHEAD_RATIO_CEILING:
        import warnings

        warnings.warn(f"obs {tier} overhead above ceiling on this runner: {ratio:.2f}x")
