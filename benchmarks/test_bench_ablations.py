"""Benchmarks E-T8/E-T9/E-T10: regenerate the three ablation tables."""

import math

from repro.experiments import run_table10, run_table8, run_table9


def test_bench_table8_gde_ablation(run_once, bench_scale, bench_spot_scale):
    result = run_once(run_table8, bench_scale, spot_scale=bench_spot_scale)
    print()
    print(result.report())
    rows = {name: r.as_row() for name, r in result.per_variant.items()}
    # Paper shape (Table 8): replacing the probabilistic forecast by last
    # week's peak hurts spot SLOs (longer queuing / completion).  At small
    # benchmark scale the naive peak forecast can starve spot tasks entirely
    # (no spot task finishes), which reports as NaN and counts as "worse".
    gfse_jqt = rows["GFS-E"]["spot_jqt"]
    gfse_jct = rows["GFS-E"]["spot_jct"]
    assert math.isnan(gfse_jqt) or rows["GFS"]["spot_jqt"] <= gfse_jqt + 60.0
    assert math.isnan(gfse_jct) or rows["GFS"]["spot_jct"] <= gfse_jct * 1.05


def test_bench_table9_sqa_ablation(run_once, bench_scale, bench_spot_scale):
    result = run_once(run_table9, bench_scale, spot_scale=bench_spot_scale)
    print()
    print(result.report())
    rows = {name: r.as_row() for name, r in result.per_variant.items()}
    # Paper shape (Table 9): the eta feedback loop should not hurt spot SLOs,
    # and HP metrics stay essentially unchanged.
    assert abs(rows["GFS"]["hp_jct"] - rows["GFS-D"]["hp_jct"]) < 0.05 * rows["GFS-D"]["hp_jct"]
    assert rows["GFS"]["spot_jqt"] <= rows["GFS-D"]["spot_jqt"] * 1.25 + 60.0


def test_bench_table10_pts_ablation(run_once, bench_scale, bench_spot_scale):
    result = run_once(run_table10, bench_scale, spot_scale=bench_spot_scale)
    print()
    print(result.report())
    rows = {name: r.as_row() for name, r in result.per_variant.items()}
    assert set(rows) == {"GFS-SP", "GFS-S", "GFS-P", "GFS"}
    # Paper shape (Table 10): the fully degraded variant is the worst for
    # spot tasks; full GFS is not worse than the doubly degraded variant.
    assert rows["GFS"]["spot_jct"] <= rows["GFS-SP"]["spot_jct"] * 1.10
    assert rows["GFS"]["hp_jqt"] <= rows["GFS-SP"]["hp_jqt"] + 120.0
