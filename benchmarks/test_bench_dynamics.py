"""Churn benchmark: dynamics overhead vs the static scheduling core.

The cluster-dynamics subsystem adds work to the hot path twice over: the
fault schedule's events interleave with task events, and every node
outage kills/requeues tasks, mutates the capacity index and triggers an
extra scheduling pass.  This benchmark quantifies that overhead by
replaying the same Chronus workload twice — once on a static fleet, once
under ``node_churn`` (2%/h per-node failure rate, ~2h repairs) — and
reporting the wall-clock ratio plus the reliability metrics of the churn
run.

Tiers (select with ``REPRO_BENCH_DYNAMICS_TIER``):

* ``smoke`` (default) — 64 nodes / 12h, fast enough for every suite run;
  also asserts the churn run is deterministic (two runs, identical
  metrics) and conserves tasks.
* ``full`` — 256 nodes / 48h, the recorded tier: ``make bench-record``
  writes the machine-readable ``BENCH_5.json`` perf record at the repo
  root (dynamics overhead vs the BENCH_4 static placement baseline).

``REPRO_BENCH_ENFORCE=1`` turns the overhead ceiling into a hard assert
(the CI perf gates); otherwise ``REPRO_BENCH_STRICT=0`` downgrades it to
a warning for noisy shared runners.  Metric conservation is always
enforced.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Dict

from _bench_common import (
    BENCH_SCHEMA_VERSION,
    assert_metrics_identical,
    write_bench_record,
)
from repro.cluster import Cluster, ClusterSimulator, GPUModel, SimulatorConfig, reset_task_counter
from repro.dynamics import FaultInjector, get_dynamics
from repro.schedulers import ChronusScheduler
from repro.workloads import generate_trace

DYNAMICS_CONFIGS: Dict[str, Dict[str, float]] = {
    "smoke": dict(num_nodes=64, duration_hours=12.0, spot_scale=2.0, seed=19),
    "full": dict(num_nodes=256, duration_hours=48.0, spot_scale=2.0, seed=19),
}

#: Ceiling on churn wall time relative to the static run.  Dynamics add
#: events, kills and extra scheduling passes; anything beyond this factor
#: means the subsystem leaked work into the static hot path or the outage
#: handling went super-linear.
OVERHEAD_CEILING = 2.5


def _run(tier: str, churn: bool):
    cfg = DYNAMICS_CONFIGS[tier]
    reset_task_counter()
    cluster = Cluster.homogeneous(int(cfg["num_nodes"]), 8, GPUModel.A100)
    trace = generate_trace(
        cluster_gpus=cluster.total_gpus(),
        duration_hours=cfg["duration_hours"],
        spot_scale=cfg["spot_scale"],
        seed=int(cfg["seed"]),
    )
    dynamics = (
        FaultInjector(get_dynamics("node_churn"), seed=int(cfg["seed"])) if churn else None
    )
    sim = ClusterSimulator(cluster, ChronusScheduler(), SimulatorConfig(), dynamics=dynamics)
    tasks = trace.sorted_tasks()
    start = time.perf_counter()
    sim.submit_all(tasks)
    metrics = sim.run()
    elapsed = time.perf_counter() - start
    return metrics, elapsed, len(tasks)


def _record_bench5(tier: str, num_tasks: int, static_time: float, churn_time: float, rel) -> None:
    """Write the machine-readable perf record for the bench trajectory."""
    cfg = DYNAMICS_CONFIGS[tier]
    record = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "bench": "dynamics-churn",
        "pr": 5,
        "tier": tier,
        "scenario": "node_churn(chronus)",
        "node_count": int(cfg["num_nodes"]),
        "duration_hours": cfg["duration_hours"],
        "num_tasks": num_tasks,
        "static_wall_time_s": round(static_time, 3),
        "churn_wall_time_s": round(churn_time, 3),
        "dynamics_overhead": round(churn_time / static_time, 3),
        "tasks_per_sec_under_churn": round(num_tasks / churn_time, 1),
        "node_failures": rel.node_failures,
        "node_repairs": rel.node_repairs,
        "tasks_killed": rel.tasks_killed,
        "hp_tasks_killed": rel.hp_tasks_killed,
        "lost_gpu_hours": round(rel.lost_gpu_hours, 2),
        "goodput_fraction": round(rel.goodput_fraction, 4),
        "bench4_static_baseline": "BENCH_4.json (placement-scaling, static fleet)",
    }
    out = Path(__file__).resolve().parent.parent / "BENCH_5.json"
    write_bench_record(out, record)
    print(f"\n[dynamics {tier}] wrote {out}")


def test_bench_dynamics_churn():
    tier = os.environ.get("REPRO_BENCH_DYNAMICS_TIER", "smoke").strip().lower()
    assert tier in DYNAMICS_CONFIGS, f"unknown dynamics tier {tier!r}"
    static_metrics, static_time, num_tasks = _run(tier, churn=False)
    churn_metrics, churn_time, _ = _run(tier, churn=True)

    # Conservation under churn: every submitted task terminated.
    assert static_metrics.unfinished_tasks == 0
    assert churn_metrics.unfinished_tasks == 0
    rel = churn_metrics.reliability
    assert rel.node_failures > 0, "churn tier produced no failures"
    finished = churn_metrics.hp.count + churn_metrics.spot.count
    assert finished == num_tasks

    if tier == "smoke":
        # Determinism: replaying the same churn run is bit-identical.
        replay, _, _ = _run(tier, churn=True)
        assert_metrics_identical(replay, churn_metrics, "dynamics-smoke-replay")

    overhead = churn_time / static_time
    print(
        f"\n[dynamics {tier}] tasks={num_tasks} static={static_time:.2f}s "
        f"churn={churn_time:.2f}s overhead={overhead:.2f}x "
        f"failures={rel.node_failures} kills={rel.tasks_killed} "
        f"lost={rel.lost_gpu_hours:.1f}GPUh goodput={rel.goodput_fraction * 100:.1f}%"
    )
    if os.environ.get("REPRO_BENCH_RECORD", "").strip().lower() not in ("", "0", "false", "no", "off"):
        _record_bench5(tier, num_tasks, static_time, churn_time, rel)

    enforce = os.environ.get("REPRO_BENCH_ENFORCE", "").strip().lower() not in ("", "0", "false", "no", "off")
    strict = os.environ.get("REPRO_BENCH_STRICT", "1").strip().lower() not in ("", "0", "false", "no", "off")
    if enforce or strict:
        assert overhead <= OVERHEAD_CEILING, (
            f"dynamics overhead regressed on the {tier} tier: {overhead:.2f}x "
            f"(ceiling {OVERHEAD_CEILING:.1f}x)"
        )
    elif overhead > OVERHEAD_CEILING:
        import warnings

        warnings.warn(f"dynamics {tier} overhead above ceiling on this runner: {overhead:.2f}x")
