"""Benchmark E-F9: production deployment before/after and monthly benefit."""

from repro.experiments import paper_reference_benefit, run_deployment_experiment


def test_bench_fig9_deployment(run_once):
    result = run_once(
        run_deployment_experiment,
        fleet_scale=0.006,
        duration_hours=8.0,
        spot_scale=2.0,
    )
    print()
    print(result.report())
    assert len(result.per_model) == 4
    # Paper shape: GFS should not increase the eviction rate on any model
    # partition, and the fleet-wide allocation-weighted metrics move in the
    # right direction on aggregate.
    improved = sum(
        1
        for outcome in result.per_model.values()
        if outcome.eviction_after <= outcome.eviction_before + 0.02
    )
    assert improved >= 3
    assert result.benefit is not None


def test_bench_fig9_paper_reference_benefit(run_once):
    benefit = run_once(paper_reference_benefit)
    print()
    print(
        f"Monthly benefit at the paper's reported operating points: "
        f"${benefit.monthly_gain_usd:,.0f} "
        f"(allocation ${benefit.allocation_gain_usd:,.0f} + "
        f"eviction ${benefit.eviction_gain_usd:,.0f})"
    )
    # Same order of magnitude as the paper's $459,715 / month.
    assert 100_000 < benefit.monthly_gain_usd < 5_000_000
