"""Scaling benchmarks for the indexed scheduling core and placement search.

Two benchmark families live here:

**Engine scaling (PR 1).**  Wall-clock time of full simulations over
synthetic traces of ~1k, ~10k and ~50k tasks, comparing the optimized
scheduling core (indexed :class:`~repro.cluster.pending.PendingQueue`,
cached cluster aggregates, O(1) tick liveness check, capacity-indexed
placement) against a **legacy harness** that restores the pre-refactor
behaviour: a plain-list pending queue with O(P) membership scans,
full-node-scan cluster queries, a whole-heap scan per tick and the
pre-PR-4 linear placement search (``benchmarks/legacy``).

**Placement scaling (PR 4).**  The placement-bound tier: a 512-node
fleet replaying >= 20k tasks under Chronus, whose FCFS queue re-offers
every waiting task each pass, making the placement search itself the
hot path.  The capacity-indexed search (candidate buckets, shared
per-pass views, failed-shape memo) runs against the frozen legacy
search; the run is summarised into the machine-readable perf record
``BENCH_4.json`` via ``make bench-record``.

Both families assert:

1. **Bit-identical metrics.**  Optimized and legacy runs — and the
   hard-coded reference values recorded from the pre-refactor trees —
   must produce exactly the same :class:`SimulationMetrics`.  Every
   refactor is a pure performance change.
2. **Wall-clock speedup floors**: >= 3x on the 10k-task engine tier and
   >= 3x on the full placement tier; the reduced (smoke) placement tier
   enforces no worse than 20% below its recorded reference ratio when
   ``REPRO_BENCH_ENFORCE=1`` (the CI perf-smoke job).

Run only this file with ``make bench`` or::

    PYTHONPATH=src python -m pytest benchmarks/test_bench_scaling.py -q -s

Environment knobs: ``REPRO_BENCH_FULL=1`` also runs the slow legacy
engine on the 50k tier; ``REPRO_BENCH_PLACEMENT_TIER=full|smoke``
selects the placement tier (default smoke); ``REPRO_BENCH_RECORD=1``
writes ``BENCH_4.json`` at the repo root; ``REPRO_BENCH_STRICT=0``
downgrades wall-clock asserts to warnings on noisy shared runners.
"""

from __future__ import annotations

import json
import math
import os
import time
from pathlib import Path
from typing import Dict, List, Optional

from _bench_common import (
    BENCH_SCHEMA_VERSION,
    assert_metrics_identical,
    write_bench_record,
)
from legacy import create_legacy_scheduler
from repro.cluster import Cluster, ClusterSimulator, EventKind, GPUModel, SimulatorConfig
from repro.cluster.metrics import SimulationMetrics
from repro.cluster.task import Task
from repro.schedulers import ChronusScheduler, LyraScheduler
from repro.workloads import generate_trace

# ----------------------------------------------------------------------
# Trace tiers
# ----------------------------------------------------------------------
CONFIGS: Dict[str, Dict[str, float]] = {
    "1k": dict(num_nodes=32, duration_hours=36.0, spot_scale=3.0, seed=7),
    "10k": dict(num_nodes=64, duration_hours=168.0, spot_scale=3.0, seed=7),
    "50k": dict(num_nodes=128, duration_hours=530.0, spot_scale=2.0, seed=7),
}

#: SimulationMetrics recorded from the pre-refactor seed tree (list-backed
#: pending queue, scanning cluster queries) for the exact CONFIGS above.
#: Captured with `LyraScheduler()` and a default `SimulatorConfig`.
SEED_REFERENCE: Dict[str, Dict[str, object]] = {
    "1k": {
        "num_tasks": 1036,
        "hp": {"count": 502, "jct_mean": 10439.094299956603, "jct_p99": 36000.00000000001,
               "jqt_mean": 38.808194942702265, "jqt_p99": 1537.7824596742305,
               "eviction_rate": 0.0, "total_evictions": 0, "total_runs": 502},
        "spot": {"count": 534, "jct_mean": 10835.589268942891, "jct_p99": 71087.71467811776,
                 "jqt_mean": 5327.07029409345, "jqt_p99": 63655.72089013443,
                 "eviction_rate": 0.07291666666666667, "total_evictions": 42, "total_runs": 576},
        "allocation_rate_mean": 0.7226809731012658,
        "allocation_samples": 553,
        "allocation_sum": 399.642578125,
        "makespan": 165900.0,
        "unfinished_tasks": 0,
    },
    "10k": {
        "num_tasks": 9515,
        "hp": {"count": 4491, "jct_mean": 10706.451624497133, "jct_p99": 36000.0,
               "jqt_mean": 0.16859025260310373, "jqt_p99": 0.0,
               "eviction_rate": 0.0, "total_evictions": 0, "total_runs": 4491},
        "spot": {"count": 5024, "jct_mean": 25097.95237152257, "jct_p99": 258286.16841942686,
                 "jqt_mean": 19337.49066618327, "jqt_p99": 247392.57329241914,
                 "eviction_rate": 0.029928557636609385, "total_evictions": 155, "total_runs": 5179},
        "allocation_rate_mean": 0.8120121429735013,
        "allocation_samples": 2302,
        "allocation_sum": 1869.251953125,
        "makespan": 690600.0,
        "unfinished_tasks": 0,
    },
    "50k": {
        "num_tasks": 50391,
        "hp": {"count": 28925, "jct_mean": 10591.949917609849, "jct_p99": 36000.0,
               "jqt_mean": 0.0, "jqt_p99": 0.0,
               "eviction_rate": 0.0, "total_evictions": 0, "total_runs": 28925},
        "spot": {"count": 21466, "jct_mean": 8980.424686152137, "jct_p99": 39007.36932352706,
                 "jqt_mean": 3197.419129097444, "jqt_p99": 25232.77557811419,
                 "eviction_rate": 0.002462939727682513, "total_evictions": 53, "total_runs": 21519},
        "allocation_rate_mean": 0.7795387578510327,
        "allocation_samples": 6488,
        "allocation_sum": 5057.6474609375,
        "makespan": 1946400.0,
        "unfinished_tasks": 0,
    },
}


# ----------------------------------------------------------------------
# Legacy (pre-refactor) engine: plain-list queue + scanning queries
# ----------------------------------------------------------------------
class LegacyCluster(Cluster):
    """Cluster with the seed's full-scan aggregate queries.

    The incremental aggregates are still maintained underneath (the node
    listener is cheap), but every query recomputes from scratch exactly
    like the pre-refactor code did.
    """

    def total_gpus(self, model: Optional[GPUModel] = None) -> float:
        return float(sum(n.total_gpus for n in self.nodes_for_model(model)))

    def idle_gpus(self, model: Optional[GPUModel] = None) -> float:
        return float(sum(n.free_capacity for n in self.nodes_for_model(model)))

    def allocated_gpus(self, model: Optional[GPUModel] = None) -> float:
        return float(sum(n.allocated_gpus for n in self.nodes_for_model(model)))

    def spot_gpus(self, model: Optional[GPUModel] = None) -> float:
        return float(sum(n.spot_gpus for n in self.nodes_for_model(model)))

    def hp_gpus(self, model: Optional[GPUModel] = None) -> float:
        return float(sum(n.hp_gpus for n in self.nodes_for_model(model)))

    def nodes_for_model(self, model: Optional[GPUModel]) -> list:
        if model is None:
            return list(self.nodes)
        return [n for n in self.nodes if n.gpu_model is model]

    def running_spot_tasks(self, model: Optional[GPUModel] = None) -> List[Task]:
        return [
            t
            for t in self.running_tasks.values()
            if t.is_spot and (model is None or t.gpu_model is None or t.gpu_model is model)
        ]

    def spot_gpus_with_guarantee(self, hours: float, now: float) -> float:
        total = 0.0
        for task in self.running_spot_tasks():
            if task.guaranteed_hours + 1e-9 >= hours:
                total += task.total_gpus
        return total


class LegacyClusterSimulator(ClusterSimulator):
    """Simulator with the seed's list-backed pending queue and heap scans."""

    def __init__(self, cluster, scheduler, config=None):
        super().__init__(cluster, scheduler, config)
        self.pending = []  # plain list, O(P) membership / removal

    def _schedule_pending(self, only=None, trigger=None):
        # `trigger` is observability metadata only; the legacy engine
        # predates the obs layer and records nothing.
        if not self.pending:
            return
        if only is not None:
            ordered = [only] if only in self.pending else []
        else:
            ordered = self.scheduler.sort_queue(list(self.pending), self.now)
        scheduled = []
        blocked_spot = False
        blocked_hp = False
        blocks = getattr(self.scheduler, "blocks_on_failure", None)
        for task in ordered:
            if task not in self.pending:
                continue
            if (blocked_spot and task.is_spot) or (blocked_hp and task.is_hp):
                continue
            decision = self.scheduler.try_schedule(task, self.cluster, self.now)
            if decision is None:
                if blocks is not None and blocks(task):
                    if task.is_spot:
                        blocked_spot = True
                    else:
                        blocked_hp = True
                continue
            self._apply_decision(task, decision)
            scheduled.append(task)
        for task in scheduled:
            if task in self.pending:
                self.pending.remove(task)

    def _handle_tick(self):
        if self.config.sample_allocation:
            self.allocation_samples.append(self.cluster.allocation_rate())
            self.allocation_sample_times.append(self.now)
        if hasattr(self.scheduler, "on_tick"):
            self.scheduler.on_tick(self.cluster, self.now, list(self.pending))
        pending_before = len(self.pending)
        self._schedule_pending()
        has_other_events = any(e.kind is not EventKind.QUOTA_TICK for e in self._events)
        stuck = (
            bool(self.pending)
            and not self.cluster.running_tasks
            and not has_other_events
            and len(self.pending) == pending_before
        )
        if (self.pending or self.cluster.running_tasks or has_other_events) and not stuck:
            self._push(self.now + self.config.tick_interval, EventKind.QUOTA_TICK)


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------
def _run(tier: str, legacy: bool):
    cfg = CONFIGS[tier]
    cluster_cls = LegacyCluster if legacy else Cluster
    from repro.cluster.node import make_nodes

    cluster = cluster_cls(make_nodes(int(cfg["num_nodes"]), GPUModel.A100, 8, "sim"))
    trace = generate_trace(
        cluster_gpus=cluster.total_gpus(),
        duration_hours=cfg["duration_hours"],
        spot_scale=cfg["spot_scale"],
        seed=int(cfg["seed"]),
    )
    # The legacy harness restores the full seed behaviour: the list-backed
    # engine *and* the pre-PR-4 linear placement search.
    scheduler = create_legacy_scheduler("lyra") if legacy else LyraScheduler()
    sim_cls = LegacyClusterSimulator if legacy else ClusterSimulator
    sim = sim_cls(cluster, scheduler, SimulatorConfig())
    tasks = trace.sorted_tasks()
    start = time.perf_counter()
    sim.submit_all(tasks)
    metrics = sim.run()
    elapsed = time.perf_counter() - start
    return metrics, elapsed, len(trace.tasks)


def _close(a, b) -> bool:
    """Reference-constant comparison: exact for counts, tight relative
    tolerance for floats derived from numpy transcendentals, whose last
    ulp may differ across numpy builds/SIMD dispatch."""
    if isinstance(a, float) and isinstance(b, float):
        if math.isnan(a) and math.isnan(b):
            return True
        return math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-9)
    return a == b


def _metric_fields(metrics: SimulationMetrics) -> Dict[str, object]:
    return {
        "hp": {
            "count": metrics.hp.count, "jct_mean": metrics.hp.jct_mean,
            "jct_p99": metrics.hp.jct_p99, "jqt_mean": metrics.hp.jqt_mean,
            "jqt_p99": metrics.hp.jqt_p99, "eviction_rate": metrics.hp.eviction_rate,
            "total_evictions": metrics.hp.total_evictions, "total_runs": metrics.hp.total_runs,
        },
        "spot": {
            "count": metrics.spot.count, "jct_mean": metrics.spot.jct_mean,
            "jct_p99": metrics.spot.jct_p99, "jqt_mean": metrics.spot.jqt_mean,
            "jqt_p99": metrics.spot.jqt_p99, "eviction_rate": metrics.spot.eviction_rate,
            "total_evictions": metrics.spot.total_evictions, "total_runs": metrics.spot.total_runs,
        },
        "allocation_rate_mean": metrics.allocation_rate_mean,
        "allocation_samples": len(metrics.allocation_rate_series),
        "allocation_sum": sum(metrics.allocation_rate_series),
        "makespan": metrics.makespan,
        "unfinished_tasks": metrics.unfinished_tasks,
    }


def _assert_engines_identical(opt: SimulationMetrics, leg: SimulationMetrics, tier: str) -> None:
    """The optimized and legacy engines must agree bit-for-bit (all fields)."""
    assert_metrics_identical(opt, leg, tier)


def _assert_matches_reference(metrics: SimulationMetrics, tier: str, engine: str) -> None:
    ref = SEED_REFERENCE[tier]
    observed = _metric_fields(metrics)
    for key, want in ref.items():
        if key == "num_tasks":
            continue
        if isinstance(want, dict):
            for sub, wanted in want.items():
                got = observed[key][sub]
                assert _close(got, wanted), (
                    f"[{tier}/{engine}] {key}.{sub}: got {got!r}, seed reference {wanted!r}"
                )
        else:
            got = observed[key]
            assert _close(got, want), (
                f"[{tier}/{engine}] {key}: got {got!r}, seed reference {want!r}"
            )


# ----------------------------------------------------------------------
# Tests
# ----------------------------------------------------------------------
def test_bench_scaling_1k():
    opt_metrics, opt_time, num_tasks = _run("1k", legacy=False)
    leg_metrics, leg_time, _ = _run("1k", legacy=True)
    assert num_tasks == SEED_REFERENCE["1k"]["num_tasks"]
    _assert_engines_identical(opt_metrics, leg_metrics, "1k")
    _assert_matches_reference(opt_metrics, "1k", "optimized")
    _assert_matches_reference(leg_metrics, "1k", "legacy")
    print(f"\n[scaling 1k] tasks={num_tasks} optimized={opt_time:.2f}s "
          f"legacy={leg_time:.2f}s speedup={leg_time / opt_time:.1f}x")


def test_bench_scaling_10k():
    opt_metrics, opt_time, num_tasks = _run("10k", legacy=False)
    leg_metrics, leg_time, _ = _run("10k", legacy=True)
    assert num_tasks == SEED_REFERENCE["10k"]["num_tasks"]
    _assert_engines_identical(opt_metrics, leg_metrics, "10k")
    _assert_matches_reference(opt_metrics, "10k", "optimized")
    _assert_matches_reference(leg_metrics, "10k", "legacy")
    speedup = leg_time / opt_time
    if speedup < 3.0:
        # Wall-clock on a shared/loaded runner is noisy; take the best of a
        # second measurement before declaring a regression.
        opt2, opt_time2, _ = _run("10k", legacy=False)
        leg2, leg_time2, _ = _run("10k", legacy=True)
        _assert_matches_reference(opt2, "10k", "optimized-retry")
        _assert_matches_reference(leg2, "10k", "legacy-retry")
        speedup = max(speedup, leg_time2 / min(opt_time, opt_time2))
    print(f"\n[scaling 10k] tasks={num_tasks} optimized={opt_time:.2f}s "
          f"legacy={leg_time:.2f}s speedup={speedup:.1f}x")
    # Acceptance: the indexed scheduling core must be at least 3x faster
    # than the seed engine on the 10k-task trace (observed 3.8-5.9x
    # depending on machine load).  REPRO_BENCH_STRICT=0 downgrades the
    # wall-clock ratio to a warning for noisy shared CI runners, where
    # load spikes can sink any timing assertion; metric identity above is
    # always enforced.
    if os.environ.get("REPRO_BENCH_STRICT", "1").strip().lower() in ("", "0", "false", "no", "off"):
        if speedup < 3.0:
            import warnings

            warnings.warn(f"10k speedup below 3x on this runner: {speedup:.2f}x")
    else:
        assert speedup >= 3.0, f"expected >= 3x speedup on the 10k trace, measured {speedup:.2f}x"


# ----------------------------------------------------------------------
# Placement-bound tier (PR 4): capacity-indexed search vs legacy scan
# ----------------------------------------------------------------------
#: Chronus drives this tier: it never preempts and re-offers the whole
#: FCFS queue every pass, so at 512 nodes the placement search dominates
#: wall-clock — exactly the path PR 4 indexes.
PLACEMENT_CONFIGS: Dict[str, Dict[str, float]] = {
    "smoke": dict(num_nodes=256, duration_hours=24.0, spot_scale=2.0, seed=11),
    "full": dict(num_nodes=512, duration_hours=56.0, spot_scale=2.0, seed=11),
}

#: Reference numbers captured on the machine that recorded BENCH_4.json
#: (see that file for the full record).  ``speedup`` is the in-process
#: legacy/optimized wall-clock ratio — machine-relative, so it transfers
#: across hosts far better than absolute times; ``pr1_wall_time_s`` is
#: the pre-refactor (PR-1 tree) wall time on the capture machine.
PLACEMENT_REFERENCE: Dict[str, Dict[str, float]] = {
    "smoke": {"num_tasks": 4443, "speedup": 3.75},
    "full": {"num_tasks": 20992, "speedup": 26.8, "pr1_wall_time_s": 180.1,
             "pr1_tasks_per_sec": 116.5},
}

#: Allowed regression of the measured speedup ratio vs the recorded
#: reference before the perf-smoke gate fails (">20% fails").  The CI
#: obs-smoke overhead gate tightens this to 0.05 via the environment
#: variable: with the observability layer in the hot path, the default
#: NullRecorder run must stay within 5% of the recorded ratio.
PLACEMENT_REGRESSION_TOLERANCE = float(
    os.environ.get("REPRO_BENCH_PLACEMENT_TOLERANCE", "0.20")
)


def _run_placement(tier: str, legacy: bool):
    cfg = PLACEMENT_CONFIGS[tier]
    cluster = Cluster.homogeneous(int(cfg["num_nodes"]), 8, GPUModel.A100)
    trace = generate_trace(
        cluster_gpus=cluster.total_gpus(),
        duration_hours=cfg["duration_hours"],
        spot_scale=cfg["spot_scale"],
        seed=int(cfg["seed"]),
    )
    scheduler = create_legacy_scheduler("chronus") if legacy else ChronusScheduler()
    sim = ClusterSimulator(cluster, scheduler, SimulatorConfig())
    tasks = trace.sorted_tasks()
    start = time.perf_counter()
    sim.submit_all(tasks)
    metrics = sim.run()
    elapsed = time.perf_counter() - start
    return metrics, elapsed, len(tasks)


def _record_bench4(tier: str, num_tasks: int, opt_time: float, leg_time: float) -> None:
    """Write the machine-readable perf record for the bench trajectory."""
    reference = PLACEMENT_REFERENCE[tier]
    cfg = PLACEMENT_CONFIGS[tier]
    record = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "bench": "placement-scaling",
        "pr": 4,
        "tier": tier,
        "scenario": "default(chronus)",
        "node_count": int(cfg["num_nodes"]),
        "duration_hours": cfg["duration_hours"],
        "num_tasks": num_tasks,
        "wall_time_s": round(opt_time, 3),
        "tasks_per_sec": round(num_tasks / opt_time, 1),
        "legacy_wall_time_s": round(leg_time, 3),
        "legacy_tasks_per_sec": round(num_tasks / leg_time, 1),
        "speedup_vs_legacy": round(leg_time / opt_time, 2),
        "pr1_reference": {
            "wall_time_s": reference.get("pr1_wall_time_s"),
            "tasks_per_sec": reference.get("pr1_tasks_per_sec"),
            "speedup_vs_reference": (
                round(reference["pr1_wall_time_s"] / opt_time, 2)
                if reference.get("pr1_wall_time_s")
                else None
            ),
        },
    }
    out = Path(__file__).resolve().parent.parent / "BENCH_4.json"
    write_bench_record(out, record)
    print(f"\n[placement {tier}] wrote {out}")


def test_bench_placement_scaling():
    tier = os.environ.get("REPRO_BENCH_PLACEMENT_TIER", "smoke").strip().lower()
    assert tier in PLACEMENT_CONFIGS, f"unknown placement tier {tier!r}"
    opt_metrics, opt_time, num_tasks = _run_placement(tier, legacy=False)
    leg_metrics, leg_time, _ = _run_placement(tier, legacy=True)
    assert num_tasks == PLACEMENT_REFERENCE[tier]["num_tasks"]
    _assert_engines_identical(opt_metrics, leg_metrics, f"placement-{tier}")
    speedup = leg_time / opt_time
    floor = (
        3.0
        if tier == "full"
        else PLACEMENT_REFERENCE[tier]["speedup"] * (1.0 - PLACEMENT_REGRESSION_TOLERANCE)
    )
    if speedup < floor:
        # One retry absorbs load spikes on shared runners before a verdict.
        opt2, opt_time2, _ = _run_placement(tier, legacy=False)
        leg2, leg_time2, _ = _run_placement(tier, legacy=True)
        _assert_engines_identical(opt2, leg2, f"placement-{tier}-retry")
        speedup = max(speedup, leg_time2 / min(opt_time, opt_time2))
    print(
        f"\n[placement {tier}] tasks={num_tasks} optimized={opt_time:.2f}s "
        f"legacy={leg_time:.2f}s speedup={speedup:.1f}x (floor {floor:.1f}x)"
    )
    if os.environ.get("REPRO_BENCH_RECORD", "").strip().lower() not in ("", "0", "false", "no", "off"):
        _record_bench4(tier, num_tasks, opt_time, leg_time)
    # Enforcement policy: the dedicated perf gate (REPRO_BENCH_ENFORCE=1,
    # the CI perf-smoke job and `make bench-record`) always fails on a
    # regression; ordinary suite runs follow REPRO_BENCH_STRICT like the
    # engine tiers, so the tier-1 job stays robust to noisy runners while
    # metric identity above is always enforced.
    enforce = os.environ.get("REPRO_BENCH_ENFORCE", "").strip().lower() not in ("", "0", "false", "no", "off")
    strict = os.environ.get("REPRO_BENCH_STRICT", "1").strip().lower() not in ("", "0", "false", "no", "off")
    if enforce or strict:
        assert speedup >= floor, (
            f"placement speedup regressed on the {tier} tier: measured {speedup:.2f}x, "
            f"floor {floor:.2f}x (reference {PLACEMENT_REFERENCE[tier]['speedup']:.2f}x)"
        )
    elif speedup < floor:
        import warnings

        warnings.warn(f"placement {tier} speedup below floor on this runner: {speedup:.2f}x")


def test_bench_scaling_50k():
    opt_metrics, opt_time, num_tasks = _run("50k", legacy=False)
    assert num_tasks == SEED_REFERENCE["50k"]["num_tasks"]
    _assert_matches_reference(opt_metrics, "50k", "optimized")
    line = f"\n[scaling 50k] tasks={num_tasks} optimized={opt_time:.2f}s"
    if os.environ.get("REPRO_BENCH_FULL", "") not in ("", "0"):
        leg_metrics, leg_time, _ = _run("50k", legacy=True)
        _assert_matches_reference(leg_metrics, "50k", "legacy")
        line += f" legacy={leg_time:.2f}s speedup={leg_time / opt_time:.1f}x"
    print(line)
