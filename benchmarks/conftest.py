"""Shared configuration for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures at a
reduced scale (so the whole harness runs in minutes on one machine) and
prints the resulting rows, so the output can be compared side by side with
the paper's numbers (the README's "Paper tables and figures" section maps
each artifact to its runner and benchmark file).
"""

from __future__ import annotations

import pytest

from repro.experiments import ExperimentScale


@pytest.fixture(scope="session")
def bench_scale() -> ExperimentScale:
    """The cluster/workload scale used by the scheduling benchmarks."""
    return ExperimentScale(name="bench", num_nodes=24, duration_hours=12.0, seed=17)


@pytest.fixture(scope="session")
def bench_spot_scale() -> float:
    """Spot submission multiplier used when a single level is benchmarked."""
    return 2.0


@pytest.fixture
def run_once(benchmark):
    """Run an experiment exactly once under pytest-benchmark timing.

    Provided as a plain fixture (not a package-relative import) so the
    benchmark suite collects without needing ``benchmarks`` to be an
    importable package: ``run_once(func, *args, **kwargs)``.
    """

    def _run_once(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return _run_once
