"""Frozen pre-refactor placement search (linear scans, per-task views).

Verbatim copy of ``src/repro/schedulers/placement.py`` and the PTS
placement algorithms as of PR 3, kept as the reference implementation the
parity harness runs against.  Do not "fix" or optimise this module — its
whole value is staying byte-for-byte equivalent to the old behaviour.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.cluster import Cluster, Node, PodPlacement, Task
from repro.cluster.gpu import EPSILON
from repro.core.pts.scoring import ScoringConfig, circuit_breaker_active, score_tuple

NodeScore = Callable[[Node, "LegacyNodeView", Task], float]


@dataclass
class LegacyNodeView:
    """Pre-refactor ``NodeView`` (identical semantics, frozen copy)."""

    node: Node
    idle_gpus: int = 0
    free_capacity: float = 0.0
    reclaimed_gpus: float = 0.0
    preempted: Set[str] = field(default_factory=set)
    assigned_pods: int = 0

    @classmethod
    def from_node(cls, node: Node) -> "LegacyNodeView":
        return cls(node=node, idle_gpus=node.idle_gpus, free_capacity=node.free_capacity)

    def can_fit_pod(self, gpus_per_pod: float) -> bool:
        if gpus_per_pod < 1.0 - EPSILON:
            return self.free_capacity + EPSILON >= gpus_per_pod
        return self.idle_gpus >= int(round(gpus_per_pod))

    def assign_pod(self, gpus_per_pod: float) -> None:
        if not self.can_fit_pod(gpus_per_pod):
            raise ValueError("pod does not fit in node view")
        if gpus_per_pod < 1.0 - EPSILON:
            self.free_capacity -= gpus_per_pod
        else:
            whole = int(round(gpus_per_pod))
            self.idle_gpus -= whole
            self.free_capacity -= whole
        self.assigned_pods += 1

    def clone(self) -> "LegacyNodeView":
        return LegacyNodeView(
            node=self.node,
            idle_gpus=self.idle_gpus,
            free_capacity=self.free_capacity,
            reclaimed_gpus=self.reclaimed_gpus,
            preempted=set(self.preempted),
            assigned_pods=self.assigned_pods,
        )

    def virtually_preempt(self, task: Task) -> None:
        gpus_here = sum(
            fraction for _, fraction in self.node.task_shares.get(task.task_id, [])
        )
        whole = int(round(gpus_here)) if gpus_here >= 1.0 - EPSILON else 0
        self.idle_gpus += whole
        self.free_capacity += gpus_here
        self.reclaimed_gpus += gpus_here
        self.preempted.add(task.task_id)


def legacy_filter_nodes(task: Task, nodes: Iterable[Node]) -> List[Node]:
    return [
        n
        for n in nodes
        if task.gpu_model is None or n.gpu_model is task.gpu_model
    ]


def legacy_spot_tasks_on_node(node: Node, cluster) -> List[Task]:
    tasks = []
    for task_id in node.running_task_ids():
        task = cluster.running_tasks.get(task_id)
        if task is not None and task.is_spot:
            tasks.append(task)
    return tasks


def legacy_gpus_held_on_node(task: Task, node: Node) -> float:
    return sum(fraction for _, fraction in node.task_shares.get(task.task_id, []))


def legacy_virtually_preempt_task(views: Dict[str, LegacyNodeView], task: Task) -> None:
    seen_nodes = set()
    for pod in task.placements:
        if pod.node_id in seen_nodes:
            continue
        seen_nodes.add(pod.node_id)
        view = views.get(pod.node_id)
        if view is not None and task.task_id not in view.preempted:
            view.virtually_preempt(task)


def legacy_find_placement(
    task: Task,
    nodes: Sequence[Node],
    score: Optional[NodeScore] = None,
    views: Optional[Dict[str, LegacyNodeView]] = None,
) -> Optional[List[PodPlacement]]:
    """The pre-refactor greedy search: rescan every model-compatible node."""
    candidates = legacy_filter_nodes(task, nodes)
    if not candidates:
        return None
    if views is None:
        view_map: Dict[str, LegacyNodeView] = {
            n.node_id: LegacyNodeView.from_node(n)
            for n in candidates
            if n.can_fit_pod(task.gpus_per_pod)
        }
    else:
        view_map = {
            n.node_id: views[n.node_id].clone()
            for n in candidates
            if n.node_id in views and views[n.node_id].can_fit_pod(task.gpus_per_pod)
        }
    if not view_map:
        return None
    if sum(v.free_capacity for v in view_map.values()) + EPSILON < task.total_gpus:
        return None
    placements: List[PodPlacement] = []
    for _ in range(task.num_pods):
        feasible = [
            v for v in view_map.values() if v.can_fit_pod(task.gpus_per_pod)
        ]
        if not feasible:
            return None
        if score is None:
            chosen = min(feasible, key=lambda v: (v.free_capacity, v.node.node_id))
        else:
            chosen = max(
                feasible,
                key=lambda v: (score(v.node, v, task), v.node.node_id),
            )
        chosen.assign_pod(task.gpus_per_pod)
        placements.append(
            PodPlacement(node_id=chosen.node.node_id, gpu_indices=(), fraction=task.gpus_per_pod)
        )
    return placements


# ----------------------------------------------------------------------
# PTS Algorithm 1 (non-preemptive), frozen
# ----------------------------------------------------------------------
def legacy_non_preemptive_placement(
    task: Task,
    nodes: Sequence[Node],
    now: float,
    config: ScoringConfig,
    use_colocation: bool = True,
    use_eviction_awareness: bool = True,
    views: Optional[Dict[str, LegacyNodeView]] = None,
) -> Optional[List[PodPlacement]]:
    candidates = [
        n for n in nodes if task.gpu_model is None or n.gpu_model is task.gpu_model
    ]
    if not candidates:
        return None
    if views is None:
        view_map = {n.node_id: LegacyNodeView.from_node(n) for n in candidates}
    else:
        view_map = {
            n.node_id: views[n.node_id].clone() for n in candidates if n.node_id in views
        }

    placements: List[PodPlacement] = []
    for _ in range(task.num_pods):
        feasible: List[LegacyNodeView] = []
        for view in view_map.values():
            if not view.can_fit_pod(task.gpus_per_pod):
                continue
            if (
                task.is_spot
                and use_eviction_awareness
                and task.gpus_per_pod >= 1.0
                and circuit_breaker_active(view.node, now, config)
            ):
                continue
            feasible.append(view)
        if not feasible:
            return None
        chosen = max(
            feasible,
            key=lambda v: (
                score_tuple(
                    v.node,
                    v.idle_gpus if task.gpus_per_pod >= 1.0 else v.free_capacity,
                    task,
                    now,
                    config,
                    use_colocation=use_colocation,
                    use_eviction_awareness=use_eviction_awareness,
                ),
                v.node.node_id,
            ),
        )
        chosen.assign_pod(task.gpus_per_pod)
        placements.append(
            PodPlacement(node_id=chosen.node.node_id, gpu_indices=(), fraction=task.gpus_per_pod)
        )
    return placements


# ----------------------------------------------------------------------
# PTS Algorithm 2 (preemptive), frozen
# ----------------------------------------------------------------------
@dataclass
class LegacyPreemptionCandidate:
    node: Node
    victims: List[Task]
    cost: float


def legacy_node_preemption_plan(
    node: Node,
    view: LegacyNodeView,
    task: Task,
    cluster: Cluster,
    now: float,
    already_victims: Set[str],
) -> Optional[List[Task]]:
    if view.can_fit_pod(task.gpus_per_pod):
        return []
    victims: List[Task] = []
    candidates = [
        t
        for t in legacy_spot_tasks_on_node(node, cluster)
        if t.task_id not in already_victims and t.task_id not in view.preempted
    ]
    candidates.sort(key=lambda t: t.preemption_waste(now))
    probe = view.clone()
    for candidate in candidates:
        probe.virtually_preempt(candidate)
        victims.append(candidate)
        if probe.can_fit_pod(task.gpus_per_pod):
            return victims
    return None


def legacy_preemption_cost(
    victims: Sequence[Task],
    cluster: Cluster,
    now: float,
    beta: float,
    total_gpu_seconds: float,
) -> float:
    successes = cluster.successful_spot_runs
    failures = cluster.evicted_spot_runs
    k = len(victims)
    eviction_impact = (failures + k) / max(1.0, successes + failures + k)
    waste = sum(t.preemption_waste(now) for t in victims)
    usage_impact = beta * waste / max(1.0, total_gpu_seconds)
    return eviction_impact + usage_impact


def legacy_preemptive_placement(
    task: Task,
    nodes: Sequence[Node],
    cluster: Cluster,
    now: float,
    beta: float,
    total_gpu_seconds: float,
    random_selection: bool = False,
    rng: Optional[random.Random] = None,
) -> Optional[Tuple[List[PodPlacement], List[str]]]:
    if not task.is_hp:
        raise ValueError("preemptive scheduling is reserved for HP tasks")
    candidates = [
        n for n in nodes if task.gpu_model is None or n.gpu_model is task.gpu_model
    ]
    if not candidates:
        return None
    rng = rng or random.Random(0)
    views = {n.node_id: LegacyNodeView.from_node(n) for n in candidates}
    placements: List[PodPlacement] = []
    all_victims: List[Task] = []
    victim_ids: Set[str] = set()

    for _ in range(task.num_pods):
        plans: List[LegacyPreemptionCandidate] = []
        for node in candidates:
            view = views[node.node_id]
            victims = legacy_node_preemption_plan(node, view, task, cluster, now, victim_ids)
            if victims is None:
                continue
            cost = legacy_preemption_cost(victims, cluster, now, beta, total_gpu_seconds)
            plans.append(LegacyPreemptionCandidate(node=node, victims=victims, cost=cost))
        if not plans:
            return None
        if random_selection:
            chosen = rng.choice(plans)
        else:
            chosen = min(plans, key=lambda p: (p.cost, p.node.node_id))
        view = views[chosen.node.node_id]
        for victim in chosen.victims:
            for pod in victim.placements:
                victim_view = views.get(pod.node_id)
                if victim_view is not None and victim.task_id not in victim_view.preempted:
                    victim_view.virtually_preempt(victim)
            victim_ids.add(victim.task_id)
            all_victims.append(victim)
        view.assign_pod(task.gpus_per_pod)
        placements.append(
            PodPlacement(node_id=chosen.node.node_id, gpu_indices=(), fraction=task.gpus_per_pod)
        )
    return placements, [t.task_id for t in all_victims]
