"""Pre-refactor (PR-3-era) placement implementation, frozen for parity checks.

This package is a verbatim snapshot of the placement search as it stood
before the capacity-indexed placement subsystem (PR 4): linear scans over
every model-compatible node, per-task ``NodeView`` rebuilds, no shared
per-pass context and no failed-shape memo.  It exists so the parity
harness (``benchmarks/test_bench_placement_parity.py``) and the scaling
benchmark (``benchmarks/test_bench_scaling.py``) can run the *old* search
against the *current* engine and assert bit-identical
``SimulationMetrics`` plus the wall-clock speedup.

Nothing in ``src/`` may import from here; the direction is one-way.
"""

from .legacy_schedulers import (
    LegacyChronusScheduler,
    LegacyFGDScheduler,
    LegacyGFSScheduler,
    LegacyLyraScheduler,
    LegacyYarnCSScheduler,
    create_legacy_scheduler,
)

__all__ = [
    "LegacyChronusScheduler",
    "LegacyFGDScheduler",
    "LegacyGFSScheduler",
    "LegacyLyraScheduler",
    "LegacyYarnCSScheduler",
    "create_legacy_scheduler",
]
