"""Scheduler variants wired to the frozen pre-refactor placement search.

Each class subclasses the production scheduler and overrides only
``try_schedule`` (and the preemption helpers it calls) with the exact
pre-refactor implementation from ``legacy_placement``.  Queue ordering,
quota plumbing, notification hooks and configuration stay the production
code, so any metrics difference between a legacy scheduler and its
production counterpart isolates the placement-search refactor.
"""

from __future__ import annotations

from typing import List, Optional

from repro.cluster import Cluster, Node, SchedulingDecision, Task
from repro.core.gfs import ABLATION_OVERRIDES, GFSConfig, GFSScheduler
from repro.schedulers import (
    ChronusScheduler,
    FGDScheduler,
    LyraScheduler,
    YarnCSScheduler,
    best_fit_score,
    fgd_score,
)

from .legacy_placement import (
    LegacyNodeView,
    legacy_filter_nodes,
    legacy_find_placement,
    legacy_gpus_held_on_node,
    legacy_non_preemptive_placement,
    legacy_preemptive_placement,
    legacy_spot_tasks_on_node,
    legacy_virtually_preempt_task,
)


def _wrap_score(score):
    """Adapt a production score function to the legacy view type.

    Production scores take ``(node, view, task)`` and only read
    ``view.free_capacity`` / ``view.idle_gpus``, which the legacy view
    exposes identically, so they pass straight through.
    """
    return score


class LegacyChronusScheduler(ChronusScheduler):
    name = "Chronus(legacy)"

    def try_schedule(self, task: Task, cluster: Cluster, now: float) -> Optional[SchedulingDecision]:
        nodes = legacy_filter_nodes(task, cluster.nodes)
        lease = self.hp_lease if task.is_hp else self.spot_lease
        delay = self._lease_alignment_delay(now, lease)
        placements = legacy_find_placement(task, nodes, score=_wrap_score(best_fit_score))
        if placements is None:
            return None
        return SchedulingDecision(placements=placements, start_delay=delay)


class LegacyYarnCSScheduler(YarnCSScheduler):
    name = "YARN-CS(legacy)"

    def try_schedule(self, task: Task, cluster: Cluster, now: float) -> Optional[SchedulingDecision]:
        nodes = legacy_filter_nodes(task, cluster.nodes)
        placements = legacy_find_placement(task, nodes, score=_wrap_score(best_fit_score))
        if placements is not None:
            return SchedulingDecision(placements=placements)
        if task.is_hp:
            return self._legacy_preemptive_schedule(task, cluster, nodes, now)
        return None

    def _legacy_preemptive_schedule(
        self, task: Task, cluster: Cluster, nodes: List[Node], now: float
    ) -> Optional[SchedulingDecision]:
        views = {n.node_id: LegacyNodeView.from_node(n) for n in nodes}
        victims: List[str] = []
        spot_nodes = sorted(
            (n for n in nodes if n.spot_gpus > 0),
            key=lambda n: -n.spot_gpus,
        )
        for node in spot_nodes:
            candidates = sorted(
                legacy_spot_tasks_on_node(node, cluster),
                key=lambda t: -(t.run_logs[-1].start if t.run_logs else 0.0),
            )
            for victim in candidates:
                if victim.task_id in victims:
                    continue
                legacy_virtually_preempt_task(views, victim)
                victims.append(victim.task_id)
                placements = legacy_find_placement(
                    task, nodes, score=_wrap_score(best_fit_score), views=views
                )
                if placements is not None:
                    used_nodes = {p.node_id for p in placements}
                    needed = [
                        vid
                        for vid in victims
                        if any(
                            legacy_gpus_held_on_node(cluster.running_tasks[vid], cluster.node(nid)) > 0
                            for nid in used_nodes
                        )
                    ]
                    return SchedulingDecision(placements=placements, preempted_task_ids=needed or victims)
        return None


class LegacyFGDScheduler(FGDScheduler):
    name = "FGD(legacy)"

    def try_schedule(self, task: Task, cluster: Cluster, now: float) -> Optional[SchedulingDecision]:
        nodes = legacy_filter_nodes(task, cluster.nodes)
        placements = legacy_find_placement(task, nodes, score=_wrap_score(fgd_score))
        if placements is not None:
            return SchedulingDecision(placements=placements)
        if task.is_hp:
            return self._legacy_preempt_for_fragmentation(task, cluster, nodes, now)
        return None

    def _legacy_preempt_for_fragmentation(
        self, task: Task, cluster: Cluster, nodes: List[Node], now: float
    ) -> Optional[SchedulingDecision]:
        views = {n.node_id: LegacyNodeView.from_node(n) for n in nodes}

        def node_rank(node: Node) -> float:
            reclaimable = node.spot_gpus + node.free_capacity
            overshoot = reclaimable - task.gpus_per_pod
            return overshoot if overshoot >= 0 else float("inf")

        victims: List[str] = []
        for node in sorted((n for n in nodes if n.spot_gpus > 0), key=node_rank):
            for spot in legacy_spot_tasks_on_node(node, cluster):
                if spot.task_id in victims:
                    continue
                legacy_virtually_preempt_task(views, spot)
                victims.append(spot.task_id)
                placements = legacy_find_placement(
                    task, nodes, score=_wrap_score(fgd_score), views=views
                )
                if placements is not None:
                    used_nodes = {p.node_id for p in placements}
                    needed = []
                    for vid in victims:
                        victim = cluster.running_tasks[vid]
                        if any(p.node_id in used_nodes for p in victim.placements):
                            needed.append(vid)
                    return SchedulingDecision(
                        placements=placements, preempted_task_ids=needed or victims
                    )
        return None


class LegacyLyraScheduler(LyraScheduler):
    name = "Lyra(legacy)"

    def try_schedule(self, task: Task, cluster: Cluster, now: float) -> Optional[SchedulingDecision]:
        if task.is_spot:
            return self._legacy_schedule_spot(task, cluster)
        return self._legacy_schedule_hp(task, cluster, legacy_filter_nodes(task, cluster.nodes), now)

    def _legacy_schedule_spot(self, task: Task, cluster: Cluster) -> Optional[SchedulingDecision]:
        reserve = self.capacity_reserve * cluster.total_gpus(task.gpu_model)
        if cluster.idle_gpus(task.gpu_model) - task.total_gpus < reserve:
            return None
        nodes = legacy_filter_nodes(task, cluster.nodes)
        loaned = [n for n in nodes if n.hp_gpus == 0]
        placements = legacy_find_placement(task, loaned, score=_wrap_score(best_fit_score))
        if placements is None:
            return None
        return SchedulingDecision(placements=placements)

    def _legacy_schedule_hp(
        self, task: Task, cluster: Cluster, nodes: List[Node], now: float
    ) -> Optional[SchedulingDecision]:
        def hp_affinity_score(node: Node, view, t: Task) -> float:
            return (0.0 if node.spot_gpus > 0 else 1000.0) - view.free_capacity

        placements = legacy_find_placement(task, nodes, score=hp_affinity_score)
        if placements is not None:
            return SchedulingDecision(placements=placements)

        views = {n.node_id: LegacyNodeView.from_node(n) for n in nodes}
        victims: List[str] = []
        reclaim_order = sorted(
            (n for n in nodes if n.spot_gpus > 0),
            key=lambda n: (len(legacy_spot_tasks_on_node(n, cluster)), -n.spot_gpus),
        )
        for node in reclaim_order:
            for spot in legacy_spot_tasks_on_node(node, cluster):
                if spot.task_id in victims:
                    continue
                legacy_virtually_preempt_task(views, spot)
                victims.append(spot.task_id)
            placements = legacy_find_placement(
                task, nodes, score=hp_affinity_score, views=views
            )
            if placements is not None:
                used_nodes = {p.node_id for p in placements}
                needed = []
                for vid in victims:
                    victim = cluster.running_tasks[vid]
                    if any(p.node_id in used_nodes for p in victim.placements):
                        needed.append(vid)
                return SchedulingDecision(placements=placements, preempted_task_ids=needed or victims)
        return None


class LegacyGFSScheduler(GFSScheduler):
    """GFS with the frozen PTS placement algorithms (quota plumbing intact)."""

    def try_schedule(self, task: Task, cluster: Cluster, now: float) -> Optional[SchedulingDecision]:
        if task.is_spot and not self._quota_admits(task, cluster):
            return None
        decision = self._legacy_pts_schedule(
            task, cluster, now, self._total_gpu_seconds(cluster, now)
        )
        if decision is not None and task.is_spot:
            task.guaranteed_hours = self.config.guarantee_hours
        return decision

    def _legacy_pts_schedule(
        self, task: Task, cluster: Cluster, now: float, total_gpu_seconds: float
    ) -> Optional[SchedulingDecision]:
        cfg = self.pts.config
        placements = None
        nodes: Optional[List] = None
        if task.total_gpus <= cluster.idle_gpus(task.gpu_model) + 1e-6:
            nodes = cluster.nodes_for_model(task.gpu_model)
            placements = legacy_non_preemptive_placement(
                task,
                nodes,
                now,
                cfg.scoring,
                use_colocation=cfg.use_colocation,
                use_eviction_awareness=cfg.use_eviction_awareness,
            )
        if placements is not None:
            return SchedulingDecision(placements=placements)
        if not task.is_hp:
            return None
        if nodes is None:
            nodes = cluster.nodes_for_model(task.gpu_model)
        result = legacy_preemptive_placement(
            task,
            nodes,
            cluster,
            now,
            beta=cfg.beta,
            total_gpu_seconds=total_gpu_seconds,
            random_selection=cfg.random_preemption,
            rng=self.pts._rng,
        )
        if result is None:
            return None
        placements, victim_ids = result
        return SchedulingDecision(placements=placements, preempted_task_ids=victim_ids)


_LEGACY_BASELINES = {
    "chronus": LegacyChronusScheduler,
    "yarn-cs": LegacyYarnCSScheduler,
    "yarn_cs": LegacyYarnCSScheduler,
    "fgd": LegacyFGDScheduler,
    "lyra": LegacyLyraScheduler,
}


def create_legacy_scheduler(name: str, **kwargs):
    """Build the legacy twin of any registered scheduler (incl. GFS variants)."""
    key = name.lower()
    if key in _LEGACY_BASELINES:
        return _LEGACY_BASELINES[key](**kwargs)
    if key in ABLATION_OVERRIDES:
        config = kwargs.pop("config", None) or GFSConfig()
        overrides = dict(ABLATION_OVERRIDES[key])
        merged = GFSConfig(**{**config.__dict__, **overrides})
        scheduler = LegacyGFSScheduler(merged, **kwargs)
        scheduler.name = f"{name.upper()}(legacy)" if key != "gfs" else "GFS(legacy)"
        return scheduler
    raise KeyError(f"no legacy twin for scheduler {name!r}")
