"""Benchmark E-T5: regenerate Table 5 (scheduler comparison, three workloads)."""

from repro.experiments import run_table5
from repro.workloads import SpotWorkloadLevel


def test_bench_table5_low_workload(run_once, bench_scale):
    result = run_once(
        run_table5, bench_scale, levels=[SpotWorkloadLevel.LOW]
    )
    print()
    print(result.report())
    rows = result.per_workload["low"].rows()
    assert set(rows) == {"YARN-CS", "Chronus", "Lyra", "FGD", "GFS"}
    # HP tasks are never evicted under any scheduler.
    assert all(r["hp_jct"] > 0 for r in rows.values())


def test_bench_table5_medium_workload(run_once, bench_scale):
    result = run_once(
        run_table5, bench_scale, levels=[SpotWorkloadLevel.MEDIUM]
    )
    print()
    print(result.report())
    rows = result.per_workload["medium"].rows()
    # Headline qualitative claims of Table 5 at the medium workload:
    # GFS keeps HP queuing low and evicts less than the greedy preempting
    # baselines (YARN-CS, FGD).
    assert rows["GFS"]["hp_jqt"] <= min(rows["YARN-CS"]["hp_jqt"], rows["FGD"]["hp_jqt"]) + 120.0
    assert rows["GFS"]["spot_eviction"] <= rows["YARN-CS"]["spot_eviction"] + 0.05
    assert rows["GFS"]["spot_eviction"] <= rows["FGD"]["spot_eviction"] + 0.05


def test_bench_table5_high_workload(run_once, bench_scale):
    result = run_once(
        run_table5, bench_scale, levels=[SpotWorkloadLevel.HIGH]
    )
    print()
    print(result.report())
    rows = result.per_workload["high"].rows()
    assert rows["GFS"]["spot_eviction"] <= 0.25
