"""Parity harness: capacity-indexed placement vs the frozen legacy search.

The PR-4 placement overhaul (capacity-indexed candidate selection, shared
per-pass ``PlacementContext``, failed-shape memo) is a pure performance
change: every scheduler must make the *same greedy choices with the same
deterministic tie-breaks* as the pre-refactor linear scan.  This harness
replays every registered scenario — plus an ingested external-trace
fixture — under every scheduler family twice, once with the production
schedulers and once with their legacy twins from ``benchmarks/legacy``
(verbatim pre-refactor search wired into the current engine), and asserts
the resulting :class:`SimulationMetrics` are bit-identical.

``gfs-p`` is included deliberately: its random preemption draws from a
seeded rng, so any divergence in candidate enumeration order, plan-list
construction or memoisation of rng-consuming searches desynchronises the
stream and shows up here.

A final check runs cells through the parallel experiment engine at
``--workers 1`` and ``--workers 2`` to pin worker-count independence of
the new placement path.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/test_bench_placement_parity.py -q
"""

from __future__ import annotations

from pathlib import Path

import pytest

from _bench_common import assert_metrics_identical
from legacy import create_legacy_scheduler
from repro.cluster import ClusterSimulator, SimulationMetrics, SimulatorConfig, reset_task_counter
from repro.experiments.engine import (
    ExperimentEngine,
    SchedulerSpec,
    SimulationJob,
    WorkloadSpec,
    execute_job,
)
from repro.experiments.config import ExperimentScale
from repro.schedulers import create_scheduler
from repro.workloads import get_scenario, scenario_names

FIXTURES = Path(__file__).resolve().parent.parent / "tests" / "fixtures"

#: Scheduler line-up: the four baselines, full GFS, and the random-
#: preemption ablation (rng-stream parity).
SCHEDULERS = ("chronus", "yarn-cs", "fgd", "lyra", "gfs", "gfs-p")

#: Small but non-trivial replay scale, enough to hit the preemptive and
#: fractional-pod paths in every scenario.
NUM_NODES = 16
DURATION_HOURS = 8.0
SPOT_SCALE = 2.0
SEED = 3


def _all_scenarios():
    # Chaos scenarios carry cluster dynamics, which postdate the frozen
    # legacy twins; their parity/conservation coverage lives in
    # tests/test_chaos_scenarios.py and benchmarks/test_bench_dynamics.py.
    static = [n for n in scenario_names() if get_scenario(n).dynamics is None]
    return static + [f"trace:{FIXTURES / 'philly_small.csv'}"]


def _run(scenario_name: str, scheduler_name: str, legacy: bool) -> SimulationMetrics:
    reset_task_counter()
    scenario = get_scenario(scenario_name)
    cluster = scenario.build_cluster(num_nodes=NUM_NODES)
    trace = scenario.build_trace(
        cluster_gpus=cluster.total_gpus(),
        duration_hours=DURATION_HOURS,
        spot_scale=SPOT_SCALE,
        seed=SEED,
    )
    kwargs = {}
    if scheduler_name.startswith("gfs"):
        kwargs["org_history"] = trace.org_history
    factory = create_legacy_scheduler if legacy else create_scheduler
    scheduler = factory(scheduler_name, **kwargs)
    sim = ClusterSimulator(cluster, scheduler, SimulatorConfig())
    sim.submit_all(trace.sorted_tasks())
    return sim.run()


@pytest.mark.parametrize("scenario_name", _all_scenarios())
@pytest.mark.parametrize("scheduler_name", SCHEDULERS)
def test_placement_parity(scenario_name, scheduler_name):
    new = _run(scenario_name, scheduler_name, legacy=False)
    old = _run(scenario_name, scheduler_name, legacy=True)
    assert_metrics_identical(new, old, f"{scenario_name}/{scheduler_name}")


def test_placement_parity_across_worker_counts(tmp_path):
    """The indexed path stays bit-identical through the process-pool engine."""
    scale = ExperimentScale(name="parity", num_nodes=12, duration_hours=6.0, seed=9)
    jobs = [
        SimulationJob(
            key=f"parity/{kind}",
            scale=scale,
            scheduler=SchedulerSpec(kind=kind),
            workload=WorkloadSpec(scenario="default", spot_scale=2.0),
        )
        for kind in ("lyra", "gfs")
    ]
    serial = {job.key: execute_job(job) for job in jobs}
    for workers in (1, 2):
        engine = ExperimentEngine(workers=workers)
        pooled = engine.run(jobs)
        for key, metrics in serial.items():
            assert_metrics_identical(pooled[key], metrics, f"{key}@workers={workers}")
