"""Benchmark E-T6: regenerate Table 6 (guarantee-hours sensitivity)."""

from repro.experiments import run_table6


def test_bench_table6_guarantee_hours(run_once, bench_scale, bench_spot_scale):
    result = run_once(
        run_table6,
        bench_scale,
        guarantee_hours=(1.0, 2.0, 4.0),
        spot_scale=bench_spot_scale,
    )
    print()
    print(result.report())
    rows = {h: r.as_row() for h, r in result.per_horizon.items()}
    assert set(rows) == {1.0, 2.0, 4.0}
    # Paper shape: HP metrics are essentially insensitive to H, and the spot
    # eviction rate stays low for every configuration.
    hp_jcts = [r["hp_jct"] for r in rows.values()]
    assert max(hp_jcts) - min(hp_jcts) < 0.05 * max(hp_jcts)
    assert all(r["spot_eviction"] < 0.2 for r in rows.values())
    # A longer guarantee horizon reserves more, so spot queuing should not
    # improve when moving from H=1 to H=4.
    assert rows[4.0]["spot_jqt"] >= rows[1.0]["spot_jqt"] - 120.0
