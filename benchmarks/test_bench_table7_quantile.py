"""Benchmark E-T7: regenerate Table 7 (quantile accuracy and training time)."""

from repro.experiments.forecasting import ForecastingExperimentConfig, run_forecasting_experiment


def test_bench_table7_quantile_accuracy(run_once):
    config = ForecastingExperimentConfig(
        history_weeks=6, stride=8, orglinear_epochs=40, baselines=["DeepAR"]
    )
    result = run_once(run_forecasting_experiment, config)
    print()
    print(result.report())
    org = result.evaluations["OrgLinear"]
    deepar = result.evaluations["DeepAR"]
    # Paper shape (Table 7): OrgLinear beats DeepAR on both quantile metrics.
    assert org.maqe_95 <= deepar.maqe_95
    assert org.maqe_90 <= deepar.maqe_90 * 1.1
    # Both models train within seconds at this scale; report the ratio.
    print(
        f"training time: OrgLinear={org.training_time:.2f}s "
        f"DeepAR-lite={deepar.training_time:.2f}s"
    )
