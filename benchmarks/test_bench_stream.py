"""Streaming fan-out benchmark: SSE event throughput and observer cost.

Boots a real :class:`~repro.service.server.SchedulerServer` and measures
the two numbers that decide whether live telemetry is free to leave on:

* **events/sec fan-out** — a loaded session (the BENCH_6 streaming
  tier) driven to completion while 1, 4 and 16 concurrent SSE
  subscribers consume every event; the rate is total delivered events
  over the wall time from first submission until the slowest subscriber
  has caught up;
* **streamed-vs-unstreamed overhead** — the same drive with the stream
  attached (default backlog) but **zero** subscribers, against a
  ``stream_backlog=0`` session with no stream object at all.  The
  target ratio is ≤ 1.05x: emitting to the ring must be almost free,
  because every session pays it by default.  Metrics from the two
  variants must be bit-identical (the zero-observer-effect guarantee,
  here enforced end-to-end over HTTP).

Tiers (select with ``REPRO_BENCH_STREAM_TIER``): ``smoke`` (default,
suite-sized) and ``full`` — the recorded tier ``make bench-record``
writes to ``BENCH_9.json``.

``REPRO_BENCH_ENFORCE=1`` turns the 1.05x overhead target and the
delivery floors into hard asserts; otherwise ``REPRO_BENCH_STRICT=0``
downgrades them to warnings for noisy shared runners.
"""

from __future__ import annotations

import asyncio
import json
import os
import time
import warnings
from pathlib import Path
from typing import Dict, List

from _bench_common import BENCH_SCHEMA_VERSION, write_bench_record
from repro.service import AsyncServiceClient, SchedulerServer

STREAM_CONFIGS: Dict[str, Dict[str, float]] = {
    "smoke": dict(num_nodes=8, duration_hours=6.0, waves=4, wave_size=25, reps=3),
    "full": dict(num_nodes=32, duration_hours=24.0, waves=10, wave_size=100, reps=3),
}

FANOUT_SUBSCRIBERS = (1, 4, 16)
#: large enough that no benchmark subscriber ever falls off the ring
FANOUT_BACKLOG = 1 << 17

#: the recorded target: streaming attached but unobserved is ~free.
#: Enforced on the long-wall full tier (``make bench-record``); the
#: smoke tier's sub-2s walls jitter by more than 5% on their own, so the
#: always-on gate is a loose "did emit become pathological?" ceiling.
OVERHEAD_TARGET = 1.05
OVERHEAD_CEILING = 1.5
#: single-subscriber delivery is bounded by event *production* (a few
#: hundred events on the smoke tier), not transport capacity
EVENTS_PER_SEC_FLOOR = 40.0


def _task(task_id: str, submit_time: float, hp: bool) -> dict:
    return {
        "task_id": task_id,
        "task_type": 1 if hp else 0,
        "num_pods": 1,
        "gpus_per_pod": 4.0,
        "duration": 2400.0,
        "submit_time": submit_time,
        "org": f"org-{sum(task_id.encode()) % 3}",
    }


async def _drive_waves(client, sid: str, cfg: Dict[str, float]) -> None:
    waves, wave_size = int(cfg["waves"]), int(cfg["wave_size"])
    span = cfg["duration_hours"] * 3600.0
    for wave in range(waves):
        wave_start = wave * span / waves
        tasks = [
            _task(
                f"w{wave:02d}-{i:04d}",
                wave_start + i * (span / waves / wave_size),
                hp=(i % 4 == 0),
            )
            for i in range(wave_size)
        ]
        await client.submit(sid, tasks)
        await client.advance(sid, until=(wave + 1) * span / waves)
    await client.advance(sid)


async def _fanout_run(cfg: Dict[str, float], n_subs: int) -> Dict[str, float]:
    """Drive the tier with ``n_subs`` live SSE subscribers consuming."""
    server = SchedulerServer()
    await server.start(port=0)
    client = AsyncServiceClient(server.host, server.port)
    try:
        sid = (
            await client.create_session(
                scheduler="gfs",
                num_nodes=int(cfg["num_nodes"]),
                duration_hours=cfg["duration_hours"],
                seed=19,
                stream_backlog=FANOUT_BACKLOG,
            )
        )["session_id"]
        subs = [await client.open_stream(sid) for _ in range(n_subs)]
        counts = [0] * n_subs
        end_seq: List[int] = []  # set (len 1) once the drive is done

        async def reader(index: int, sub) -> None:
            while True:
                event = await sub.read_event(timeout=120.0)
                assert event is not None, "stream closed mid-benchmark"
                if event["id"] is None:
                    continue  # subscription-local gap frame
                counts[index] += 1
                if end_seq and int(event["id"]) >= end_seq[0]:
                    break

        readers = [asyncio.ensure_future(reader(i, s)) for i, s in enumerate(subs)]
        begin = time.perf_counter()
        await _drive_waves(client, sid, cfg)
        stats = (await client.stats(sid))["stream"]
        end_seq.append(stats["last_seq"])
        # one sentinel event so every caught-up reader observes end_seq
        await client.submit(sid, [_task("sentinel-0000", cfg["duration_hours"] * 3600.0, False)])
        await asyncio.gather(*readers)
        wall = time.perf_counter() - begin
        for sub in subs:
            await sub.close()
        final = (await client.stats(sid))["stream"]
        return {
            "subscribers": n_subs,
            "events": end_seq[0],
            "delivered": sum(counts),
            "wall_s": wall,
            "events_per_sec": sum(counts) / wall if wall > 0 else 0.0,
            "subscriber_drops": final["subscriber_drops"],
        }
    finally:
        await client.close()
        await server.stop()


async def _overhead_run(cfg: Dict[str, float], streamed: bool) -> Dict[str, object]:
    """One unobserved drive; ``streamed=False`` disables the stream entirely."""
    server = SchedulerServer()
    await server.start(port=0)
    client = AsyncServiceClient(server.host, server.port)
    try:
        params = dict(
            scheduler="gfs",
            num_nodes=int(cfg["num_nodes"]),
            duration_hours=cfg["duration_hours"],
            seed=19,
        )
        if not streamed:
            params["stream_backlog"] = 0
        sid = (await client.create_session(**params))["session_id"]
        begin = time.perf_counter()
        await _drive_waves(client, sid, cfg)
        wall = time.perf_counter() - begin
        metrics = await client.metrics(sid)
        return {"wall_s": wall, "metrics": json.dumps(metrics, sort_keys=True)}
    finally:
        await client.close()
        await server.stop()


async def _measure(cfg: Dict[str, float]) -> Dict[str, object]:
    fanout = [await _fanout_run(cfg, n) for n in FANOUT_SUBSCRIBERS]

    reps = int(cfg["reps"])
    await _overhead_run(cfg, streamed=True)  # warm-up, not measured
    streamed_walls, unstreamed_walls = [], []
    streamed_metrics = unstreamed_metrics = None
    for _ in range(reps):  # alternate variants so drift hits both equally
        streamed = await _overhead_run(cfg, streamed=True)
        unstreamed = await _overhead_run(cfg, streamed=False)
        streamed_walls.append(streamed["wall_s"])
        unstreamed_walls.append(unstreamed["wall_s"])
        streamed_metrics = streamed["metrics"]
        unstreamed_metrics = unstreamed["metrics"]
    assert streamed_metrics == unstreamed_metrics, (
        "stream attachment changed simulation metrics (observer effect)"
    )
    return {
        "fanout": fanout,
        "streamed_wall_s": min(streamed_walls),
        "unstreamed_wall_s": min(unstreamed_walls),
        "overhead_ratio": min(streamed_walls) / min(unstreamed_walls),
    }


def _record_bench9(tier: str, cfg: Dict[str, float], result: Dict[str, object]) -> None:
    record = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "bench": "stream-fanout",
        "pr": 9,
        "tier": tier,
        "scenario": "SSE fan-out on the BENCH_6 streaming gfs session",
        "node_count": int(cfg["num_nodes"]),
        "duration_hours": cfg["duration_hours"],
        "fanout": [
            {
                "subscribers": row["subscribers"],
                "events": int(row["events"]),
                "delivered": int(row["delivered"]),
                "events_per_sec": round(row["events_per_sec"], 1),
                "subscriber_drops": int(row["subscriber_drops"]),
            }
            for row in result["fanout"]
        ],
        "streamed_wall_s": round(result["streamed_wall_s"], 3),
        "unstreamed_wall_s": round(result["unstreamed_wall_s"], 3),
        "overhead_ratio": round(result["overhead_ratio"], 3),
        "overhead_target": OVERHEAD_TARGET,
        "metrics_identical": True,
    }
    out = Path(__file__).resolve().parent.parent / "BENCH_9.json"
    write_bench_record(out, record)
    print(f"\n[stream {tier}] wrote {out}")


def test_bench_stream_fanout():
    tier = os.environ.get("REPRO_BENCH_STREAM_TIER", "smoke").strip().lower()
    assert tier in STREAM_CONFIGS, f"unknown stream tier {tier!r}"
    cfg = STREAM_CONFIGS[tier]
    result = asyncio.run(_measure(cfg))

    for row in result["fanout"]:
        print(
            f"\n[stream {tier}] subs={row['subscribers']} events={row['events']} "
            f"delivered={row['delivered']} rate={row['events_per_sec']:.0f}/s "
            f"drops={row['subscriber_drops']}"
        )
    print(
        f"[stream {tier}] overhead streamed={result['streamed_wall_s']:.3f}s "
        f"unstreamed={result['unstreamed_wall_s']:.3f}s "
        f"ratio={result['overhead_ratio']:.3f} (target <= {OVERHEAD_TARGET})"
    )
    if os.environ.get("REPRO_BENCH_RECORD", "").strip().lower() not in ("", "0", "false", "no", "off"):
        _record_bench9(tier, cfg, result)

    enforce = os.environ.get("REPRO_BENCH_ENFORCE", "").strip().lower() not in ("", "0", "false", "no", "off")
    strict = os.environ.get("REPRO_BENCH_STRICT", "1").strip().lower() not in ("", "0", "false", "no", "off")
    failures = []
    ceiling = OVERHEAD_TARGET if enforce else OVERHEAD_CEILING
    if result["overhead_ratio"] > ceiling:
        failures.append(
            f"unobserved streaming overhead above ceiling: "
            f"{result['overhead_ratio']:.3f}x (ceiling {ceiling}x)"
        )
    for row in result["fanout"]:
        if row["events_per_sec"] < EVENTS_PER_SEC_FLOOR:
            failures.append(
                f"fan-out rate below floor with {row['subscribers']} subscriber(s): "
                f"{row['events_per_sec']:.0f}/s (floor {EVENTS_PER_SEC_FLOOR:.0f}/s)"
            )
    if enforce or strict:
        assert not failures, f"stream perf regressed on the {tier} tier: " + "; ".join(failures)
    elif failures:
        warnings.warn(f"stream {tier} perf below target on this runner: " + "; ".join(failures))
