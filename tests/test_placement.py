"""Tests for the shared placement machinery (NodeView, find_placement)."""

import pytest

from repro.cluster import Cluster, GPUModel, PodPlacement, TaskType
from repro.schedulers.placement import (
    NodeView,
    build_views,
    filter_nodes,
    find_placement,
    gpus_held_on_node,
    spot_tasks_on_node,
    virtually_preempt_task,
)
from tests.conftest import build_task


@pytest.fixture
def cluster():
    return Cluster.homogeneous(3, 8, GPUModel.A100)


class TestNodeView:
    def test_view_reflects_node_state(self, cluster):
        node = cluster.nodes[0]
        node.allocate_pod(build_task(TaskType.HP, gpus_per_pod=3.0))
        view = NodeView.from_node(node)
        assert view.idle_gpus == 5
        assert view.free_capacity == pytest.approx(5.0)

    def test_assign_pod_updates_view_not_node(self, cluster):
        node = cluster.nodes[0]
        view = NodeView.from_node(node)
        view.assign_pod(4.0)
        assert view.idle_gpus == 4
        assert node.idle_gpus == 8

    def test_assign_pod_rejects_overflow(self, cluster):
        view = NodeView.from_node(cluster.nodes[0])
        view.assign_pod(8.0)
        with pytest.raises(ValueError):
            view.assign_pod(1.0)

    def test_clone_is_independent(self, cluster):
        view = NodeView.from_node(cluster.nodes[0])
        clone = view.clone()
        clone.assign_pod(8.0)
        assert view.idle_gpus == 8

    def test_virtual_preemption_restores_capacity(self, cluster):
        node = cluster.nodes[0]
        spot = build_task(TaskType.SPOT, gpus_per_pod=4.0)
        node.allocate_pod(spot)
        spot.placements = [PodPlacement(node_id=node.node_id, gpu_indices=())]
        view = NodeView.from_node(node)
        assert view.idle_gpus == 4
        view.virtually_preempt(spot)
        assert view.idle_gpus == 8
        assert spot.task_id in view.preempted
        assert node.idle_gpus == 4  # real node untouched

    def test_virtually_preempt_task_handles_multi_node(self, cluster):
        spot = build_task(TaskType.SPOT, num_pods=2, gpus_per_pod=4.0)
        for node in cluster.nodes[:2]:
            node.allocate_pod(spot)
        spot.placements = [
            PodPlacement(node_id=cluster.nodes[0].node_id, gpu_indices=()),
            PodPlacement(node_id=cluster.nodes[1].node_id, gpu_indices=()),
        ]
        views = {n.node_id: NodeView.from_node(n) for n in cluster.nodes}
        virtually_preempt_task(views, spot)
        assert views[cluster.nodes[0].node_id].idle_gpus == 8
        assert views[cluster.nodes[1].node_id].idle_gpus == 8


class TestFindPlacement:
    def test_single_pod_placement(self, cluster):
        task = build_task(TaskType.HP, gpus_per_pod=8.0)
        placements = find_placement(task, cluster.nodes)
        assert placements is not None
        assert len(placements) == 1

    def test_gang_placement_across_nodes(self, cluster):
        task = build_task(TaskType.HP, num_pods=3, gpus_per_pod=8.0)
        placements = find_placement(task, cluster.nodes)
        assert placements is not None
        assert len({p.node_id for p in placements}) == 3

    def test_infeasible_returns_none(self, cluster):
        task = build_task(TaskType.HP, num_pods=4, gpus_per_pod=8.0)
        assert find_placement(task, cluster.nodes) is None

    def test_default_policy_is_best_fit(self, cluster):
        cluster.nodes[1].allocate_pod(build_task(TaskType.HP, gpus_per_pod=6.0))
        task = build_task(TaskType.HP, gpus_per_pod=2.0)
        placements = find_placement(task, cluster.nodes)
        assert placements[0].node_id == cluster.nodes[1].node_id

    def test_custom_score_preferred(self, cluster):
        preferred = cluster.nodes[2].node_id

        def score(node, view, task):
            return 1.0 if node.node_id == preferred else 0.0

        task = build_task(TaskType.HP, gpus_per_pod=1.0)
        placements = find_placement(task, cluster.nodes, score=score)
        assert placements[0].node_id == preferred

    def test_caller_views_not_mutated(self, cluster):
        task = build_task(TaskType.HP, num_pods=2, gpus_per_pod=8.0)
        views = {n.node_id: NodeView.from_node(n) for n in cluster.nodes}
        find_placement(task, cluster.nodes, views=views)
        assert all(v.idle_gpus == 8 for v in views.values())

    def test_model_filtering(self, cluster):
        task = build_task(TaskType.HP, gpus_per_pod=1.0, gpu_model=GPUModel.H800)
        assert filter_nodes(task, cluster.nodes) == []
        assert find_placement(task, cluster.nodes) is None

    def test_fractional_pod_placement(self, cluster):
        task = build_task(TaskType.SPOT, gpus_per_pod=0.5)
        placements = find_placement(task, cluster.nodes)
        assert placements is not None
        assert placements[0].fraction == pytest.approx(0.5)


class TestHelpers:
    def test_spot_tasks_on_node_and_gpus_held(self, cluster):
        spot = build_task(TaskType.SPOT, gpus_per_pod=2.0)
        node = cluster.nodes[0]
        cluster.place_task(spot, [PodPlacement(node_id=node.node_id, gpu_indices=())])
        assert spot_tasks_on_node(node, cluster) == [spot]
        assert gpus_held_on_node(spot, node) == pytest.approx(2.0)
        assert gpus_held_on_node(spot, cluster.nodes[1]) == 0.0

    def test_build_views_covers_all_nodes(self, cluster):
        views = build_views(cluster.nodes)
        assert len(views) == len(cluster.nodes)
