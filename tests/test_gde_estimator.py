"""Tests for the online forecasters and the GPU demand estimator."""

import numpy as np
import pytest

from repro.core.gde import (
    GPUDemandEstimator,
    OrgLinearOnlineForecaster,
    PreviousWeekPeakForecaster,
    SeasonalQuantileForecaster,
    normal_quantile,
)


@pytest.fixture
def seasonal_history():
    """Two weeks of strongly diurnal demand for two organizations."""
    hours = 2 * 168
    t = np.arange(hours)
    org_a = 100 + 20 * np.sin(2 * np.pi * (t % 24) / 24.0)
    org_b = 50 + 5 * np.cos(2 * np.pi * (t % 24) / 24.0)
    return {"org-A": org_a, "org-B": org_b}


class TestNormalQuantile:
    def test_median_is_zero(self):
        assert normal_quantile(0.5) == pytest.approx(0.0, abs=1e-9)

    def test_known_values(self):
        assert normal_quantile(0.95) == pytest.approx(1.6449, abs=1e-3)
        assert normal_quantile(0.9) == pytest.approx(1.2816, abs=1e-3)

    def test_invalid(self):
        with pytest.raises(ValueError):
            normal_quantile(0.0)


class TestSeasonalQuantileForecaster:
    def test_tracks_diurnal_pattern(self, seasonal_history):
        forecaster = SeasonalQuantileForecaster().fit(seasonal_history)
        mu_peak, _ = forecaster.predict("org-A", start_hour=2 * 168 + 6, horizon=1)
        mu_trough, _ = forecaster.predict("org-A", start_hour=2 * 168 + 18, horizon=1)
        # hour-of-day 6 is the sine peak, hour 18 the trough
        assert mu_peak[0] > mu_trough[0]

    def test_unknown_org_returns_zeros(self, seasonal_history):
        forecaster = SeasonalQuantileForecaster().fit(seasonal_history)
        mu, sigma = forecaster.predict("ghost", 0, 4)
        assert np.allclose(mu, 0.0)
        assert mu.shape == (4,)

    def test_observe_extends_history(self, seasonal_history):
        forecaster = SeasonalQuantileForecaster().fit(seasonal_history)
        length = len(forecaster.history["org-A"])
        forecaster.observe("org-A", length, 500.0)
        assert forecaster.history["org-A"][-1] == 500.0

    def test_observe_fills_gaps(self):
        forecaster = SeasonalQuantileForecaster().fit({"o": np.array([1.0, 2.0])})
        forecaster.observe("o", 5, 9.0)
        assert len(forecaster.history["o"]) == 6
        assert forecaster.history["o"][5] == 9.0

    def test_observe_overwrites_existing_hour(self):
        forecaster = SeasonalQuantileForecaster().fit({"o": np.array([1.0, 2.0, 3.0])})
        forecaster.observe("o", 1, 7.0)
        assert forecaster.history["o"][1] == 7.0


class TestPreviousWeekPeakForecaster:
    def test_predicts_constant_peak(self, seasonal_history):
        forecaster = PreviousWeekPeakForecaster().fit(seasonal_history)
        mu, sigma = forecaster.predict("org-A", 2 * 168, 6)
        assert np.allclose(mu, np.max(seasonal_history["org-A"][-168:]))
        assert np.allclose(sigma, 0.0)


class TestOrgLinearOnlineForecaster:
    def test_falls_back_when_history_too_short(self):
        forecaster = OrgLinearOnlineForecaster().fit({"o": np.arange(50.0)})
        mu, sigma = forecaster.predict("o", 50, 4)
        assert mu.shape == (4,)

    def test_predicts_with_enough_history(self, seasonal_history):
        from repro.core.gde import OrgLinearConfig

        forecaster = OrgLinearOnlineForecaster(config=OrgLinearConfig(epochs=5)).fit(seasonal_history)
        mu, sigma = forecaster.predict("org-A", 2 * 168, 6)
        assert mu.shape == (6,)
        assert np.all(sigma >= 0)


class TestGPUDemandEstimator:
    def test_upper_bound_above_mean(self, seasonal_history):
        estimator = GPUDemandEstimator().fit(seasonal_history)
        mu, _ = estimator.predict("org-A", 336, 4)
        upper = estimator.upper_bound("org-A", 336, 4, p=0.95)
        assert np.all(upper >= mu - 1e-9)

    def test_peak_and_aggregate(self, seasonal_history):
        estimator = GPUDemandEstimator().fit(seasonal_history)
        peaks = estimator.peak_demand(336, 24, p=0.9)
        assert set(peaks) == {"org-A", "org-B"}
        assert estimator.aggregate_peak_demand(336, 24, 0.9) == pytest.approx(sum(peaks.values()))

    def test_unfitted_estimator_raises(self):
        with pytest.raises(RuntimeError):
            GPUDemandEstimator().predict("o", 0, 1)

    def test_observe_passthrough(self, seasonal_history):
        estimator = GPUDemandEstimator().fit(seasonal_history)
        estimator.observe("org-A", 400, 123.0)
        assert estimator.forecaster.history["org-A"][400] == 123.0
